// spmvml — command-line front end for the library's train/select/predict
// workflow.
//
//   spmvml train   --out sel.model [--arch P100] [--precision double]
//                  [--model xgboost|svm|mlp|tree] [--features set1|set12|
//                  set123|imp] [--scale 0.25] [--threads N]
//   spmvml train-perf --out perf.model [--arch P100] [--scale 0.25]
//                  [--threads N]
//   spmvml select  --model sel.model [--mem-budget GB] <matrix.mtx>
//   spmvml predict --model perf.model <matrix.mtx>
//   spmvml inspect <matrix.mtx>
//   spmvml stats-export <report.json>   # metrics snapshot -> Prometheus text
//
// Global flags (any command): --verbose | --quiet adjust the log level
// (default info; the SPMVML_LOG env var overrides the default),
// --trace <file> records a Chrome trace-event JSON of the run, and
// --report <file> dumps the merged metrics registry plus run metadata.
//
// Matrix arguments are Matrix Market files; synthetic matrices can be
// produced with the format_explorer example instead.
//
// Exit codes: 0 success, 1 generic error, 2 usage, then one per
// ErrorCategory — 3 parse, 4 io, 5 model-format, 6 infeasible-format,
// 7 measurement (see common/error.hpp).
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "common/chaos/chaos.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/prom.hpp"
#include "common/obs/report.hpp"
#include "common/obs/trace.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/row_summary.hpp"
#include "serve/drain.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "sparse/csr_binary.hpp"
#include "sparse/mmio.hpp"
#include "sparse/reorder.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  spmvml train      --out <file> [--arch K80c|P100] "
               "[--precision single|double]\n"
               "                    [--model xgboost|svm|mlp|tree] "
               "[--features set1|set12|set123|imp] [--scale S] "
               "[--threads N]\n"
               "  spmvml train-perf --out <file> [--arch ...] "
               "[--precision ...] [--scale S] [--threads N]\n"
               "  spmvml select     --model <file> [--mem-budget GB] "
               "[--precision single|double] <matrix.mtx>\n"
               "  spmvml predict    --model <file> <matrix.mtx>\n"
               "  spmvml inspect    <matrix.mtx>\n"
               "  spmvml sidecar    <matrix.mtx> [--out <file>] | "
               "--self-test\n"
               "                    convert to the binary CSR sidecar "
               "(<matrix.mtx>.spmvml-csr)\n"
               "                    that serving bulk-loads instead of "
               "re-parsing the text;\n"
               "                    --self-test round-trips a synthetic "
               "matrix and verifies\n"
               "                    bitwise identity with the text parse\n"
               "  spmvml serve      --model <file> [--perf-model <file>] "
               "[--threads N]\n"
               "                    [--max-batch N] [--max-delay-ms F] "
               "[--queue-cap N]\n"
               "                    [--cache-cap N] [--mem-budget GB] "
               "[--precision ...]\n"
               "                    [--ingest-cache-mb N] [--shards N]\n"
               "                    [--admission-target-ms F] "
               "[--watchdog-ms F] [--max-retries N]\n"
               "                    [--trace-sample N] [--stats-every-s F] "
               "[--stats-file <file>]\n"
               "                    [--learn] [--replay-cap N] "
               "[--drift-rme F] [--retrain-every-s F]\n"
               "                    JSONL requests on stdin, responses on "
               "stdout; a\n"
               "                    {\"cmd\":\"swap\",\"model\":...} line "
               "hot-swaps models, a\n"
               "                    {\"cmd\":\"stats\"} line returns a live "
               "metrics snapshot, a\n"
               "                    {\"cmd\":\"learn\"} line the learning-"
               "loop state;\n"
               "                    --learn (SPMVML_LEARN=1) retrains "
               "models in the background\n"
               "                    from measured traffic and hot-swaps "
               "improvements in\n"
               "                    (replay cap SPMVML_LEARN_REPLAY_CAP, "
               "drift threshold\n"
               "                    SPMVML_LEARN_DRIFT_RME, periodic "
               "retrain SPMVML_LEARN_RETRAIN_EVERY_S);\n"
               "                    --trace-sample N tags every Nth request "
               "with id'd trace\n"
               "                    spans (SPMVML_TRACE_SAMPLE), "
               "--stats-every-s rewrites the\n"
               "                    --stats-file snapshot periodically "
               "(SPMVML_STATS_EVERY_S);\n"
               "                    SIGTERM drains (finish in-flight, then "
               "exit 0);\n"
               "                    SPMVML_CHAOS=<scenario> injects faults\n"
               "  spmvml stats-export <report.json>\n"
               "                    translate a --report / --stats-file "
               "snapshot to the\n"
               "                    Prometheus text format on stdout\n"
               "global flags:\n"
               "  --verbose | --quiet     debug / error-only logging "
               "(default info; SPMVML_LOG overrides)\n"
               "  --trace <file>          write a Chrome trace-event JSON "
               "of the run\n"
               "  --report <file>         write an end-of-run metrics "
               "summary JSON\n"
               "  --threads N             worker threads (collection and "
               "serving). Precedence:\n"
               "                          --threads > SPMVML_THREADS > "
               "default 1; --threads 0\n"
               "                          (or omitting it) defers to "
               "SPMVML_THREADS\n");
  std::exit(2);
}

/// Flags that take no value; everything else consumes the next token.
bool is_flag_option(const std::string& name) {
  return name == "verbose" || name == "quiet" || name == "self-test" ||
         name == "learn";
}

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

Args parse(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string name = a.substr(2);
      if (is_flag_option(name)) {
        args.options[name] = "1";
        continue;
      }
      if (i + 1 >= argc) usage();
      args.options[name] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

std::string opt(const Args& a, const char* name, const char* fallback) {
  const auto it = a.options.find(name);
  return it == a.options.end() ? fallback : it->second;
}

/// Validated numeric option: the whole token must parse as a finite
/// double in [lo, hi]. Bad values are usage errors, not uncaught
/// std::invalid_argument crashes.
double numeric_opt(const Args& a, const char* name, double fallback,
                   double lo, double hi) {
  const auto it = a.options.find(name);
  if (it == a.options.end()) return fallback;
  const std::string& text = it->second;
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (text.empty() || consumed != text.size() || !std::isfinite(value) ||
      value < lo || value > hi) {
    std::fprintf(stderr, "spmvml: bad value for --%s: '%s'\n", name,
                 text.c_str());
    usage();
  }
  return value;
}

int arch_of(const Args& a) {
  const auto name = opt(a, "arch", "P100");
  if (name == "K80c" || name == "K40c") return 0;
  if (name == "P100") return 1;
  usage();
}

Precision precision_of(const Args& a) {
  const auto name = opt(a, "precision", "double");
  if (name == "single") return Precision::kSingle;
  if (name == "double") return Precision::kDouble;
  usage();
}

FeatureSet features_of(const Args& a) {
  const auto name = opt(a, "features", "set12");
  if (name == "set1") return FeatureSet::kSet1;
  if (name == "set12") return FeatureSet::kSet12;
  if (name == "set123") return FeatureSet::kSet123;
  if (name == "imp") return FeatureSet::kImportant;
  usage();
}

ModelKind model_of(const Args& a) {
  const auto name = opt(a, "model", "xgboost");
  if (name == "xgboost") return ModelKind::kXgboost;
  if (name == "svm") return ModelKind::kSvm;
  if (name == "mlp") return ModelKind::kMlp;
  if (name == "tree") return ModelKind::kDecisionTree;
  usage();
}

LabeledCorpus corpus_of(const Args& a) {
  const double scale = numeric_opt(a, "scale", 0.25, 1e-4, 100.0);
  // 0 defers to SPMVML_THREADS (default 1 = serial). Parallel collection
  // produces byte-identical corpora, so this is purely a speed knob.
  const int threads =
      static_cast<int>(numeric_opt(a, "threads", 0.0, 0.0, 256.0));
  obs::log_info("cli.collect").kv("scale", scale).kv("threads", threads);
  CollectOptions options;
  options.threads = threads;
  // Progress lines go through the logger (info level), so --quiet
  // silences them and concurrent workers never interleave output.
  // `done` counts finished plan cells; rate and ETA come from the wall
  // clock since collection started.
  options.progress = [timer = WallTimer()](std::size_t done,
                                           std::size_t total) {
    if (done % 500 != 0 && done != total) return;
    const double elapsed = timer.seconds();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    const double eta_s =
        rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
    obs::log_info("collect.progress")
        .kv("done", static_cast<std::uint64_t>(done))
        .kv("total", static_cast<std::uint64_t>(total))
        .kv("cells_per_s", rate)
        .kv("eta_s", eta_s);
  };
  return collect_corpus(make_corpus_plan(scale, 2018), options);
}

int cmd_train(const Args& a) {
  const auto out_path = opt(a, "out", "");
  if (out_path.empty()) usage();
  const auto corpus = corpus_of(a);
  FormatSelector selector(model_of(a), features_of(a), kAllFormats);
  selector.fit(corpus, arch_of(a), precision_of(a));
  std::ofstream out(out_path);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                    "cannot open " + out_path + " for writing");
  selector.save(out);
  obs::log_info("cli.model_written").kv("path", out_path);
  return 0;
}

int cmd_train_perf(const Args& a) {
  const auto out_path = opt(a, "out", "");
  if (out_path.empty()) usage();
  const auto corpus = corpus_of(a);
  PerfModel model(RegressorKind::kXgboost, features_of(a), kAllFormats);
  model.fit(corpus, arch_of(a), precision_of(a));
  std::ofstream out(out_path);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                    "cannot open " + out_path + " for writing");
  model.save(out);
  obs::log_info("cli.model_written").kv("path", out_path);
  return 0;
}

int cmd_select(const Args& a) {
  if (a.positional.empty()) usage();
  const auto model_path = opt(a, "model", "spmvml_selector.model");
  std::ifstream in(model_path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo,
                    "cannot open model file " + model_path);
  const auto selector = FormatSelector::load_selector(in);
  const auto matrix = read_matrix_market(a.positional.front());

  // --mem-budget <GB>: constrain the selection to formats whose simulated
  // device image fits the budget; report when a fallback happened.
  const double budget_gb = numeric_opt(a, "mem-budget", 0.0, 0.0, 1e6);
  if (budget_gb > 0.0) {
    const auto summary = summarize(matrix);
    const auto budget_bytes = static_cast<std::int64_t>(budget_gb * 1e9);
    const auto feasible =
        make_memory_feasibility(summary, precision_of(a), budget_bytes);
    const Selection sel = selector.select_feasible(matrix, feasible);
    if (sel.fallback)
      std::fprintf(stderr,
                   "note: predicted format %s exceeds --mem-budget %.3g GB "
                   "(needs %.3g GB); fell back to %s\n",
                   format_name(sel.predicted), budget_gb,
                   format_device_bytes(summary, sel.predicted,
                                       precision_of(a)) / 1e9,
                   format_name(sel.format));
    std::printf("%s\n", format_name(sel.format));
    return 0;
  }
  std::printf("%s\n", format_name(selector.select(matrix)));
  return 0;
}

int cmd_predict(const Args& a) {
  if (a.positional.empty()) usage();
  const auto model_path = opt(a, "model", "spmvml_perf.model");
  std::ifstream in(model_path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo,
                    "cannot open model file " + model_path);
  const auto model = PerfModel::load_model(in);
  const auto matrix = read_matrix_market(a.positional.front());
  const auto features = extract_features(matrix);
  TablePrinter table({"format", "predicted time (us)", "predicted GFLOPS"});
  for (Format f : model.formats()) {
    const double t = model.predict_seconds(features, f);
    table.add_row({format_name(f), TablePrinter::fmt(t * 1e6, 1),
                   TablePrinter::fmt(2.0 * static_cast<double>(matrix.nnz()) /
                                         t / 1e9,
                                     1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

/// Effective worker-thread count with the documented precedence:
/// --threads > SPMVML_THREADS > 1 (a flag value of 0 defers to the env).
int threads_of(const Args& a) {
  const int flag = static_cast<int>(numeric_opt(a, "threads", 0.0, 0.0, 256.0));
  return flag > 0 ? flag : thread_count();
}

/// Drain-aware line reader over stdin: poll(2) with a 100ms tick so a
/// SIGTERM between lines is noticed promptly, manual buffering so bytes
/// read before the signal are not lost, EINTR-aware because the drain
/// handler is installed without SA_RESTART. Returns false at EOF or
/// once a drain has been requested (a partial unterminated line during
/// drain is dropped — it is not a complete request).
bool next_stdin_line(std::string& pending, bool& eof, std::string& out) {
  for (;;) {
    const auto nl = pending.find('\n');
    if (nl != std::string::npos) {
      out = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      return true;
    }
    if (serve::drain_requested()) return false;
    if (eof) {
      if (pending.empty()) return false;
      out = std::move(pending);  // final unterminated line
      pending.clear();
      return true;
    }
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;  // signal: the loop re-checks drain
      eof = true;
      continue;
    }
    if (pr == 0) continue;  // tick: re-check drain
    char buf[4096];
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof = true;
      continue;
    }
    if (n == 0) {
      eof = true;
      continue;
    }
    pending.append(buf, static_cast<std::size_t>(n));
  }
}

int cmd_serve(const Args& a) {
  const auto model_path = opt(a, "model", "spmvml_selector.model");
  const auto perf_path = opt(a, "perf-model", "");

  // SPMVML_CHAOS names a chaos scenario file; without it every site is
  // a no-op (one relaxed atomic load per decision).
  chaos::install_from_env();
  serve::install_drain_handler();

  serve::ModelRegistry registry;
  registry.install_files(model_path, perf_path);

  serve::ServiceConfig cfg;
  cfg.threads = threads_of(a);
  cfg.max_batch =
      static_cast<std::size_t>(numeric_opt(a, "max-batch", 16.0, 1.0, 4096.0));
  cfg.max_delay_ms = numeric_opt(a, "max-delay-ms", 1.0, 0.0, 10000.0);
  cfg.queue_capacity =
      static_cast<std::size_t>(numeric_opt(a, "queue-cap", 256.0, 1.0, 1e6));
  cfg.cache_capacity =
      static_cast<std::size_t>(numeric_opt(a, "cache-cap", 512.0, 0.0, 1e7));
  // Ingest cache and dispatch shards: flag > env > default. The env
  // knobs let deployment scripts tune serving without touching the
  // command line (SPMVML_INGEST_CACHE_MB, SPMVML_SHARDS).
  cfg.ingest_cache_bytes =
      static_cast<std::size_t>(numeric_opt(
          a, "ingest-cache-mb",
          static_cast<double>(env_int("SPMVML_INGEST_CACHE_MB", 256)), 0.0,
          1e6))
      << 20;
  cfg.dispatch_shards = static_cast<int>(numeric_opt(
      a, "shards", static_cast<double>(env_int("SPMVML_SHARDS", 1)), 1.0,
      64.0));
  cfg.precision = precision_of(a);
  cfg.mem_budget_gb = numeric_opt(a, "mem-budget", 0.0, 0.0, 1e6);
  cfg.admission_target_ms =
      numeric_opt(a, "admission-target-ms", 0.0, 0.0, 1e6);
  cfg.watchdog_ms = numeric_opt(a, "watchdog-ms", 0.0, 0.0, 1e6);
  cfg.max_retries =
      static_cast<int>(numeric_opt(a, "max-retries", 2.0, 0.0, 100.0));

  // Online learning loop (DESIGN.md §5k): flag > env > default, like
  // every other serving knob. --learn (SPMVML_LEARN=1) turns on shadow
  // probes + replay + drift-triggered background retraining; the other
  // knobs tune it. Off by default: serving is then byte-identical to a
  // build without the subsystem.
  cfg.learn.enabled =
      a.options.count("learn") != 0 || env_int("SPMVML_LEARN", 0) != 0;
  cfg.learn.replay_capacity = static_cast<std::size_t>(numeric_opt(
      a, "replay-cap",
      static_cast<double>(env_int("SPMVML_LEARN_REPLAY_CAP", 4096)), 1.0,
      1e7));
  cfg.learn.drift.rme_threshold = numeric_opt(
      a, "drift-rme", env_double("SPMVML_LEARN_DRIFT_RME", 0.5), 0.0, 1e6);
  cfg.learn.retrain_every_s = numeric_opt(
      a, "retrain-every-s", env_double("SPMVML_LEARN_RETRAIN_EVERY_S", 0.0),
      0.0, 1e9);
  cfg.learn.seed = root_seed();

  // Per-request trace sampling: flag > SPMVML_TRACE_SAMPLE > off. The
  // sentinel -1 means "flag absent", so an explicit --trace-sample 0
  // still turns env-configured sampling off.
  const int trace_sample =
      static_cast<int>(numeric_opt(a, "trace-sample", -1.0, -1.0, 1e9));
  if (trace_sample >= 0) serve::set_trace_sample(trace_sample);

  // Live stats plane: --stats-every-s (or SPMVML_STATS_EVERY_S) starts a
  // background writer that atomically rewrites --stats-file with a fresh
  // metrics snapshot, so a scraper can follow a long-lived server
  // without restarts or admin lines.
  const double stats_every_s = numeric_opt(
      a, "stats-every-s", env_double("SPMVML_STATS_EVERY_S", 0.0), 0.0, 1e6);
  std::unique_ptr<obs::PeriodicReporter> stats_writer;
  if (stats_every_s > 0.0) {
    obs::ReportMeta stats_meta;
    stats_meta.tool = "spmvml serve";
    stats_meta.threads = cfg.threads;
    stats_writer = std::make_unique<obs::PeriodicReporter>(
        opt(a, "stats-file", "spmvml_stats.json"), stats_every_s, stats_meta);
  }

  serve::Service service(cfg, registry);

  // Responses complete on worker threads; one mutex keeps stdout lines
  // whole. Admin (swap) lines are handled inline so a swap is visible to
  // every request submitted after its response line.
  std::mutex out_mu;
  const auto emit = [&out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  std::string pending_in, line;
  bool eof = false;
  while (next_stdin_line(pending_in, eof, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // server_ms = parse -> response emitted, stamped at this transport
    // boundary so it includes everything the server did for the line.
    WallTimer line_timer;
    serve::ParsedLine parsed;
    try {
      parsed = serve::parse_request_line(line);
    } catch (const Error& e) {
      serve::Response bad;
      bad.error = std::string(error_category_name(e.category())) + ": " +
                  e.what();
      bad.server_ms = line_timer.millis();
      emit(serve::to_json(bad));
      continue;
    }
    if (parsed.is_admin) {
      if (parsed.admin.cmd == "learn") {
        // Learning-loop stats plane: replay buffer, drift detector and
        // trainer outcomes as one JSON line (DESIGN.md §5k).
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.begin_object();
        if (!parsed.admin.id.empty())
          w.kv("id", std::string_view(parsed.admin.id));
        w.kv("ok", true);
        w.kv("server_ms", line_timer.millis());
        w.key("learn");
        w.begin_object();
        const auto* learner = service.learner();
        w.kv("enabled", learner != nullptr);
        if (learner != nullptr) {
          const auto ls = learner->stats();
          w.kv("polls", ls.polls);
          w.kv("drained", ls.drained);
          w.kv("dropped", ls.dropped);
          w.kv("retrains", ls.retrains);
          w.kv("swaps", ls.swaps);
          w.kv("discards", ls.discards);
          w.kv("aborted", ls.aborted);
          w.kv("last_published_version", ls.last_published_version);
          w.kv("last_candidate_regret", ls.last_candidate_regret);
          w.kv("last_live_regret", ls.last_live_regret);
          w.kv("last_candidate_rme", ls.last_candidate_rme);
          w.kv("last_live_rme", ls.last_live_rme);
          w.key("replay");
          w.begin_object();
          w.kv("size", static_cast<std::uint64_t>(ls.replay.size));
          w.kv("observations", ls.replay.observations);
          w.kv("inserted", ls.replay.inserted);
          w.kv("evictions", ls.replay.evictions);
          w.kv("skipped", ls.replay.skipped);
          w.end_object();
          w.key("drift");
          w.begin_object();
          w.kv("windows", ls.drift.windows);
          w.kv("drifted_windows", ls.drift.drifted_windows);
          w.kv("trips", ls.drift.trips);
          w.kv("tripped", ls.drift.tripped);
          w.kv("last_accuracy", ls.drift.last_accuracy);
          w.kv("last_rme", ls.drift.last_rme);
          w.end_object();
        }
        w.end_object();
        w.end_object();
        emit(os.str());
        continue;
      }
      if (parsed.admin.cmd == "stats") {
        // Live stats plane: one compact JSON line with the server's
        // counters, scorecard summary, ingest stats and the full metrics
        // snapshot — the same schema a --report file carries.
        const auto counters = service.counters();
        const auto score = service.scorecard().summary();
        const auto ingest = service.ingest().stats();
        const auto snap = obs::MetricsRegistry::global().snapshot();
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.begin_object();
        if (!parsed.admin.id.empty())
          w.kv("id", std::string_view(parsed.admin.id));
        w.kv("ok", true);
        w.kv("server_ms", line_timer.millis());
        w.key("counters");
        w.begin_object();
        w.kv("served", counters.served);
        w.kv("rejected", counters.rejected);
        w.kv("degraded", counters.degraded);
        w.kv("failed", counters.failed);
        w.kv("shed", counters.shed);
        w.kv("retries", counters.retries);
        w.kv("watchdog_killed", counters.watchdog_killed);
        w.kv("breaker_trips", counters.breaker_trips);
        w.kv("steals", counters.steals);
        w.end_object();
        w.key("scorecard");
        w.begin_object();
        w.kv("records", score.total);
        w.kv("window", static_cast<std::uint64_t>(score.window));
        w.kv("accuracy", score.accuracy);
        w.kv("mean_regret", score.mean_regret);
        w.kv("rme", score.rme);
        w.end_object();
        w.key("ingest");
        w.begin_object();
        w.kv("hits", ingest.hits);
        w.kv("misses", ingest.misses);
        w.kv("parses", ingest.parses);
        w.kv("sidecar_loads", ingest.sidecar_loads);
        w.kv("coalesced", ingest.coalesced);
        w.kv("evictions", ingest.evictions);
        w.kv("bytes", static_cast<std::uint64_t>(ingest.bytes));
        w.end_object();
        w.key("metrics");
        obs::write_metrics_object(w, snap);
        w.end_object();
        emit(os.str());
        continue;
      }
      serve::Response rsp;
      rsp.id = parsed.admin.id;
      try {
        const auto version = registry.install_files(
            parsed.admin.model_path, parsed.admin.perf_model_path);
        rsp.ok = true;
        rsp.model_version = version;
        emit("{\"id\": \"" + JsonWriter::escape(rsp.id) +
             "\", \"ok\": true, \"version\": " + std::to_string(version) +
             "}");
      } catch (const Error& e) {
        rsp.error = std::string(error_category_name(e.category())) + ": " +
                    e.what();
        rsp.server_ms = line_timer.millis();
        emit(serve::to_json(rsp));
      }
      continue;
    }
    service.submit(std::move(parsed.request),
                   [&emit, line_timer](const serve::Response& r) {
                     serve::Response stamped = r;
                     stamped.server_ms = line_timer.millis();
                     emit(serve::to_json(stamped));
                   });
  }
  if (serve::drain_requested())
    obs::log_info("serve.drain")
        .kv("reason", "SIGTERM")
        .kv("note", "stopped accepting; flushing in-flight requests");
  service.shutdown();
  const auto counters = service.counters();
  obs::log_info("serve.summary")
      .kv("served", counters.served)
      .kv("rejected", counters.rejected)
      .kv("degraded", counters.degraded)
      .kv("failed", counters.failed)
      .kv("shed", counters.shed)
      .kv("retries", counters.retries)
      .kv("watchdog_killed", counters.watchdog_killed)
      .kv("breaker_trips", counters.breaker_trips)
      .kv("steals", counters.steals);
  const auto ingest = service.ingest().stats();
  obs::log_info("serve.ingest.summary")
      .kv("hits", ingest.hits)
      .kv("misses", ingest.misses)
      .kv("parses", ingest.parses)
      .kv("sidecar_loads", ingest.sidecar_loads)
      .kv("coalesced", ingest.coalesced)
      .kv("evictions", ingest.evictions)
      .kv("bytes", static_cast<std::uint64_t>(ingest.bytes));
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.positional.empty()) usage();
  const auto matrix = read_matrix_market(a.positional.front());
  const auto features = extract_features(matrix);
  std::printf("%s: %lld x %lld, %lld nonzeros\n",
              a.positional.front().c_str(),
              static_cast<long long>(matrix.rows()),
              static_cast<long long>(matrix.cols()),
              static_cast<long long>(matrix.nnz()));
  for (int id = 0; id < kNumFeatures; ++id)
    std::printf("  %-11s = %.6g\n", feature_name(id), features[id]);
  if (matrix.rows() == matrix.cols())
    std::printf("  %-11s = %lld\n", "bandwidth",
                static_cast<long long>(bandwidth(matrix)));
  const auto summary = summarize(matrix);
  std::printf("  %-11s = %.3f\n", "ell_padding", summary.ell_padding_ratio());
  std::printf("  %-11s = %.3f\n", "band_frac", summary.band_fraction);
  return 0;
}

/// Strict bitwise CSR comparison (memcmp over the raw arrays): the
/// sidecar contract is byte identity with the text parse, stronger than
/// operator== (which would conflate -0.0 with 0.0).
bool csr_bitwise_equal(const Csr<double>& a, const Csr<double>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() && a.nnz() == b.nnz() &&
         std::memcmp(a.row_ptr().data(), b.row_ptr().data(),
                     a.row_ptr().size_bytes()) == 0 &&
         std::memcmp(a.col_idx().data(), b.col_idx().data(),
                     a.col_idx().size_bytes()) == 0 &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size_bytes()) == 0;
}

int cmd_sidecar(const Args& a) {
  if (a.options.count("self-test")) {
    // Round-trip a few synthetic matrices through text -> sidecar ->
    // reload and demand bitwise identity with the text parse. Wired into
    // tools/check.sh so a converter regression fails the tier-1 gate.
    const std::string dir = "spmvml_sidecar_selftest.tmp";
    for (const MatrixFamily family :
         {MatrixFamily::kBanded, MatrixFamily::kPowerLaw,
          MatrixFamily::kUniformRandom}) {
      GenSpec spec;
      spec.family = family;
      spec.rows = spec.cols = 500;
      spec.seed = 7 + static_cast<std::uint64_t>(family);
      const Csr<double> synth = generate(spec);
      const std::string mtx = dir + "." + family_name(family) + ".mtx";
      write_matrix_market(mtx, synth);
      const Csr<double> text = read_matrix_market(mtx);
      write_csr_binary(csr_sidecar_path(mtx), text);
      const Csr<double> binary = read_csr_binary(csr_sidecar_path(mtx));
      const bool same = csr_bitwise_equal(text, binary);
      std::remove(mtx.c_str());
      std::remove(csr_sidecar_path(mtx).c_str());
      SPMVML_ENSURE_CAT(same, ErrorCategory::kIo,
                        std::string("sidecar self-test: binary CSR differs "
                                    "from the text parse for family ") +
                            family_name(family));
    }
    std::printf("sidecar self-test: ok\n");
    return 0;
  }
  if (a.positional.empty()) usage();
  const std::string in_path = a.positional.front();
  const Csr<double> matrix = read_matrix_market(in_path);
  const std::string out_path =
      opt(a, "out", csr_sidecar_path(in_path).c_str());
  write_csr_binary(out_path, matrix);
  // Verify the round trip before reporting success: a sidecar that does
  // not reproduce the text parse bit-for-bit must never be left on disk.
  const Csr<double> reloaded = read_csr_binary(out_path);
  if (!csr_bitwise_equal(matrix, reloaded)) {
    std::remove(out_path.c_str());
    SPMVML_ENSURE_CAT(false, ErrorCategory::kIo,
                      "sidecar verification failed for " + out_path +
                          " (removed)");
  }
  obs::log_info("cli.sidecar_written")
      .kv("path", out_path)
      .kv("rows", static_cast<std::uint64_t>(matrix.rows()))
      .kv("nnz", static_cast<std::uint64_t>(matrix.nnz()));
  std::printf("%s\n", out_path.c_str());
  return 0;
}

/// `spmvml stats-export <report.json>`: translate a --report /
/// --stats-file snapshot into the Prometheus text exposition format on
/// stdout, so any Prometheus-compatible scraper can ingest spmvml
/// metrics without the server speaking HTTP itself.
int cmd_stats_export(const Args& a) {
  if (a.positional.empty()) usage();
  const std::string& path = a.positional.front();
  std::ifstream in(path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo,
                    "cannot open report file " + path);
  const obs::MetricsSnapshot snap = obs::read_report_metrics(in);
  obs::write_prometheus_text(std::cout, snap);
  return 0;
}

int run_command(const std::string& cmd, const Args& args) {
  if (cmd == "train") return cmd_train(args);
  if (cmd == "train-perf") return cmd_train_perf(args);
  if (cmd == "select") return cmd_select(args);
  if (cmd == "predict") return cmd_predict(args);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "sidecar") return cmd_sidecar(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "stats-export") return cmd_stats_export(args);
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);

  // Log level: flags win, then SPMVML_LOG, then the CLI default (info —
  // the interactive tool talks, the library stays silent by default).
  if (args.options.count("verbose")) {
    obs::set_log_level(obs::LogLevel::kDebug);
  } else if (args.options.count("quiet")) {
    obs::set_log_level(obs::LogLevel::kError);
  } else if (std::getenv("SPMVML_LOG") == nullptr) {
    obs::set_log_level(obs::LogLevel::kInfo);
  }
  const std::string trace_path = opt(args, "trace", "");
  if (!trace_path.empty()) obs::trace_start(trace_path);

  WallTimer wall;
  try {
    const int rc = run_command(cmd, args);
    if (!trace_path.empty()) obs::trace_stop();
    const std::string report_path = opt(args, "report", "");
    if (!report_path.empty()) {
      obs::ReportMeta meta;
      meta.tool = "spmvml " + cmd;
      for (int i = 0; i < argc; ++i) {
        if (i > 0) meta.command += ' ';
        meta.command += argv[i];
      }
      meta.seed = 2018;  // the fixed corpus-plan seed
      meta.threads = static_cast<int>(
          numeric_opt(args, "threads", 0.0, 0.0, 256.0));
      meta.wall_s = wall.seconds();
      obs::write_report(report_path, meta);
      obs::log_info("cli.report_written").kv("path", report_path);
    }
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n",
                 error_category_name(e.category()), e.what());
    return error_exit_code(e.category());
  } catch (const std::exception& e) {
    // Nothing below main should leak a raw std::exception; if it does,
    // fail cleanly instead of crashing with an uncaught-exception abort.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
