#!/usr/bin/env bash
# Tier-1 verification, plus optional sanitizer passes.
#
#   tools/check.sh            # configure + build + ctest (the tier-1 gate)
#   tools/check.sh --asan     # same, in a separate build dir with
#                             # -fsanitize=address,undefined
#   tools/check.sh --tsan     # ThreadSanitizer over the concurrency tests
#                             # (thread pool, parallel collection, logger +
#                             # sharded metrics); OpenMP is disabled there
#                             # because libgomp's uninstrumented runtime
#                             # trips false positives
#
# Each pass uses its own build directory and leaves ./build alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "${1:-}" == "--asan" ]]; then
  echo "== sanitizer pass (address;undefined) =="
  run_suite build-asan "-DSPMVML_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
elif [[ "${1:-}" == "--tsan" ]]; then
  echo "== thread sanitizer pass (concurrency tests) =="
  cmake -B build-tsan -S . -DSPMVML_SANITIZE=thread \
    -DSPMVML_ENABLE_OPENMP=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ThreadPool|ParallelCollector|Parallel\.|Obs'
else
  echo "== tier-1 verify =="
  run_suite build
fi

echo "OK"
