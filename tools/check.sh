#!/usr/bin/env bash
# Tier-1 verification, plus an optional sanitizer pass.
#
#   tools/check.sh            # configure + build + ctest (the tier-1 gate)
#   tools/check.sh --asan     # same, in a separate build dir with
#                             # -fsanitize=address,undefined
#
# Both passes use their own build directory and leave ./build alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "${1:-}" == "--asan" ]]; then
  echo "== sanitizer pass (address;undefined) =="
  run_suite build-asan "-DSPMVML_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  echo "== tier-1 verify =="
  run_suite build
fi

echo "OK"
