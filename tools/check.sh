#!/usr/bin/env bash
# Tier-1 verification, plus optional sanitizer passes.
#
#   tools/check.sh            # configure + build + ctest (the tier-1 gate)
#   tools/check.sh --asan     # same, in a separate build dir with
#                             # -fsanitize=address,undefined
#   tools/check.sh --tsan     # ThreadSanitizer over the concurrency tests
#                             # (thread pool, parallel collection, logger +
#                             # sharded metrics, concurrent arenas, the
#                             # online-learning loop); OpenMP
#                             # is disabled there because libgomp's
#                             # uninstrumented runtime trips false positives
#   tools/check.sh --simd-off # full suite with -DSPMVML_FORCE_SCALAR=ON:
#                             # the SIMD tiers compiled out, every kernel on
#                             # the scalar reference — the differential
#                             # tests and the bench's bitwise assertions
#                             # must hold there too
#   tools/check.sh --chaos    # chaos smoke under asan: the scripted
#                             # fault-burst bench plus the chaos/breaker/
#                             # robustness/drain tests, with every injected
#                             # fault path running under the sanitizer
#
# Each pass uses its own build directory and leaves ./build alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "${1:-}" == "--asan" ]]; then
  echo "== sanitizer pass (address;undefined) =="
  run_suite build-asan "-DSPMVML_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
elif [[ "${1:-}" == "--tsan" ]]; then
  echo "== thread sanitizer pass (concurrency tests) =="
  cmake -B build-tsan -S . -DSPMVML_SANITIZE=thread \
    -DSPMVML_ENABLE_OPENMP=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ThreadPool|ParallelCollector|Parallel\.|Obs|Serve|Ingest|Arena|Differential|Chaos|Breaker|Drain|Learn|Replay|Drift|Sell'
elif [[ "${1:-}" == "--chaos" ]]; then
  echo "== chaos smoke (asan; scripted fault bursts + robustness tests) =="
  cmake -B build-chaos -S . "-DSPMVML_SANITIZE=address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-chaos -j "$jobs"
  ctest --test-dir build-chaos --output-on-failure -j "$jobs" \
    -R 'Chaos|Breaker|Drain'
  ./build-chaos/bench/serving_bench --chaos --smoke \
    --out build-chaos/BENCH_robustness.json
elif [[ "${1:-}" == "--simd-off" ]]; then
  echo "== scalar-fallback pass (SIMD tiers compiled out) =="
  run_suite build-simd-off -DSPMVML_FORCE_SCALAR=ON
  ./build-simd-off/bench/spmv_kernels --smoke --out build-simd-off/BENCH_spmv.json
else
  echo "== tier-1 verify =="
  # Latency and deadline math must use the monotonic clock; system_clock
  # jumps on NTP sync and breaks both (audited clean — keep it that way).
  if grep -rn 'system_clock' src bench tools examples --include='*.cpp' \
      --include='*.hpp'; then
    echo "error: std::chrono::system_clock found; use steady_clock" >&2
    exit 1
  fi
  run_suite build
  echo "== sidecar self-test (binary CSR round-trip, bitwise) =="
  ./build/tools/spmvml sidecar --self-test
  echo "== serving smoke (BENCH_serving.json schema + contract check) =="
  ./build/bench/serving_bench --smoke --out build/BENCH_serving.json
  echo "== spmv smoke (BENCH_spmv.json bitwise contract check) =="
  ./build/bench/spmv_kernels --smoke --out build/BENCH_spmv.json
fi

echo "OK"
