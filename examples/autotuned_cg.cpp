// Autotuned conjugate-gradient solver: the motivating application for
// format selection. CG performs one SpMV per iteration, so picking the
// right storage format up front pays off across hundreds of iterations.
//
// Solves a 2D Poisson problem (5-point stencil) with plain CSR and with
// the ML-selected format, and reports the simulated per-iteration GPU
// time for both (CPU wall time drives the actual solve).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "core/format_selector.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

/// Unpreconditioned CG on SPD matrix A; returns iterations used.
int conjugate_gradient(const AnyMatrix<double>& a,
                       std::span<const double> b, std::vector<double>& x,
                       int max_iters, double tol) {
  const std::size_t n = b.size();
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> p = r;
  std::vector<double> ap(n);
  double rr = 0.0;
  for (double v : r) rr += v * v;
  const double stop = tol * tol * rr;

  for (int iter = 0; iter < max_iters; ++iter) {
    a.spmv(p, ap);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    const double alpha = rr / pap;
    double rr_next = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rr_next += r[i] * r[i];
    }
    if (rr_next < stop) return iter + 1;
    const double beta = rr_next / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
  }
  return max_iters;
}

}  // namespace

int main() {
  // 2D Poisson: -u'' = f on a 300x300 grid, 5-point stencil (SPD after
  // sign flip: 4 on the diagonal, -1 neighbours).
  const index_t grid = 300;
  const index_t n = grid * grid;
  std::vector<Triplet<double>> entries;
  for (index_t yy = 0; yy < grid; ++yy) {
    for (index_t xx = 0; xx < grid; ++xx) {
      const index_t row = yy * grid + xx;
      entries.push_back({row, row, 4.0});
      if (xx > 0) entries.push_back({row, row - 1, -1.0});
      if (xx + 1 < grid) entries.push_back({row, row + 1, -1.0});
      if (yy > 0) entries.push_back({row, row - grid, -1.0});
      if (yy + 1 < grid) entries.push_back({row, row + grid, -1.0});
    }
  }
  const auto matrix = Csr<double>::from_triplets(n, n, std::move(entries));
  std::printf("Poisson system: %lld unknowns, %lld nonzeros\n",
              static_cast<long long>(n), static_cast<long long>(matrix.nnz()));

  // Train the selector on a small corpus (P100 double).
  std::printf("training selector...\n");
  const auto corpus = collect_corpus(make_small_plan(120, 2018));
  FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                          kAllFormats, /*fast=*/true);
  selector.fit(corpus, 1, Precision::kDouble);
  const Format chosen = selector.select(matrix);
  std::printf("selected format: %s\n\n", format_name(chosen));

  const std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
  const auto summary = summarize(matrix);

  for (Format f : {Format::kCsr, chosen}) {
    const auto a = AnyMatrix<double>::build(f, matrix);
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    WallTimer timer;
    const int iters = conjugate_gradient(a, b, x, 2000, 1e-8);
    const double wall = timer.seconds();
    const double sim_spmv = oracle.measure(summary, f, 7).seconds;
    std::printf(
        "%-9s: CG converged in %4d iterations, %.2fs CPU wall;\n"
        "           simulated P100 SpMV %.1f us/iter -> %.1f ms GPU solve\n",
        format_name(f), iters, wall, sim_spmv * 1e6,
        sim_spmv * iters * 1e3);
    if (f == chosen && chosen == Format::kCsr) break;  // same format twice
  }

  std::printf(
      "\nThe selected format's simulated per-iteration time should be at\n"
      "least as good as baseline CSR on this regular stencil system.\n");
  return 0;
}
