// Deployment workflow: train once, serialise the selector to disk, then
// reload it in a "production" phase and select formats with no training
// cost — the usage mode the paper's conclusion pitches for edge devices.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/timer.hpp"
#include "core/format_selector.hpp"

using namespace spmvml;

int main() {
  const char* model_path = "spmvml_selector.model";

  // ---- offline: train and ship -------------------------------------
  {
    std::printf("[offline] collecting corpus and training XGBoost...\n");
    WallTimer timer;
    const auto corpus = collect_corpus(make_small_plan(250, 2018));
    FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                            kAllFormats);
    selector.fit(corpus, /*arch=*/1, Precision::kDouble);
    std::ofstream out(model_path);
    selector.save(out);
    std::printf("[offline] trained + saved in %.1fs -> %s\n", timer.seconds(),
                model_path);
  }

  // ---- online: load and select ------------------------------------
  {
    std::ifstream in(model_path);
    WallTimer load_timer;
    const FormatSelector selector = FormatSelector::load_selector(in);
    std::printf("[online] model loaded in %.3fs\n", load_timer.seconds());

    for (auto [family, name] :
         {std::pair{MatrixFamily::kBanded, "FEM system"},
          {MatrixFamily::kPowerLaw, "web graph"},
          {MatrixFamily::kUniformRandom, "unstructured"}}) {
      GenSpec spec;
      spec.family = family;
      spec.rows = 80'000;
      spec.cols = 80'000;
      spec.row_mu = 12;
      spec.seed = 11;
      const auto matrix = generate(spec);
      WallTimer select_timer;
      const Format chosen = selector.select(matrix);
      std::printf(
          "[online] %-12s (%lld nnz): %-9s selected in %.1f ms "
          "(features + inference)\n",
          name, static_cast<long long>(matrix.nnz()), format_name(chosen),
          select_timer.millis());
    }
  }
  std::remove("spmvml_selector.model");
  return 0;
}
