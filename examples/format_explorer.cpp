// Format explorer: inspect any matrix — from a Matrix Market file or a
// named synthetic family — and see its features, the simulated per-format
// GFLOPS on both testbed GPUs, and what the trained selector would pick.
//
// Usage:
//   format_explorer path/to/matrix.mtx
//   format_explorer <banded|stencil|uniform|powerlaw|block|geom> [rows] [mu]
//   format_explorer            (defaults to powerlaw 100000 12)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/format_selector.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/mmio.hpp"
#include "synth/generators.hpp"

using namespace spmvml;

namespace {

Csr<double> load_matrix(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]).ends_with(".mtx"))
    return read_matrix_market(argv[1]);
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 100'000;
  spec.row_mu = 12.0;
  spec.seed = 7;
  if (argc >= 2) {
    const std::string name = argv[1];
    for (int f = 0; f < kNumFamilies; ++f)
      if (name == family_name(static_cast<MatrixFamily>(f)))
        spec.family = static_cast<MatrixFamily>(f);
  }
  if (argc >= 3) spec.rows = std::atoll(argv[2]);
  if (argc >= 4) spec.row_mu = std::atof(argv[3]);
  spec.cols = spec.rows;
  std::printf("generated: %s\n", describe(spec).c_str());
  return generate(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const auto matrix = load_matrix(argc, argv);
  const auto features = extract_features(matrix);
  const auto summary = summarize(matrix);

  std::printf("\n-- structure ------------------------------------------\n");
  for (int id = 0; id < kNumFeatures; ++id)
    std::printf("  %-11s = %.4g\n", feature_name(id), features[id]);
  std::printf("  %-11s = %.3f (not an ML feature)\n", "ell_padding",
              summary.ell_padding_ratio());
  std::printf("  %-11s = %.3f (not an ML feature)\n", "band_frac",
              summary.band_fraction);

  std::printf("\n-- simulated GFLOPS (double precision) ----------------\n");
  std::printf("  %-10s %10s %10s\n", "format", "K80c", "P100");
  for (Format f : kAllFormats) {
    double gflops[2];
    for (int arch = 0; arch < 2; ++arch) {
      const MeasurementOracle oracle(
          arch == 0 ? tesla_k40c() : tesla_p100(), Precision::kDouble);
      gflops[arch] = oracle.measure(summary, f, 1).gflops;
    }
    std::printf("  %-10s %10.1f %10.1f\n", format_name(f), gflops[0],
                gflops[1]);
  }

  std::printf("\n-- trained selector -----------------------------------\n");
  std::printf("training on a 150-matrix corpus...\n");
  const auto corpus = collect_corpus(make_small_plan(150, 2018));
  for (int arch = 0; arch < 2; ++arch) {
    FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                            kAllFormats, /*fast=*/true);
    selector.fit(corpus, arch, Precision::kDouble);
    std::printf("  recommended on %s: %s\n", arch == 0 ? "K80c" : "P100",
                format_name(selector.select(features)));
  }
  return 0;
}
