// Quickstart: the five-minute tour of the spmvml public API.
//
//  1. build a sparse matrix (from triplets — read_matrix_market works the
//     same way for .mtx files),
//  2. extract the paper's 17 structural features,
//  3. train a format selector on a small labeled corpus,
//  4. let it pick a storage format for the unseen matrix,
//  5. convert and run SpMV in the chosen format.
#include <cstdio>
#include <vector>

#include "core/format_selector.hpp"
#include "sparse/spmv.hpp"

using namespace spmvml;

int main() {
  // 1. A 1000x1000 tridiagonal system (or read_matrix_market("file.mtx")).
  std::vector<Triplet<double>> entries;
  const index_t n = 1000;
  for (index_t i = 0; i < n; ++i) {
    entries.push_back({i, i, 2.0});
    if (i > 0) entries.push_back({i, i - 1, -1.0});
    if (i + 1 < n) entries.push_back({i, i + 1, -1.0});
  }
  const auto matrix = Csr<double>::from_triplets(n, n, std::move(entries));
  std::printf("matrix: %lld x %lld, %lld nonzeros\n",
              static_cast<long long>(matrix.rows()),
              static_cast<long long>(matrix.cols()),
              static_cast<long long>(matrix.nnz()));

  // 2. The 17 features of Table II.
  const FeatureVector features = extract_features(matrix);
  std::printf("features: nnz_mu=%.2f nnz_sigma=%.2f chunks=%.0f\n",
              features[kNnzMu], features[kNnzSigma], features[kNnzbTot]);

  // 3. Train a selector. Real deployments train once on a large corpus
  //    and ship the model; here a small corpus keeps the example quick.
  std::printf("training format selector on a 120-matrix corpus...\n");
  const auto corpus = collect_corpus(make_small_plan(120, 2018));
  FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                          kAllFormats, /*fast=*/true);
  selector.fit(corpus, /*arch=*/1, Precision::kDouble);  // P100, double

  // 4. Pick the format for our (unseen) matrix.
  const Format chosen = selector.select(features);
  std::printf("selected format: %s\n", format_name(chosen));

  // 5. Convert and multiply.
  const auto a = AnyMatrix<double>::build(chosen, matrix);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  a.spmv(x, y);
  std::printf("y[0]=%.1f y[%lld]=%.1f (interior rows sum to 0)\n", y[0],
              static_cast<long long>(n / 2), y[static_cast<std::size_t>(n / 2)]);
  std::printf("device footprint in %s: %lld bytes\n", format_name(chosen),
              static_cast<long long>(a.bytes()));
  return 0;
}
