// Capacity planner: the paper's §VIII pitch — "prediction RME is ~10%
// which is highly attractive for capacity planning purposes".
//
// Trains per-format performance models, then for a batch of incoming
// workload matrices predicts SpMV time per format on BOTH testbed GPUs
// without running anything, and recommends where to place each job.
#include <cstdio>
#include <vector>

#include "core/perf_model.hpp"
#include "ml/metrics.hpp"

using namespace spmvml;

int main() {
  std::printf("collecting training corpus (300 matrices)...\n");
  const auto corpus = collect_corpus(make_small_plan(300, 2018));

  // One per-format model per GPU (double precision).
  std::vector<PerfModel> models;
  for (int arch = 0; arch < kNumArchs; ++arch) {
    models.emplace_back(RegressorKind::kXgboost, FeatureSet::kSet12,
                        kAllFormats, /*fast=*/true);
    models.back().fit(corpus, arch, Precision::kDouble);
  }
  const char* gpu_name[2] = {"K80c", "P100"};

  // Incoming workload: matrices the models never saw.
  std::printf("\nincoming workload (unseen matrices):\n");
  const auto workload = collect_corpus(make_small_plan(12, 777));

  std::printf(
      "%-3s %10s %8s | %-22s | %-22s | placement\n", "job", "nnz", "mu",
      "K80c best (pred ms)", "P100 best (pred ms)");
  double err_sum = 0.0;
  int err_count = 0;
  for (std::size_t j = 0; j < workload.size(); ++j) {
    const auto& rec = workload.records[j];
    double best_time[2];
    Format best_fmt[2];
    for (int arch = 0; arch < kNumArchs; ++arch) {
      const auto pred = models[static_cast<std::size_t>(arch)].predict_all(rec.features);
      std::size_t best = 0;
      for (std::size_t k = 1; k < pred.size(); ++k)
        if (pred[k] < pred[best]) best = k;
      best_time[arch] = pred[best];
      best_fmt[arch] = kAllFormats[best];
      // Track prediction error against the oracle's measured time.
      const double measured =
          rec.time(arch, Precision::kDouble, best_fmt[arch]);
      err_sum += std::abs(pred[best] - measured) / measured;
      ++err_count;
    }
    char k80[64], p100[64];
    std::snprintf(k80, sizeof(k80), "%-9s %8.3f",
                  format_name(best_fmt[0]), best_time[0] * 1e3);
    std::snprintf(p100, sizeof(p100), "%-9s %8.3f",
                  format_name(best_fmt[1]), best_time[1] * 1e3);
    std::printf("%-3zu %10.0f %8.1f | %-22s | %-22s | %s\n", j, rec.nnz,
                rec.features[kNnzMu], k80, p100,
                gpu_name[best_time[1] < best_time[0] ? 1 : 0]);
  }
  std::printf("\nmean relative prediction error on placements: %.1f%%\n",
              100.0 * err_sum / err_count);
  std::printf("(the paper reports ~10%% RME as sufficient for planning)\n");
  return 0;
}
