// The paper's 17 sparse-matrix features (Table II), named as in Figs. 4/5.
//
// "Block" below means a maximal run of consecutive nonzero columns within
// one row (a contiguous nnz chunk): nnzb_* are statistics of the number of
// chunks per row, snzb_* of chunk sizes. Set 1 is O(1) given CSR metadata;
// sets 2 and 3 need the one O(nnz) scan this module performs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvml {

class ThreadPool;  // forward declaration; defined in common/thread_pool.hpp

inline constexpr int kNumFeatures = 17;

/// Index of each feature inside FeatureVector::values.
enum FeatureId : int {
  kNRows = 0,
  kNCols = 1,
  kNnzTot = 2,
  kNnzMu = 3,
  kNnzFrac = 4,  // density (percent)
  kNnzMax = 5,
  kNnzMin = 6,
  kNnzSigma = 7,
  kNnzbTot = 8,    // total number of contiguous chunks
  kNnzbMu = 9,     // mean chunks per row
  kNnzbSigma = 10,
  kNnzbMax = 11,
  kNnzbMin = 12,
  kSnzbMu = 13,    // mean chunk size
  kSnzbSigma = 14,
  kSnzbMax = 15,
  kSnzbMin = 16,
};

/// The three nested feature sets of Table II (by feature index).
enum class FeatureSet : int {
  kSet1 = 0,       // 5 O(1) features
  kSet12 = 1,      // + set 2 = 11 features (Sedaghati et al.)
  kSet123 = 2,     // all 17
  kImportant = 3,  // top-7 by XGBoost importance ("imp." features, Table X)
};

inline constexpr int kNumFeatureSets = 4;

const char* feature_name(int id);
const char* feature_set_name(FeatureSet set);

/// Feature indices belonging to a set. For kImportant, returns the paper's
/// top-7 (n_rows, nnz_max, nnz_tot, nnz_sigma, nnz_frac, nnzb_tot, nnz_mu)
/// unless a custom ranking is supplied to select_features().
std::vector<int> feature_set_indices(FeatureSet set);

struct FeatureVector {
  std::array<double, kNumFeatures> values{};

  double operator[](int id) const { return values[static_cast<std::size_t>(id)]; }

  /// Project onto a feature set (order = ascending feature id).
  std::vector<double> select(FeatureSet set) const;
  std::vector<double> select(std::span<const int> indices) const;
};

/// One O(nnz) scan over the CSR structure.
FeatureVector extract_features(const Csr<double>& m);

/// Blocked-parallel extraction on a shared thread pool: the fixed
/// 4096-row block partition is scanned cooperatively (pool workers help,
/// the caller participates, so a saturated pool degrades to the serial
/// scan instead of deadlocking) and block accumulators merge in row
/// order via the exact StreamingStats::merge — the result is
/// byte-identical to extract_features(m) at any pool size, including
/// when the caller is itself a pool worker (the serving batch path).
/// pool == nullptr degrades to extract_features(m).
FeatureVector extract_features(const Csr<double>& m, ThreadPool* pool);

/// Approximate extraction from a random row sample (O(nnz * fraction)):
/// set-1 features stay exact (they are O(1) from CSR metadata); set-2/3
/// statistics are estimated from ~`row_fraction` of the rows and count
/// totals are rescaled. Deterministic in `seed`. fraction >= 1 degrades
/// to the exact scan. The accuracy/cost trade-off is the deployment
/// concern behind the paper's O(1)-vs-O(nnz) feature-set split (§IV-A).
FeatureVector extract_features_sampled(const Csr<double>& m,
                                       double row_fraction,
                                       std::uint64_t seed = 1);

}  // namespace spmvml
