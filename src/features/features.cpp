#include "features/features.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace spmvml {

namespace {

/// The three structure accumulators every feature in sets 2/3 derives
/// from. Blocks merge in row order, so the merged result is a pure
/// function of the row partition — never of the thread count.
struct StructureStats {
  StreamingStats row_len;         // nonzeros per row
  StreamingStats chunks_per_row;  // contiguous column runs per row
  StreamingStats chunk_size;      // length of each run

  void merge(const StructureStats& other) {
    row_len.merge(other.row_len);
    chunks_per_row.merge(other.chunks_per_row);
    chunk_size.merge(other.chunk_size);
  }
};

/// Accumulate one CSR row: its length plus the contiguous-run structure
/// of its column indices.
inline void scan_row(const Csr<double>& m, index_t r, StructureStats& s) {
  const index_t begin = m.row_ptr()[r], end = m.row_ptr()[r + 1];
  s.row_len.add(static_cast<double>(end - begin));
  if (begin == end) {
    s.chunks_per_row.add(0.0);
    return;
  }
  index_t row_chunks = 0;
  index_t run = 1;
  for (index_t p = begin + 1; p < end; ++p) {
    if (m.col_idx()[p] == m.col_idx()[p - 1] + 1) {
      ++run;
    } else {
      s.chunk_size.add(static_cast<double>(run));
      ++row_chunks;
      run = 1;
    }
  }
  s.chunk_size.add(static_cast<double>(run));
  ++row_chunks;
  s.chunks_per_row.add(static_cast<double>(row_chunks));
}

/// Rows per extraction block. Fixed (not derived from the thread count)
/// so the block partition — and therefore every merged statistic — is
/// identical whether the blocks run serially or in parallel.
constexpr index_t kFeatureRowBlock = 4096;

/// Scan all rows block-by-block, in parallel when the matrix is big
/// enough, merging block accumulators in row order.
StructureStats scan_structure(const Csr<double>& m) {
  const index_t rows = m.rows();
  StructureStats total;
  if (rows <= kFeatureRowBlock) {
    for (index_t r = 0; r < rows; ++r) scan_row(m, r, total);
    return total;
  }
  const index_t blocks = (rows + kFeatureRowBlock - 1) / kFeatureRowBlock;
  std::vector<StructureStats> block_stats(static_cast<std::size_t>(blocks));
  parallel_for(blocks, /*min_parallel_n=*/2, [&](std::int64_t b) {
    auto& s = block_stats[static_cast<std::size_t>(b)];
    const index_t r0 = static_cast<index_t>(b) * kFeatureRowBlock;
    const index_t r1 = std::min(rows, r0 + kFeatureRowBlock);
    for (index_t r = r0; r < r1; ++r) scan_row(m, r, s);
  });
  for (const auto& s : block_stats) total.merge(s);
  return total;
}

/// The same fixed block partition, scanned cooperatively on a shared
/// ThreadPool. Blocks are claimed from an atomic cursor by helper tasks
/// AND by the calling thread, so the scan completes even when every pool
/// worker is busy (or when the caller IS a pool worker — the serving
/// batch path) — there is no wait-for-the-pool deadlock, only a graceful
/// degradation to the caller scanning alone. Accumulators merge in block
/// order, so the result is byte-identical to the serial scan.
StructureStats scan_structure_pool(const Csr<double>& m, ThreadPool& pool) {
  const index_t rows = m.rows();
  StructureStats total;
  if (rows <= kFeatureRowBlock) {
    for (index_t r = 0; r < rows; ++r) scan_row(m, r, total);
    return total;
  }
  const index_t blocks = (rows + kFeatureRowBlock - 1) / kFeatureRowBlock;

  struct SharedScan {
    std::vector<StructureStats> block_stats;
    std::atomic<index_t> next{0};
    std::atomic<index_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedScan>();
  state->block_stats.resize(static_cast<std::size_t>(blocks));

  const auto scan_blocks = [state, &m, blocks] {
    index_t completed = 0;
    for (;;) {
      const index_t b = state->next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) break;
      auto& s = state->block_stats[static_cast<std::size_t>(b)];
      const index_t r0 = b * kFeatureRowBlock;
      const index_t r1 = std::min(m.rows(), r0 + kFeatureRowBlock);
      for (index_t r = r0; r < r1; ++r) scan_row(m, r, s);
      ++completed;
    }
    if (completed > 0 &&
        state->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed ==
            blocks) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  };

  // Helpers are capped below the block count: the caller always claims
  // at least one block, and a helper that wakes up after the cursor ran
  // out exits without touching the matrix.
  const index_t helpers =
      std::min<index_t>(pool.size(), blocks - 1);
  for (index_t h = 0; h < helpers; ++h) pool.submit(scan_blocks);
  scan_blocks();  // caller participates
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == blocks;
    });
  }
  for (const auto& s : state->block_stats) total.merge(s);
  return total;
}

}  // namespace

const char* feature_name(int id) {
  static constexpr const char* kNames[kNumFeatures] = {
      "n_rows",     "n_cols",     "nnz_tot",   "nnz_mu",    "nnz_frac",
      "nnz_max",    "nnz_min",    "nnz_sigma", "nnzb_tot",  "nnzb_mu",
      "nnzb_sigma", "nnzb_max",   "nnzb_min",  "snzb_mu",   "snzb_sigma",
      "snzb_max",   "snzb_min"};
  SPMVML_ENSURE(id >= 0 && id < kNumFeatures, "feature id out of range");
  return kNames[id];
}

const char* feature_set_name(FeatureSet set) {
  switch (set) {
    case FeatureSet::kSet1: return "feature set 1";
    case FeatureSet::kSet12: return "feature sets 1+2";
    case FeatureSet::kSet123: return "feature sets 1+2+3";
    case FeatureSet::kImportant: return "imp. features";
  }
  SPMVML_ENSURE(false, "unreachable: invalid FeatureSet");
  return "";
}

std::vector<int> feature_set_indices(FeatureSet set) {
  switch (set) {
    case FeatureSet::kSet1:
      return {kNRows, kNCols, kNnzTot, kNnzMu, kNnzFrac};
    case FeatureSet::kSet12:
      return {kNRows, kNCols, kNnzTot, kNnzMu, kNnzFrac, kNnzMax, kNnzSigma,
              kNnzbMu, kNnzbSigma, kSnzbMu, kSnzbSigma};
    case FeatureSet::kSet123: {
      std::vector<int> all(kNumFeatures);
      for (int i = 0; i < kNumFeatures; ++i) all[static_cast<std::size_t>(i)] = i;
      return all;
    }
    case FeatureSet::kImportant:
      // The intersection Figs. 4/5 report as stable across machines and
      // precisions: n_rows, nnz_max, nnz_tot, nnz_sigma, nnz_frac,
      // nnzb_tot, nnz_mu.
      return {kNRows, kNnzTot, kNnzMu, kNnzFrac, kNnzMax, kNnzSigma, kNnzbTot};
  }
  SPMVML_ENSURE(false, "unreachable: invalid FeatureSet");
  return {};
}

std::vector<double> FeatureVector::select(FeatureSet set) const {
  const auto idx = feature_set_indices(set);
  return select(idx);
}

std::vector<double> FeatureVector::select(std::span<const int> indices) const {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int id : indices) {
    SPMVML_ENSURE(id >= 0 && id < kNumFeatures, "feature id out of range");
    out.push_back(values[static_cast<std::size_t>(id)]);
  }
  return out;
}

namespace {

/// Assemble the 17-feature vector from the structure scan; shared by the
/// serial/OpenMP and thread-pool extraction routes so both are the same
/// arithmetic on the same accumulators.
FeatureVector assemble_features(const Csr<double>& m,
                                const StructureStats& scan) {
  FeatureVector f;
  const index_t rows = m.rows(), cols = m.cols(), nnz = m.nnz();
  f.values[kNRows] = static_cast<double>(rows);
  f.values[kNCols] = static_cast<double>(cols);
  f.values[kNnzTot] = static_cast<double>(nnz);
  f.values[kNnzMu] =
      rows > 0 ? static_cast<double>(nnz) / static_cast<double>(rows) : 0.0;
  f.values[kNnzFrac] =
      rows > 0 && cols > 0
          ? 100.0 * static_cast<double>(nnz) /
                (static_cast<double>(rows) * static_cast<double>(cols))
          : 0.0;

  const StreamingStats& row_len = scan.row_len;
  const StreamingStats& chunks_per_row = scan.chunks_per_row;
  const StreamingStats& chunk_size = scan.chunk_size;

  f.values[kNnzMax] = row_len.max();
  f.values[kNnzMin] = row_len.min();
  f.values[kNnzSigma] = row_len.stddev();
  f.values[kNnzbTot] = chunk_size.count() > 0
                           ? static_cast<double>(chunk_size.count())
                           : 0.0;
  f.values[kNnzbMu] = chunks_per_row.mean();
  f.values[kNnzbSigma] = chunks_per_row.stddev();
  f.values[kNnzbMax] = chunks_per_row.max();
  f.values[kNnzbMin] = chunks_per_row.min();
  f.values[kSnzbMu] = chunk_size.mean();
  f.values[kSnzbSigma] = chunk_size.stddev();
  f.values[kSnzbMax] = chunk_size.max();
  f.values[kSnzbMin] = chunk_size.min();
  return f;
}

void count_extraction(const Csr<double>& m, obs::TraceSpan& span) {
  span.arg("rows", static_cast<std::int64_t>(m.rows()))
      .arg("nnz", static_cast<std::int64_t>(m.nnz()));
  static obs::Counter extracted =
      obs::MetricsRegistry::global().counter("features.extracted");
  extracted.inc();
}

}  // namespace

FeatureVector extract_features(const Csr<double>& m) {
  obs::TraceSpan span("features.extract");
  count_extraction(m, span);
  return assemble_features(m, scan_structure(m));
}

FeatureVector extract_features(const Csr<double>& m, ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) return extract_features(m);
  obs::TraceSpan span("features.extract_pool");
  count_extraction(m, span);
  return assemble_features(m, scan_structure_pool(m, *pool));
}

FeatureVector extract_features_sampled(const Csr<double>& m,
                                       double row_fraction,
                                       std::uint64_t seed) {
  SPMVML_ENSURE(row_fraction > 0.0, "row_fraction must be positive");
  if (row_fraction >= 1.0 || m.rows() == 0) return extract_features(m);

  const auto sample_count = std::max<index_t>(
      1, static_cast<index_t>(static_cast<double>(m.rows()) * row_fraction));

  FeatureVector f;
  const index_t rows = m.rows(), cols = m.cols(), nnz = m.nnz();
  // Set 1 is O(1) from CSR metadata — always exact.
  f.values[kNRows] = static_cast<double>(rows);
  f.values[kNCols] = static_cast<double>(cols);
  f.values[kNnzTot] = static_cast<double>(nnz);
  f.values[kNnzMu] = static_cast<double>(nnz) / static_cast<double>(rows);
  f.values[kNnzFrac] =
      cols > 0 ? 100.0 * static_cast<double>(nnz) /
                     (static_cast<double>(rows) * static_cast<double>(cols))
               : 0.0;

  // Sets 2/3: estimate from a random row sample (inherently serial — the
  // sampled row sequence is part of the deterministic contract).
  Rng rng(hash_combine(seed, 0xFEA7ULL));
  StructureStats scan;
  for (index_t s = 0; s < sample_count; ++s)
    scan_row(m, rng.uniform_int(0, rows - 1), scan);
  const StreamingStats& row_len = scan.row_len;
  const StreamingStats& chunks_per_row = scan.chunks_per_row;
  const StreamingStats& chunk_size = scan.chunk_size;

  f.values[kNnzMax] = row_len.max();  // biased low; the sample's max
  f.values[kNnzMin] = row_len.min();
  f.values[kNnzSigma] = row_len.stddev();
  // Totals rescale by the inverse sampling rate.
  const double scale =
      static_cast<double>(rows) / static_cast<double>(sample_count);
  f.values[kNnzbTot] =
      chunks_per_row.count() > 0 ? chunks_per_row.sum() * scale : 0.0;
  f.values[kNnzbMu] = chunks_per_row.mean();
  f.values[kNnzbSigma] = chunks_per_row.stddev();
  f.values[kNnzbMax] = chunks_per_row.max();
  f.values[kNnzbMin] = chunks_per_row.min();
  f.values[kSnzbMu] = chunk_size.mean();
  f.values[kSnzbSigma] = chunk_size.stddev();
  f.values[kSnzbMax] = chunk_size.max();
  f.values[kSnzbMin] = chunk_size.min();
  return f;
}

}  // namespace spmvml
