// Fixed-size image representation of a sparse matrix (Zhao et al.,
// PPoPP'18 — the CNN-based format-selection approach the paper compares
// against in §VII). The matrix is divided into size x size cells; each
// pixel is the log-scaled density of its cell, normalised to [0, 1].
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace spmvml {

/// size*size row-major pixels in [0, 1]. O(nnz).
std::vector<float> density_image(const Csr<double>& m, int size = 32);

}  // namespace spmvml
