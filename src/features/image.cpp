#include "features/image.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spmvml {

std::vector<float> density_image(const Csr<double>& m, int size) {
  SPMVML_ENSURE(size > 0, "image size must be positive");
  const auto cells = static_cast<std::size_t>(size) *
                     static_cast<std::size_t>(size);
  std::vector<float> counts(cells, 0.0f);
  if (m.rows() == 0 || m.cols() == 0) return counts;

  const double row_scale = static_cast<double>(size) /
                           static_cast<double>(m.rows());
  const double col_scale = static_cast<double>(size) /
                           static_cast<double>(m.cols());
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto pr = std::min<index_t>(
        size - 1, static_cast<index_t>(static_cast<double>(r) * row_scale));
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      const auto pc = std::min<index_t>(
          size - 1, static_cast<index_t>(
                        static_cast<double>(m.col_idx()[p]) * col_scale));
      counts[static_cast<std::size_t>(pr) * static_cast<std::size_t>(size) +
             static_cast<std::size_t>(pc)] += 1.0f;
    }
  }
  // Log scale then normalise: cell populations span many decades.
  float max_v = 0.0f;
  for (float& v : counts) {
    v = std::log1p(v);
    max_v = std::max(max_v, v);
  }
  if (max_v > 0.0f)
    for (float& v : counts) v /= max_v;
  return counts;
}

}  // namespace spmvml
