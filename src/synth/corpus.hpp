// SuiteSparse-like corpus plan (stand-in for the paper's 2300 matrices).
//
// The plan reproduces the *population statistics* of the paper's Table I:
// the same eight nnz buckets with the same matrix counts (scaled by
// SPMVML_CORPUS_SCALE) and per-bucket average nnz-per-row targets, drawn
// from a fixed mixture of structure families. nnz ranges of the top three
// buckets are compressed (see DESIGN.md §2) so the corpus streams through
// a single CPU core; bucket identity and relative ordering are preserved.
//
// A plan is a list of GenSpecs — matrices are *generated on demand* and
// never all held in memory.
#pragma once

#include <string>
#include <vector>

#include "synth/generators.hpp"

namespace spmvml {

/// One Table-I row: the paper's published bucket statistics plus our
/// scaled nnz sampling range.
struct BucketSpec {
  std::string label;        // e.g. "100K~500K"
  index_t nnz_lo = 0;       // our sampled-nnz range (scaled)
  index_t nnz_hi = 0;
  int paper_count = 0;      // number of matrices in the paper's bucket
  double paper_avg_rows = 0.0;
  double paper_avg_cols = 0.0;
  double paper_avg_density = 0.0;  // percent
  double paper_nnz_mu = 0.0;
  double paper_nnz_sigma = 0.0;
  /// nnz-per-row target used when sampling. Equals paper_nnz_mu for
  /// uncompressed buckets; compressed buckets scale it by
  /// sqrt(scaled_nnz / paper_nnz) so density stays in the paper's regime.
  double sampled_mu = 0.0;
};

/// The eight buckets of the paper's Table I.
std::vector<BucketSpec> paper_buckets();

/// A fully-specified corpus: matrix i is generate(specs[i]) and belongs to
/// Table-I bucket bucket_of[i].
struct CorpusPlan {
  std::vector<GenSpec> specs;
  std::vector<int> bucket_of;

  std::size_t size() const { return specs.size(); }
};

/// Build the full corpus plan. `scale` multiplies per-bucket counts
/// (scale=1 gives the paper's 2299 matrices); `seed` drives every random
/// choice, so identical (scale, seed) pairs give identical corpora.
CorpusPlan make_corpus_plan(double scale, std::uint64_t seed);

/// A small deterministic plan (n matrices across all families/buckets) for
/// unit tests and smoke benches.
CorpusPlan make_small_plan(int n, std::uint64_t seed);

/// Content hash over every GenSpec and bucket assignment in the plan.
/// Two plans with the same size but different scale/seed/bucket mix get
/// different fingerprints — label caches carry this so a stale cache from
/// a same-sized but different plan is never silently reused.
std::uint64_t plan_fingerprint(const CorpusPlan& plan);

}  // namespace spmvml
