#include "synth/generators.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spmvml {
namespace {

/// Append `count` distinct sorted columns from a candidate generator into
/// `flat`, returning how many were kept after dedup/clamping.
template <typename NextCol>
index_t emit_row(std::vector<index_t>& flat, std::vector<index_t>& scratch,
                 index_t count, index_t cols, NextCol&& next_col) {
  scratch.clear();
  const index_t want = std::min(count, cols);
  // Draw in rounds, deduplicating once per round (a handful of O(k log k)
  // sorts instead of one per few draws). Rows denser than the candidate
  // distribution supports simply come out short.
  for (int round = 0; round < 4 && static_cast<index_t>(scratch.size()) < want;
       ++round) {
    const index_t need = want - static_cast<index_t>(scratch.size());
    const index_t draws = need + need / 4 + 8;
    for (index_t i = 0; i < draws; ++i) {
      index_t c = next_col();
      if (c < 0) c = 0;
      if (c >= cols) c = cols - 1;
      scratch.push_back(c);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  }
  if (static_cast<index_t>(scratch.size()) > want)
    scratch.resize(static_cast<std::size_t>(want));
  flat.insert(flat.end(), scratch.begin(), scratch.end());
  return static_cast<index_t>(scratch.size());
}

/// Sample a row length with the given mean and coefficient of variation
/// from a log-normal, clamped to [0, cap].
index_t sample_length(Rng& rng, double mu, double cv, index_t cap) {
  if (mu <= 0.0) return 0;
  const double var_ln = std::log(1.0 + cv * cv);
  const double sigma_ln = std::sqrt(var_ln);
  const double mu_ln = std::log(mu) - 0.5 * var_ln;
  const double len = std::exp(rng.normal(mu_ln, sigma_ln));
  const auto rounded = static_cast<index_t>(std::llround(len));
  return std::clamp<index_t>(rounded, 0, cap);
}

Csr<double> assemble(index_t rows, index_t cols,
                     std::vector<index_t> row_counts,
                     std::vector<index_t> flat_cols, Rng& rng) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t r = 0; r < rows; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] =
        row_ptr[static_cast<std::size_t>(r)] +
        row_counts[static_cast<std::size_t>(r)];
  std::vector<double> values(flat_cols.size());
  for (auto& v : values) v = rng.uniform(0.5, 1.5);
  return Csr<double>(rows, cols, std::move(row_ptr), std::move(flat_cols),
                     std::move(values));
}

Csr<double> gen_banded(const GenSpec& s, Rng& rng) {
  std::vector<index_t> counts(static_cast<std::size_t>(s.rows));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(
      std::llround(static_cast<double>(s.rows) * s.row_mu * 1.05)));
  std::vector<index_t> scratch;
  const double hb_f = std::max(s.band_frac * static_cast<double>(s.cols),
                               s.row_mu + 2.0);
  const auto hb = static_cast<index_t>(hb_f);
  for (index_t r = 0; r < s.rows; ++r) {
    // Bands are regular structures: bounded +-10% jitter keeps row_max
    // close to the mean (real band matrices have near-constant rows).
    const index_t len = std::clamp<index_t>(
        static_cast<index_t>(
            std::llround(s.row_mu * rng.uniform(0.9, 1.1))),
        1, s.cols);
    const index_t diag = s.cols > 1 ? r * (s.cols - 1) / std::max<index_t>(s.rows - 1, 1)
                                    : 0;
    // ~70% of the row is one contiguous run at the diagonal; the rest are
    // scattered inside the band (gives non-trivial chunk statistics).
    const index_t run = std::max<index_t>(1, (len * 7) / 10);
    index_t emitted_in_run = 0;
    counts[static_cast<std::size_t>(r)] = emit_row(
        flat, scratch, len, s.cols, [&]() -> index_t {
          if (emitted_in_run < run) {
            return diag - run / 2 + emitted_in_run++;
          }
          return diag + static_cast<index_t>(
                            std::llround(rng.normal(0.0,
                                                    static_cast<double>(hb))));
        });
  }
  return assemble(s.rows, s.cols, std::move(counts), std::move(flat), rng);
}

Csr<double> gen_stencil(const GenSpec& s, Rng& rng) {
  // Square grid; rows == cols == n*n (n from spec.rows).
  const auto n = static_cast<index_t>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(s.rows)))));
  const index_t size = n * n;
  // Pick the stencil closest to the requested row_mu.
  struct Offset { index_t dx, dy; };
  std::vector<Offset> offsets = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  if (s.row_mu > 7.0) {
    offsets.insert(offsets.end(),
                   {{1, 1}, {1, -1}, {-1, 1}, {-1, -1}});  // 9-point
  }
  if (s.row_mu > 13.0) {
    offsets.insert(offsets.end(), {{2, 0}, {-2, 0}, {0, 2}, {0, -2},
                                   {2, 1}, {-2, -1}, {1, 2}, {-1, -2}});
  }
  std::vector<index_t> counts(static_cast<std::size_t>(size));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(size) * offsets.size());
  std::vector<index_t> row_cols;
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      row_cols.clear();
      for (const auto& o : offsets) {
        const index_t nx = x + o.dx, ny = y + o.dy;
        if (nx >= 0 && nx < n && ny >= 0 && ny < n)
          row_cols.push_back(ny * n + nx);
      }
      std::sort(row_cols.begin(), row_cols.end());
      counts[static_cast<std::size_t>(y * n + x)] =
          static_cast<index_t>(row_cols.size());
      flat.insert(flat.end(), row_cols.begin(), row_cols.end());
    }
  }
  return assemble(size, size, std::move(counts), std::move(flat), rng);
}

Csr<double> gen_uniform(const GenSpec& s, Rng& rng) {
  std::vector<index_t> counts(static_cast<std::size_t>(s.rows));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(
      std::llround(static_cast<double>(s.rows) * s.row_mu * 1.05)));
  std::vector<index_t> scratch;
  for (index_t r = 0; r < s.rows; ++r) {
    const index_t len = sample_length(rng, s.row_mu, s.row_cv, s.cols);
    counts[static_cast<std::size_t>(r)] =
        emit_row(flat, scratch, len, s.cols,
                 [&]() { return rng.uniform_int(0, s.cols - 1); });
  }
  return assemble(s.rows, s.cols, std::move(counts), std::move(flat), rng);
}

Csr<double> gen_powerlaw(const GenSpec& s, Rng& rng) {
  std::vector<index_t> counts(static_cast<std::size_t>(s.rows));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(
      std::llround(static_cast<double>(s.rows) * s.row_mu * 1.1)));
  std::vector<index_t> scratch;
  // Pareto(alpha) has mean alpha/(alpha-1); rescale so E[len] ~= row_mu.
  const double scale =
      s.alpha > 1.05 ? s.row_mu * (s.alpha - 1.0) / s.alpha : s.row_mu * 0.3;
  for (index_t r = 0; r < s.rows; ++r) {
    const auto raw = static_cast<double>(rng.pareto_int(s.alpha, s.cols));
    const index_t len = std::clamp<index_t>(
        static_cast<index_t>(std::llround(raw * scale)), 1, s.cols);
    counts[static_cast<std::size_t>(r)] = emit_row(
        flat, scratch, len, s.cols, [&]() -> index_t {
          // Half hub-preferential (Zipf-like), half uniform.
          if (rng.bernoulli(0.5)) {
            const double u = rng.uniform();
            return static_cast<index_t>(
                static_cast<double>(s.cols) * u * u * u);
          }
          return rng.uniform_int(0, s.cols - 1);
        });
  }
  return assemble(s.rows, s.cols, std::move(counts), std::move(flat), rng);
}

Csr<double> gen_block(const GenSpec& s, Rng& rng) {
  const index_t bs = std::max<index_t>(2, s.block_size);
  const index_t block_cols = std::max<index_t>(1, s.cols / bs);
  const double fill = 0.8;  // density inside a selected block
  const auto blocks_per_row = std::max<index_t>(
      1, static_cast<index_t>(
             std::llround(s.row_mu / (static_cast<double>(bs) * fill))));
  std::vector<index_t> counts(static_cast<std::size_t>(s.rows));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(
      std::llround(static_cast<double>(s.rows) * s.row_mu * 1.1)));
  std::vector<index_t> scratch, picked;
  for (index_t r = 0; r < s.rows; ++r) {
    // Rows in the same block-row share their block choices via a seeded
    // draw, giving genuine block structure rather than per-row noise.
    Rng block_rng(hash_combine(s.seed, static_cast<std::uint64_t>(r / bs)));
    picked.clear();
    for (index_t b = 0; b < blocks_per_row; ++b)
      picked.push_back(block_rng.uniform_int(0, block_cols - 1));
    scratch.clear();
    for (index_t bc : picked) {
      const index_t base = bc * bs;
      for (index_t k = 0; k < bs && base + k < s.cols; ++k)
        if (rng.bernoulli(fill)) scratch.push_back(base + k);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    counts[static_cast<std::size_t>(r)] = static_cast<index_t>(scratch.size());
    flat.insert(flat.end(), scratch.begin(), scratch.end());
  }
  return assemble(s.rows, s.cols, std::move(counts), std::move(flat), rng);
}

Csr<double> gen_geom(const GenSpec& s, Rng& rng) {
  // Random geometric graph on a sqrt(R) x sqrt(R) grid embedding: each
  // vertex connects to ~row_mu spatial neighbours (2D offsets), so column
  // indices cluster at r + dx + n*dy.
  const auto n = static_cast<index_t>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(s.rows)))));
  const index_t size = n * n;
  const double radius = std::max(1.0, std::sqrt(s.row_mu / std::numbers::pi));
  std::vector<index_t> counts(static_cast<std::size_t>(size));
  std::vector<index_t> flat;
  flat.reserve(static_cast<std::size_t>(
      std::llround(static_cast<double>(size) * s.row_mu * 1.1)));
  std::vector<index_t> scratch;
  for (index_t r = 0; r < size; ++r) {
    const index_t x = r % n, y = r / n;
    const index_t len =
        std::max<index_t>(1, sample_length(rng, s.row_mu, 0.25, size));
    counts[static_cast<std::size_t>(r)] = emit_row(
        flat, scratch, len, size, [&]() -> index_t {
          const auto dx = static_cast<index_t>(
              std::llround(rng.normal(0.0, radius)));
          const auto dy = static_cast<index_t>(
              std::llround(rng.normal(0.0, radius)));
          const index_t nx = std::clamp<index_t>(x + dx, 0, n - 1);
          const index_t ny = std::clamp<index_t>(y + dy, 0, n - 1);
          return ny * n + nx;
        });
  }
  return assemble(size, size, std::move(counts), std::move(flat), rng);
}

}  // namespace

const char* family_name(MatrixFamily f) {
  switch (f) {
    case MatrixFamily::kBanded: return "banded";
    case MatrixFamily::kStencil: return "stencil";
    case MatrixFamily::kUniformRandom: return "uniform";
    case MatrixFamily::kPowerLaw: return "powerlaw";
    case MatrixFamily::kBlockRandom: return "block";
    case MatrixFamily::kGeomGraph: return "geom";
  }
  SPMVML_ENSURE(false, "unreachable: invalid MatrixFamily");
  return "";
}

Csr<double> generate(const GenSpec& spec) {
  SPMVML_ENSURE(spec.rows > 0 && spec.cols > 0, "spec needs positive dims");
  SPMVML_ENSURE(spec.row_mu >= 0.0, "negative row_mu");
  Rng rng(hash_combine(spec.seed,
                       static_cast<std::uint64_t>(spec.family) * 7919));
  switch (spec.family) {
    case MatrixFamily::kBanded: return gen_banded(spec, rng);
    case MatrixFamily::kStencil: return gen_stencil(spec, rng);
    case MatrixFamily::kUniformRandom: return gen_uniform(spec, rng);
    case MatrixFamily::kPowerLaw: return gen_powerlaw(spec, rng);
    case MatrixFamily::kBlockRandom: return gen_block(spec, rng);
    case MatrixFamily::kGeomGraph: return gen_geom(spec, rng);
  }
  SPMVML_ENSURE(false, "unreachable: invalid MatrixFamily");
  return {};
}

Csr<double> shuffle_labels(const Csr<double>& m, std::uint64_t seed) {
  SPMVML_ENSURE(m.rows() == m.cols(), "shuffle_labels needs a square matrix");
  const index_t n = m.rows();
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  Rng rng(hash_combine(seed, 0x5AFF1EULL));
  for (index_t i = n; i > 1; --i)
    std::swap(perm[static_cast<std::size_t>(i - 1)],
              perm[static_cast<std::size_t>(rng.uniform_int(0, i - 1))]);

  std::vector<Triplet<double>> entries;
  entries.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t r = 0; r < n; ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      entries.push_back({perm[static_cast<std::size_t>(r)],
                         perm[static_cast<std::size_t>(m.col_idx()[p])],
                         m.values()[p]});
  return Csr<double>::from_triplets(n, n, std::move(entries));
}

std::string describe(const GenSpec& spec) {
  std::ostringstream os;
  os << family_name(spec.family) << " rows=" << spec.rows
     << " cols=" << spec.cols << " mu=" << spec.row_mu << " cv=" << spec.row_cv
     << " seed=" << spec.seed;
  return os.str();
}

}  // namespace spmvml
