#include "synth/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spmvml {

std::vector<BucketSpec> paper_buckets() {
  // label, scaled nnz range, paper: count, avg rows, avg cols, density%,
  // nnz_mu, nnz_sigma. Top three buckets are nnz-compressed (DESIGN.md §2).
  return {
      {"0~10K", 100, 10'000, 747, 639, 759, 4.62, 7, 4.5, 7},
      {"10K~50K", 10'000, 50'000, 508, 3'590, 4'248, 1.29, 15, 18, 15},
      {"50K~100K", 50'000, 100'000, 209, 8'881, 10'974, 1.03, 34, 31, 34},
      {"100K~500K", 100'000, 500'000, 362, 24'695, 30'714, 0.69, 69, 50, 69},
      {"500K~1M", 500'000, 1'000'000, 147, 70'669, 92'925, 0.75, 155, 128, 155},
      {"1M~5M", 1'000'000, 2'000'000, 208, 173'473, 205'277, 0.61, 214, 72, 170},
      {"5M~50M", 2'000'000, 4'000'000, 109, 1'290'926, 1'302'773, 0.43, 852, 42, 360},
      {">50M", 4'000'000, 6'000'000, 9, 8'101'908, 8'101'908, 0.002, 29, 5, 25},
  };
}

namespace {

MatrixFamily sample_family(Rng& rng) {
  // Mixture approximating SuiteSparse's domain spread: FEM/structural
  // (banded+stencil) ~35%, unstructured ~25%, graphs/networks ~30%,
  // multi-physics blocks ~10%.
  const double u = rng.uniform();
  if (u < 0.20) return MatrixFamily::kBanded;
  if (u < 0.35) return MatrixFamily::kStencil;
  if (u < 0.60) return MatrixFamily::kUniformRandom;
  if (u < 0.80) return MatrixFamily::kPowerLaw;
  if (u < 0.90) return MatrixFamily::kBlockRandom;
  return MatrixFamily::kGeomGraph;
}

GenSpec sample_spec(const BucketSpec& bucket, Rng& rng, std::uint64_t seed) {
  GenSpec spec;
  spec.family = sample_family(rng);
  spec.seed = seed;

  // Target nnz log-uniform inside the bucket.
  const double log_lo = std::log(static_cast<double>(bucket.nnz_lo));
  const double log_hi = std::log(static_cast<double>(bucket.nnz_hi));
  const double nnz = std::exp(rng.uniform(log_lo, log_hi));

  // Row mean spread around the bucket's (possibly nnz-compressed) target;
  // wide enough that buckets overlap in mu the way SuiteSparse does. The
  // sqrt(nnz)/5 cap keeps density in the sparse regime (paper Table I).
  double mu = bucket.sampled_mu * std::exp(rng.normal(0.0, 0.8));
  mu = std::clamp(mu, 1.5, std::max(3.0, std::sqrt(nnz) / 5.0));
  spec.row_mu = mu;

  const auto rows =
      std::max<index_t>(8, static_cast<index_t>(std::llround(nnz / mu)));
  spec.rows = rows;
  spec.cols = std::max<index_t>(
      8, static_cast<index_t>(std::llround(
             static_cast<double>(rows) * rng.uniform(0.9, 1.35))));

  // Row-length variance: the knob that separates ELL-friendly from
  // merge/CSR5-friendly matrices. Log-uniform over [0.05, 3].
  spec.row_cv = std::exp(rng.uniform(std::log(0.05), std::log(3.0)));
  spec.alpha = rng.uniform(1.3, 2.6);
  spec.band_frac = std::exp(rng.uniform(std::log(0.002), std::log(0.05)));
  spec.block_size = static_cast<index_t>(rng.uniform_int(4, 16));
  return spec;
}

}  // namespace

CorpusPlan make_corpus_plan(double scale, std::uint64_t seed) {
  SPMVML_ENSURE(scale > 0.0, "corpus scale must be positive");
  CorpusPlan plan;
  const auto buckets = paper_buckets();
  Rng rng(hash_combine(seed, 0xC0123456789ABCDEULL));
  std::uint64_t matrix_id = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const int count = std::max(
        1, static_cast<int>(std::llround(buckets[b].paper_count * scale)));
    for (int i = 0; i < count; ++i) {
      plan.specs.push_back(
          sample_spec(buckets[b], rng, hash_combine(seed, ++matrix_id)));
      plan.bucket_of.push_back(static_cast<int>(b));
    }
  }
  return plan;
}

CorpusPlan make_small_plan(int n, std::uint64_t seed) {
  SPMVML_ENSURE(n > 0, "need at least one matrix");
  CorpusPlan plan;
  const auto buckets = paper_buckets();
  Rng rng(hash_combine(seed, 0x5A11E57ULL));
  for (int i = 0; i < n; ++i) {
    // Round-robin the first three (cheap) buckets so tests stay fast.
    const std::size_t b = static_cast<std::size_t>(i) % 3;
    plan.specs.push_back(
        sample_spec(buckets[b], rng,
                    hash_combine(seed, static_cast<std::uint64_t>(i) + 1)));
    plan.bucket_of.push_back(static_cast<int>(b));
  }
  return plan;
}

std::uint64_t plan_fingerprint(const CorpusPlan& plan) {
  const auto mix_double = [](std::uint64_t h, double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return hash_combine(h, bits);
  };
  std::uint64_t h = hash_combine(0x90A5F1A4ULL, plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const GenSpec& s = plan.specs[i];
    h = hash_combine(h, static_cast<std::uint64_t>(s.family));
    h = hash_combine(h, static_cast<std::uint64_t>(s.rows));
    h = hash_combine(h, static_cast<std::uint64_t>(s.cols));
    h = mix_double(h, s.row_mu);
    h = mix_double(h, s.row_cv);
    h = mix_double(h, s.band_frac);
    h = mix_double(h, s.alpha);
    h = hash_combine(h, static_cast<std::uint64_t>(s.block_size));
    h = hash_combine(h, s.seed);
    h = hash_combine(h, static_cast<std::uint64_t>(plan.bucket_of[i]));
  }
  return h;
}

}  // namespace spmvml
