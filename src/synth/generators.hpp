// Synthetic sparse-matrix generators.
//
// Stand-in for the SuiteSparse collection (see DESIGN.md §2): each family
// mimics a real application domain's sparsity signature —
//   * kBanded          — structural/FEM stencils: near-diagonal bands,
//                        uniform row lengths, strong column locality.
//   * kStencil         — regular grid stencils (5/9/27-point patterns).
//   * kUniformRandom   — unstructured, controllable row-length variance.
//   * kPowerLaw        — graphs/networks: Zipf-ish degrees, hub columns.
//   * kBlockRandom     — block-structured (multi-physics coupling).
//   * kGeomGraph       — random geometric graph (the paper's Fig. 2
//                        rgg_n_2_19 exemplar).
//
// All generators are deterministic in (spec, seed) and emit canonical CSR.
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace spmvml {

enum class MatrixFamily : int {
  kBanded = 0,
  kStencil = 1,
  kUniformRandom = 2,
  kPowerLaw = 3,
  kBlockRandom = 4,
  kGeomGraph = 5,
};

inline constexpr int kNumFamilies = 6;

const char* family_name(MatrixFamily f);

/// Parameters for one synthetic matrix. Unused knobs are ignored by
/// families that do not need them.
struct GenSpec {
  MatrixFamily family = MatrixFamily::kUniformRandom;
  index_t rows = 1000;
  index_t cols = 1000;
  /// Target average nonzeros per row.
  double row_mu = 8.0;
  /// Coefficient of variation of row lengths (sigma/mu), where the family
  /// allows control (uniform/block; power-law's tail dominates).
  double row_cv = 0.5;
  /// Banded/stencil: half-bandwidth as fraction of cols.
  double band_frac = 0.01;
  /// Power-law exponent (smaller = heavier tail).
  double alpha = 1.8;
  /// Block families: edge length of dense-ish blocks.
  index_t block_size = 8;
  std::uint64_t seed = 1;
};

/// Generate the matrix described by `spec`. Values are uniform in
/// [0.5, 1.5] so SpMV results are well-conditioned for correctness checks.
Csr<double> generate(const GenSpec& spec);

/// Human-readable one-line description, e.g. "powerlaw r=10000 mu=12.0".
std::string describe(const GenSpec& spec);

/// Relabel a square matrix's rows/columns with one random permutation
/// (A' = P A P^T). Destroys index locality while preserving the graph —
/// how an arbitrarily-ordered SuiteSparse matrix differs from a
/// bandwidth-reduced one.
Csr<double> shuffle_labels(const Csr<double>& m, std::uint64_t seed);

}  // namespace spmvml
