#include "sparse/csr_binary.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace spmvml {
namespace {

/// FNV-1a over raw bytes, chainable across the three arrays so no
/// contiguous payload copy is ever materialized.
std::uint64_t fnv1a64_bytes(const void* data, std::size_t n,
                            std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

template <typename T>
std::size_t bytes_of(const std::span<const T> s) {
  return s.size() * sizeof(T);
}

}  // namespace

std::string csr_sidecar_path(const std::string& matrix_path) {
  return matrix_path + kCsrSidecarSuffix;
}

bool is_csr_binary_path(const std::string& path) {
  const std::string suffix = kCsrSidecarSuffix;
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void write_csr_binary(std::ostream& out, const Csr<double>& m) {
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  const std::size_t payload_bytes =
      bytes_of(row_ptr) + bytes_of(col_idx) + bytes_of(values);
  std::uint64_t h = fnv1a64_bytes(row_ptr.data(), bytes_of(row_ptr));
  h = fnv1a64_bytes(col_idx.data(), bytes_of(col_idx), h);
  h = fnv1a64_bytes(values.data(), bytes_of(values), h);
  out << kCsrBinaryMagic << ' ' << kCsrBinaryVersion << ' ' << m.rows() << ' '
      << m.cols() << ' ' << m.nnz() << ' ' << payload_bytes << ' ' << hex16(h)
      << '\n';
  out.write(reinterpret_cast<const char*>(row_ptr.data()),
            static_cast<std::streamsize>(bytes_of(row_ptr)));
  out.write(reinterpret_cast<const char*>(col_idx.data()),
            static_cast<std::streamsize>(bytes_of(col_idx)));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(bytes_of(values)));
}

void write_csr_binary(const std::string& path, const Csr<double>& m) {
  std::ofstream out(path, std::ios::binary);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                    "cannot open " + path + " for writing");
  write_csr_binary(out, m);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo, "write failed for " + path);
}

Csr<double> read_csr_binary(std::istream& in) {
  std::string magic, checksum_hex;
  int version = 0;
  index_t rows = 0, cols = 0, nnz = 0;
  std::uint64_t payload_bytes = 0;
  in >> magic;
  SPMVML_ENSURE_CAT(static_cast<bool>(in) && magic == kCsrBinaryMagic,
                    ErrorCategory::kParse,
                    "not a binary CSR file (missing '" +
                        std::string(kCsrBinaryMagic) + "' magic)");
  in >> version >> rows >> cols >> nnz >> payload_bytes >> checksum_hex;
  SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kParse,
                    "binary CSR header truncated");
  SPMVML_ENSURE_CAT(version == kCsrBinaryVersion, ErrorCategory::kParse,
                    "unsupported binary CSR version " +
                        std::to_string(version));
  SPMVML_ENSURE_CAT(rows >= 0 && cols >= 0 && nnz >= 0, ErrorCategory::kParse,
                    "binary CSR header has negative dimensions");
  SPMVML_ENSURE_CAT(in.get() == '\n', ErrorCategory::kParse,
                    "binary CSR header is malformed");
  // Cross-check the byte count against the dimensions before trusting
  // either with an allocation: a hostile header must fail on arithmetic,
  // not on memory.
  const std::uint64_t expect_bytes =
      (static_cast<std::uint64_t>(rows) + 1) * sizeof(index_t) +
      static_cast<std::uint64_t>(nnz) * (sizeof(index_t) + sizeof(double));
  SPMVML_ENSURE_CAT(payload_bytes == expect_bytes, ErrorCategory::kParse,
                    "binary CSR header byte count does not match dimensions");
  SPMVML_ENSURE_CAT(payload_bytes < (std::uint64_t{1} << 34),
                    ErrorCategory::kParse,
                    "binary CSR header claims an absurd payload size");

  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(nnz));
  std::vector<double> values(static_cast<std::size_t>(nnz));
  const auto bulk_read = [&in](void* dst, std::size_t n) {
    in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    SPMVML_ENSURE_CAT(static_cast<std::size_t>(in.gcount()) == n,
                      ErrorCategory::kParse,
                      "binary CSR file truncated: payload shorter than the "
                      "header declares");
  };
  bulk_read(row_ptr.data(), row_ptr.size() * sizeof(index_t));
  bulk_read(col_idx.data(), col_idx.size() * sizeof(index_t));
  bulk_read(values.data(), values.size() * sizeof(double));

  std::uint64_t h = fnv1a64_bytes(row_ptr.data(), row_ptr.size() * sizeof(index_t));
  h = fnv1a64_bytes(col_idx.data(), col_idx.size() * sizeof(index_t), h);
  h = fnv1a64_bytes(values.data(), values.size() * sizeof(double), h);
  SPMVML_ENSURE_CAT(hex16(h) == checksum_hex, ErrorCategory::kParse,
                    "binary CSR checksum mismatch (corrupt payload)");
  // The canonical constructor re-validates every structural invariant, so
  // a checksummed-but-wrong file (e.g. produced by a buggy writer) still
  // fails closed instead of reaching the kernels.
  try {
    return Csr<double>(rows, cols, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
  } catch (const Error& e) {
    SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                      std::string("binary CSR invariant violation: ") +
                          e.what());
  }
  return {};  // unreachable
}

Csr<double> read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo, "cannot open " + path);
  return read_csr_binary(in);
}

}  // namespace spmvml
