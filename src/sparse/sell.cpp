#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Sell<ValueT> Sell<ValueT>::from_csr(const Csr<ValueT>& csr, index_t c,
                                    index_t sigma) {
  SPMVML_ENSURE(c >= 1, "slice height must be positive");
  SPMVML_ENSURE(sigma >= c && sigma % c == 0,
                "sigma must be a positive multiple of C");
  Sell sell;
  sell.rows_ = csr.rows();
  sell.cols_ = csr.cols();
  sell.nnz_ = csr.nnz();
  sell.c_ = c;

  // Sort rows by descending length within each sigma window.
  sell.perm_.resize(static_cast<std::size_t>(csr.rows()));
  std::iota(sell.perm_.begin(), sell.perm_.end(), 0);
  for (index_t w = 0; w < csr.rows(); w += sigma) {
    const auto begin = sell.perm_.begin() + w;
    const auto end =
        sell.perm_.begin() + std::min<index_t>(csr.rows(), w + sigma);
    std::stable_sort(begin, end, [&](index_t a, index_t b) {
      return csr.row_nnz(a) > csr.row_nnz(b);
    });
  }

  const index_t slices = (csr.rows() + c - 1) / c;
  sell.slice_ptr_.assign(static_cast<std::size_t>(slices) + 1, 0);
  sell.slice_width_.assign(static_cast<std::size_t>(slices), 0);
  for (index_t s = 0; s < slices; ++s) {
    index_t width = 0;
    for (index_t i = 0; i < c; ++i) {
      const index_t sr = s * c + i;
      if (sr >= csr.rows()) break;
      width = std::max(width, csr.row_nnz(sell.perm_[static_cast<std::size_t>(sr)]));
    }
    sell.slice_width_[static_cast<std::size_t>(s)] = width;
    sell.slice_ptr_[static_cast<std::size_t>(s) + 1] =
        sell.slice_ptr_[static_cast<std::size_t>(s)] + width * c;
  }

  const auto slots = static_cast<std::size_t>(sell.slice_ptr_.back());
  sell.col_idx_.assign(slots, kPad);
  sell.values_.assign(slots, ValueT{});
  for (index_t s = 0; s < slices; ++s) {
    const index_t base = sell.slice_ptr_[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < c; ++i) {
      const index_t sr = s * c + i;
      if (sr >= csr.rows()) break;
      const index_t orig = sell.perm_[static_cast<std::size_t>(sr)];
      index_t k = 0;
      for (index_t p = csr.row_ptr()[orig]; p < csr.row_ptr()[orig + 1];
           ++p, ++k) {
        // Column-major within the slice: slot k of all C rows contiguous.
        const auto at = static_cast<std::size_t>(base + k * c + i);
        sell.col_idx_[at] = csr.col_idx()[p];
        sell.values_[at] = csr.values()[p];
      }
    }
  }
  return sell;
}

template <typename ValueT>
double Sell<ValueT>::padding_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(slice_ptr_.back()) / static_cast<double>(nnz_);
}

template <typename ValueT>
void Sell<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  for (index_t s = 0; s < num_slices(); ++s) {
    const index_t base = slice_ptr_[static_cast<std::size_t>(s)];
    const index_t width = slice_width_[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < c_; ++i) {
      const index_t sr = s * c_ + i;
      if (sr >= rows_) break;
      ValueT sum{};
      for (index_t k = 0; k < width; ++k) {
        const auto at = static_cast<std::size_t>(base + k * c_ + i);
        const index_t col = col_idx_[at];
        if (col != kPad) sum += values_[at] * x[col];
      }
      y[perm_[static_cast<std::size_t>(sr)]] = sum;
    }
  }
  // Rows beyond the last slice cannot exist; empty rows got sum 0 above.
}

template <typename ValueT>
std::int64_t Sell<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return static_cast<std::int64_t>(col_idx_.size()) *
             (idx + static_cast<std::int64_t>(sizeof(ValueT))) +
         rows_ * idx +  // permutation
         static_cast<std::int64_t>(slice_ptr_.size()) * idx;
}

template <typename ValueT>
void Sell<ValueT>::validate() const {
  SPMVML_ENSURE(c_ >= 1, "bad slice height");
  SPMVML_ENSURE(static_cast<index_t>(perm_.size()) == rows_,
                "permutation size mismatch");
  std::vector<char> seen(static_cast<std::size_t>(rows_), 0);
  for (index_t r : perm_) {
    SPMVML_ENSURE(r >= 0 && r < rows_, "permutation entry out of range");
    SPMVML_ENSURE(!seen[static_cast<std::size_t>(r)],
                  "permutation entry repeated");
    seen[static_cast<std::size_t>(r)] = 1;
  }
  index_t counted = 0;
  for (index_t c : col_idx_) {
    SPMVML_ENSURE(c == kPad || (c >= 0 && c < cols_),
                  "column index out of range");
    if (c != kPad) ++counted;
  }
  SPMVML_ENSURE(counted == nnz_, "SELL nnz bookkeeping mismatch");
}

template class Sell<float>;
template class Sell<double>;

}  // namespace spmvml
