#include "sparse/sell.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

template <typename ValueT>
Sell<ValueT> Sell<ValueT>::from_csr(const Csr<ValueT>& csr, index_t c,
                                    index_t sigma) {
  Sell sell;
  sell.assign_from_csr(csr, c, sigma);
  return sell;
}

template <typename ValueT>
void Sell<ValueT>::assign_from_csr(const Csr<ValueT>& csr, index_t c,
                                   index_t sigma) {
  SPMVML_ENSURE(c >= 1 && c <= kMaxSliceHeight,
                "slice height must be in [1, 2^20]");
  SPMVML_ENSURE(sigma >= c, "sigma must be >= C");
  rows_ = csr.rows();
  cols_ = csr.cols();
  nnz_ = csr.nnz();
  c_ = c;
  sigma_ = sigma;

  // Sort rows by descending length within each sigma window. std::sort
  // with the original index as tie-break is deterministic, reproduces
  // stable_sort's order exactly (the range starts as iota), and — unlike
  // libstdc++'s stable_sort — allocates nothing, which the arena's
  // zero-warm-path-allocation contract requires.
  perm_.resize(static_cast<std::size_t>(rows_));
  std::iota(perm_.begin(), perm_.end(), 0);
  for (index_t w = 0; w < rows_; w += sigma) {
    const auto begin = perm_.begin() + w;
    const auto end = perm_.begin() + std::min<index_t>(rows_, w + sigma);
    std::sort(begin, end, [&](index_t a, index_t b) {
      const index_t la = csr.row_nnz(a), lb = csr.row_nnz(b);
      return la != lb ? la > lb : a < b;
    });
  }

  // Slice s covers storage rows [s*C, s*C + height_s); the last slice
  // shrinks to the rows that exist, so slots <= rows * row_max (the ELL
  // bound) by construction.
  const index_t slices = c > 0 ? (rows_ + c - 1) / c : 0;
  slice_ptr_.assign(static_cast<std::size_t>(slices) + 1, 0);
  slice_width_.assign(static_cast<std::size_t>(slices), 0);
  for (index_t s = 0; s < slices; ++s) {
    const index_t height = slice_rows(s);
    index_t width = 0;
    for (index_t i = 0; i < height; ++i)
      width = std::max(
          width, csr.row_nnz(perm_[static_cast<std::size_t>(s * c + i)]));
    SPMVML_ENSURE(width == 0 ||
                      slice_ptr_[static_cast<std::size_t>(s)] <=
                          (std::numeric_limits<index_t>::max() -
                           width * height),
                  "SELL slot count overflows");
    slice_width_[static_cast<std::size_t>(s)] = width;
    slice_ptr_[static_cast<std::size_t>(s) + 1] =
        slice_ptr_[static_cast<std::size_t>(s)] + width * height;
  }

  const auto total = static_cast<std::size_t>(slice_ptr_.back());
  col_idx_.assign(total, kPad);
  values_.assign(total, ValueT{});
  for (index_t s = 0; s < slices; ++s) {
    const index_t base = slice_ptr_[static_cast<std::size_t>(s)];
    const index_t height = slice_rows(s);
    for (index_t i = 0; i < height; ++i) {
      const index_t orig = perm_[static_cast<std::size_t>(s * c + i)];
      index_t k = 0;
      for (index_t p = csr.row_ptr()[orig]; p < csr.row_ptr()[orig + 1];
           ++p, ++k) {
        // Column-major within the slice: slot k of all height rows
        // contiguous, preserving each row's original column order.
        const auto at = static_cast<std::size_t>(base + k * height + i);
        col_idx_[at] = csr.col_idx()[p];
        values_[at] = csr.values()[p];
      }
    }
  }
}

template <typename ValueT>
Csr<ValueT> Sell<ValueT>::to_csr() const {
  // Reserve against the *validated* nnz but capped, mirroring the mmio
  // reader's defense against hostile declared sizes.
  constexpr std::size_t kReserveCap = std::size_t{1} << 20;
  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  for (index_t s = 0; s < num_slices(); ++s) {
    const index_t base = slice_ptr_[static_cast<std::size_t>(s)];
    const index_t height = slice_rows(s);
    const index_t width = slice_width_[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < height; ++i) {
      index_t len = 0;
      for (index_t k = 0; k < width; ++k)
        if (col_idx_[static_cast<std::size_t>(base + k * height + i)] != kPad)
          ++len;
      row_ptr[static_cast<std::size_t>(
                  perm_[static_cast<std::size_t>(s * c_ + i)]) +
              1] = len;
    }
  }
  for (index_t r = 0; r < rows_; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];

  std::vector<index_t> col_idx;
  std::vector<ValueT> values;
  col_idx.reserve(std::min(static_cast<std::size_t>(nnz_), kReserveCap));
  values.reserve(std::min(static_cast<std::size_t>(nnz_), kReserveCap));
  col_idx.resize(static_cast<std::size_t>(row_ptr.back()));
  values.resize(static_cast<std::size_t>(row_ptr.back()));
  for (index_t s = 0; s < num_slices(); ++s) {
    const index_t base = slice_ptr_[static_cast<std::size_t>(s)];
    const index_t height = slice_rows(s);
    const index_t width = slice_width_[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < height; ++i) {
      const index_t orig = perm_[static_cast<std::size_t>(s * c_ + i)];
      std::size_t out = static_cast<std::size_t>(row_ptr[orig]);
      // Ascending k preserves the row's original column order.
      for (index_t k = 0; k < width; ++k) {
        const auto at = static_cast<std::size_t>(base + k * height + i);
        if (col_idx_[at] == kPad) continue;
        col_idx[out] = col_idx_[at];
        values[out] = values_[at];
        ++out;
      }
    }
  }
  return Csr<ValueT>(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

template <typename ValueT>
double Sell<ValueT>::padding_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(slots()) / static_cast<double>(nnz_);
}

template <typename ValueT>
void Sell<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  spmv_slices(x, y, 0, num_slices());
}

template <typename ValueT>
void Sell<ValueT>::spmv_slices(std::span<const ValueT> x, std::span<ValueT> y,
                               index_t slice_begin,
                               index_t slice_count) const {
  for (index_t s = slice_begin; s < slice_begin + slice_count; ++s) {
    const index_t base = slice_ptr_[static_cast<std::size_t>(s)];
    const index_t height = slice_rows(s);
    const index_t width = slice_width_[static_cast<std::size_t>(s)];
    const index_t* rows = perm_.data() + s * c_;
    for (index_t i = 0; i < height; ++i)
      y[static_cast<std::size_t>(rows[i])] = ValueT{};
    // Column-major walk: all rows of the slice advance slot k together
    // (the coalesced/SIMD-friendly order). The slot update is
    // elementwise (simd::masked_scatter_axpy), so each y[perm[sr]]
    // accumulates its slots in increasing-k order regardless of SIMD,
    // slice blocking, or thread count — the bitwise contract.
    for (index_t k = 0; k < width; ++k) {
      const auto at = static_cast<std::size_t>(base + k * height);
      simd::masked_scatter_axpy(values_.data() + at, col_idx_.data() + at,
                                x.data(), y.data(), rows, height, kPad);
    }
  }
}

template <typename ValueT>
std::int64_t Sell<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return static_cast<std::int64_t>(col_idx_.size()) *
             (idx + static_cast<std::int64_t>(sizeof(ValueT))) +
         rows_ * idx +  // permutation
         static_cast<std::int64_t>(slice_ptr_.size()) * idx +
         static_cast<std::int64_t>(slice_width_.size()) * idx;
}

template <typename ValueT>
void Sell<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0 && nnz_ >= 0, "negative sizes");
  SPMVML_ENSURE(c_ >= 1 && c_ <= kMaxSliceHeight, "bad slice height");
  SPMVML_ENSURE(sigma_ >= c_, "bad sort window");
  const index_t slices = (rows_ + c_ - 1) / c_;
  SPMVML_ENSURE(num_slices() == slices, "slice count mismatch");
  SPMVML_ENSURE(static_cast<index_t>(slice_width_.size()) == slices,
                "slice width array mismatch");
  SPMVML_ENSURE(slice_ptr_.front() == 0, "slice_ptr must start at 0");
  for (index_t s = 0; s < slices; ++s) {
    const index_t width = slice_width_[static_cast<std::size_t>(s)];
    SPMVML_ENSURE(width >= 0 && width <= cols_, "slice width out of range");
    SPMVML_ENSURE(slice_ptr_[static_cast<std::size_t>(s) + 1] ==
                      slice_ptr_[static_cast<std::size_t>(s)] +
                          width * slice_rows(s),
                  "slice_ptr inconsistent with widths");
  }
  SPMVML_ENSURE(static_cast<index_t>(col_idx_.size()) == slots() &&
                    col_idx_.size() == values_.size(),
                "SELL arrays must cover exactly the slot count");
  SPMVML_ENSURE(static_cast<index_t>(perm_.size()) == rows_,
                "permutation size mismatch");
  std::vector<char> seen(static_cast<std::size_t>(rows_), 0);
  for (index_t r : perm_) {
    SPMVML_ENSURE(r >= 0 && r < rows_, "permutation entry out of range");
    SPMVML_ENSURE(!seen[static_cast<std::size_t>(r)],
                  "permutation entry repeated");
    seen[static_cast<std::size_t>(r)] = 1;
  }
  index_t counted = 0;
  for (index_t c : col_idx_) {
    SPMVML_ENSURE(c == kPad || (c >= 0 && c < cols_),
                  "column index out of range");
    if (c != kPad) ++counted;
  }
  SPMVML_ENSURE(counted == nnz_, "SELL nnz bookkeeping mismatch");
}

template class Sell<float>;
template class Sell<double>;

}  // namespace spmvml
