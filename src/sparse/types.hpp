// Shared index/value typedefs for the sparse-matrix substrate.
#pragma once

#include <cstdint>

namespace spmvml {

/// Row/column index type. 64-bit keeps products like rows*max_nnz safe for
/// the largest corpus buckets without overflow checks at every call site.
using index_t = std::int64_t;

/// Triplet (COO entry): row, column, value.
template <typename ValueT>
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  ValueT value{};
};

}  // namespace spmvml
