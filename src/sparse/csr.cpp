#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

template <typename ValueT>
Csr<ValueT>::Csr(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                 std::vector<index_t> col_idx, std::vector<ValueT> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  validate();
}

template <typename ValueT>
Csr<ValueT> Csr<ValueT>::from_triplets(index_t rows, index_t cols,
                                       std::vector<Triplet<ValueT>> entries) {
  SPMVML_ENSURE(rows >= 0 && cols >= 0, "negative dimensions");
  for (const auto& e : entries) {
    SPMVML_ENSURE(e.row >= 0 && e.row < rows, "triplet row out of range");
    SPMVML_ENSURE(e.col >= 0 && e.col < cols, "triplet col out of range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet<ValueT>& a, const Triplet<ValueT>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Sum duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (out > 0 && entries[out - 1].row == entries[i].row &&
        entries[out - 1].col == entries[i].col) {
      entries[out - 1].value += entries[i].value;
    } else {
      entries[out++] = entries[i];
    }
  }
  entries.resize(out);

  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> col_idx(entries.size());
  std::vector<ValueT> values(entries.size());
  for (const auto& e : entries) ++row_ptr[static_cast<std::size_t>(e.row) + 1];
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    col_idx[i] = entries[i].col;
    values[i] = entries[i].value;
  }
  return Csr(rows, cols, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

template <typename ValueT>
Csr<ValueT> Csr<ValueT>::from_coo(const Coo<ValueT>& coo) {
  std::vector<Triplet<ValueT>> entries;
  entries.reserve(static_cast<std::size_t>(coo.nnz()));
  for (index_t i = 0; i < coo.nnz(); ++i)
    entries.push_back({coo.row_idx()[i], coo.col_idx()[i], coo.values()[i]});
  return from_triplets(coo.rows(), coo.cols(), std::move(entries));
}

template <typename ValueT>
void Csr<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  // Lane-accumulated row dot products (simd::dot semantics): the SIMD
  // path and the scalar fallback share one summation order, and
  // spmv_parallel() calls the same helper per row — serial, SIMD, and
  // parallel outputs are bitwise-identical. The kernel pointer is
  // resolved once so short rows don't re-check the runtime toggle.
  const auto dot = simd::dot_kernel<ValueT>();
  for (index_t r = 0; r < rows_; ++r) {
    const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
    const index_t len = row_ptr_[static_cast<std::size_t>(r) + 1] - begin;
    // Short rows inline the sequential rule (same bits as the kernel's
    // own short-row branch) instead of paying an indirect call.
    y[static_cast<std::size_t>(r)] =
        len < simd::kDotSequentialCutoff<ValueT>
            ? simd::detail::dot_sequential(values_.data() + begin,
                                           col_idx_.data() + begin, x.data(),
                                           len)
            : dot(values_.data() + begin, col_idx_.data() + begin, x.data(),
                  len);
  }
}

template <typename ValueT>
std::int64_t Csr<ValueT>::bytes() const {
  const std::int64_t idx = 4;  // 32-bit device indices
  return (rows_ + 1) * idx + nnz() * idx +
         nnz() * static_cast<std::int64_t>(sizeof(ValueT));
}

template <typename ValueT>
void Csr<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
                "row_ptr size must be rows+1");
  SPMVML_ENSURE(row_ptr_.front() == 0, "row_ptr[0] must be 0");
  SPMVML_ENSURE(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
                "row_ptr[rows] must equal nnz");
  SPMVML_ENSURE(col_idx_.size() == values_.size(),
                "col_idx and values must have equal length");
  for (index_t r = 0; r < rows_; ++r) {
    SPMVML_ENSURE(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be monotone");
    for (index_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      SPMVML_ENSURE(col_idx_[p] >= 0 && col_idx_[p] < cols_,
                    "column index out of range");
      if (p > row_ptr_[r])
        SPMVML_ENSURE(col_idx_[p - 1] < col_idx_[p],
                      "columns within a row must be strictly increasing");
    }
  }
}

template <typename ValueT>
Csr<ValueT> Csr<ValueT>::transpose() const {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t p = 0; p < nnz(); ++p)
    ++row_ptr[static_cast<std::size_t>(col_idx_[p]) + 1];
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());

  std::vector<index_t> col_idx(static_cast<std::size_t>(nnz()));
  std::vector<ValueT> values(static_cast<std::size_t>(nnz()));
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const index_t dst = cursor[static_cast<std::size_t>(col_idx_[p])]++;
      col_idx[static_cast<std::size_t>(dst)] = r;
      values[static_cast<std::size_t>(dst)] = values_[p];
    }
  }
  return Csr(cols_, rows_, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

template class Csr<float>;
template class Csr<double>;

}  // namespace spmvml
