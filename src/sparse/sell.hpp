// SELL-C-sigma (sliced ELLPACK with row sorting) — the storage scheme
// underlying yaSpMV (§II's reference [5]) and Kreutzer et al.'s
// cross-platform SpMV. Rows are sorted by length inside windows of sigma
// rows, then packed into slices of C rows, each padded only to its own
// slice's maximum — ELL's coalescing with a fraction of its padding.
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Sell {
 public:
  static constexpr index_t kPad = -1;

  Sell() = default;

  /// slice height C and sorting window sigma (a multiple of C; sigma == C
  /// disables reordering beyond the slice itself).
  static Sell from_csr(const Csr<ValueT>& csr, index_t c = 32,
                       index_t sigma = 128);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  index_t slice_height() const { return c_; }
  index_t num_slices() const {
    return static_cast<index_t>(slice_ptr_.size()) - 1;
  }

  /// Stored slots over useful entries; between 1.0 and ELL's ratio.
  double padding_ratio() const;

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t c_ = 0;
  std::vector<index_t> perm_;       // storage row s holds original row perm_[s]
  std::vector<index_t> slice_ptr_;  // start offset of each slice's data
  std::vector<index_t> slice_width_;
  // Per slice: column-major C x width block at slice_ptr_[s].
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
};

extern template class Sell<float>;
extern template class Sell<double>;

}  // namespace spmvml
