// SELL-C-sigma (sliced ELLPACK with row sorting) — the storage scheme
// underlying yaSpMV (§II's reference [5]) and Kreutzer et al.'s
// cross-platform SpMV. Rows are sorted by length inside windows of sigma
// rows, then packed into slices of C rows, each padded only to its own
// slice's maximum — ELL's coalescing with a fraction of its padding.
//
// Layout (DESIGN.md §5l): storage row sr = s*C + i holds original row
// perm_[sr]; slice s is a column-major height_s x width_s block at
// slice_ptr_[s], where height_s = min(C, rows - s*C) — the last slice
// shrinks to the rows that exist, so total slots never exceed ELL's
// rows * row_max and padding_ratio() stays in [1.0, ELL's ratio].
// Padding slots carry column kPad (-1) and value 0.
//
// The SpMV contract: y[perm_[sr]] accumulates its slots in ascending
// slot-column order k via the elementwise simd::masked_scatter_axpy, so
// serial, SIMD and slice-parallel runs are bitwise-identical (§5g), and
// the permutation partitions output rows across slices (no races).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Sell {
 public:
  static constexpr index_t kPad = -1;

  /// Hard cap on the slice height C: a hostile or corrupted parameter
  /// must not drive the per-slice padding toward rows*C slots (mirrors
  /// the mmio reader's reserve caps against hostile declared nnz).
  static constexpr index_t kMaxSliceHeight = index_t{1} << 20;

  Sell() = default;

  /// Slice height C and sorting window sigma >= C. sigma == C disables
  /// reordering beyond the slice itself; sigma need not divide the row
  /// count or be a multiple of C (the trailing window is simply
  /// shorter, and a slice may straddle a window boundary).
  static Sell from_csr(const Csr<ValueT>& csr, index_t c = 32,
                       index_t sigma = 128);

  /// In-place conversion reusing this object's buffers (no allocation
  /// when capacities already suffice — the ConversionArena warm path;
  /// the window sort is an in-place std::sort with an index tie-break,
  /// deterministic and allocation-free).
  void assign_from_csr(const Csr<ValueT>& csr, index_t c = 32,
                       index_t sigma = 128);

  /// Back-conversion: strips padding, undoes the row permutation.
  Csr<ValueT> to_csr() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  index_t slice_height() const { return c_; }
  index_t sort_window() const { return sigma_; }
  index_t num_slices() const {
    return static_cast<index_t>(slice_ptr_.size()) - 1;
  }
  /// Rows actually stored in slice s (C except possibly the last).
  index_t slice_rows(index_t s) const {
    return std::min<index_t>(c_, rows_ - s * c_);
  }
  index_t slice_width(index_t s) const {
    return slice_width_[static_cast<std::size_t>(s)];
  }
  /// Storage row -> original row map (a permutation of [0, rows)).
  std::span<const index_t> perm() const { return perm_; }
  std::span<const index_t> slice_ptr() const { return slice_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const ValueT> values() const { return values_; }
  /// Total stored slots including padding.
  index_t slots() const { return slice_ptr_.empty() ? 0 : slice_ptr_.back(); }

  /// Stored slots over useful entries; between 1.0 and ELL's ratio.
  double padding_ratio() const;

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  /// Slot update restricted to slices [slice_begin, slice_begin +
  /// slice_count): zero-fills exactly the y rows those slices own (the
  /// permutation partitions output rows across slices, so parallel
  /// callers are race-free) and accumulates their slot columns in
  /// ascending k. The building block spmv() and the slice-parallel
  /// kernel share, keeping their outputs bitwise-identical.
  void spmv_slices(std::span<const ValueT> x, std::span<ValueT> y,
                   index_t slice_begin, index_t slice_count) const;

  std::int64_t bytes() const;

  void validate() const;

  bool operator==(const Sell&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t c_ = 0;
  index_t sigma_ = 0;
  std::vector<index_t> perm_;       // storage row s holds original row perm_[s]
  std::vector<index_t> slice_ptr_;  // start offset of each slice's data
  std::vector<index_t> slice_width_;
  // Per slice: column-major height_s x width_s block at slice_ptr_[s].
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
};

extern template class Sell<float>;
extern template class Sell<double>;

}  // namespace spmvml
