// Binary CSR sidecar format (`.spmvml-csr`) — the zero-parse ingest path
// of the serving subsystem.
//
// Matrix Market text is the interchange format, but parsing it costs an
// istream tokenization per entry plus a from_triplets sort — two orders
// of magnitude more than the SpMV it feeds. A sidecar file stores the
// already-canonical CSR arrays raw, wrapped in a checksummed one-line
// envelope in the same spirit as the model-file envelope (ml/serialize):
//
//   spmvml-csr 1 <rows> <cols> <nnz> <payload_bytes> <fnv1a64-hex>\n
//   <row_ptr bytes><col_idx bytes><values bytes>
//
// payload_bytes catches truncation before any allocation; the FNV-1a
// checksum over the raw payload catches bit rot and hand edits; the
// loader still runs Csr::validate(), so a corrupt-but-checksummed file
// can never smuggle broken invariants into the kernels. All failures
// throw Error(kParse) (kIo when the file cannot be opened), and the
// serving ingest path falls back to the Matrix Market text transparently.
//
// Arrays are written in host byte order (the format is a cache artifact
// produced and consumed on the same machine, not an interchange format).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace spmvml {

inline constexpr const char* kCsrBinaryMagic = "spmvml-csr";
inline constexpr int kCsrBinaryVersion = 1;
/// Sidecar naming convention: `<matrix>.mtx` -> `<matrix>.mtx.spmvml-csr`.
inline constexpr const char* kCsrSidecarSuffix = ".spmvml-csr";

/// Write `m` as a checksummed binary CSR file.
void write_csr_binary(const std::string& path, const Csr<double>& m);
void write_csr_binary(std::ostream& out, const Csr<double>& m);

/// Read a binary CSR file; the result is bitwise-identical to the Csr
/// that was written. Throws Error(kParse) on any envelope, checksum, or
/// structural-invariant violation; Error(kIo) when the file cannot be
/// opened.
Csr<double> read_csr_binary(const std::string& path);
Csr<double> read_csr_binary(std::istream& in);

/// Sidecar path for a matrix path (append kCsrSidecarSuffix).
std::string csr_sidecar_path(const std::string& matrix_path);

/// True when `path` itself names a binary CSR file (by suffix).
bool is_csr_binary_path(const std::string& path);

}  // namespace spmvml
