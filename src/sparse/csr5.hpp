// CSR5 (Liu & Vinter, ICS'15) — CSR extended with 2D tiling for load
// balance (§II-A.5).
//
// The nonzero stream is partitioned into tiles of omega*sigma entries.
// Inside a full tile, lane c owns the contiguous original positions
// [tile_start + c*sigma, tile_start + (c+1)*sigma); storage is transposed
// (stored position tile_start + s*omega + c) so that on a GPU all omega
// lanes load consecutive addresses each step — the layout in Fig. 1(d).
// Row boundaries inside tiles are tracked with packed bit flags plus, per
// segment start, the explicit destination row (our rendition of the
// paper's tile_desc y_offset/seg_offset metadata; explicit rows keep empty
// rows correct without the speculative pass of the CUDA code). A trailing
// partial tile is kept in natural order.
//
// SpMV is a per-lane segmented reduction with += carries across lane and
// tile boundaries, the serial projection of CSR5's fast segmented sum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

/// Reusable index workspace for the CSR5 conversion — the only from_csr
/// path needing O(nnz) temporaries. Owned by ConversionArena so warm
/// conversions allocate nothing.
struct ConversionScratch {
  std::vector<index_t> row_of;        // row of each nonzero
  std::vector<index_t> flags_before;  // prefix count of row-start flags
};

template <typename ValueT>
class Csr5 {
 public:
  Csr5() = default;

  /// omega = lanes per tile (GPU warp fraction), sigma = entries per lane.
  static Csr5 from_csr(const Csr<ValueT>& csr, index_t omega = 32,
                       index_t sigma = 16);

  /// In-place conversion reusing this object's buffers and, when given,
  /// the caller's scratch workspace (no allocation when capacities
  /// already suffice — the ConversionArena warm path).
  void assign_from_csr(const Csr<ValueT>& csr, index_t omega = 32,
                       index_t sigma = 16,
                       ConversionScratch* scratch = nullptr);

  /// Back-conversion: undoes the tile transposition and rebuilds row_ptr
  /// from the row-start flags.
  Csr<ValueT> to_csr() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  index_t omega() const { return omega_; }
  index_t sigma() const { return sigma_; }

  /// Number of full (omega*sigma) tiles; a shorter tail may follow.
  index_t num_full_tiles() const { return num_full_tiles_; }

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

  bool operator==(const Csr5&) const = default;

 private:
  index_t tile_size() const { return omega_ * sigma_; }
  bool flag(index_t original_pos) const {
    return (flags_[static_cast<std::size_t>(original_pos >> 6)] >>
            (original_pos & 63)) & 1u;
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t omega_ = 0;
  index_t sigma_ = 0;
  index_t num_full_tiles_ = 0;
  std::vector<ValueT> values_;    // tile-transposed within full tiles
  std::vector<index_t> col_idx_;  // same permutation as values_
  std::vector<index_t> tile_ptr_;   // first row touched by each tile
  std::vector<std::uint64_t> flags_;  // row-start bit per original position
  std::vector<index_t> lane_row_;   // row of each lane's first element
  std::vector<index_t> lane_seg_;   // first seg_rows_ slot at/after lane start
  std::vector<index_t> seg_rows_;   // destination row per flagged position
  index_t tail_row_ = 0;            // row of the tail tile's first element
  index_t tail_seg_ = 0;            // seg_rows_ slot at the tail start
};

extern template class Csr5<float>;
extern template class Csr5<double>;

}  // namespace spmvml
