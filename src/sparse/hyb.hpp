// HYB format — ELL for the "regular" prefix of each row, COO spill for the
// excess (§II-A.4).
//
// Two threshold rules are implemented:
//  * kNnzMu       — ELL width = ceil(average nnz per row); the rule the
//                   paper uses.
//  * kBellGarland — width chosen so at most 1/3 of rows spill, the
//                   heuristic of the original cusp HYB.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "sparse/ell.hpp"
#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

/// Strategy for picking the ELL/COO split width.
enum class HybThreshold {
  kNnzMu,        // ceil(mean row length) — the paper's choice
  kBellGarland,  // largest width where >= 2/3 of rows fit fully
};

template <typename ValueT>
class Hyb {
 public:
  Hyb() = default;

  static Hyb from_csr(const Csr<ValueT>& csr,
                      HybThreshold rule = HybThreshold::kNnzMu);

  /// Explicit split width (entries at slots >= width go to COO).
  static Hyb from_csr_with_width(const Csr<ValueT>& csr, index_t width);

  /// In-place conversions reusing this object's buffers (no allocation
  /// when capacities already suffice — the ConversionArena warm path).
  /// The split is a single direct pass over the CSR arrays: ELL slots and
  /// COO spill are filled without the intermediate triplet sort.
  void assign_from_csr(const Csr<ValueT>& csr,
                       HybThreshold rule = HybThreshold::kNnzMu);
  void assign_from_csr_with_width(const Csr<ValueT>& csr, index_t width);

  /// Back-conversion: per row, ELL prefix then COO spill (both sorted by
  /// column, spill columns all past the prefix) restores CSR exactly.
  Csr<ValueT> to_csr() const;

  index_t rows() const { return ell_.rows(); }
  index_t cols() const { return ell_.cols(); }
  index_t nnz() const { return ell_.nnz() + coo_.nnz(); }
  index_t ell_width() const { return ell_.width(); }

  const Ell<ValueT>& ell_part() const { return ell_; }
  const Coo<ValueT>& coo_part() const { return coo_; }

  /// Fraction of entries stored in the COO spill.
  double coo_fraction() const;

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const { return ell_.bytes() + coo_.bytes(); }

  void validate() const;

  bool operator==(const Hyb&) const = default;

 private:
  Ell<ValueT> ell_;
  Coo<ValueT> coo_;
};

extern template class Hyb<float>;
extern template class Hyb<double>;

}  // namespace spmvml
