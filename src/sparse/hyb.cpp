#include "sparse/hyb.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {
namespace {

template <typename ValueT>
index_t pick_width(const Csr<ValueT>& csr, HybThreshold rule) {
  if (csr.rows() == 0) return 0;
  if (rule == HybThreshold::kNnzMu) {
    const double mu = static_cast<double>(csr.nnz()) /
                      static_cast<double>(csr.rows());
    return static_cast<index_t>(std::ceil(mu));
  }
  // Bell–Garland: pick the largest width such that at least 2/3 of rows
  // have length <= width (i.e. at most 1/3 of rows spill past it).
  std::vector<index_t> lengths(static_cast<std::size_t>(csr.rows()));
  for (index_t r = 0; r < csr.rows(); ++r)
    lengths[static_cast<std::size_t>(r)] = csr.row_nnz(r);
  std::sort(lengths.begin(), lengths.end());
  const std::size_t q = (lengths.size() * 2) / 3;
  return std::max<index_t>(1, lengths[std::min(q, lengths.size() - 1)]);
}

}  // namespace

template <typename ValueT>
Hyb<ValueT> Hyb<ValueT>::from_csr(const Csr<ValueT>& csr, HybThreshold rule) {
  return from_csr_with_width(csr, pick_width(csr, rule));
}

template <typename ValueT>
Hyb<ValueT> Hyb<ValueT>::from_csr_with_width(const Csr<ValueT>& csr,
                                             index_t width) {
  SPMVML_ENSURE(width >= 0, "negative HYB width");
  // Split CSR into an ELL prefix (first `width` entries of each row) and a
  // COO spill of the rest, then reuse the two sub-format constructors.
  std::vector<Triplet<ValueT>> ell_entries;
  std::vector<index_t> coo_rows, coo_cols;
  std::vector<ValueT> coo_vals;
  for (index_t r = 0; r < csr.rows(); ++r) {
    index_t k = 0;
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p, ++k) {
      if (k < width) {
        ell_entries.push_back({r, csr.col_idx()[p], csr.values()[p]});
      } else {
        coo_rows.push_back(r);
        coo_cols.push_back(csr.col_idx()[p]);
        coo_vals.push_back(csr.values()[p]);
      }
    }
  }
  Hyb hyb;
  const auto ell_csr =
      Csr<ValueT>::from_triplets(csr.rows(), csr.cols(), std::move(ell_entries));
  hyb.ell_ = Ell<ValueT>::from_csr(ell_csr, width);
  hyb.coo_ = Coo<ValueT>(csr.rows(), csr.cols(), std::move(coo_rows),
                         std::move(coo_cols), std::move(coo_vals));
  return hyb;
}

template <typename ValueT>
double Hyb<ValueT>::coo_fraction() const {
  const index_t total = nnz();
  if (total == 0) return 0.0;
  return static_cast<double>(coo_.nnz()) / static_cast<double>(total);
}

template <typename ValueT>
void Hyb<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  ell_.spmv(x, y);
  // COO kernel accumulates into y; replicate that by adding its result.
  std::vector<ValueT> spill(y.size());
  coo_.spmv(x, spill);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += spill[i];
}

template <typename ValueT>
void Hyb<ValueT>::validate() const {
  ell_.validate();
  coo_.validate();
  SPMVML_ENSURE(ell_.rows() == coo_.rows() && ell_.cols() == coo_.cols(),
                "HYB parts must agree on dimensions");
}

template class Hyb<float>;
template class Hyb<double>;

}  // namespace spmvml
