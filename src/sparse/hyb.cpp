#include "sparse/hyb.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {
namespace {

template <typename ValueT>
index_t pick_width(const Csr<ValueT>& csr, HybThreshold rule) {
  if (csr.rows() == 0) return 0;
  if (rule == HybThreshold::kNnzMu) {
    const double mu = static_cast<double>(csr.nnz()) /
                      static_cast<double>(csr.rows());
    return static_cast<index_t>(std::ceil(mu));
  }
  // Bell–Garland: pick the largest width such that at least 2/3 of rows
  // have length <= width (i.e. at most 1/3 of rows spill past it).
  std::vector<index_t> lengths(static_cast<std::size_t>(csr.rows()));
  for (index_t r = 0; r < csr.rows(); ++r)
    lengths[static_cast<std::size_t>(r)] = csr.row_nnz(r);
  std::sort(lengths.begin(), lengths.end());
  const std::size_t q = (lengths.size() * 2) / 3;
  return std::max<index_t>(1, lengths[std::min(q, lengths.size() - 1)]);
}

}  // namespace

template <typename ValueT>
Hyb<ValueT> Hyb<ValueT>::from_csr(const Csr<ValueT>& csr, HybThreshold rule) {
  return from_csr_with_width(csr, pick_width(csr, rule));
}

template <typename ValueT>
Hyb<ValueT> Hyb<ValueT>::from_csr_with_width(const Csr<ValueT>& csr,
                                             index_t width) {
  Hyb hyb;
  hyb.assign_from_csr_with_width(csr, width);
  return hyb;
}

template <typename ValueT>
void Hyb<ValueT>::assign_from_csr(const Csr<ValueT>& csr, HybThreshold rule) {
  assign_from_csr_with_width(csr, pick_width(csr, rule));
}

template <typename ValueT>
void Hyb<ValueT>::assign_from_csr_with_width(const Csr<ValueT>& csr,
                                             index_t width) {
  SPMVML_ENSURE(width >= 0, "negative HYB width");
  // Single pass over the CSR arrays: the first `width` entries of each row
  // land in their ELL slots, the rest append to the COO spill. Row entries
  // are column-sorted in CSR, so both parts inherit the sort order the
  // sub-format constructors would have established.
  ell_.rows_ = csr.rows();
  ell_.cols_ = csr.cols();
  ell_.width_ = width;
  const std::size_t slots = static_cast<std::size_t>(csr.rows()) *
                            static_cast<std::size_t>(width);
  ell_.col_idx_.assign(slots, Ell<ValueT>::kPad);
  ell_.values_.assign(slots, ValueT{});
  coo_.rows_ = csr.rows();
  coo_.cols_ = csr.cols();
  coo_.row_idx_.clear();
  coo_.col_idx_.clear();
  coo_.values_.clear();
  for (index_t r = 0; r < csr.rows(); ++r) {
    index_t k = 0;
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p, ++k) {
      if (k < width) {
        const std::size_t slot = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(csr.rows()) +
                                 static_cast<std::size_t>(r);
        ell_.col_idx_[slot] = csr.col_idx()[static_cast<std::size_t>(p)];
        ell_.values_[slot] = csr.values()[static_cast<std::size_t>(p)];
      } else {
        coo_.row_idx_.push_back(r);
        coo_.col_idx_.push_back(csr.col_idx()[static_cast<std::size_t>(p)]);
        coo_.values_.push_back(csr.values()[static_cast<std::size_t>(p)]);
      }
    }
  }
  ell_.nnz_ = csr.nnz() - coo_.nnz();
}

template <typename ValueT>
Csr<ValueT> Hyb<ValueT>::to_csr() const {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows()) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<ValueT> values;
  col_idx.reserve(static_cast<std::size_t>(nnz()));
  values.reserve(static_cast<std::size_t>(nnz()));
  std::size_t spill = 0;  // cursor into the row-major sorted COO arrays
  for (index_t r = 0; r < rows(); ++r) {
    for (index_t k = 0; k < ell_.width(); ++k) {
      const index_t c = ell_.col_at(r, k);
      if (c == Ell<ValueT>::kPad) break;
      col_idx.push_back(c);
      values.push_back(ell_.val_at(r, k));
    }
    for (; spill < static_cast<std::size_t>(coo_.nnz()) &&
           coo_.row_idx()[spill] == r;
         ++spill) {
      col_idx.push_back(coo_.col_idx()[spill]);
      values.push_back(coo_.values()[spill]);
    }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(col_idx.size());
  }
  return Csr<ValueT>(rows(), cols(), std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

template <typename ValueT>
double Hyb<ValueT>::coo_fraction() const {
  const index_t total = nnz();
  if (total == 0) return 0.0;
  return static_cast<double>(coo_.nnz()) / static_cast<double>(total);
}

template <typename ValueT>
void Hyb<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  ell_.spmv(x, y);
  // Spill adds carry directly into y — no temporary vector per call.
  coo_.spmv_accumulate(x, y);
}

template <typename ValueT>
void Hyb<ValueT>::validate() const {
  ell_.validate();
  coo_.validate();
  SPMVML_ENSURE(ell_.rows() == coo_.rows() && ell_.cols() == coo_.cols(),
                "HYB parts must agree on dimensions");
}

template class Hyb<float>;
template class Hyb<double>;

}  // namespace spmvml
