#include "sparse/merge_csr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
MergeCoordinate MergeCsr<ValueT>::merge_path_search(
    index_t diagonal, std::span<const index_t> row_ptr, index_t rows,
    index_t nnz) {
  // Binary search along the diagonal for the split between consumed
  // row-ends (list A = row_ptr[1..rows]) and consumed nonzeros (list B).
  index_t lo = std::max<index_t>(diagonal - nnz, 0);
  index_t hi = std::min(diagonal, rows);
  while (lo < hi) {
    const index_t pivot = (lo + hi) / 2;
    if (row_ptr[static_cast<std::size_t>(pivot) + 1] <= diagonal - pivot - 1)
      lo = pivot + 1;
    else
      hi = pivot;
  }
  return {lo, diagonal - lo};
}

template <typename ValueT>
MergeCsr<ValueT> MergeCsr<ValueT>::from_csr(const Csr<ValueT>& csr,
                                            index_t num_partitions) {
  MergeCsr m;
  m.assign_from_csr(csr, num_partitions);
  return m;
}

template <typename ValueT>
void MergeCsr<ValueT>::assign_from_csr(const Csr<ValueT>& csr,
                                       index_t num_partitions) {
  SPMVML_ENSURE(num_partitions >= 1, "need at least one partition");
  rows_ = csr.rows();
  cols_ = csr.cols();
  row_ptr_.assign(csr.row_ptr().begin(), csr.row_ptr().end());
  col_idx_.assign(csr.col_idx().begin(), csr.col_idx().end());
  values_.assign(csr.values().begin(), csr.values().end());

  const index_t path_len = rows_ + csr.nnz();
  num_partitions = std::min(num_partitions, std::max<index_t>(path_len, 1));
  starts_.resize(static_cast<std::size_t>(num_partitions) + 1);
  for (index_t p = 0; p <= num_partitions; ++p) {
    const index_t diagonal = path_len * p / num_partitions;
    starts_[static_cast<std::size_t>(p)] =
        merge_path_search(diagonal, row_ptr_, rows_, csr.nnz());
  }
}

template <typename ValueT>
Csr<ValueT> MergeCsr<ValueT>::to_csr() const {
  return Csr<ValueT>(rows_, cols_, {row_ptr_.begin(), row_ptr_.end()},
                     {col_idx_.begin(), col_idx_.end()},
                     {values_.begin(), values_.end()});
}

template <typename ValueT>
void MergeCsr<ValueT>::spmv(std::span<const ValueT> x,
                            std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  // Walk the merge path partition by partition; every flush (including
  // the carry-out for a row split across partitions) lands in partition
  // order, matching the parallel two-phase kernel bit for bit.
  const auto add = [&y](index_t row, ValueT sum) {
    y[static_cast<std::size_t>(row)] += sum;
  };
  for (index_t part = 0; part < num_partitions(); ++part)
    walk_partition(x, part, add, add);
}

template <typename ValueT>
std::int64_t MergeCsr<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return (rows_ + 1) * idx + nnz() * idx +
         nnz() * static_cast<std::int64_t>(sizeof(ValueT)) +
         static_cast<std::int64_t>(starts_.size()) * 2 * idx;
}

template <typename ValueT>
void MergeCsr<ValueT>::validate() const {
  SPMVML_ENSURE(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
                "row_ptr size mismatch");
  SPMVML_ENSURE(!starts_.empty(), "partition table missing");
  SPMVML_ENSURE(starts_.front().row == 0 && starts_.front().nz == 0,
                "first partition must start at origin");
  SPMVML_ENSURE(starts_.back().row == rows_ && starts_.back().nz == nnz(),
                "last partition must end at terminus");
  for (std::size_t p = 1; p < starts_.size(); ++p) {
    SPMVML_ENSURE(starts_[p].row >= starts_[p - 1].row &&
                      starts_[p].nz >= starts_[p - 1].nz,
                  "partition coordinates must be monotone");
  }
}

template class MergeCsr<float>;
template class MergeCsr<double>;

}  // namespace spmvml
