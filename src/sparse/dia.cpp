#include "sparse/dia.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Dia<ValueT> Dia<ValueT>::from_csr(const Csr<ValueT>& csr, index_t max_diags) {
  // First pass: which diagonals are occupied?
  std::map<index_t, index_t> diag_counts;
  for (index_t r = 0; r < csr.rows(); ++r)
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p)
      ++diag_counts[csr.col_idx()[p] - r];
  SPMVML_ENSURE(max_diags == 0 ||
                    static_cast<index_t>(diag_counts.size()) <= max_diags,
                "matrix needs " + std::to_string(diag_counts.size()) +
                    " diagonals; DIA capped at " + std::to_string(max_diags));

  Dia dia;
  dia.rows_ = csr.rows();
  dia.cols_ = csr.cols();
  dia.nnz_ = csr.nnz();
  dia.offsets_.reserve(diag_counts.size());
  std::map<index_t, index_t> slot_of;
  for (const auto& [offset, count] : diag_counts) {
    (void)count;
    slot_of[offset] = static_cast<index_t>(dia.offsets_.size());
    dia.offsets_.push_back(offset);
  }
  dia.data_.assign(static_cast<std::size_t>(dia.offsets_.size()) *
                       static_cast<std::size_t>(dia.rows_),
                   ValueT{});
  for (index_t r = 0; r < csr.rows(); ++r) {
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p) {
      const index_t d = slot_of[csr.col_idx()[p] - r];
      dia.data_[static_cast<std::size_t>(d) *
                    static_cast<std::size_t>(dia.rows_) +
                static_cast<std::size_t>(r)] = csr.values()[p];
    }
  }
  return dia;
}

template <typename ValueT>
double Dia<ValueT>::fill_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(offsets_.size()) * static_cast<double>(rows_) /
         static_cast<double>(nnz_);
}

template <typename ValueT>
void Dia<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t offset = offsets_[d];
    const ValueT* lane = &data_[d * static_cast<std::size_t>(rows_)];
    const index_t r_lo = std::max<index_t>(0, -offset);
    const index_t r_hi = std::min<index_t>(rows_, cols_ - offset);
    for (index_t r = r_lo; r < r_hi; ++r)
      y[r] += lane[r] * x[r + offset];
  }
}

template <typename ValueT>
std::int64_t Dia<ValueT>::bytes() const {
  return static_cast<std::int64_t>(offsets_.size()) * 4 +
         static_cast<std::int64_t>(data_.size()) *
             static_cast<std::int64_t>(sizeof(ValueT));
}

template <typename ValueT>
void Dia<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(data_.size() == offsets_.size() *
                                    static_cast<std::size_t>(rows_),
                "DIA data size mismatch");
  for (std::size_t d = 1; d < offsets_.size(); ++d)
    SPMVML_ENSURE(offsets_[d - 1] < offsets_[d],
                  "DIA offsets must be strictly ascending");
}

template class Dia<float>;
template class Dia<double>;

}  // namespace spmvml
