// COO (coordinate) format — three parallel arrays of row/col/value.
//
// The SpMV kernel mirrors the Bell & Garland GPU strategy: compute all
// products, then a segmented reduction by row (here a sequential scan with
// carry, which is the serial projection of the same algorithm).
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Coo {
 public:
  Coo() = default;

  /// Takes ownership of prebuilt arrays sorted row-major; validates.
  Coo(index_t rows, index_t cols, std::vector<index_t> row_idx,
      std::vector<index_t> col_idx, std::vector<ValueT> values);

  static Coo from_csr(const Csr<ValueT>& csr);

  /// In-place conversion reusing this object's buffers (no allocation
  /// when capacities already suffice — the ConversionArena warm path).
  void assign_from_csr(const Csr<ValueT>& csr);

  /// Back-conversion (COO is sorted row-major by invariant).
  Csr<ValueT> to_csr() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  std::span<const index_t> row_idx() const { return row_idx_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const ValueT> values() const { return values_; }

  /// y = A*x via product + segmented reduction over the row index stream.
  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  /// y += A*x (no zero-fill) — the spill-add HYB needs without a
  /// temporary vector.
  void spmv_accumulate(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

  bool operator==(const Coo&) const = default;

 private:
  // Hyb fills the spill arrays directly during its single-pass split.
  template <typename>
  friend class Hyb;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_idx_;
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
};

extern template class Coo<float>;
extern template class Coo<double>;

}  // namespace spmvml
