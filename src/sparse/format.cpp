#include "sparse/format.hpp"

#include "common/error.hpp"

namespace spmvml {

const char* format_name(Format f) {
  switch (f) {
    case Format::kCoo: return "COO";
    case Format::kCsr: return "CSR";
    case Format::kEll: return "ELL";
    case Format::kHyb: return "HYB";
    case Format::kCsr5: return "CSR5";
    case Format::kMergeCsr: return "merge-CSR";
    case Format::kSell: return "SELL";
  }
  SPMVML_ENSURE(false, "unreachable: invalid Format value");
  return "";
}

Format parse_format(const std::string& name) {
  for (Format f : kAllFormats)
    if (name == format_name(f)) return f;
  SPMVML_ENSURE(false, "unknown format name: " + name);
  return Format::kCsr;
}

}  // namespace spmvml
