// Runtime-dispatched SpMV over any of the six formats.
//
// AnyMatrix owns one concrete representation; build(format, csr) converts
// a CSR master copy into the requested format. This is the type the
// format-selector examples hand back to users.
#pragma once

#include <span>
#include <variant>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr5.hpp"
#include "sparse/ell.hpp"
#include "sparse/format.hpp"
#include "sparse/hyb.hpp"
#include "sparse/merge_csr.hpp"

namespace spmvml {

/// Sum-type over the six storage formats.
template <typename ValueT>
class AnyMatrix {
 public:
  AnyMatrix() = default;

  /// Convert `csr` into the requested format.
  static AnyMatrix build(Format format, const Csr<ValueT>& csr) {
    AnyMatrix m;
    m.format_ = format;
    switch (format) {
      case Format::kCoo: m.impl_ = Coo<ValueT>::from_csr(csr); break;
      case Format::kCsr: m.impl_ = csr; break;
      case Format::kEll: m.impl_ = Ell<ValueT>::from_csr(csr); break;
      case Format::kHyb: m.impl_ = Hyb<ValueT>::from_csr(csr); break;
      case Format::kCsr5: m.impl_ = Csr5<ValueT>::from_csr(csr); break;
      case Format::kMergeCsr: m.impl_ = MergeCsr<ValueT>::from_csr(csr); break;
    }
    return m;
  }

  Format format() const { return format_; }

  index_t rows() const {
    return std::visit([](const auto& m) { return m.rows(); }, impl_);
  }
  index_t cols() const {
    return std::visit([](const auto& m) { return m.cols(); }, impl_);
  }
  index_t nnz() const {
    return std::visit([](const auto& m) { return m.nnz(); }, impl_);
  }
  std::int64_t bytes() const {
    return std::visit([](const auto& m) { return m.bytes(); }, impl_);
  }

  /// y = A*x using the stored format's kernel.
  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
    std::visit([&](const auto& m) { m.spmv(x, y); }, impl_);
  }

 private:
  // Default-constructed AnyMatrix holds an empty COO (the variant's first
  // alternative); format_ matches it.
  Format format_ = Format::kCoo;
  std::variant<Coo<ValueT>, Csr<ValueT>, Ell<ValueT>, Hyb<ValueT>,
               Csr5<ValueT>, MergeCsr<ValueT>>
      impl_;
};

/// Dense reference y = A*x computed straight from CSR with per-row
/// long-double accumulation; the oracle all format kernels are tested
/// against.
template <typename ValueT>
void spmv_reference(const Csr<ValueT>& a,
                    std::type_identity_t<std::span<const ValueT>> x,
                    std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  for (index_t r = 0; r < a.rows(); ++r) {
    long double sum = 0.0L;
    for (index_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p)
      sum += static_cast<long double>(a.values()[p]) *
             static_cast<long double>(x[a.col_idx()[p]]);
    y[r] = static_cast<ValueT>(sum);
  }
}

}  // namespace spmvml
