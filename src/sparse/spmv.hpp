// Runtime-dispatched SpMV over any of the seven formats.
//
// AnyMatrix owns one concrete representation; build(format, csr) converts
// a CSR master copy into the requested format. This is the type the
// format-selector examples hand back to users.
#pragma once

#include <span>
#include <type_traits>
#include <variant>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr5.hpp"
#include "sparse/ell.hpp"
#include "sparse/format.hpp"
#include "sparse/hyb.hpp"
#include "sparse/merge_csr.hpp"
#include "sparse/sell.hpp"

namespace spmvml {

/// Tunable conversion parameters threaded from the arena/oracle down to
/// the format constructors. Today this is SELL's (C, sigma) pair; the
/// defaults match the cost model's assumptions (ML-predicted tuning is
/// a follow-up, see ROADMAP).
struct ConvertParams {
  index_t sell_c = 32;
  index_t sell_sigma = 128;

  bool operator==(const ConvertParams&) const = default;
};

/// Sum-type over the seven storage formats.
template <typename ValueT>
class AnyMatrix {
 public:
  AnyMatrix() = default;

  /// Convert `csr` into the requested format.
  static AnyMatrix build(Format format, const Csr<ValueT>& csr) {
    AnyMatrix m;
    m.rebuild(format, csr);
    return m;
  }

  /// Convert `csr` into the requested format in place. When the variant
  /// already holds the target alternative its buffers are reused (the
  /// ConversionArena warm path allocates nothing); otherwise the
  /// alternative is emplaced fresh. `scratch`, if given, supplies the
  /// CSR5 conversion workspace; `params` carries the SELL (C, sigma).
  void rebuild(Format format, const Csr<ValueT>& csr,
               ConversionScratch* scratch = nullptr,
               const ConvertParams& params = {}) {
    format_ = format;
    switch (format) {
      case Format::kCoo: ensure<Coo<ValueT>>().assign_from_csr(csr); break;
      case Format::kCsr: ensure<Csr<ValueT>>() = csr; break;
      case Format::kEll: ensure<Ell<ValueT>>().assign_from_csr(csr); break;
      case Format::kHyb: ensure<Hyb<ValueT>>().assign_from_csr(csr); break;
      case Format::kCsr5:
        ensure<Csr5<ValueT>>().assign_from_csr(csr, 32, 16, scratch);
        break;
      case Format::kMergeCsr:
        ensure<MergeCsr<ValueT>>().assign_from_csr(csr);
        break;
      case Format::kSell:
        ensure<Sell<ValueT>>().assign_from_csr(csr, params.sell_c,
                                               params.sell_sigma);
        break;
    }
  }

  /// Recover the CSR master copy from whatever format is stored.
  Csr<ValueT> to_csr() const {
    return std::visit(
        [](const auto& m) {
          if constexpr (std::is_same_v<std::decay_t<decltype(m)>,
                                       Csr<ValueT>>) {
            return m;
          } else {
            return m.to_csr();
          }
        },
        impl_);
  }

  Format format() const { return format_; }

  index_t rows() const {
    return std::visit([](const auto& m) { return m.rows(); }, impl_);
  }
  index_t cols() const {
    return std::visit([](const auto& m) { return m.cols(); }, impl_);
  }
  index_t nnz() const {
    return std::visit([](const auto& m) { return m.nnz(); }, impl_);
  }
  std::int64_t bytes() const {
    return std::visit([](const auto& m) { return m.bytes(); }, impl_);
  }

  /// y = A*x using the stored format's kernel.
  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
    std::visit([&](const auto& m) { m.spmv(x, y); }, impl_);
  }

  /// The concrete representation (tests and kernels that need the
  /// format-specific API).
  template <typename Alt>
  const Alt& get() const {
    return std::get<Alt>(impl_);
  }

  bool operator==(const AnyMatrix&) const = default;

 private:
  /// Reference to the variant's Alt alternative, emplacing it only when a
  /// different format is currently held (so buffers survive rebuilds).
  template <typename Alt>
  Alt& ensure() {
    if (!std::holds_alternative<Alt>(impl_)) impl_.template emplace<Alt>();
    return std::get<Alt>(impl_);
  }

  // Default-constructed AnyMatrix holds an empty COO (the variant's first
  // alternative); format_ matches it.
  Format format_ = Format::kCoo;
  std::variant<Coo<ValueT>, Csr<ValueT>, Ell<ValueT>, Hyb<ValueT>,
               Csr5<ValueT>, MergeCsr<ValueT>, Sell<ValueT>>
      impl_;
};

/// Dense reference y = A*x computed straight from CSR with per-row
/// long-double accumulation; the oracle all format kernels are tested
/// against.
template <typename ValueT>
void spmv_reference(const Csr<ValueT>& a,
                    std::type_identity_t<std::span<const ValueT>> x,
                    std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  for (index_t r = 0; r < a.rows(); ++r) {
    long double sum = 0.0L;
    for (index_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p)
      sum += static_cast<long double>(a.values()[p]) *
             static_cast<long double>(x[a.col_idx()[p]]);
    y[r] = static_cast<ValueT>(sum);
  }
}

}  // namespace spmvml
