#include "sparse/coo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

template <typename ValueT>
Coo<ValueT>::Coo(index_t rows, index_t cols, std::vector<index_t> row_idx,
                 std::vector<index_t> col_idx, std::vector<ValueT> values)
    : rows_(rows),
      cols_(cols),
      row_idx_(std::move(row_idx)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  validate();
}

template <typename ValueT>
Coo<ValueT> Coo<ValueT>::from_csr(const Csr<ValueT>& csr) {
  Coo coo;
  coo.assign_from_csr(csr);
  return coo;
}

template <typename ValueT>
void Coo<ValueT>::assign_from_csr(const Csr<ValueT>& csr) {
  rows_ = csr.rows();
  cols_ = csr.cols();
  row_idx_.resize(static_cast<std::size_t>(csr.nnz()));
  for (index_t r = 0; r < csr.rows(); ++r)
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p)
      row_idx_[static_cast<std::size_t>(p)] = r;
  col_idx_.assign(csr.col_idx().begin(), csr.col_idx().end());
  values_.assign(csr.values().begin(), csr.values().end());
}

template <typename ValueT>
Csr<ValueT> Coo<ValueT>::to_csr() const {
  return Csr<ValueT>::from_coo(*this);
}

template <typename ValueT>
void Coo<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  std::fill(y.begin(), y.end(), ValueT{});
  spmv_accumulate(x, y);
}

template <typename ValueT>
void Coo<ValueT>::spmv_accumulate(std::span<const ValueT> x,
                                  std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  // Product phase (vectorized, chunked through a stack buffer) followed
  // by the segmented reduction with a running carry, flushed on each row
  // boundary — the sequential projection of warp segmented scan. The
  // products are elementwise, so the carry sums match the scalar kernel
  // bit for bit.
  constexpr index_t kChunk = 1024;
  ValueT products[kChunk];
  ValueT carry{};
  index_t current_row = nnz() > 0 ? row_idx_[0] : 0;
  for (index_t base = 0; base < nnz(); base += kChunk) {
    const index_t len = std::min(kChunk, nnz() - base);
    simd::mul_gather(values_.data() + base, col_idx_.data() + base, x.data(),
                     products, len);
    for (index_t i = 0; i < len; ++i) {
      const index_t row = row_idx_[static_cast<std::size_t>(base + i)];
      if (row != current_row) {
        y[static_cast<std::size_t>(current_row)] += carry;
        carry = ValueT{};
        current_row = row;
      }
      carry += products[i];
    }
  }
  if (nnz() > 0) y[static_cast<std::size_t>(current_row)] += carry;
}

template <typename ValueT>
std::int64_t Coo<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return nnz() * (2 * idx + static_cast<std::int64_t>(sizeof(ValueT)));
}

template <typename ValueT>
void Coo<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(row_idx_.size() == values_.size() &&
                    col_idx_.size() == values_.size(),
                "COO arrays must have equal length");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    SPMVML_ENSURE(row_idx_[i] >= 0 && row_idx_[i] < rows_,
                  "row index out of range");
    SPMVML_ENSURE(col_idx_[i] >= 0 && col_idx_[i] < cols_,
                  "col index out of range");
    if (i > 0)
      SPMVML_ENSURE(row_idx_[i - 1] < row_idx_[i] ||
                        (row_idx_[i - 1] == row_idx_[i] &&
                         col_idx_[i - 1] < col_idx_[i]),
                    "COO entries must be sorted row-major, no duplicates");
  }
}

template class Coo<float>;
template class Coo<double>;

}  // namespace spmvml
