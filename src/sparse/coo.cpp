#include "sparse/coo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Coo<ValueT>::Coo(index_t rows, index_t cols, std::vector<index_t> row_idx,
                 std::vector<index_t> col_idx, std::vector<ValueT> values)
    : rows_(rows),
      cols_(cols),
      row_idx_(std::move(row_idx)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  validate();
}

template <typename ValueT>
Coo<ValueT> Coo<ValueT>::from_csr(const Csr<ValueT>& csr) {
  std::vector<index_t> row_idx(static_cast<std::size_t>(csr.nnz()));
  for (index_t r = 0; r < csr.rows(); ++r)
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p)
      row_idx[static_cast<std::size_t>(p)] = r;
  return Coo(csr.rows(), csr.cols(), std::move(row_idx),
             {csr.col_idx().begin(), csr.col_idx().end()},
             {csr.values().begin(), csr.values().end()});
}

template <typename ValueT>
void Coo<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  // Product phase + segmented reduction with a running carry, flushed on
  // each row boundary — the sequential projection of warp segmented scan.
  ValueT carry{};
  index_t current_row = nnz() > 0 ? row_idx_[0] : 0;
  for (index_t i = 0; i < nnz(); ++i) {
    if (row_idx_[i] != current_row) {
      y[current_row] += carry;
      carry = ValueT{};
      current_row = row_idx_[i];
    }
    carry += values_[i] * x[col_idx_[i]];
  }
  if (nnz() > 0) y[current_row] += carry;
}

template <typename ValueT>
std::int64_t Coo<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return nnz() * (2 * idx + static_cast<std::int64_t>(sizeof(ValueT)));
}

template <typename ValueT>
void Coo<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(row_idx_.size() == values_.size() &&
                    col_idx_.size() == values_.size(),
                "COO arrays must have equal length");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    SPMVML_ENSURE(row_idx_[i] >= 0 && row_idx_[i] < rows_,
                  "row index out of range");
    SPMVML_ENSURE(col_idx_[i] >= 0 && col_idx_[i] < cols_,
                  "col index out of range");
    if (i > 0)
      SPMVML_ENSURE(row_idx_[i - 1] < row_idx_[i] ||
                        (row_idx_[i - 1] == row_idx_[i] &&
                         col_idx_[i - 1] < col_idx_[i]),
                    "COO entries must be sorted row-major, no duplicates");
  }
}

template class Coo<float>;
template class Coo<double>;

}  // namespace spmvml
