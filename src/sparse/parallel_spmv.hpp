// Shared-memory parallel SpMV kernels (OpenMP when available).
//
// The serial kernels in each format class are the reference semantics and
// every variant here is built from the SAME simd primitives (simd::dot,
// Ell::spmv_rows, MergeCsr::walk_partition), so serial, SIMD and parallel
// runs produce bitwise-identical y — the contract the differential test
// suite enforces. The formats whose work decomposes cleanly:
//   * CSR  — row-parallel (each row owned by one task; no races).
//   * ELL  — parallel over row blocks of the column-major slots; the
//     kernel is elementwise per (row, slot) so blocking cannot change
//     any row's accumulation order.
//   * HYB  — parallel ELL part + serial COO spill (the spill is small by
//            construction).
//   * SELL — parallel over slice blocks; the sorted-row permutation
//     partitions output rows across slices (each y row is owned by
//     exactly one slice), so blocking cannot race or reorder any row's
//     ascending-slot-column accumulation.
//   * merge-CSR — the real merge-path decomposition: y is zero-filled,
//     every partition accumulates the rows whose boundary it owns (each
//     such flush is unique to one partition, so writes are race-free),
//     and one trailing carry (row, partial) per partition is applied in a
//     serial second phase — exactly the CUDA kernel's fix-up pass. For a
//     row spanning partitions p..q only partition p can flush directly
//     (any later partition's flush into it is that partition's first and
//     goes to a carry), and carries land in partition order, so the adds
//     into each y[r] replay the serial walk exactly.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"
#include "sparse/merge_csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

/// y = A*x, rows in parallel.
template <typename ValueT>
void spmv_parallel(const Csr<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const auto dot = simd::dot_kernel<ValueT>();
  parallel_for(a.rows(), [&](index_t r) {
    const index_t begin = row_ptr[static_cast<std::size_t>(r)];
    y[static_cast<std::size_t>(r)] =
        dot(values.data() + begin, col_idx.data() + begin, x.data(),
            row_ptr[static_cast<std::size_t>(r) + 1] - begin);
  });
}

/// y = A*x, parallel over row blocks of the ELL slots.
template <typename ValueT>
void spmv_parallel(const Ell<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  constexpr index_t kBlock = 4096;  // rows per task
  const index_t blocks = (a.rows() + kBlock - 1) / kBlock;
  parallel_for(blocks, [&](index_t b) {
    const index_t begin = b * kBlock;
    const index_t count = std::min<index_t>(kBlock, a.rows() - begin);
    std::fill(y.begin() + begin, y.begin() + begin + count, ValueT{});
    a.spmv_rows(x, y, begin, count);
  });
}

/// y = A*x, parallel over SELL slice blocks (each slice owns the y rows
/// its permutation entries name — race-free by construction).
template <typename ValueT>
void spmv_parallel(const Sell<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  const index_t slices = a.num_slices();
  // ~4096 rows per task, like the ELL row blocking.
  const index_t per_block =
      std::max<index_t>(1, 4096 / std::max<index_t>(1, a.slice_height()));
  const index_t blocks = (slices + per_block - 1) / per_block;
  parallel_for(blocks, [&](index_t b) {
    const index_t begin = b * per_block;
    a.spmv_slices(x, y, begin, std::min<index_t>(per_block, slices - begin));
  });
}

/// y = A*x: parallel ELL prefix + serial COO spill.
template <typename ValueT>
void spmv_parallel(const Hyb<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  spmv_parallel(a.ell_part(), x, y);
  a.coo_part().spmv_accumulate(x, y);
}

/// y = A*x via the two-phase parallel merge-path algorithm.
template <typename ValueT>
void spmv_parallel(const MergeCsr<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  const index_t parts = a.num_partitions();

  struct Carry {
    index_t row = -1;
    ValueT value{};
  };
  std::vector<Carry> carries(static_cast<std::size_t>(parts));

  // Zero-fill so every phase-1 write can be '+=' (each non-carry flush is
  // unique to one partition — no races).
  parallel_for(a.rows(),
               [&](index_t r) { y[static_cast<std::size_t>(r)] = ValueT{}; });

  parallel_for(parts, [&](index_t part) {
    auto& carry = carries[static_cast<std::size_t>(part)];
    bool first_flush = true;
    // The first flush of a partition may belong to a row begun in an
    // earlier partition: stash it for the serial fix-up. Later flushes
    // (including the trailing partial) are unique to this partition.
    const auto handle = [&](index_t row, ValueT sum) {
      if (first_flush) {
        carry.row = row;
        carry.value = sum;
        first_flush = false;
      } else {
        y[static_cast<std::size_t>(row)] += sum;
      }
    };
    a.walk_partition(x, part, handle, handle);
  });

  // Phase 2: serial carry fix-up, in partition order.
  for (const auto& c : carries)
    if (c.row >= 0 && c.row < a.rows())
      y[static_cast<std::size_t>(c.row)] += c.value;
}

}  // namespace spmvml
