// Shared-memory parallel SpMV kernels (OpenMP when available).
//
// The serial kernels in each format class are the reference semantics;
// these variants parallelise the formats whose work decomposes cleanly:
//   * CSR  — row-parallel (each row owned by one task; no races).
//   * ELL  — row-parallel over the column-major slots.
//   * HYB  — parallel ELL part + serial COO spill (the spill is small by
//            construction).
//   * merge-CSR — the real merge-path decomposition: y is zero-filled,
//     every partition accumulates the rows whose boundary it owns (each
//     such flush is unique to one partition, so writes are race-free),
//     and one trailing carry (row, partial) per partition is applied in a
//     serial second phase — exactly the CUDA kernel's fix-up pass.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"
#include "sparse/merge_csr.hpp"

namespace spmvml {

/// y = A*x, rows in parallel.
template <typename ValueT>
void spmv_parallel(const Csr<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  parallel_for(a.rows(), [&](index_t r) {
    ValueT sum{};
    for (index_t p = row_ptr[static_cast<std::size_t>(r)];
         p < row_ptr[static_cast<std::size_t>(r) + 1]; ++p)
      sum += values[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(p)])];
    y[static_cast<std::size_t>(r)] = sum;
  });
}

/// y = A*x, rows in parallel over the ELL slots.
template <typename ValueT>
void spmv_parallel(const Ell<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  parallel_for(a.rows(), [&](index_t r) {
    ValueT sum{};
    for (index_t k = 0; k < a.width(); ++k) {
      const index_t c = a.col_at(r, k);
      if (c != Ell<ValueT>::kPad)
        sum += a.val_at(r, k) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  });
}

/// y = A*x: parallel ELL prefix + serial COO spill.
template <typename ValueT>
void spmv_parallel(const Hyb<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  spmv_parallel(a.ell_part(), x, y);
  const auto& coo = a.coo_part();
  for (index_t i = 0; i < coo.nnz(); ++i)
    y[static_cast<std::size_t>(coo.row_idx()[static_cast<std::size_t>(i)])] +=
        coo.values()[static_cast<std::size_t>(i)] *
        x[static_cast<std::size_t>(
            coo.col_idx()[static_cast<std::size_t>(i)])];
}

/// y = A*x via the two-phase parallel merge-path algorithm.
template <typename ValueT>
void spmv_parallel(const MergeCsr<ValueT>& a,
                   std::type_identity_t<std::span<const ValueT>> x,
                   std::type_identity_t<std::span<ValueT>> y) {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == a.cols(), "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == a.rows(), "y size != rows");
  const index_t parts = a.num_partitions();

  struct Carry {
    index_t row = -1;
    ValueT value{};
  };
  std::vector<Carry> carries(static_cast<std::size_t>(parts));

  // Zero-fill so every phase-1 write can be '+=' (each non-carry flush is
  // unique to one partition — no races).
  parallel_for(a.rows(),
               [&](index_t r) { y[static_cast<std::size_t>(r)] = ValueT{}; });

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  parallel_for(parts, [&](index_t part) {
    MergeCoordinate cur = a.partition_start(part);
    const MergeCoordinate end = a.partition_start(part + 1);
    auto& carry = carries[static_cast<std::size_t>(part)];
    ValueT sum{};
    bool first_flush = true;
    while (cur.row < end.row || cur.nz < end.nz) {
      if (cur.row < a.rows() &&
          cur.nz < row_ptr[static_cast<std::size_t>(cur.row) + 1] &&
          cur.nz < a.nnz()) {
        sum += values[static_cast<std::size_t>(cur.nz)] *
               x[static_cast<std::size_t>(
                   col_idx[static_cast<std::size_t>(cur.nz)])];
        ++cur.nz;
      } else {
        if (first_flush) {
          // May belong to a row begun in an earlier partition: stash it
          // for the serial fix-up.
          carry.row = cur.row;
          carry.value = sum;
          first_flush = false;
        } else {
          y[static_cast<std::size_t>(cur.row)] += sum;
        }
        sum = ValueT{};
        ++cur.row;
      }
    }
    // Trailing partial of the row the partition ends inside.
    if (cur.row < a.rows()) {
      if (first_flush) {
        carry.row = cur.row;
        carry.value = sum;
      } else {
        y[static_cast<std::size_t>(cur.row)] += sum;
      }
    }
  });

  // Phase 2: serial carry fix-up.
  for (const auto& c : carries)
    if (c.row >= 0 && c.row < a.rows())
      y[static_cast<std::size_t>(c.row)] += c.value;
}

}  // namespace spmvml
