// Merge-based CSR SpMV (Merrill & Garland, PPoPP'16) — §II-A.6.
//
// Works on the standard CSR arrays. The computation is modeled as a merge
// of two lists: the row-end offsets (row_ptr[1..rows]) and the natural
// numbers indexing nonzeros. The merge path has length rows+nnz and is cut
// into equal pieces with a 2D diagonal binary search, so every "thread"
// (partition) gets the same amount of work regardless of row-length skew.
// Partial row sums at partition edges are resolved with += carries into a
// zero-initialised y (the serial projection of the CUDA fix-up pass).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sparse/simd.hpp"
#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

/// A (row, nonzero) coordinate on the merge path.
struct MergeCoordinate {
  index_t row = 0;
  index_t nz = 0;

  bool operator==(const MergeCoordinate&) const = default;
};

template <typename ValueT>
class MergeCsr {
 public:
  MergeCsr() = default;

  /// num_partitions models the GPU thread count; any value >= 1 yields the
  /// same result (a property-tested invariant).
  static MergeCsr from_csr(const Csr<ValueT>& csr, index_t num_partitions = 256);

  /// In-place conversion reusing this object's buffers (no allocation
  /// when capacities already suffice — the ConversionArena warm path).
  void assign_from_csr(const Csr<ValueT>& csr, index_t num_partitions = 256);

  /// Back-conversion (merge-CSR stores the plain CSR arrays verbatim).
  Csr<ValueT> to_csr() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  index_t num_partitions() const {
    return static_cast<index_t>(starts_.size()) - 1;
  }

  /// Starting coordinate of partition p (exposed for tests/benches).
  MergeCoordinate partition_start(index_t p) const { return starts_[static_cast<std::size_t>(p)]; }

  /// Raw CSR arrays (the parallel kernel in parallel_spmv.hpp needs them).
  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const ValueT> values() const { return values_; }

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

  /// The diagonal binary search the GPU kernel runs per thread: finds the
  /// merge-path coordinate at distance `diagonal` from the origin.
  static MergeCoordinate merge_path_search(index_t diagonal,
                                           std::span<const index_t> row_ptr,
                                           index_t rows, index_t nnz);

  /// Walk partition `part`'s merge-path span, calling
  /// `flush(row, partial_sum)` at every row boundary crossed and
  /// `trailing(row, partial_sum)` once for the row the partition ends
  /// inside (flushed with sum 0 when it ends exactly on a boundary).
  /// Each row segment is one contiguous nonzero run summed with
  /// simd::dot, so the serial kernel and the parallel two-phase kernel —
  /// both built on this walker — produce bitwise-identical partials.
  template <typename Flush, typename Trailing>
  void walk_partition(std::span<const ValueT> x, index_t part, Flush&& flush,
                      Trailing&& trailing) const;

  bool operator==(const MergeCsr&) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
  std::vector<MergeCoordinate> starts_;  // num_partitions+1 entries
};

template <typename ValueT>
template <typename Flush, typename Trailing>
void MergeCsr<ValueT>::walk_partition(std::span<const ValueT> x, index_t part,
                                      Flush&& flush,
                                      Trailing&& trailing) const {
  MergeCoordinate cur = starts_[static_cast<std::size_t>(part)];
  const MergeCoordinate end = starts_[static_cast<std::size_t>(part) + 1];
  const auto dot = simd::dot_kernel<ValueT>();
  ValueT sum{};
  while (cur.row < end.row || cur.nz < end.nz) {
    if (cur.row < rows_ &&
        cur.nz < row_ptr_[static_cast<std::size_t>(cur.row) + 1] &&
        cur.nz < nnz()) {
      // Whole contiguous run of the current row inside this partition,
      // summed with the shared lane-dot kernel.
      index_t run_end = row_ptr_[static_cast<std::size_t>(cur.row) + 1];
      if (cur.row == end.row) run_end = std::min(run_end, end.nz);
      sum += dot(values_.data() + cur.nz, col_idx_.data() + cur.nz, x.data(),
                 run_end - cur.nz);
      cur.nz = run_end;
    } else {
      flush(cur.row, sum);
      sum = ValueT{};
      ++cur.row;
    }
  }
  // Trailing partial of the row the partition ends inside.
  if (cur.row < rows_) trailing(cur.row, sum);
}

extern template class MergeCsr<float>;
extern template class MergeCsr<double>;

}  // namespace spmvml
