// Matrix Market (.mtx) I/O — the interchange format of the SuiteSparse
// collection the paper's corpus comes from.
//
// Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.
// Symmetric inputs are expanded to full storage on read (off-diagonal
// entries mirrored), matching how SpMV studies consume SuiteSparse files.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace spmvml {

/// Read a Matrix Market file into CSR. Throws spmvml::Error on malformed
/// input or unsupported qualifiers (complex, array, skew/hermitian).
Csr<double> read_matrix_market(const std::string& path);

/// Stream variant (unit-testable without touching the filesystem).
Csr<double> read_matrix_market(std::istream& in);

/// Write CSR as `matrix coordinate real general` with 1-based indices.
void write_matrix_market(const std::string& path, const Csr<double>& m);
void write_matrix_market(std::ostream& out, const Csr<double>& m);

}  // namespace spmvml
