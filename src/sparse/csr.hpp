// Compressed Sparse Row (CSR) — the hub format of the library.
//
// All other formats convert from/to Csr; the synthetic generators emit Csr;
// feature extraction and the GPU simulator's structural digest both scan
// Csr. Invariants (sorted row_ptr, in-range sorted column indices) are
// checked by validate() and established by the canonical constructors.
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Coo;  // forward declaration; defined in sparse/coo.hpp

/// CSR sparse matrix: row_ptr (rows+1), col_idx and values (nnz each),
/// entries of a row stored contiguously with strictly increasing columns.
template <typename ValueT>
class Csr {
 public:
  Csr() = default;

  /// Takes ownership of prebuilt arrays; validates invariants.
  Csr(index_t rows, index_t cols, std::vector<index_t> row_ptr,
      std::vector<index_t> col_idx, std::vector<ValueT> values);

  /// Build from (possibly unsorted, possibly duplicated) triplets;
  /// duplicates are summed, matching Matrix Market semantics.
  static Csr from_triplets(index_t rows, index_t cols,
                           std::vector<Triplet<ValueT>> entries);

  /// Convert from COO (asserts the COO is sorted row-major).
  static Csr from_coo(const Coo<ValueT>& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const ValueT> values() const { return values_; }
  std::span<ValueT> values_mut() { return values_; }

  /// Number of stored entries in row i.
  index_t row_nnz(index_t i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// y = A*x. Sequential row-wise kernel (the "scalar CSR" kernel of
  /// Bell & Garland, executed on CPU). x.size()==cols, y.size()==rows.
  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  /// Device-memory footprint in bytes for the given value width.
  /// Index arrays are counted at 4 bytes each, matching the 32-bit
  /// indices GPU SpMV libraries use.
  std::int64_t bytes() const;

  /// Throws spmvml::Error if any structural invariant is violated.
  void validate() const;

  /// Transpose (used by the CG example for A^T when needed).
  Csr transpose() const;

  bool operator==(const Csr& other) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_ = {0};
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
};

extern template class Csr<float>;
extern template class Csr<double>;

}  // namespace spmvml
