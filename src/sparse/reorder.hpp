// Bandwidth-reducing reordering (reverse Cuthill–McKee).
//
// SpMV's x-gather locality — the very channel the GPU cost model charges
// for — depends on the matrix ordering. RCM relabels a square matrix so
// nonzeros cluster near the diagonal, often flipping which storage format
// wins (demonstrated in bench/reordering_study).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvml {

/// Reverse Cuthill–McKee ordering of the symmetrised pattern of a square
/// matrix. Returns `order` such that new row i is old row order[i];
/// disconnected components are processed from lowest-degree seeds.
std::vector<index_t> rcm_ordering(const Csr<double>& m);

/// Symmetric permutation A' = P A P^T: new row i is old row order[i] and
/// columns are relabelled the same way. `order` must be a permutation.
Csr<double> permute_symmetric(const Csr<double>& m,
                              std::span<const index_t> order);

/// Matrix bandwidth: max |col - row| over stored entries (0 if empty).
index_t bandwidth(const Csr<double>& m);

}  // namespace spmvml
