// BSR (block sparse row) — CSR over dense b x b blocks; the format GPU
// libraries offer for block-structured multi-physics systems (the paper's
// §VII notes Zhao et al. handle BSR on GPUs). Register-blocked SpMV
// amortises index loads over b^2 values but pays zero-fill for partially
// occupied blocks.
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Bsr {
 public:
  Bsr() = default;

  /// Convert from CSR with block edge `b` (rows/cols are padded up to a
  /// multiple of b logically; padding never materialises values).
  static Bsr from_csr(const Csr<ValueT>& csr, index_t b = 4);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  index_t block_size() const { return b_; }
  index_t num_blocks() const {
    return static_cast<index_t>(block_cols_.size());
  }

  /// Stored slots (blocks * b^2) over useful entries.
  double fill_ratio() const;

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t b_ = 0;
  index_t block_rows_ = 0;
  std::vector<index_t> block_row_ptr_;  // block_rows+1
  std::vector<index_t> block_cols_;     // block-column index per block
  std::vector<ValueT> blocks_;          // num_blocks * b*b, row-major blocks
};

extern template class Bsr<float>;
extern template class Bsr<double>;

}  // namespace spmvml
