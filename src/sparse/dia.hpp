// DIA (diagonal) format — the format Zhao et al.'s CPU study adds to the
// candidate set (§VII). Stores one dense array per occupied diagonal;
// unbeatable for banded stencils, catastrophic for unstructured matrices
// (every occupied diagonal costs a full rows-length lane).
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Dia {
 public:
  Dia() = default;

  /// Convert from CSR. Throws if the matrix would need more than
  /// `max_diags` diagonals (DIA is only sane for banded structures);
  /// max_diags 0 means "no limit".
  static Dia from_csr(const Csr<ValueT>& csr, index_t max_diags = 0);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  index_t num_diagonals() const {
    return static_cast<index_t>(offsets_.size());
  }

  /// Stored slots over useful entries (the DIA fill penalty).
  double fill_ratio() const;

  std::span<const index_t> offsets() const { return offsets_; }

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  std::int64_t bytes() const;

  void validate() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  std::vector<index_t> offsets_;  // diagonal offsets (col - row), ascending
  // data_[d * rows_ + r] = A(r, r + offsets_[d]), zero when out of range
  // or absent.
  std::vector<ValueT> data_;
};

extern template class Dia<float>;
extern template class Dia<double>;

}  // namespace spmvml
