#include "sparse/csr5.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Csr5<ValueT> Csr5<ValueT>::from_csr(const Csr<ValueT>& csr, index_t omega,
                                    index_t sigma) {
  SPMVML_ENSURE(omega > 0 && sigma > 0, "omega and sigma must be positive");
  Csr5 m;
  m.rows_ = csr.rows();
  m.cols_ = csr.cols();
  m.omega_ = omega;
  m.sigma_ = sigma;

  const index_t nnz = csr.nnz();
  const index_t tile = omega * sigma;
  m.num_full_tiles_ = nnz / tile;

  // row_of[p] and row-start flags in original CSR order.
  std::vector<index_t> row_of(static_cast<std::size_t>(nnz));
  m.flags_.assign(static_cast<std::size_t>((nnz + 63) / 64), 0);
  for (index_t r = 0; r < csr.rows(); ++r) {
    const index_t begin = csr.row_ptr()[r], end = csr.row_ptr()[r + 1];
    for (index_t p = begin; p < end; ++p) row_of[static_cast<std::size_t>(p)] = r;
    if (begin < end)
      m.flags_[static_cast<std::size_t>(begin >> 6)] |= 1ULL << (begin & 63);
  }

  // seg_rows_: destination row for every flagged position, in order.
  for (index_t p = 0; p < nnz; ++p)
    if (m.flag(p)) m.seg_rows_.push_back(row_of[static_cast<std::size_t>(p)]);

  // Prefix counts of flags let each lane find its first segment slot.
  std::vector<index_t> flags_before(static_cast<std::size_t>(nnz) + 1, 0);
  for (index_t p = 0; p < nnz; ++p)
    flags_before[static_cast<std::size_t>(p) + 1] =
        flags_before[static_cast<std::size_t>(p)] + (m.flag(p) ? 1 : 0);

  const index_t total_tiles = (nnz + tile - 1) / tile;
  m.tile_ptr_.resize(static_cast<std::size_t>(total_tiles));
  m.lane_row_.assign(static_cast<std::size_t>(m.num_full_tiles_ * omega), 0);
  m.lane_seg_.assign(static_cast<std::size_t>(m.num_full_tiles_ * omega), 0);

  m.values_.resize(static_cast<std::size_t>(nnz));
  m.col_idx_.resize(static_cast<std::size_t>(nnz));
  for (index_t t = 0; t < total_tiles; ++t) {
    const index_t start = t * tile;
    m.tile_ptr_[static_cast<std::size_t>(t)] =
        row_of[static_cast<std::size_t>(start)];
    if (t < m.num_full_tiles_) {
      for (index_t c = 0; c < omega; ++c) {
        const index_t lane_start = start + c * sigma;
        m.lane_row_[static_cast<std::size_t>(t * omega + c)] =
            row_of[static_cast<std::size_t>(lane_start)];
        m.lane_seg_[static_cast<std::size_t>(t * omega + c)] =
            flags_before[static_cast<std::size_t>(lane_start)];
        for (index_t s = 0; s < sigma; ++s) {
          const index_t orig = lane_start + s;
          const index_t stored = start + s * omega + c;
          m.values_[static_cast<std::size_t>(stored)] =
              csr.values()[static_cast<std::size_t>(orig)];
          m.col_idx_[static_cast<std::size_t>(stored)] =
              csr.col_idx()[static_cast<std::size_t>(orig)];
        }
      }
    } else {
      // Tail tile: natural order.
      for (index_t p = start; p < nnz; ++p) {
        m.values_[static_cast<std::size_t>(p)] =
            csr.values()[static_cast<std::size_t>(p)];
        m.col_idx_[static_cast<std::size_t>(p)] =
            csr.col_idx()[static_cast<std::size_t>(p)];
      }
    }
  }
  // Tail metadata reuses seg_rows_ via flags_before at runtime, stored in
  // lane_seg_-style scalars below.
  m.tail_row_ = nnz > m.num_full_tiles_ * tile
                    ? row_of[static_cast<std::size_t>(m.num_full_tiles_ * tile)]
                    : 0;
  m.tail_seg_ = nnz > m.num_full_tiles_ * tile
                    ? flags_before[static_cast<std::size_t>(m.num_full_tiles_ *
                                                            tile)]
                    : 0;
  return m;
}

template <typename ValueT>
void Csr5<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  const index_t tile = tile_size();
  for (index_t t = 0; t < num_full_tiles_; ++t) {
    const index_t start = t * tile;
    for (index_t c = 0; c < omega_; ++c) {
      index_t row = lane_row_[static_cast<std::size_t>(t * omega_ + c)];
      index_t si = lane_seg_[static_cast<std::size_t>(t * omega_ + c)];
      ValueT sum{};
      bool has = false;
      for (index_t s = 0; s < sigma_; ++s) {
        const index_t orig = start + c * sigma_ + s;
        if (flag(orig)) {
          if (has) {
            y[row] += sum;
            sum = ValueT{};
            has = false;
          }
          row = seg_rows_[static_cast<std::size_t>(si++)];
        }
        const index_t stored = start + s * omega_ + c;
        sum += values_[static_cast<std::size_t>(stored)] *
               x[col_idx_[static_cast<std::size_t>(stored)]];
        has = true;
      }
      if (has) y[row] += sum;
    }
  }
  // Tail: natural order with the same segmented-carry logic.
  const index_t tail_start = num_full_tiles_ * tile;
  if (tail_start < nnz()) {
    index_t row = tail_row_;
    index_t si = tail_seg_;
    ValueT sum{};
    bool has = false;
    for (index_t p = tail_start; p < nnz(); ++p) {
      if (flag(p)) {
        if (has) {
          y[row] += sum;
          sum = ValueT{};
          has = false;
        }
        row = seg_rows_[static_cast<std::size_t>(si++)];
      }
      sum += values_[static_cast<std::size_t>(p)] *
             x[col_idx_[static_cast<std::size_t>(p)]];
      has = true;
    }
    if (has) y[row] += sum;
  }
}

template <typename ValueT>
std::int64_t Csr5<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return nnz() * (idx + static_cast<std::int64_t>(sizeof(ValueT))) +
         static_cast<std::int64_t>(tile_ptr_.size()) * idx +
         static_cast<std::int64_t>(flags_.size()) * 8 +
         static_cast<std::int64_t>(lane_row_.size()) * idx +
         static_cast<std::int64_t>(lane_seg_.size()) * idx +
         static_cast<std::int64_t>(seg_rows_.size()) * idx;
}

template <typename ValueT>
void Csr5<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(values_.size() == col_idx_.size(), "array size mismatch");
  for (index_t c : col_idx_)
    SPMVML_ENSURE(c >= 0 && c < cols_, "column index out of range");
  SPMVML_ENSURE(
      static_cast<index_t>(lane_row_.size()) == num_full_tiles_ * omega_,
      "lane_row size mismatch");
}

template class Csr5<float>;
template class Csr5<double>;

}  // namespace spmvml
