#include "sparse/csr5.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

template <typename ValueT>
Csr5<ValueT> Csr5<ValueT>::from_csr(const Csr<ValueT>& csr, index_t omega,
                                    index_t sigma) {
  Csr5 m;
  m.assign_from_csr(csr, omega, sigma);
  return m;
}

template <typename ValueT>
void Csr5<ValueT>::assign_from_csr(const Csr<ValueT>& csr, index_t omega,
                                   index_t sigma,
                                   ConversionScratch* scratch) {
  SPMVML_ENSURE(omega > 0 && sigma > 0, "omega and sigma must be positive");
  ConversionScratch local;
  ConversionScratch& ws = scratch ? *scratch : local;
  rows_ = csr.rows();
  cols_ = csr.cols();
  omega_ = omega;
  sigma_ = sigma;

  const index_t nnz = csr.nnz();
  const index_t tile = omega * sigma;
  num_full_tiles_ = nnz / tile;

  // row_of[p] and row-start flags in original CSR order.
  ws.row_of.resize(static_cast<std::size_t>(nnz));
  flags_.assign(static_cast<std::size_t>((nnz + 63) / 64), 0);
  for (index_t r = 0; r < csr.rows(); ++r) {
    const index_t begin = csr.row_ptr()[r], end = csr.row_ptr()[r + 1];
    for (index_t p = begin; p < end; ++p)
      ws.row_of[static_cast<std::size_t>(p)] = r;
    if (begin < end)
      flags_[static_cast<std::size_t>(begin >> 6)] |= 1ULL << (begin & 63);
  }

  // seg_rows_: destination row for every flagged position, in order.
  seg_rows_.clear();
  for (index_t p = 0; p < nnz; ++p)
    if (flag(p)) seg_rows_.push_back(ws.row_of[static_cast<std::size_t>(p)]);

  // Prefix counts of flags let each lane find its first segment slot.
  ws.flags_before.assign(static_cast<std::size_t>(nnz) + 1, 0);
  for (index_t p = 0; p < nnz; ++p)
    ws.flags_before[static_cast<std::size_t>(p) + 1] =
        ws.flags_before[static_cast<std::size_t>(p)] + (flag(p) ? 1 : 0);

  const index_t total_tiles = (nnz + tile - 1) / tile;
  tile_ptr_.resize(static_cast<std::size_t>(total_tiles));
  lane_row_.assign(static_cast<std::size_t>(num_full_tiles_ * omega), 0);
  lane_seg_.assign(static_cast<std::size_t>(num_full_tiles_ * omega), 0);

  values_.resize(static_cast<std::size_t>(nnz));
  col_idx_.resize(static_cast<std::size_t>(nnz));
  for (index_t t = 0; t < total_tiles; ++t) {
    const index_t start = t * tile;
    tile_ptr_[static_cast<std::size_t>(t)] =
        ws.row_of[static_cast<std::size_t>(start)];
    if (t < num_full_tiles_) {
      for (index_t c = 0; c < omega; ++c) {
        const index_t lane_start = start + c * sigma;
        lane_row_[static_cast<std::size_t>(t * omega + c)] =
            ws.row_of[static_cast<std::size_t>(lane_start)];
        lane_seg_[static_cast<std::size_t>(t * omega + c)] =
            ws.flags_before[static_cast<std::size_t>(lane_start)];
        for (index_t s = 0; s < sigma; ++s) {
          const index_t orig = lane_start + s;
          const index_t stored = start + s * omega + c;
          values_[static_cast<std::size_t>(stored)] =
              csr.values()[static_cast<std::size_t>(orig)];
          col_idx_[static_cast<std::size_t>(stored)] =
              csr.col_idx()[static_cast<std::size_t>(orig)];
        }
      }
    } else {
      // Tail tile: natural order.
      for (index_t p = start; p < nnz; ++p) {
        values_[static_cast<std::size_t>(p)] =
            csr.values()[static_cast<std::size_t>(p)];
        col_idx_[static_cast<std::size_t>(p)] =
            csr.col_idx()[static_cast<std::size_t>(p)];
      }
    }
  }
  // Tail metadata reuses seg_rows_ via flags_before at runtime, stored in
  // lane_seg_-style scalars below.
  tail_row_ =
      nnz > num_full_tiles_ * tile
          ? ws.row_of[static_cast<std::size_t>(num_full_tiles_ * tile)]
          : 0;
  tail_seg_ =
      nnz > num_full_tiles_ * tile
          ? ws.flags_before[static_cast<std::size_t>(num_full_tiles_ * tile)]
          : 0;
}

template <typename ValueT>
Csr<ValueT> Csr5<ValueT>::to_csr() const {
  const index_t n = nnz();
  const index_t tile = tile_size();
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<ValueT> values(static_cast<std::size_t>(n));
  // Undo the tile transposition: stored start+s*omega+c came from original
  // position start+c*sigma+s; the tail tile is already in natural order.
  for (index_t t = 0; t < num_full_tiles_; ++t) {
    const index_t start = t * tile;
    for (index_t c = 0; c < omega_; ++c)
      for (index_t s = 0; s < sigma_; ++s) {
        const index_t orig = start + c * sigma_ + s;
        const index_t stored = start + s * omega_ + c;
        values[static_cast<std::size_t>(orig)] =
            values_[static_cast<std::size_t>(stored)];
        col_idx[static_cast<std::size_t>(orig)] =
            col_idx_[static_cast<std::size_t>(stored)];
      }
  }
  for (index_t p = num_full_tiles_ * tile; p < n; ++p) {
    values[static_cast<std::size_t>(p)] = values_[static_cast<std::size_t>(p)];
    col_idx[static_cast<std::size_t>(p)] =
        col_idx_[static_cast<std::size_t>(p)];
  }
  // Rebuild row_ptr by replaying the row-start flags (empty rows simply
  // collect no entries).
  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  index_t row = 0;
  std::size_t si = 0;
  for (index_t p = 0; p < n; ++p) {
    if (flag(p)) row = seg_rows_[si++];
    ++row_ptr[static_cast<std::size_t>(row) + 1];
  }
  for (index_t r = 0; r < rows_; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];
  return Csr<ValueT>(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

template <typename ValueT>
void Csr5<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  const index_t tile = tile_size();
  // The tile-transposed stream is contiguous, so each tile's products can
  // be computed elementwise up front (simd::mul_gather) and the segmented
  // carry logic below only streams through the buffer. Products are
  // elementwise and the carry order is untouched, so the result is
  // bitwise-identical with SIMD on or off. Tiles too big for the stack
  // buffer (omega*sigma > 4096 — far past the GPU-shaped defaults) take
  // the direct path.
  constexpr index_t kMaxTileBuf = 4096;
  ValueT products[kMaxTileBuf];
  const bool buffered = tile <= kMaxTileBuf;
  for (index_t t = 0; t < num_full_tiles_; ++t) {
    const index_t start = t * tile;
    if (buffered)
      simd::mul_gather(values_.data() + start, col_idx_.data() + start,
                       x.data(), products, tile);
    for (index_t c = 0; c < omega_; ++c) {
      index_t row = lane_row_[static_cast<std::size_t>(t * omega_ + c)];
      index_t si = lane_seg_[static_cast<std::size_t>(t * omega_ + c)];
      ValueT sum{};
      bool has = false;
      for (index_t s = 0; s < sigma_; ++s) {
        const index_t orig = start + c * sigma_ + s;
        if (flag(orig)) {
          if (has) {
            y[row] += sum;
            sum = ValueT{};
            has = false;
          }
          row = seg_rows_[static_cast<std::size_t>(si++)];
        }
        const index_t stored = start + s * omega_ + c;
        sum += buffered ? products[stored - start]
                        : values_[static_cast<std::size_t>(stored)] *
                              x[col_idx_[static_cast<std::size_t>(stored)]];
        has = true;
      }
      if (has) y[row] += sum;
    }
  }
  // Tail: natural order with the same segmented-carry logic.
  const index_t tail_start = num_full_tiles_ * tile;
  if (tail_start < nnz()) {
    const index_t tail_len = nnz() - tail_start;
    const bool tail_buffered = tail_len <= kMaxTileBuf;
    if (tail_buffered)
      simd::mul_gather(values_.data() + tail_start,
                       col_idx_.data() + tail_start, x.data(), products,
                       tail_len);
    index_t row = tail_row_;
    index_t si = tail_seg_;
    ValueT sum{};
    bool has = false;
    for (index_t p = tail_start; p < nnz(); ++p) {
      if (flag(p)) {
        if (has) {
          y[row] += sum;
          sum = ValueT{};
          has = false;
        }
        row = seg_rows_[static_cast<std::size_t>(si++)];
      }
      sum += tail_buffered ? products[p - tail_start]
                           : values_[static_cast<std::size_t>(p)] *
                                 x[col_idx_[static_cast<std::size_t>(p)]];
      has = true;
    }
    if (has) y[row] += sum;
  }
}

template <typename ValueT>
std::int64_t Csr5<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return nnz() * (idx + static_cast<std::int64_t>(sizeof(ValueT))) +
         static_cast<std::int64_t>(tile_ptr_.size()) * idx +
         static_cast<std::int64_t>(flags_.size()) * 8 +
         static_cast<std::int64_t>(lane_row_.size()) * idx +
         static_cast<std::int64_t>(lane_seg_.size()) * idx +
         static_cast<std::int64_t>(seg_rows_.size()) * idx;
}

template <typename ValueT>
void Csr5<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SPMVML_ENSURE(values_.size() == col_idx_.size(), "array size mismatch");
  for (index_t c : col_idx_)
    SPMVML_ENSURE(c >= 0 && c < cols_, "column index out of range");
  SPMVML_ENSURE(
      static_cast<index_t>(lane_row_.size()) == num_full_tiles_ * omega_,
      "lane_row size mismatch");
}

template class Csr5<float>;
template class Csr5<double>;

}  // namespace spmvml
