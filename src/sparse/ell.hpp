// ELLPACK format — every row padded to the same width, stored column-major
// so that thread-per-row GPU kernels read coalesced columns (§II-A.3).
//
// Padding slots carry column index kPad (-1) and value 0, and are skipped by
// the kernel. The padding ratio (stored / useful entries) is the quantity
// that makes ELL lose on high-variance matrices; it is exposed for the
// simulator and the benches.
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace spmvml {

template <typename ValueT>
class Csr;

template <typename ValueT>
class Ell {
 public:
  /// Sentinel column index marking a padding slot.
  static constexpr index_t kPad = -1;

  Ell() = default;

  /// Convert from CSR. width 0 (default) uses the max row length;
  /// a positive width caps storage (entries beyond it are rejected —
  /// callers wanting truncation should use Hyb instead).
  static Ell from_csr(const Csr<ValueT>& csr, index_t width = 0);

  /// In-place conversion reusing this object's buffers (no allocation
  /// when capacities already suffice — the ConversionArena warm path).
  void assign_from_csr(const Csr<ValueT>& csr, index_t width = 0);

  /// Back-conversion: strips the padding, restores row-major CSR.
  Csr<ValueT> to_csr() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t width() const { return width_; }
  index_t nnz() const { return nnz_; }

  /// Stored (incl. padding) over useful entries; 1.0 = no padding.
  /// Returns 1.0 for empty matrices.
  double padding_ratio() const;

  /// Element at (row r, slot k) in the column-major layout.
  index_t col_at(index_t r, index_t k) const { return col_idx_[k * rows_ + r]; }
  ValueT val_at(index_t r, index_t k) const { return values_[k * rows_ + r]; }

  void spmv(std::span<const ValueT> x, std::span<ValueT> y) const;

  /// Slot update restricted to rows [row_begin, row_begin+row_count):
  /// accumulates into the *full-size* y (no zero-fill — callers zero
  /// their block first). The building block spmv() and the row-parallel
  /// kernel share, keeping their outputs bitwise-identical.
  void spmv_rows(std::span<const ValueT> x, std::span<ValueT> y,
                 index_t row_begin, index_t row_count) const;

  std::int64_t bytes() const;

  void validate() const;

  bool operator==(const Ell&) const = default;

 private:
  // Hyb fills the ELL prefix directly during its single-pass split.
  template <typename>
  friend class Hyb;

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  index_t nnz_ = 0;
  // Column-major: slot k of all rows is contiguous ([k*rows, (k+1)*rows)).
  std::vector<index_t> col_idx_;
  std::vector<ValueT> values_;
};

extern template class Ell<float>;
extern template class Ell<double>;

}  // namespace spmvml
