// Storage-format enumeration shared across the library.
#pragma once

#include <array>
#include <string>

namespace spmvml {

/// The paper's six storage formats (§II-A) plus SELL-C-σ, the
/// SIMD-friendly sliced-ELLPACK variant the ROADMAP promotes to a
/// first-class seventh class.
enum class Format : int {
  kCoo = 0,
  kCsr = 1,
  kEll = 2,
  kHyb = 3,
  kCsr5 = 4,
  kMergeCsr = 5,
  kSell = 6,
};

inline constexpr int kNumFormats = 7;

/// All formats in enum order; handy for range-for in studies/benches.
inline constexpr std::array<Format, kNumFormats> kAllFormats = {
    Format::kCoo, Format::kCsr,      Format::kEll,  Format::kHyb,
    Format::kCsr5, Format::kMergeCsr, Format::kSell};

/// The three "basic" formats of the paper's Tables IV–VI.
inline constexpr std::array<Format, 3> kBasicFormats = {
    Format::kEll, Format::kCsr, Format::kHyb};

/// Human-readable name ("COO", "CSR", "ELL", "HYB", "CSR5", "merge-CSR",
/// "SELL").
const char* format_name(Format f);

/// Parse a name as produced by format_name; throws spmvml::Error on
/// unknown names.
Format parse_format(const std::string& name);

}  // namespace spmvml
