// Storage-format enumeration shared across the library.
#pragma once

#include <array>
#include <string>

namespace spmvml {

/// The six storage formats the paper selects between (§II-A).
enum class Format : int {
  kCoo = 0,
  kCsr = 1,
  kEll = 2,
  kHyb = 3,
  kCsr5 = 4,
  kMergeCsr = 5,
};

inline constexpr int kNumFormats = 6;

/// All formats in enum order; handy for range-for in studies/benches.
inline constexpr std::array<Format, kNumFormats> kAllFormats = {
    Format::kCoo, Format::kCsr,  Format::kEll,
    Format::kHyb, Format::kCsr5, Format::kMergeCsr};

/// The three "basic" formats of the paper's Tables IV–VI.
inline constexpr std::array<Format, 3> kBasicFormats = {
    Format::kEll, Format::kCsr, Format::kHyb};

/// Human-readable name ("COO", "CSR", "ELL", "HYB", "CSR5", "merge-CSR").
const char* format_name(Format f);

/// Parse a name as produced by format_name; throws spmvml::Error on
/// unknown names.
Format parse_format(const std::string& name);

}  // namespace spmvml
