#include "sparse/mmio.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace spmvml {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// getline that tolerates CRLF line endings (strips a trailing '\r') and
/// tracks the 1-based line number for parse-error messages.
bool getline_norm(std::istream& in, std::string& line, std::size_t& lineno) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ++lineno;
  return true;
}

bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

std::string at_line(std::size_t lineno) {
  return " (line " + std::to_string(lineno) + ")";
}

const char* skip_spaces(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
  return p;
}

/// from_chars fast path for one `r c [v]` entry line — the per-entry
/// istringstream construction dominates cold-parse time on large files.
/// Returns false on anything unusual (sign prefixes, trailing tokens,
/// locale oddities); the caller then retries the original istream path,
/// so the accepted grammar is unchanged. Both parsers produce correctly
/// rounded doubles, so the values are bitwise-identical either way.
bool parse_entry_fast(const std::string& line, bool pattern, index_t& r,
                      index_t& c, double& v) {
  const char* p = line.data();
  const char* end = p + line.size();
  p = skip_spaces(p, end);
  auto [pr, ecr] = std::from_chars(p, end, r);
  if (ecr != std::errc{}) return false;
  p = skip_spaces(pr, end);
  auto [pc, ecc] = std::from_chars(p, end, c);
  if (ecc != std::errc{}) return false;
  p = pc;
  if (!pattern) {
    p = skip_spaces(p, end);
    auto [pv, ecv] = std::from_chars(p, end, v);
    if (ecv != std::errc{}) return false;
    p = pv;
  }
  return skip_spaces(p, end) == end;
}

}  // namespace

Csr<double> read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  SPMVML_ENSURE_CAT(getline_norm(in, line, lineno), ErrorCategory::kParse,
                    "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  SPMVML_ENSURE_CAT(banner == "%%MatrixMarket", ErrorCategory::kParse,
                    "missing %%MatrixMarket banner" + at_line(lineno));
  SPMVML_ENSURE_CAT(lowercase(object) == "matrix", ErrorCategory::kParse,
                    "only 'matrix' objects supported" + at_line(lineno));
  SPMVML_ENSURE_CAT(lowercase(fmt) == "coordinate", ErrorCategory::kParse,
                    "only 'coordinate' (sparse) format supported" +
                        at_line(lineno));
  field = lowercase(field);
  symmetry = lowercase(symmetry);
  const bool pattern = field == "pattern";
  SPMVML_ENSURE_CAT(pattern || field == "real" || field == "integer",
                    ErrorCategory::kParse,
                    "unsupported field type: " + field + at_line(lineno));
  const bool symmetric = symmetry == "symmetric";
  SPMVML_ENSURE_CAT(symmetric || symmetry == "general", ErrorCategory::kParse,
                    "unsupported symmetry: " + symmetry + at_line(lineno));

  // Skip comments and blank lines before the dimensions line.
  bool have_dims = false;
  while (getline_norm(in, line, lineno)) {
    if (is_blank(line) || line[line.find_first_not_of(" \t")] == '%') continue;
    have_dims = true;
    break;
  }
  SPMVML_ENSURE_CAT(have_dims, ErrorCategory::kParse,
                    "missing dimensions line" + at_line(lineno));
  std::istringstream dims(line);
  index_t rows = 0, cols = 0, declared_nnz = 0;
  dims >> rows >> cols >> declared_nnz;
  SPMVML_ENSURE_CAT(!dims.fail() && rows > 0 && cols > 0 && declared_nnz >= 0,
                    ErrorCategory::kParse, "bad dimensions line" +
                        at_line(lineno));
  SPMVML_ENSURE_CAT(!symmetric || rows == cols, ErrorCategory::kParse,
                    "symmetric matrix must be square" + at_line(lineno));

  std::vector<Triplet<double>> entries;
  // Cap the speculative reserve: the declared nnz is untrusted input and
  // a hostile header must fail on its missing entries (kParse), not on a
  // giant up-front allocation. The vector still grows as real entries
  // arrive.
  constexpr std::size_t kReserveCap = std::size_t{1} << 20;
  entries.reserve(std::min<std::size_t>(
      static_cast<std::size_t>(declared_nnz) * (symmetric ? 2 : 1),
      kReserveCap));
  for (index_t i = 0; i < declared_nnz; ++i) {
    SPMVML_ENSURE_CAT(getline_norm(in, line, lineno), ErrorCategory::kParse,
                      "fewer entries than declared" + at_line(lineno));
    if (is_blank(line)) {
      --i;  // tolerate stray blank lines between entries
      continue;
    }
    index_t r = 0, c = 0;
    double v = 1.0;
    if (!parse_entry_fast(line, pattern, r, c, v)) {
      std::istringstream entry(line);
      r = 0, c = 0, v = 1.0;
      entry >> r >> c;
      if (!pattern) entry >> v;
      SPMVML_ENSURE_CAT(!entry.fail(), ErrorCategory::kParse,
                        "malformed entry line: " + line + at_line(lineno));
    }
    SPMVML_ENSURE_CAT(r >= 1 && r <= rows && c >= 1 && c <= cols,
                      ErrorCategory::kParse,
                      "entry index out of range" + at_line(lineno));
    // The MM spec stores symmetric matrices lower-triangular; an entry
    // above the diagonal would silently double after mirroring.
    SPMVML_ENSURE_CAT(!symmetric || r >= c, ErrorCategory::kParse,
                      "symmetric entry above the diagonal" + at_line(lineno));
    entries.push_back({r - 1, c - 1, v});
    if (symmetric && r != c) entries.push_back({c - 1, r - 1, v});
  }
  return Csr<double>::from_triplets(rows, cols, std::move(entries));
}

Csr<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo, "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<double>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by spmvml\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      out << (r + 1) << ' ' << (m.col_idx()[p] + 1) << ' ' << m.values()[p]
          << '\n';
}

void write_matrix_market(const std::string& path, const Csr<double>& m) {
  std::ofstream out(path);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                    "cannot open " + path + " for writing");
  write_matrix_market(out, m);
  SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo, "write failed for " + path);
}

}  // namespace spmvml
