#include "sparse/mmio.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace spmvml {
namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr<double> read_matrix_market(std::istream& in) {
  std::string line;
  SPMVML_ENSURE(static_cast<bool>(std::getline(in, line)),
                "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  SPMVML_ENSURE(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  SPMVML_ENSURE(lowercase(object) == "matrix", "only 'matrix' objects supported");
  SPMVML_ENSURE(lowercase(fmt) == "coordinate",
                "only 'coordinate' (sparse) format supported");
  field = lowercase(field);
  symmetry = lowercase(symmetry);
  const bool pattern = field == "pattern";
  SPMVML_ENSURE(pattern || field == "real" || field == "integer",
                "unsupported field type: " + field);
  const bool symmetric = symmetry == "symmetric";
  SPMVML_ENSURE(symmetric || symmetry == "general",
                "unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t rows = 0, cols = 0, declared_nnz = 0;
  dims >> rows >> cols >> declared_nnz;
  SPMVML_ENSURE(rows > 0 && cols > 0 && declared_nnz >= 0,
                "bad dimensions line");

  std::vector<Triplet<double>> entries;
  entries.reserve(static_cast<std::size_t>(declared_nnz) * (symmetric ? 2 : 1));
  for (index_t i = 0; i < declared_nnz; ++i) {
    SPMVML_ENSURE(static_cast<bool>(std::getline(in, line)),
                  "fewer entries than declared");
    std::istringstream entry(line);
    index_t r = 0, c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!pattern) entry >> v;
    SPMVML_ENSURE(!entry.fail(), "malformed entry line: " + line);
    SPMVML_ENSURE(r >= 1 && r <= rows && c >= 1 && c <= cols,
                  "entry index out of range");
    entries.push_back({r - 1, c - 1, v});
    if (symmetric && r != c) entries.push_back({c - 1, r - 1, v});
  }
  return Csr<double>::from_triplets(rows, cols, std::move(entries));
}

Csr<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SPMVML_ENSURE(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<double>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by spmvml\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      out << (r + 1) << ' ' << (m.col_idx()[p] + 1) << ' ' << m.values()[p]
          << '\n';
}

void write_matrix_market(const std::string& path, const Csr<double>& m) {
  std::ofstream out(path);
  SPMVML_ENSURE(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, m);
  SPMVML_ENSURE(out.good(), "write failed for " + path);
}

}  // namespace spmvml
