// Portable SIMD layer for the sparse hot paths (DESIGN.md §5g).
//
// Three tiers share one semantic contract:
//   * a scalar reference that replays the exact floating-point
//     operations in the exact order the contract fixes,
//   * a portable tier built on GCC/Clang vector extensions, and
//   * an AVX2 tier (x86-64 only) selected at runtime via
//     __builtin_cpu_supports, hand-scheduled around the fact that
//     hardware gathers cost one load µop per lane anyway.
// Every tier is bitwise-identical to the scalar reference by
// construction — which is what lets the differential test suite assert
// serial == SIMD == parallel per format without tolerances. The AVX2
// tier never uses FMA: mul and add stay separate IEEE operations, so
// fusing can never change the bits.
//
// Lane semantics (the fixed summation order every kernel shares):
//   * dot() with n < kDotSequentialCutoff<T> sums left to right (short
//     rows — think stencils — keep the cheap sequential order instead
//     of paying vector setup plus a full reduction tree). Longer rows
//     accumulate into W = kLanes<T> independent lane accumulators —
//     element i adds into lane i mod W over the full blocks, the tail
//     element full+j adds into lane j — and the lanes combine with a
//     fixed pairwise halving tree. Both rules are exact replays: IEEE
//     ops are elementwise in every tier, so the bits agree.
//   * masked_gather_axpy(), masked_scatter_axpy() and mul_gather() are
//     elementwise (no reassociation), so the tiers are trivially
//     bitwise-identical. The scatter variant additionally routes each
//     product through an indirection on the *output* side (the SELL
//     sorted-row permutation); products are formed with vector
//     multiplies but every += lands as a scalar store, so duplicate
//     output rows — impossible for a valid permutation, but part of the
//     primitive's contract anyway — accumulate in ascending i order.
//
// Toggles:
//   * compile time — SPMVML_FORCE_SCALAR (cmake -DSPMVML_FORCE_SCALAR=ON)
//     removes the vector paths entirely; tools/check.sh --simd-off
//     builds and tests this configuration.
//   * runtime — SPMVML_SIMD=0 (or simd::set_enabled(false)) forces the
//     scalar fallback in a vector-capable build; the differential tests
//     flip this to compare both paths in-process.
//   * self-check — the first enabled() query runs a fixed-input
//     equivalence check of every primitive (active tier vs scalar,
//     bitwise); a mismatch disables SIMD for the process and logs a
//     warning instead of serving wrong bits.
#pragma once

#include <cstring>

#include "sparse/types.hpp"

#if !defined(SPMVML_FORCE_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define SPMVML_SIMD_VECEXT 1
#else
#define SPMVML_SIMD_VECEXT 0
#endif

namespace spmvml::simd {

/// Lane-accumulator count for dot(): a 64-byte logical block, i.e. 8
/// doubles or 16 floats (two 32-byte registers in the vector tiers —
/// the second accumulator hides the add latency of the first).
template <typename T>
inline constexpr index_t kLanes = static_cast<index_t>(64 / sizeof(T));

/// Rows shorter than this sum sequentially in dot() — below two full
/// lane blocks the vector setup and reduction tree cost more than the
/// handful of multiply-adds they replace.
template <typename T>
inline constexpr index_t kDotSequentialCutoff = 2 * kLanes<T>;

/// True when a vector tier is compiled in, the runtime toggle allows
/// it, and the startup self-check passed.
bool enabled();

/// Runtime override (test hook and SPMVML_SIMD=0 plumbing). Setting
/// true has no effect in an SPMVML_FORCE_SCALAR build.
void set_enabled(bool on);

/// True when the vector tiers exist in this binary at all.
constexpr bool compiled_in() { return SPMVML_SIMD_VECEXT != 0; }

/// Name of the instruction tier the next kernel call will use:
/// "avx2", "portable", or "scalar". For bench/JSON introspection.
const char* active_isa();

namespace detail {

/// Fixed pairwise halving tree over the W lane accumulators:
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) ... — part of the contract.
template <typename T>
inline T reduce_lanes(const T* acc) {
  constexpr index_t W = kLanes<T>;
  T t[W];
  for (index_t j = 0; j < W; ++j) t[j] = acc[j];
  for (index_t w = W / 2; w >= 1; w /= 2)
    for (index_t j = 0; j < w; ++j) t[j] = t[2 * j] + t[2 * j + 1];
  return t[0];
}

template <typename T>
T dot_sequential(const T* vals, const index_t* cols, const T* x, index_t n) {
  T sum{};
  for (index_t i = 0; i < n; ++i) sum += vals[i] * x[cols[i]];
  return sum;
}

template <typename T>
T dot_scalar(const T* vals, const index_t* cols, const T* x, index_t n) {
  constexpr index_t W = kLanes<T>;
  if (n < kDotSequentialCutoff<T>) return dot_sequential(vals, cols, x, n);
  T acc[W] = {};
  const index_t full = n - n % W;
  for (index_t i = 0; i < full; i += W)
    for (index_t j = 0; j < W; ++j)
      acc[j] += vals[i + j] * x[cols[i + j]];
  for (index_t j = 0; j < n - full; ++j)
    acc[j] += vals[full + j] * x[cols[full + j]];
  return reduce_lanes(acc);
}

template <typename T>
void masked_gather_axpy_scalar(const T* vals, const index_t* cols, const T* x,
                               T* y, index_t n, index_t pad) {
  for (index_t i = 0; i < n; ++i) {
    const index_t c = cols[i];
    if (c != pad) y[i] += vals[i] * x[c];
  }
}

template <typename T>
void masked_scatter_axpy_scalar(const T* vals, const index_t* cols, const T* x,
                                T* y, const index_t* rows, index_t n,
                                index_t pad) {
  for (index_t i = 0; i < n; ++i) {
    const index_t c = cols[i];
    if (c != pad) y[rows[i]] += vals[i] * x[c];
  }
}

template <typename T>
void mul_gather_scalar(const T* vals, const index_t* cols, const T* x, T* out,
                       index_t n) {
  for (index_t i = 0; i < n; ++i) out[i] = vals[i] * x[cols[i]];
}

#if SPMVML_SIMD_VECEXT
// Out-of-line entry points into the runtime-dispatched vector tier
// (simd.cpp). Overloaded by value type; only called when enabled().
double dot_active(const double* vals, const index_t* cols, const double* x,
                  index_t n);
float dot_active(const float* vals, const index_t* cols, const float* x,
                 index_t n);
void masked_gather_axpy_active(const double* vals, const index_t* cols,
                               const double* x, double* y, index_t n,
                               index_t pad);
void masked_gather_axpy_active(const float* vals, const index_t* cols,
                               const float* x, float* y, index_t n,
                               index_t pad);
void masked_scatter_axpy_active(const double* vals, const index_t* cols,
                                const double* x, double* y,
                                const index_t* rows, index_t n, index_t pad);
void masked_scatter_axpy_active(const float* vals, const index_t* cols,
                                const float* x, float* y, const index_t* rows,
                                index_t n, index_t pad);
void mul_gather_active(const double* vals, const index_t* cols,
                       const double* x, double* out, index_t n);
void mul_gather_active(const float* vals, const index_t* cols, const float* x,
                       float* out, index_t n);
#endif  // SPMVML_SIMD_VECEXT

}  // namespace detail

/// Lane-accumulated dot product of vals[0..n) with gathered x[cols[i]].
/// The W-lane order above is the *definition* of the kernel semantics;
/// every tier implements it exactly.
template <typename T>
inline T dot(const T* vals, const index_t* cols, const T* x, index_t n) {
#if SPMVML_SIMD_VECEXT
  if (enabled()) return detail::dot_active(vals, cols, x, n);
#endif
  return detail::dot_scalar(vals, cols, x, n);
}

/// y[i] += vals[i] * x[cols[i]] for every i with cols[i] != pad
/// (elementwise — the ELL column-major slot update).
template <typename T>
inline void masked_gather_axpy(const T* vals, const index_t* cols, const T* x,
                               T* y, index_t n, index_t pad) {
#if SPMVML_SIMD_VECEXT
  if (enabled()) {
    detail::masked_gather_axpy_active(vals, cols, x, y, n, pad);
    return;
  }
#endif
  detail::masked_gather_axpy_scalar(vals, cols, x, y, n, pad);
}

/// y[rows[i]] += vals[i] * x[cols[i]] for every i with cols[i] != pad
/// (elementwise — the SELL slot-column update through the sorted-row
/// permutation). rows[0..n) must be valid indices into y; products are
/// vector multiplies, the += lands scalar per lane, so bits match the
/// scalar reference and duplicate rows accumulate in ascending i order.
template <typename T>
inline void masked_scatter_axpy(const T* vals, const index_t* cols, const T* x,
                                T* y, const index_t* rows, index_t n,
                                index_t pad) {
#if SPMVML_SIMD_VECEXT
  if (enabled()) {
    detail::masked_scatter_axpy_active(vals, cols, x, y, rows, n, pad);
    return;
  }
#endif
  detail::masked_scatter_axpy_scalar(vals, cols, x, y, rows, n, pad);
}

/// out[i] = vals[i] * x[cols[i]] (elementwise product phase used by the
/// COO and CSR5 segmented kernels).
template <typename T>
inline void mul_gather(const T* vals, const index_t* cols, const T* x, T* out,
                       index_t n) {
#if SPMVML_SIMD_VECEXT
  if (enabled()) {
    detail::mul_gather_active(vals, cols, x, out, n);
    return;
  }
#endif
  detail::mul_gather_scalar(vals, cols, x, out, n);
}

/// Function-pointer type of a dot() implementation.
template <typename T>
using DotKernel = T (*)(const T*, const index_t*, const T*, index_t);

/// Resolve the dot() implementation for the current enabled() state
/// once, so per-row loops (CSR, merge-CSR) pay one indirect call per
/// row instead of re-checking the runtime toggle and dispatch table.
/// The returned pointer implements the exact lane semantics above.
template <typename T>
DotKernel<T> dot_kernel();
template <>
DotKernel<double> dot_kernel<double>();
template <>
DotKernel<float> dot_kernel<float>();

/// Fixed-input bitwise equivalence check of the active vector tier
/// against the scalar reference (run once by enabled(); exposed for
/// tests). Always true in a scalar-only build.
bool self_check();

}  // namespace spmvml::simd
