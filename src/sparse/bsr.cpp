#include "sparse/bsr.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Bsr<ValueT> Bsr<ValueT>::from_csr(const Csr<ValueT>& csr, index_t b) {
  SPMVML_ENSURE(b >= 1, "block size must be positive");
  Bsr bsr;
  bsr.rows_ = csr.rows();
  bsr.cols_ = csr.cols();
  bsr.nnz_ = csr.nnz();
  bsr.b_ = b;
  bsr.block_rows_ = (csr.rows() + b - 1) / b;

  bsr.block_row_ptr_.assign(static_cast<std::size_t>(bsr.block_rows_) + 1, 0);
  // Per block-row: map block-column -> block storage slot, built in order.
  for (index_t br = 0; br < bsr.block_rows_; ++br) {
    std::map<index_t, index_t> slots;  // block col -> slot
    const index_t r_lo = br * b;
    const index_t r_hi = std::min<index_t>(csr.rows(), r_lo + b);
    for (index_t r = r_lo; r < r_hi; ++r)
      for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p)
        slots.emplace(csr.col_idx()[p] / b, 0);

    const auto base = static_cast<index_t>(bsr.block_cols_.size());
    index_t k = 0;
    for (auto& [bc, slot] : slots) {
      slot = base + k++;
      bsr.block_cols_.push_back(bc);
    }
    bsr.blocks_.resize(bsr.block_cols_.size() *
                           static_cast<std::size_t>(b) *
                           static_cast<std::size_t>(b),
                       ValueT{});
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p) {
        const index_t c = csr.col_idx()[p];
        const index_t slot = slots[c / b];
        bsr.blocks_[static_cast<std::size_t>(slot) *
                        static_cast<std::size_t>(b) *
                        static_cast<std::size_t>(b) +
                    static_cast<std::size_t>((r - r_lo) * b + (c % b))] =
            csr.values()[p];
      }
    }
    bsr.block_row_ptr_[static_cast<std::size_t>(br) + 1] =
        static_cast<index_t>(bsr.block_cols_.size());
  }
  return bsr;
}

template <typename ValueT>
double Bsr<ValueT>::fill_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(num_blocks()) * static_cast<double>(b_) *
         static_cast<double>(b_) / static_cast<double>(nnz_);
}

template <typename ValueT>
void Bsr<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  for (index_t br = 0; br < block_rows_; ++br) {
    const index_t r_lo = br * b_;
    for (index_t s = block_row_ptr_[br]; s < block_row_ptr_[br + 1]; ++s) {
      const index_t c_lo = block_cols_[static_cast<std::size_t>(s)] * b_;
      const ValueT* block = &blocks_[static_cast<std::size_t>(s) *
                                     static_cast<std::size_t>(b_) *
                                     static_cast<std::size_t>(b_)];
      for (index_t i = 0; i < b_ && r_lo + i < rows_; ++i) {
        ValueT sum{};
        for (index_t j = 0; j < b_ && c_lo + j < cols_; ++j)
          sum += block[i * b_ + j] * x[c_lo + j];
        y[r_lo + i] += sum;
      }
    }
  }
}

template <typename ValueT>
std::int64_t Bsr<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return (block_rows_ + 1) * idx +
         static_cast<std::int64_t>(block_cols_.size()) * idx +
         static_cast<std::int64_t>(blocks_.size()) *
             static_cast<std::int64_t>(sizeof(ValueT));
}

template <typename ValueT>
void Bsr<ValueT>::validate() const {
  SPMVML_ENSURE(b_ >= 1, "bad block size");
  SPMVML_ENSURE(static_cast<index_t>(block_row_ptr_.size()) ==
                    block_rows_ + 1,
                "block_row_ptr size mismatch");
  SPMVML_ENSURE(block_row_ptr_.back() ==
                    static_cast<index_t>(block_cols_.size()),
                "block count mismatch");
  SPMVML_ENSURE(blocks_.size() == block_cols_.size() *
                                      static_cast<std::size_t>(b_) *
                                      static_cast<std::size_t>(b_),
                "block storage size mismatch");
  const index_t block_col_count = (cols_ + b_ - 1) / b_;
  for (index_t br = 0; br < block_rows_; ++br) {
    for (index_t s = block_row_ptr_[br]; s < block_row_ptr_[br + 1]; ++s) {
      SPMVML_ENSURE(block_cols_[static_cast<std::size_t>(s)] >= 0 &&
                        block_cols_[static_cast<std::size_t>(s)] <
                            block_col_count,
                    "block column out of range");
      if (s > block_row_ptr_[br])
        SPMVML_ENSURE(block_cols_[static_cast<std::size_t>(s) - 1] <
                          block_cols_[static_cast<std::size_t>(s)],
                      "block columns must ascend within a block row");
    }
  }
}

template class Bsr<float>;
template class Bsr<double>;

}  // namespace spmvml
