#include "sparse/simd.hpp"

#include <atomic>
#include <cstdint>

#include "common/env.hpp"
#include "common/obs/log.hpp"

#if SPMVML_SIMD_VECEXT && defined(__x86_64__)
#define SPMVML_SIMD_AVX2 1
#include <immintrin.h>
#else
#define SPMVML_SIMD_AVX2 0
#endif

namespace spmvml::simd {

#if SPMVML_SIMD_VECEXT

namespace {

// ---------------------------------------------------------------------------
// Portable tier: GCC/Clang vector extensions, 32-byte registers.

template <typename T>
struct VecOf;
template <>
struct VecOf<double> {
  typedef double type __attribute__((vector_size(32)));
};
template <>
struct VecOf<float> {
  typedef float type __attribute__((vector_size(32)));
};
using IndexVec = index_t __attribute__((vector_size(32)));  // 4 x int64

template <typename T>
T dot_portable(const T* vals, const index_t* cols, const T* x, index_t n) {
  constexpr index_t W = kLanes<T>;
  constexpr index_t V = W / 2;  // lanes per 32-byte register
  if (n < kDotSequentialCutoff<T>) return detail::dot_sequential(vals, cols, x, n);
  using Vec = typename VecOf<T>::type;
  Vec a0 = {}, a1 = {};
  const index_t full = n - n % W;
  for (index_t i = 0; i < full; i += W) {
    Vec v0, v1, x0 = {}, x1 = {};
    std::memcpy(&v0, vals + i, sizeof v0);
    std::memcpy(&v1, vals + i + V, sizeof v1);
    for (index_t j = 0; j < V; ++j) x0[j] = x[cols[i + j]];
    for (index_t j = 0; j < V; ++j) x1[j] = x[cols[i + V + j]];
    a0 += v0 * x0;
    a1 += v1 * x1;
  }
  T acc[W];
  std::memcpy(acc, &a0, sizeof a0);
  std::memcpy(acc + V, &a1, sizeof a1);
  for (index_t j = 0; j < n - full; ++j)
    acc[j] += vals[full + j] * x[cols[full + j]];
  return detail::reduce_lanes(acc);
}

/// Vectorized only for double (index lanes line up 1:1 with value
/// lanes); float dispatches to the scalar loop.
void masked_gather_axpy_portable(const double* vals, const index_t* cols,
                                 const double* x, double* y, index_t n,
                                 index_t pad) {
  constexpr index_t V = 4;
  using Vec = VecOf<double>::type;
  const index_t full = n - n % V;
  const IndexVec pads = {pad, pad, pad, pad};
  for (index_t i = 0; i < full; i += V) {
    IndexVec c;
    Vec v, yv, xv;
    std::memcpy(&c, cols + i, sizeof c);
    std::memcpy(&v, vals + i, sizeof v);
    std::memcpy(&yv, y + i, sizeof yv);
    for (index_t j = 0; j < V; ++j) xv[j] = x[c[j] == pad ? 0 : c[j]];
    const IndexVec live = c != pads;  // all-ones lanes holding a real entry
    const Vec upd = yv + v * xv;
    yv = live ? upd : yv;  // padded lanes keep y untouched (exact skip)
    std::memcpy(y + i, &yv, sizeof yv);
  }
  detail::masked_gather_axpy_scalar(vals + full, cols + full, x, y + full,
                                    n - full, pad);
}

void masked_gather_axpy_portable(const float* vals, const index_t* cols,
                                 const float* x, float* y, index_t n,
                                 index_t pad) {
  detail::masked_gather_axpy_scalar(vals, cols, x, y, n, pad);
}

/// Vectorized only for double, mirroring the axpy: products are formed
/// with one 4-lane vector multiply, then each live lane lands as a
/// scalar y[rows[j]] += prod[j] store (there is no scatter instruction
/// to beat, and the scalar adds keep the bits — and any duplicate rows
/// — exactly in the scalar reference's order).
void masked_scatter_axpy_portable(const double* vals, const index_t* cols,
                                  const double* x, double* y,
                                  const index_t* rows, index_t n,
                                  index_t pad) {
  constexpr index_t V = 4;
  using Vec = VecOf<double>::type;
  const index_t full = n - n % V;
  for (index_t i = 0; i < full; i += V) {
    IndexVec c;
    Vec v, xv;
    std::memcpy(&c, cols + i, sizeof c);
    std::memcpy(&v, vals + i, sizeof v);
    for (index_t j = 0; j < V; ++j) xv[j] = x[c[j] == pad ? 0 : c[j]];
    const Vec prod = v * xv;
    for (index_t j = 0; j < V; ++j)
      if (c[j] != pad) y[rows[i + j]] += prod[j];
  }
  detail::masked_scatter_axpy_scalar(vals + full, cols + full, x, y,
                                     rows + full, n - full, pad);
}

void masked_scatter_axpy_portable(const float* vals, const index_t* cols,
                                  const float* x, float* y,
                                  const index_t* rows, index_t n,
                                  index_t pad) {
  detail::masked_scatter_axpy_scalar(vals, cols, x, y, rows, n, pad);
}

template <typename T>
void mul_gather_portable(const T* vals, const index_t* cols, const T* x,
                         T* out, index_t n) {
  constexpr index_t V = kLanes<T> / 2;
  using Vec = typename VecOf<T>::type;
  const index_t full = n - n % V;
  for (index_t i = 0; i < full; i += V) {
    Vec v, xv = {};
    std::memcpy(&v, vals + i, sizeof v);
    for (index_t j = 0; j < V; ++j) xv[j] = x[cols[i + j]];
    const Vec o = v * xv;
    std::memcpy(out + i, &o, sizeof o);
  }
  detail::mul_gather_scalar(vals + full, cols + full, x, out + full, n - full);
}

#if SPMVML_SIMD_AVX2

// ---------------------------------------------------------------------------
// AVX2 tier (double only; float stays on the portable tier). No FMA:
// mul and add are separate IEEE ops in every tier, so the bits agree
// with the scalar reference. x is loaded with movsd/movhpd inserts
// rather than vgatherqpd for the dot — on Intel a gather costs one
// load µop per lane anyway, and the insert form skips the gather's
// setup overhead; the masked ELL update keeps the hardware gather
// because its mask skips both the load and the pad-heavy blocks.

__attribute__((target("avx2"))) double dot_avx2(const double* vals,
                                                const index_t* cols,
                                                const double* x, index_t n) {
  if (n < kDotSequentialCutoff<double>)
    return detail::dot_sequential(vals, cols, x, n);
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  const index_t full = n - n % 8;
  for (index_t i = 0; i < full; i += 8) {
    const __m128d x0 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i]), x + cols[i + 1]);
    const __m128d x1 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i + 2]), x + cols[i + 3]);
    const __m128d x2 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i + 4]), x + cols[i + 5]);
    const __m128d x3 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i + 6]), x + cols[i + 7]);
    const __m256d xv0 =
        _mm256_insertf128_pd(_mm256_castpd128_pd256(x0), x1, 1);
    const __m256d xv1 =
        _mm256_insertf128_pd(_mm256_castpd128_pd256(x2), x3, 1);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(vals + i), xv0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(vals + i + 4), xv1));
  }
  double acc[8];
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  for (index_t j = 0; j < n - full; ++j)
    acc[j] += vals[full + j] * x[cols[full + j]];
  return detail::reduce_lanes(acc);
}

__attribute__((target("avx2"))) void masked_gather_axpy_avx2(
    const double* vals, const index_t* cols, const double* x, double* y,
    index_t n, index_t pad) {
  const index_t full = n - n % 4;
  const __m256i pads = _mm256_set1_epi64x(pad);
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (index_t i = 0; i < full; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + i));
    const __m256d live = _mm256_castsi256_pd(
        _mm256_andnot_si256(_mm256_cmpeq_epi64(c, pads), ones));
    // Fully padded blocks are common at the tail of the ELL width —
    // skip the gather, the y round-trip, and the FP work outright.
    if (!_mm256_movemask_pd(live)) continue;
    const __m256d xv =
        _mm256_mask_i64gather_pd(_mm256_setzero_pd(), x, c, live, 8);
    const __m256d v = _mm256_loadu_pd(vals + i);
    __m256d yv = _mm256_loadu_pd(y + i);
    yv = _mm256_blendv_pd(yv, _mm256_add_pd(yv, _mm256_mul_pd(v, xv)), live);
    _mm256_storeu_pd(y + i, yv);
  }
  detail::masked_gather_axpy_scalar(vals + full, cols + full, x, y + full,
                                    n - full, pad);
}

__attribute__((target("avx2"))) void masked_scatter_axpy_avx2(
    const double* vals, const index_t* cols, const double* x, double* y,
    const index_t* rows, index_t n, index_t pad) {
  const index_t full = n - n % 4;
  const __m256i pads = _mm256_set1_epi64x(pad);
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (index_t i = 0; i < full; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + i));
    const __m256d live = _mm256_castsi256_pd(
        _mm256_andnot_si256(_mm256_cmpeq_epi64(c, pads), ones));
    // All-pad blocks dominate the tail columns of a skewed slice —
    // skip the gather and the scatter stores outright.
    const int mask = _mm256_movemask_pd(live);
    if (!mask) continue;
    const __m256d xv =
        _mm256_mask_i64gather_pd(_mm256_setzero_pd(), x, c, live, 8);
    const __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(vals + i), xv);
    double p[4];
    _mm256_storeu_pd(p, prod);
    // AVX2 has no scatter: each live lane's += is a scalar store, which
    // is exactly the scalar reference's operation and order.
    for (index_t j = 0; j < 4; ++j)
      if (mask & (1 << j)) y[rows[i + j]] += p[j];
  }
  detail::masked_scatter_axpy_scalar(vals + full, cols + full, x, y,
                                     rows + full, n - full, pad);
}

__attribute__((target("avx2"))) void mul_gather_avx2(const double* vals,
                                                     const index_t* cols,
                                                     const double* x,
                                                     double* out, index_t n) {
  const index_t full = n - n % 4;
  for (index_t i = 0; i < full; i += 4) {
    const __m128d x0 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i]), x + cols[i + 1]);
    const __m128d x1 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i + 2]), x + cols[i + 3]);
    const __m256d xv =
        _mm256_insertf128_pd(_mm256_castpd128_pd256(x0), x1, 1);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(vals + i), xv));
  }
  detail::mul_gather_scalar(vals + full, cols + full, x, out + full, n - full);
}

#endif  // SPMVML_SIMD_AVX2

// ---------------------------------------------------------------------------
// Runtime dispatch: resolved once from CPUID, validated by self_check.

struct DispatchTable {
  double (*dot_f64)(const double*, const index_t*, const double*, index_t);
  float (*dot_f32)(const float*, const index_t*, const float*, index_t);
  void (*axpy_f64)(const double*, const index_t*, const double*, double*,
                   index_t, index_t);
  void (*axpy_f32)(const float*, const index_t*, const float*, float*,
                   index_t, index_t);
  void (*scat_f64)(const double*, const index_t*, const double*, double*,
                   const index_t*, index_t, index_t);
  void (*scat_f32)(const float*, const index_t*, const float*, float*,
                   const index_t*, index_t, index_t);
  void (*mulg_f64)(const double*, const index_t*, const double*, double*,
                   index_t);
  void (*mulg_f32)(const float*, const index_t*, const float*, float*,
                   index_t);
  const char* isa;
};

DispatchTable resolve() {
  DispatchTable t{dot_portable<double>,
                  dot_portable<float>,
                  static_cast<void (*)(const double*, const index_t*,
                                       const double*, double*, index_t,
                                       index_t)>(masked_gather_axpy_portable),
                  static_cast<void (*)(const float*, const index_t*,
                                       const float*, float*, index_t,
                                       index_t)>(masked_gather_axpy_portable),
                  static_cast<void (*)(const double*, const index_t*,
                                       const double*, double*, const index_t*,
                                       index_t, index_t)>(
                      masked_scatter_axpy_portable),
                  static_cast<void (*)(const float*, const index_t*,
                                       const float*, float*, const index_t*,
                                       index_t, index_t)>(
                      masked_scatter_axpy_portable),
                  mul_gather_portable<double>,
                  mul_gather_portable<float>,
                  "portable"};
#if SPMVML_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) {
    t.dot_f64 = dot_avx2;
    t.axpy_f64 = masked_gather_axpy_avx2;
    t.scat_f64 = masked_scatter_axpy_avx2;
    t.mulg_f64 = mul_gather_avx2;
    t.isa = "avx2";
  }
#endif
  return t;
}

const DispatchTable& table() {
  static const DispatchTable t = resolve();
  return t;
}

}  // namespace

namespace detail {

double dot_active(const double* vals, const index_t* cols, const double* x,
                  index_t n) {
  return table().dot_f64(vals, cols, x, n);
}
float dot_active(const float* vals, const index_t* cols, const float* x,
                 index_t n) {
  return table().dot_f32(vals, cols, x, n);
}
void masked_gather_axpy_active(const double* vals, const index_t* cols,
                               const double* x, double* y, index_t n,
                               index_t pad) {
  table().axpy_f64(vals, cols, x, y, n, pad);
}
void masked_gather_axpy_active(const float* vals, const index_t* cols,
                               const float* x, float* y, index_t n,
                               index_t pad) {
  table().axpy_f32(vals, cols, x, y, n, pad);
}
void masked_scatter_axpy_active(const double* vals, const index_t* cols,
                                const double* x, double* y,
                                const index_t* rows, index_t n, index_t pad) {
  table().scat_f64(vals, cols, x, y, rows, n, pad);
}
void masked_scatter_axpy_active(const float* vals, const index_t* cols,
                                const float* x, float* y, const index_t* rows,
                                index_t n, index_t pad) {
  table().scat_f32(vals, cols, x, y, rows, n, pad);
}
void mul_gather_active(const double* vals, const index_t* cols,
                       const double* x, double* out, index_t n) {
  table().mulg_f64(vals, cols, x, out, n);
}
void mul_gather_active(const float* vals, const index_t* cols, const float* x,
                       float* out, index_t n) {
  table().mulg_f32(vals, cols, x, out, n);
}

}  // namespace detail

#endif  // SPMVML_SIMD_VECEXT

namespace {

// -1 = not yet initialized; 0/1 = resolved. Concurrent first calls race
// benignly: every initializer computes the same value.
std::atomic<int> g_enabled{-1};

template <typename T>
bool check_type() {
#if SPMVML_SIMD_VECEXT
  // Deterministic inputs long enough to exercise two full lane blocks
  // (W = 16 for float), the tail, padding lanes, and negative values.
  constexpr index_t n = 41;
  T vals[n], x[n], y_vec[n], y_sca[n], p_vec[n], p_sca[n];
  index_t cols[n];
  for (index_t i = 0; i < n; ++i) {
    vals[i] = static_cast<T>(0.37) * static_cast<T>(i) - static_cast<T>(2.5);
    x[i] = static_cast<T>(1.0) / (static_cast<T>(i) + static_cast<T>(0.75));
    cols[i] = (i * 7 + 3) % n;
    y_vec[i] = y_sca[i] = static_cast<T>(i) * static_cast<T>(0.11);
  }
  index_t masked[n];
  for (index_t i = 0; i < n; ++i) masked[i] = (i % 3 == 0) ? -1 : cols[i];

  // n exercises the lane path, n=11 the short-row sequential rule.
  for (const index_t len : {n, index_t{11}}) {
    const T dv = detail::dot_active(vals, cols, x, len);
    const T ds = detail::dot_scalar(vals, cols, x, len);
    if (std::memcmp(&dv, &ds, sizeof dv) != 0) return false;
  }

  detail::masked_gather_axpy_active(vals, masked, x, y_vec, n, index_t{-1});
  detail::masked_gather_axpy_scalar(vals, masked, x, y_sca, n, index_t{-1});
  if (std::memcmp(y_vec, y_sca, sizeof y_vec) != 0) return false;

  // Scatter through a non-trivial output permutation (reversal), with
  // the same pad mask — the SELL slot-column update.
  index_t rows[n];
  for (index_t i = 0; i < n; ++i) {
    rows[i] = n - 1 - i;
    y_vec[i] = y_sca[i] = static_cast<T>(i) * static_cast<T>(-0.07);
  }
  detail::masked_scatter_axpy_active(vals, masked, x, y_vec, rows, n,
                                     index_t{-1});
  detail::masked_scatter_axpy_scalar(vals, masked, x, y_sca, rows, n,
                                     index_t{-1});
  if (std::memcmp(y_vec, y_sca, sizeof y_vec) != 0) return false;

  detail::mul_gather_active(vals, cols, x, p_vec, n);
  detail::mul_gather_scalar(vals, cols, x, p_sca, n);
  return std::memcmp(p_vec, p_sca, sizeof p_vec) == 0;
#else
  return true;
#endif
}

int init_enabled() {
  if (!compiled_in()) return 0;
  if (env_int("SPMVML_SIMD", 1) == 0) return 0;
  if (!self_check()) {
    obs::log_warn("simd.self_check_failed")
        .kv("action", "falling back to scalar kernels");
    return 0;
  }
  return 1;
}

}  // namespace

bool self_check() { return check_type<double>() && check_type<float>(); }

bool enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    s = init_enabled();
    g_enabled.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void set_enabled(bool on) {
  g_enabled.store(on && compiled_in() ? 1 : 0, std::memory_order_relaxed);
}

template <>
DotKernel<double> dot_kernel<double>() {
#if SPMVML_SIMD_VECEXT
  if (enabled()) return table().dot_f64;
#endif
  return detail::dot_scalar<double>;
}

template <>
DotKernel<float> dot_kernel<float>() {
#if SPMVML_SIMD_VECEXT
  if (enabled()) return table().dot_f32;
#endif
  return detail::dot_scalar<float>;
}

const char* active_isa() {
#if SPMVML_SIMD_VECEXT
  if (enabled()) return table().isa;
#endif
  return "scalar";
}

}  // namespace spmvml::simd
