#include "sparse/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace spmvml {

std::vector<index_t> rcm_ordering(const Csr<double>& m) {
  SPMVML_ENSURE(m.rows() == m.cols(), "RCM needs a square matrix");
  const index_t n = m.rows();

  // Symmetrised adjacency: union of A's and A^T's patterns, self-loops
  // dropped (they do not affect the traversal).
  const auto t = m.transpose();
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
  auto add_edges = [&](const Csr<double>& mat) {
    for (index_t r = 0; r < n; ++r)
      for (index_t p = mat.row_ptr()[r]; p < mat.row_ptr()[r + 1]; ++p)
        if (mat.col_idx()[p] != r)
          adj[static_cast<std::size_t>(r)].push_back(mat.col_idx()[p]);
  };
  add_edges(m);
  add_edges(t);
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    auto& nb = adj[static_cast<std::size_t>(v)];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    degree[static_cast<std::size_t>(v)] = static_cast<index_t>(nb.size());
  }

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  // Seeds in ascending degree (pseudo-peripheral approximation).
  std::vector<index_t> seeds(static_cast<std::size_t>(n));
  std::iota(seeds.begin(), seeds.end(), 0);
  std::sort(seeds.begin(), seeds.end(), [&](index_t a, index_t b) {
    return degree[static_cast<std::size_t>(a)] <
           degree[static_cast<std::size_t>(b)];
  });

  std::vector<index_t> frontier;
  for (index_t seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    std::queue<index_t> bfs;
    bfs.push(seed);
    visited[static_cast<std::size_t>(seed)] = 1;
    while (!bfs.empty()) {
      const index_t v = bfs.front();
      bfs.pop();
      order.push_back(v);
      frontier.clear();
      for (index_t w : adj[static_cast<std::size_t>(v)])
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          frontier.push_back(w);
        }
      // Cuthill–McKee: enqueue neighbours in ascending degree.
      std::sort(frontier.begin(), frontier.end(), [&](index_t a, index_t b) {
        return degree[static_cast<std::size_t>(a)] <
               degree[static_cast<std::size_t>(b)];
      });
      for (index_t w : frontier) bfs.push(w);
    }
  }
  // Reverse (the "R" of RCM) reduces profile further.
  std::reverse(order.begin(), order.end());
  return order;
}

Csr<double> permute_symmetric(const Csr<double>& m,
                              std::span<const index_t> order) {
  SPMVML_ENSURE(m.rows() == m.cols(), "symmetric permutation needs square");
  const index_t n = m.rows();
  SPMVML_ENSURE(static_cast<index_t>(order.size()) == n,
                "order size mismatch");
  std::vector<index_t> new_id(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    const index_t old = order[static_cast<std::size_t>(i)];
    SPMVML_ENSURE(old >= 0 && old < n, "order entry out of range");
    SPMVML_ENSURE(new_id[static_cast<std::size_t>(old)] == -1,
                  "order entry repeated");
    new_id[static_cast<std::size_t>(old)] = i;
  }

  std::vector<Triplet<double>> entries;
  entries.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t r = 0; r < n; ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      entries.push_back({new_id[static_cast<std::size_t>(r)],
                         new_id[static_cast<std::size_t>(m.col_idx()[p])],
                         m.values()[p]});
  return Csr<double>::from_triplets(n, n, std::move(entries));
}

index_t bandwidth(const Csr<double>& m) {
  index_t bw = 0;
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      bw = std::max(bw, std::abs(m.col_idx()[p] - r));
  return bw;
}

}  // namespace spmvml
