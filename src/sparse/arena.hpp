// Reusable conversion arena (DESIGN.md §5g).
//
// Converting a CSR master copy into a selected format is on the serving
// hot path (a format decision is worthless if acting on it re-allocates
// megabytes per request). ConversionArena keeps one AnyMatrix slot per
// format plus the CSR5 index workspace; rebuilding a slot reuses every
// buffer whose capacity already suffices, so converting a stream of
// same-shaped (or shrinking) matrices performs no heap allocation after
// the first round — a property test_arena.cpp proves with a global
// allocation counter.
//
// Not thread-safe: one arena per worker thread (serving uses a
// thread_local instance per service worker).
#pragma once

#include <array>

#include "sparse/format.hpp"
#include "sparse/spmv.hpp"

namespace spmvml {

template <typename ValueT>
class ConversionArena {
 public:
  ConversionArena() = default;
  explicit ConversionArena(const ConvertParams& params) : params_(params) {}

  /// Convert `csr` into `format`, reusing the slot's previous buffers.
  /// The reference stays valid until the next convert() for the same
  /// format (other formats' slots are untouched).
  const AnyMatrix<ValueT>& convert(Format format, const Csr<ValueT>& csr) {
    AnyMatrix<ValueT>& slot = slots_[static_cast<std::size_t>(format)];
    slot.rebuild(format, csr, &scratch_, params_);
    return slot;
  }

  /// Tunable conversion parameters (SELL's (C, sigma)); applies to
  /// subsequent convert() calls.
  void set_convert_params(const ConvertParams& params) { params_ = params; }
  const ConvertParams& convert_params() const { return params_; }

  /// Drop all cached capacity (slots revert to empty COO).
  void clear() {
    for (auto& slot : slots_) slot = AnyMatrix<ValueT>{};
    scratch_ = ConversionScratch{};
  }

 private:
  std::array<AnyMatrix<ValueT>, kNumFormats> slots_;
  ConversionScratch scratch_;
  ConvertParams params_;
};

}  // namespace spmvml
