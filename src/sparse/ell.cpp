#include "sparse/ell.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace spmvml {

template <typename ValueT>
Ell<ValueT> Ell<ValueT>::from_csr(const Csr<ValueT>& csr, index_t width) {
  index_t max_len = 0;
  for (index_t r = 0; r < csr.rows(); ++r)
    max_len = std::max(max_len, csr.row_nnz(r));
  if (width == 0) width = max_len;
  SPMVML_ENSURE(width >= max_len,
                "ELL width smaller than the longest row; use HYB to split");

  Ell ell;
  ell.rows_ = csr.rows();
  ell.cols_ = csr.cols();
  ell.width_ = width;
  ell.nnz_ = csr.nnz();
  const std::size_t slots = static_cast<std::size_t>(ell.rows_) *
                            static_cast<std::size_t>(width);
  ell.col_idx_.assign(slots, kPad);
  ell.values_.assign(slots, ValueT{});
  for (index_t r = 0; r < csr.rows(); ++r) {
    index_t k = 0;
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p, ++k) {
      const std::size_t slot = static_cast<std::size_t>(k) *
                                   static_cast<std::size_t>(ell.rows_) +
                               static_cast<std::size_t>(r);
      ell.col_idx_[slot] = csr.col_idx()[p];
      ell.values_[slot] = csr.values()[p];
    }
  }
  return ell;
}

template <typename ValueT>
double Ell<ValueT>::padding_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(rows_) * static_cast<double>(width_) /
         static_cast<double>(nnz_);
}

template <typename ValueT>
void Ell<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  // Column-major walk: matches the coalesced access order of the GPU
  // kernel (all rows advance slot k together).
  for (index_t k = 0; k < width_; ++k) {
    const std::size_t base = static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(rows_);
    for (index_t r = 0; r < rows_; ++r) {
      const index_t c = col_idx_[base + static_cast<std::size_t>(r)];
      if (c != kPad) y[r] += values_[base + static_cast<std::size_t>(r)] * x[c];
    }
  }
}

template <typename ValueT>
std::int64_t Ell<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return rows_ * width_ * (idx + static_cast<std::int64_t>(sizeof(ValueT)));
}

template <typename ValueT>
void Ell<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0 && width_ >= 0, "negative sizes");
  const std::size_t slots = static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(width_);
  SPMVML_ENSURE(col_idx_.size() == slots && values_.size() == slots,
                "ELL arrays must be rows*width");
  index_t counted = 0;
  for (std::size_t i = 0; i < col_idx_.size(); ++i) {
    const index_t c = col_idx_[i];
    SPMVML_ENSURE(c == kPad || (c >= 0 && c < cols_),
                  "ELL column index out of range");
    if (c != kPad) ++counted;
  }
  SPMVML_ENSURE(counted == nnz_, "ELL nnz bookkeeping mismatch");
}

template class Ell<float>;
template class Ell<double>;

}  // namespace spmvml
