#include "sparse/ell.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/simd.hpp"

namespace spmvml {

template <typename ValueT>
Ell<ValueT> Ell<ValueT>::from_csr(const Csr<ValueT>& csr, index_t width) {
  Ell ell;
  ell.assign_from_csr(csr, width);
  return ell;
}

template <typename ValueT>
void Ell<ValueT>::assign_from_csr(const Csr<ValueT>& csr, index_t width) {
  index_t max_len = 0;
  for (index_t r = 0; r < csr.rows(); ++r)
    max_len = std::max(max_len, csr.row_nnz(r));
  if (width == 0) width = max_len;
  SPMVML_ENSURE(width >= max_len,
                "ELL width smaller than the longest row; use HYB to split");

  rows_ = csr.rows();
  cols_ = csr.cols();
  width_ = width;
  nnz_ = csr.nnz();
  const std::size_t slots =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width);
  col_idx_.assign(slots, kPad);
  values_.assign(slots, ValueT{});
  for (index_t r = 0; r < csr.rows(); ++r) {
    index_t k = 0;
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p, ++k) {
      const std::size_t slot = static_cast<std::size_t>(k) *
                                   static_cast<std::size_t>(rows_) +
                               static_cast<std::size_t>(r);
      col_idx_[slot] = csr.col_idx()[p];
      values_[slot] = csr.values()[p];
    }
  }
}

template <typename ValueT>
Csr<ValueT> Ell<ValueT>::to_csr() const {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<ValueT> values;
  col_idx.reserve(static_cast<std::size_t>(nnz_));
  values.reserve(static_cast<std::size_t>(nnz_));
  for (index_t r = 0; r < rows_; ++r) {
    for (index_t k = 0; k < width_; ++k) {
      const index_t c = col_at(r, k);
      if (c == kPad) break;  // slots of a row are filled left to right
      col_idx.push_back(c);
      values.push_back(val_at(r, k));
    }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<index_t>(col_idx.size());
  }
  return Csr<ValueT>(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

template <typename ValueT>
double Ell<ValueT>::padding_ratio() const {
  if (nnz_ == 0) return 1.0;
  return static_cast<double>(rows_) * static_cast<double>(width_) /
         static_cast<double>(nnz_);
}

template <typename ValueT>
void Ell<ValueT>::spmv(std::span<const ValueT> x, std::span<ValueT> y) const {
  SPMVML_ENSURE(static_cast<index_t>(x.size()) == cols_, "x size != cols");
  SPMVML_ENSURE(static_cast<index_t>(y.size()) == rows_, "y size != rows");
  std::fill(y.begin(), y.end(), ValueT{});
  spmv_rows(x, y, 0, rows_);
}

template <typename ValueT>
void Ell<ValueT>::spmv_rows(std::span<const ValueT> x, std::span<ValueT> y,
                            index_t row_begin, index_t row_count) const {
  // Column-major walk: matches the coalesced access order of the GPU
  // kernel (all rows advance slot k together). The slot update is
  // elementwise (simd::masked_gather_axpy), so each y[r] accumulates its
  // slots in increasing-k order regardless of SIMD, row blocking, or
  // thread count — the bitwise contract of the differential suite.
  for (index_t k = 0; k < width_; ++k) {
    const std::size_t base = static_cast<std::size_t>(k) *
                                 static_cast<std::size_t>(rows_) +
                             static_cast<std::size_t>(row_begin);
    simd::masked_gather_axpy(values_.data() + base, col_idx_.data() + base,
                             x.data(), y.data() + row_begin, row_count, kPad);
  }
}

template <typename ValueT>
std::int64_t Ell<ValueT>::bytes() const {
  const std::int64_t idx = 4;
  return rows_ * width_ * (idx + static_cast<std::int64_t>(sizeof(ValueT)));
}

template <typename ValueT>
void Ell<ValueT>::validate() const {
  SPMVML_ENSURE(rows_ >= 0 && cols_ >= 0 && width_ >= 0, "negative sizes");
  const std::size_t slots = static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(width_);
  SPMVML_ENSURE(col_idx_.size() == slots && values_.size() == slots,
                "ELL arrays must be rows*width");
  index_t counted = 0;
  for (std::size_t i = 0; i < col_idx_.size(); ++i) {
    const index_t c = col_idx_[i];
    SPMVML_ENSURE(c == kPad || (c >= 0 && c < cols_),
                  "ELL column index out of range");
    if (c != kPad) ++counted;
  }
  SPMVML_ENSURE(counted == nnz_, "ELL nnz bookkeeping mismatch");
}

template class Ell<float>;
template class Ell<double>;

}  // namespace spmvml
