// Fixed-width console table printer.
//
// Every bench prints its reproduced table through this class so the output
// lines up with the paper's tables and is easy to diff between runs.
#pragma once

#include <string>
#include <vector>

namespace spmvml {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append one row; pads/truncates nothing — column widths auto-expand.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, e.g.
  ///   col_a | col_b
  ///   ------+------
  ///   1     | 2
  std::string to_string() const;

  /// Convenience: format a double with `digits` decimals.
  static std::string fmt(double v, int digits = 2);

  /// Format as a percentage string "87.5%".
  static std::string pct(double fraction, int digits = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spmvml
