#include "common/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace spmvml {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent < 0 ? 0 : indent) {}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SPMVML_ENSURE(ec == std::errc{}, "double formatting failed");
  return std::string(buf, ptr);
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i)
    for (int s = 0; s < indent_; ++s) out_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    SPMVML_ENSURE(!root_written_, "JSON: multiple root values");
    root_written_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.frame == Frame::kObject) {
    SPMVML_ENSURE(key_pending_, "JSON: value in object without a key");
    key_pending_ = false;
    return;  // key() already emitted separator + indentation
  }
  if (top.has_items) out_ << (indent_ == 0 ? "," : ",");
  top.has_items = true;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  SPMVML_ENSURE(!stack_.empty() && stack_.back().frame == Frame::kObject,
                "JSON: key outside an object");
  SPMVML_ENSURE(!key_pending_, "JSON: key after key");
  Level& top = stack_.back();
  if (top.has_items) out_ << ',';
  top.has_items = true;
  newline_indent();
  out_ << '"' << escape(k) << "\":";
  if (indent_ > 0) out_ << ' ';
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({Frame::kObject});
}

void JsonWriter::end_object() {
  SPMVML_ENSURE(!stack_.empty() && stack_.back().frame == Frame::kObject &&
                    !key_pending_,
                "JSON: unbalanced end_object");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({Frame::kArray});
}

void JsonWriter::end_array() {
  SPMVML_ENSURE(!stack_.empty() && stack_.back().frame == Frame::kArray,
                "JSON: unbalanced end_array");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << escape(s) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  out_ << number(v);
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::int64_t v) {
  // to_chars keeps integers locale-independent too (ostream's num_put can
  // inject grouping separators under some global locales).
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SPMVML_ENSURE(ec == std::errc{}, "int formatting failed");
  before_value();
  out_.write(buf, ptr - buf);
}

void JsonWriter::value(std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SPMVML_ENSURE(ec == std::errc{}, "int formatting failed");
  before_value();
  out_.write(buf, ptr - buf);
}

void JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ << json;
}

}  // namespace spmvml
