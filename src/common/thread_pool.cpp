#include "common/thread_pool.hpp"

#include <algorithm>

namespace spmvml {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::worker_index() { return tls_worker_index; }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_after(double delay_s, std::function<void()> task) {
  if (delay_s <= 0.0) {
    submit(std::move(task));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    DelayedTask t;
    t.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(delay_s));
    t.seq = delayed_seq_++;
    t.fn = std::move(task);
    delayed_.push(std::move(t));
    ++pending_;
  }
  // A worker may be sleeping past the new deadline; wake one to re-arm.
  work_cv_.notify_one();
}

void ThreadPool::promote_due(Clock::time_point now) {
  while (!delayed_.empty() && delayed_.top().ready_at <= now) {
    // priority_queue::top() is const; the task is moved out via const_cast
    // immediately before pop, which is safe because no other accessor
    // observes the moved-from element.
    ready_.push_back(std::move(const_cast<DelayedTask&>(delayed_.top()).fn));
    delayed_.pop();
  }
}

void ThreadPool::worker_loop(int index) {
  tls_worker_index = index;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    promote_due(Clock::now());
    if (!ready_.empty()) {
      // promote_due may have made several tasks runnable at once; chain a
      // wake-up so sibling workers pick up the rest.
      if (ready_.size() > 1) work_cv_.notify_one();
      std::function<void()> task = std::move(ready_.front());
      ready_.pop_front();
      lock.unlock();
      task();
      // Release the closure's captures before bookkeeping so wait_idle()
      // returning implies task state has been destroyed.
      task = nullptr;
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    if (!delayed_.empty()) {
      work_cv_.wait_until(lock, delayed_.top().ready_at);
    } else {
      work_cv_.wait(lock);
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace spmvml
