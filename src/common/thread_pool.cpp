#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/obs/metrics.hpp"

namespace spmvml {

namespace {
thread_local int tls_worker_index = -1;

// Handles are cheap {registry, id} values; function-local statics keep
// the name lookup off the per-task path. Several pools share the series
// (the pipeline runs one pool at a time).
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge g =
      obs::MetricsRegistry::global().gauge("pool.queue_depth");
  return g;
}
obs::Counter& tasks_counter() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("pool.tasks_completed");
  return c;
}
obs::Histogram& wait_histogram() {
  static obs::Histogram h =
      obs::MetricsRegistry::global().histogram("pool.task_wait_s");
  return h;
}
obs::Histogram& run_histogram() {
  static obs::Histogram h =
      obs::MetricsRegistry::global().histogram("pool.task_run_s");
  return h;
}
}  // namespace

namespace {
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  task_started_ns_ =
      std::make_unique<std::atomic<std::int64_t>[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) task_started_ns_[i].store(-1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::worker_index() { return tls_worker_index; }

void ThreadPool::publish_depth() {
  queue_depth_gauge().set(
      static_cast<double>(ready_.size() + delayed_.size()));
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back({std::move(task), Clock::now()});
    ++pending_;
    publish_depth();
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_after(double delay_s, std::function<void()> task) {
  if (delay_s <= 0.0) {
    submit(std::move(task));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    DelayedTask t;
    t.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(delay_s));
    t.seq = delayed_seq_++;
    t.fn = std::move(task);
    delayed_.push(std::move(t));
    ++pending_;
    publish_depth();
  }
  // A worker may be sleeping past the new deadline; wake one to re-arm.
  work_cv_.notify_one();
}

void ThreadPool::promote_due(Clock::time_point now) {
  while (!delayed_.empty() && delayed_.top().ready_at <= now) {
    // priority_queue::top() is const; the task is moved out via const_cast
    // immediately before pop, which is safe because no other accessor
    // observes the moved-from element.
    // Queue wait counts from promotion, not submit_after: the deadline
    // delay is intentional backoff, not queue pressure.
    ready_.push_back(
        {std::move(const_cast<DelayedTask&>(delayed_.top()).fn), now});
    delayed_.pop();
  }
}

void ThreadPool::worker_loop(int index) {
  tls_worker_index = index;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    promote_due(Clock::now());
    if (!ready_.empty()) {
      // promote_due may have made several tasks runnable at once; chain a
      // wake-up so sibling workers pick up the rest.
      if (ready_.size() > 1) work_cv_.notify_one();
      ReadyTask task = std::move(ready_.front());
      ready_.pop_front();
      publish_depth();
      lock.unlock();
      const Clock::time_point started = Clock::now();
      wait_histogram().observe(
          std::chrono::duration<double>(started - task.enqueued).count());
      task_started_ns_[index].store(steady_ns(), std::memory_order_release);
      task.fn();
      // Release the closure's captures before bookkeeping so wait_idle()
      // returning implies task state has been destroyed.
      task.fn = nullptr;
      task_started_ns_[index].store(-1, std::memory_order_release);
      run_histogram().observe(
          std::chrono::duration<double>(Clock::now() - started).count());
      tasks_counter().inc();
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    if (!delayed_.empty()) {
      // Copy the deadline: wait_until keeps a reference to its argument
      // while the mutex is released, and a concurrent submit_after can
      // reallocate the queue's storage under it.
      const Clock::time_point deadline = delayed_.top().ready_at;
      work_cv_.wait_until(lock, deadline);
    } else {
      work_cv_.wait(lock);
    }
  }
}

std::vector<ThreadPool::Heartbeat> ThreadPool::heartbeats() const {
  std::vector<Heartbeat> out(workers_.size());
  const std::int64_t now = steady_ns();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::int64_t started =
        task_started_ns_[i].load(std::memory_order_acquire);
    if (started >= 0) {
      out[i].busy = true;
      out[i].busy_s = static_cast<double>(now - started) * 1e-9;
    }
  }
  return out;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace spmvml
