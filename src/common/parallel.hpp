// Minimal parallel-for abstraction.
//
// Uses OpenMP when the build enables it; degrades to a serial loop
// otherwise. Bodies must be independent per index (no ordering guarantee).
#pragma once

#include <cstdint>

#ifdef SPMVML_HAVE_OPENMP
#include <omp.h>
#endif

namespace spmvml {

/// Invoke fn(i) for i in [0, n), going parallel only when the trip count
/// reaches `min_parallel_n` (amortising scheduling overhead). Iterations
/// are partitioned statically, so a body whose result depends only on `i`
/// is deterministic regardless of thread count.
template <typename Fn>
void parallel_for(std::int64_t n, std::int64_t min_parallel_n, Fn&& fn) {
#ifdef SPMVML_HAVE_OPENMP
  if (n >= min_parallel_n && omp_get_max_threads() > 1) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
#else
  (void)min_parallel_n;
#endif
  for (std::int64_t i = 0; i < n; ++i) fn(i);
}

/// Invoke fn(i) for i in [0, n). Parallel when OpenMP is available and the
/// trip count is large enough to amortise scheduling.
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
  parallel_for(n, 1024, std::forward<Fn>(fn));
}

/// Number of worker threads the parallel_for above would use.
inline int parallel_threads() {
#ifdef SPMVML_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace spmvml
