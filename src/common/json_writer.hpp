// Minimal streaming JSON writer shared by the trace writer, --report and
// bench/pipeline_bench.
//
// Two properties the hand-rolled emitters it replaces did not guarantee:
//  * string escaping is complete (quotes, backslashes, control bytes), and
//  * doubles are formatted with std::to_chars — locale-independent and
//    shortest-round-trip, so a report parsed back yields the exact value
//    regardless of the process locale. Non-finite doubles become `null`
//    (JSON has no NaN/Inf literal).
//
// The writer keeps a nesting stack and inserts commas/indentation itself;
// callers only say what comes next. Misuse (a bare value where a key is
// required, unbalanced end_*) throws spmvml::Error.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spmvml {

class JsonWriter {
 public:
  /// Writes to `out`; `indent` spaces per nesting level (0 = compact,
  /// single line).
  explicit JsonWriter(std::ostream& out, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or begin_*.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(bool v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  /// Pre-rendered JSON (e.g. a number formatted elsewhere); emitted as-is.
  void raw_value(std::string_view json);

  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Escape `s` for inclusion in a JSON string literal (no surrounding
  /// quotes).
  static std::string escape(std::string_view s);

  /// Shortest-round-trip, locale-independent rendering of `v`; "null" for
  /// non-finite values.
  static std::string number(double v);

 private:
  enum class Frame { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_;
  struct Level {
    Frame frame;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

}  // namespace spmvml
