// Seeded chaos framework: named fault-injection sites shared by the
// measurement oracle and the online serving path.
//
// PR 1 taught the *offline* pipeline to survive seeded faults; this
// module generalizes that engine so any stage of the system can be a
// fault-injection site. A chaos *scenario* is a list of rules, each
// binding a site to a fault kind (added latency, a transient error, or
// payload corruption) with an injection rate and an optional time
// window. Decisions are drawn deterministically:
//
//     roll = Rng(hash(seed, site, identity, rule#)).bernoulli(rate)
//
// so the fault sequence is a pure function of (scenario seed, work-item
// identity) — independent of thread interleaving, arrival order and
// wall clock. Re-running a chaos experiment with the same seed injects
// the *same* faults into the *same* requests; that is what makes the
// chaos tests assert byte-identical responses and what made PR 1's
// oracle faults reproducible (FaultModel now draws through this
// engine's primitive).
//
// Rules with a finite [start_s, end_s) window consult the engine's
// elapsed clock — that is the scripted "fault burst" the robustness
// bench fires at the serving path; windowed rules trade the identity
// determinism above for scripted timing, and tests that assert
// identical responses use windowless rules only.
//
// The framework is always compiled in; with no global engine installed
// every site resolves to "no fault" with one relaxed atomic load, so a
// chaos-capable binary is observably identical to one without
// (test_robustness.cpp proves the corpus CSV does not move by a byte).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spmvml::chaos {

/// Named injection sites. Sites are stable identifiers: scenario files
/// name them, metrics are registered per site, and the deterministic
/// draw hashes the enum value.
enum class Site : int {
  kRequestParse = 0,    // serve: JSONL request parsing
  kCacheLookup = 1,     // serve: feature-cache get (fail-open to a miss)
  kFeatureExtract = 2,  // serve: Table II extraction (retryable)
  kMaterialize = 3,     // serve: arena conversion of the chosen format
  kInference = 4,       // serve: classifier pass (retryable / corruptible)
  kRegistrySwap = 5,    // serve: model hot-swap publish (rolls back)
  kOracleMeasure = 6,   // gpusim: oracle measurement (PR 1 fault model)
};

inline constexpr int kNumSites = 7;

const char* site_name(Site s);
std::optional<Site> site_from_name(std::string_view name);

enum class FaultKind : int {
  kNone = 0,
  kLatency = 1,  // add latency_ms before the operation
  kError = 2,    // fail the operation (transient: retries re-roll)
  kCorrupt = 3,  // complete the operation with corrupted payload
};

const char* fault_kind_name(FaultKind k);

/// One injection decision. kNone means "proceed untouched".
struct Fault {
  FaultKind kind = FaultKind::kNone;
  double latency_ms = 0.0;  // for kLatency
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// One scenario rule: inject `kind` at `site` with probability `rate`
/// per decision, active while elapsed time is in [start_s, end_s).
struct Rule {
  Site site = Site::kRequestParse;
  FaultKind kind = FaultKind::kError;
  double rate = 0.0;
  double latency_ms = 0.0;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();

  bool windowed() const {
    return start_s > 0.0 || end_s != std::numeric_limits<double>::infinity();
  }
};

/// A parsed scenario script. Text format, one directive per line:
///
///   # comment (and blank lines) are skipped
///   seed 42
///   rule site=feature_extract kind=error rate=0.5
///   rule site=inference kind=latency rate=1 latency_ms=20 start_s=2 end_s=2.5
///
/// Unknown sites, kinds or keys are kParse errors, not silent no-ops —
/// a typo must never run a chaos experiment with the fault disabled.
struct Scenario {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;

  static Scenario parse(std::istream& in);
  static Scenario parse_string(const std::string& text);
  static Scenario parse_file(const std::string& path);
};

/// The shared deterministic draw primitive: one stateless Bernoulli
/// roll from a fully-derived key. gpusim::FaultModel builds its PR 1
/// salt chain and calls this; the chaos engine derives its keys from
/// (seed, site, identity, rule index) and calls the same function.
bool seeded_roll(std::uint64_t key, double rate);

/// FNV-1a of a string — the convention for turning request ids / input
/// lines into identity keys.
std::uint64_t identity_hash(std::string_view s);

/// Mix an attempt counter into an identity so a retry re-rolls the dice
/// (same convention as the oracle fault model's attempt salt).
std::uint64_t with_attempt(std::uint64_t identity, int attempt);

class Engine {
 public:
  explicit Engine(Scenario scenario);

  /// Decide the fault (if any) at `site` for the work item `identity`.
  /// First matching rule wins, in scenario order. Thread-safe and — for
  /// windowless rules — deterministic in (seed, site, identity).
  Fault decide(Site site, std::uint64_t identity) const;

  /// Re-arm the window clock: elapsed_s() == 0 at this instant. The
  /// constructor arms it too; benches call start() again right before
  /// offering traffic so scripted windows line up with the request
  /// timeline.
  void start();
  double elapsed_s() const;

  const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
  std::int64_t start_ns_ = 0;  // steady-clock epoch offset
};

/// Process-global engine; nullptr = chaos disabled (the default).
/// set_global(nullptr) disables again. Reads are one relaxed atomic
/// check when disabled.
std::shared_ptr<Engine> global();
void set_global(std::shared_ptr<Engine> engine);

/// Install the global engine from the SPMVML_CHAOS environment variable
/// (a scenario file path). Returns the engine, or nullptr when the
/// variable is unset. Throws kParse/kIo on a bad scenario file.
std::shared_ptr<Engine> install_from_env();

/// Consult the global engine at `site`; returns no-fault when chaos is
/// disabled. Injections bump the chaos.injected.<site> counter.
Fault hit(Site site, std::uint64_t identity);

/// Sleep out a latency fault (no-op for other kinds).
void apply_latency(const Fault& f);

/// RAII global-engine override for tests: installs `engine`, restores
/// the previous global on destruction.
class ScopedGlobalEngine {
 public:
  explicit ScopedGlobalEngine(std::shared_ptr<Engine> engine);
  ~ScopedGlobalEngine();
  ScopedGlobalEngine(const ScopedGlobalEngine&) = delete;
  ScopedGlobalEngine& operator=(const ScopedGlobalEngine&) = delete;

 private:
  std::shared_ptr<Engine> previous_;
};

}  // namespace spmvml::chaos
