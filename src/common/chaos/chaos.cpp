#include "common/chaos/chaos.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/rng.hpp"

namespace spmvml::chaos {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "request_parse", "cache_lookup",  "feature_extract", "materialize",
    "inference",     "registry_swap", "oracle_measure",
};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Global engine: the enabled flag is the fast path (one relaxed load on
// every hit() when chaos is off); the pointer itself is handed out under
// a mutex because std::shared_ptr loads are not atomic.
std::atomic<bool> g_enabled{false};
std::mutex g_mu;
std::shared_ptr<Engine> g_engine;  // guarded by g_mu

obs::Counter& injected_counter(Site s) {
  static obs::Counter counters[kNumSites] = {
      obs::MetricsRegistry::global().counter("chaos.injected.request_parse"),
      obs::MetricsRegistry::global().counter("chaos.injected.cache_lookup"),
      obs::MetricsRegistry::global().counter("chaos.injected.feature_extract"),
      obs::MetricsRegistry::global().counter("chaos.injected.materialize"),
      obs::MetricsRegistry::global().counter("chaos.injected.inference"),
      obs::MetricsRegistry::global().counter("chaos.injected.registry_swap"),
      obs::MetricsRegistry::global().counter("chaos.injected.oracle_measure"),
  };
  return counters[static_cast<int>(s)];
}

[[noreturn]] void scenario_fail(int line_no, const std::string& why) {
  SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                    "chaos scenario line " + std::to_string(line_no) + ": " +
                        why);
}

double parse_double_or_fail(int line_no, const std::string& key,
                            const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used == text.size()) return v;
  } catch (const std::exception&) {
  }
  scenario_fail(line_no, "bad numeric value for " + key + ": '" + text + "'");
}

}  // namespace

const char* site_name(Site s) {
  const int i = static_cast<int>(s);
  return (i >= 0 && i < kNumSites) ? kSiteNames[i] : "unknown";
}

std::optional<Site> site_from_name(std::string_view name) {
  for (int i = 0; i < kNumSites; ++i)
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  return std::nullopt;
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kError: return "error";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

Scenario Scenario::parse(std::istream& in) {
  Scenario scenario;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') continue;
    if (head == "seed") {
      std::string value;
      if (!(tokens >> value)) scenario_fail(line_no, "seed needs a value");
      scenario.seed = static_cast<std::uint64_t>(
          parse_double_or_fail(line_no, "seed", value));
      continue;
    }
    if (head != "rule")
      scenario_fail(line_no, "unknown directive '" + head + "'");
    Rule rule;
    bool have_site = false, have_rate = false;
    std::string pair;
    while (tokens >> pair) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos)
        scenario_fail(line_no, "expected key=value, got '" + pair + "'");
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "site") {
        const auto site = site_from_name(value);
        if (!site) scenario_fail(line_no, "unknown site '" + value + "'");
        rule.site = *site;
        have_site = true;
      } else if (key == "kind") {
        if (value == "latency") rule.kind = FaultKind::kLatency;
        else if (value == "error") rule.kind = FaultKind::kError;
        else if (value == "corrupt") rule.kind = FaultKind::kCorrupt;
        else scenario_fail(line_no, "unknown kind '" + value + "'");
      } else if (key == "rate") {
        rule.rate = parse_double_or_fail(line_no, key, value);
        have_rate = true;
      } else if (key == "latency_ms") {
        rule.latency_ms = parse_double_or_fail(line_no, key, value);
      } else if (key == "start_s") {
        rule.start_s = parse_double_or_fail(line_no, key, value);
      } else if (key == "end_s") {
        rule.end_s = parse_double_or_fail(line_no, key, value);
      } else {
        scenario_fail(line_no, "unknown key '" + key + "'");
      }
    }
    if (!have_site) scenario_fail(line_no, "rule needs site=<name>");
    if (!have_rate) scenario_fail(line_no, "rule needs rate=<p>");
    if (rule.rate < 0.0 || rule.rate > 1.0)
      scenario_fail(line_no, "rate must be in [0, 1]");
    if (rule.kind == FaultKind::kLatency && rule.latency_ms <= 0.0)
      scenario_fail(line_no, "kind=latency needs latency_ms > 0");
    if (rule.start_s < 0.0 || rule.end_s <= rule.start_s)
      scenario_fail(line_no, "window needs 0 <= start_s < end_s");
    scenario.rules.push_back(rule);
  }
  return scenario;
}

Scenario Scenario::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

Scenario Scenario::parse_file(const std::string& path) {
  std::ifstream in(path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo,
                    "cannot open chaos scenario file " + path);
  return parse(in);
}

bool seeded_roll(std::uint64_t key, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  Rng rng(key);
  return rng.bernoulli(rate);
}

std::uint64_t identity_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t with_attempt(std::uint64_t identity, int attempt) {
  return hash_combine(identity, static_cast<std::uint64_t>(attempt) + 31);
}

Engine::Engine(Scenario scenario) : scenario_(std::move(scenario)) {
  start();
}

void Engine::start() { start_ns_ = steady_ns(); }

double Engine::elapsed_s() const {
  return static_cast<double>(steady_ns() - start_ns_) * 1e-9;
}

Fault Engine::decide(Site site, std::uint64_t identity) const {
  // Elapsed time is sampled once per decision so every windowed rule in
  // this decision sees one consistent instant.
  double elapsed = -1.0;
  for (std::size_t i = 0; i < scenario_.rules.size(); ++i) {
    const Rule& rule = scenario_.rules[i];
    if (rule.site != site) continue;
    if (rule.windowed()) {
      if (elapsed < 0.0) elapsed = elapsed_s();
      if (elapsed < rule.start_s || elapsed >= rule.end_s) continue;
    }
    std::uint64_t key = hash_combine(
        scenario_.seed, static_cast<std::uint64_t>(site) * 1000003 + 7);
    key = hash_combine(key, identity);
    key = hash_combine(key, static_cast<std::uint64_t>(i) * 0x51ED270B + 13);
    if (!seeded_roll(key, rule.rate)) continue;
    Fault fault;
    fault.kind = rule.kind;
    fault.latency_ms = rule.latency_ms;
    return fault;
  }
  return {};
}

std::shared_ptr<Engine> global() {
  if (!g_enabled.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_engine;
}

void set_global(std::shared_ptr<Engine> engine) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_engine = std::move(engine);
  g_enabled.store(g_engine != nullptr, std::memory_order_release);
}

std::shared_ptr<Engine> install_from_env() {
  const char* path = std::getenv("SPMVML_CHAOS");
  if (path == nullptr || *path == '\0') return nullptr;
  auto engine = std::make_shared<Engine>(Scenario::parse_file(path));
  set_global(engine);
  return engine;
}

Fault hit(Site site, std::uint64_t identity) {
  if (!g_enabled.load(std::memory_order_acquire)) return {};
  std::shared_ptr<Engine> engine = global();
  if (engine == nullptr) return {};
  const Fault fault = engine->decide(site, identity);
  if (fault) injected_counter(site).inc();
  return fault;
}

void apply_latency(const Fault& f) {
  if (f.kind != FaultKind::kLatency || f.latency_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(f.latency_ms));
}

ScopedGlobalEngine::ScopedGlobalEngine(std::shared_ptr<Engine> engine)
    : previous_(global()) {
  set_global(std::move(engine));
}

ScopedGlobalEngine::~ScopedGlobalEngine() { set_global(std::move(previous_)); }

}  // namespace spmvml::chaos
