// Environment-variable knobs shared by benches and tests.
//
//   SPMVML_CORPUS_SCALE  — multiply per-bucket corpus sizes (default 1.0)
//   SPMVML_FAST          — 1 shrinks hyper-parameter grids / epochs for
//                          smoke runs (default 0)
//   SPMVML_SEED          — root seed for all experiments (default 2018,
//                          the paper's publication year)
//   SPMVML_THREADS       — worker threads for parallel collection and the
//                          pipeline bench (default 1 = serial)
//
// Serving knobs (read by tools/spmvml_cli.cpp via the helpers here; the
// matching command-line flag wins over the env var):
//
//   SPMVML_INGEST_CACHE_MB — byte budget (in MB) of the serving
//                          materialized-matrix cache (default 256; 0
//                          disables caching, loads still coalesce)
//   SPMVML_SHARDS        — serving dispatch shards (default 1 = the
//                          single-dispatcher layout)
//
// Online-learning knobs (serve --learn family; DESIGN.md §5k):
//
//   SPMVML_LEARN         — 1 enables the online learning loop: shadow
//                          probes, replay buffer, drift detection,
//                          background retraining with validated hot-swap
//                          (default 0 = off, serving byte-identical to a
//                          build without the subsystem)
//   SPMVML_LEARN_REPLAY_CAP — replay-buffer sample capacity (default
//                          4096; reservoir-style eviction past it)
//   SPMVML_LEARN_DRIFT_RME — windowed relative-model-error threshold
//                          that counts a window as drifted (default 0.5)
//   SPMVML_LEARN_RETRAIN_EVERY_S — periodic retrain interval in seconds
//                          on top of drift-triggered retraining
//                          (default 0 = drift-only)
//
// Observability knobs (read by common/obs/, not via the helpers here):
//
//   SPMVML_LOG           — structured-log level: debug|info|warn|error|off
//                          (default off; data outputs stay byte-identical)
//   SPMVML_TRACE         — path for a Chrome trace-event JSON of the run
//   SPMVML_TRACE_SAMPLE  — serving per-request trace sampling: every Nth
//                          parsed request gets id-tagged spans (1 = all,
//                          default 0 = off; `serve --trace-sample` wins;
//                          DESIGN.md §5j)
//   SPMVML_STATS_EVERY_S — serving periodic metrics-snapshot interval in
//                          seconds, written to `serve --stats-file` by
//                          atomic rename (default 0 = off; the flag wins)
//
// Chaos knob (read by common/chaos/, not via the helpers here):
//
//   SPMVML_CHAOS         — path to a chaos-scenario script: seeded fault
//                          injection at named serving-path sites (DESIGN.md
//                          §5h; unset = disabled, zero perturbation)
#pragma once

#include <cstdint>
#include <string>

namespace spmvml {

/// Read a double from the environment, falling back to `fallback` when the
/// variable is unset or unparsable.
double env_double(const char* name, double fallback);

/// Read an integer from the environment with fallback.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Corpus scale factor (SPMVML_CORPUS_SCALE, default 1.0, clamped to
/// [0.01, 10]).
double corpus_scale();

/// Fast-mode flag (SPMVML_FAST).
bool fast_mode();

/// Root experiment seed (SPMVML_SEED, default 2018).
std::uint64_t root_seed();

/// Worker-thread count for the collection pipeline (SPMVML_THREADS,
/// default 1, clamped to [1, 256]). 1 means the serial code path.
int thread_count();

}  // namespace spmvml
