// Deterministic random number generation.
//
// All stochastic pieces of spmvml (corpus synthesis, simulator measurement
// noise, ML initialisation, data splits) draw from Xoshiro256** seeded via
// SplitMix64, so every experiment is reproducible from a single root seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace spmvml {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also handy as a cheap stateless hash for derived seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine a seed with a salt into a new deterministic seed.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (salt + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  return splitmix64(s);
}

/// Xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies UniformRandomBitGenerator so it can also feed <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: span << 2^64 so bias is negligible
    // for simulation purposes, and determinism is what we actually need.
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Box–Muller (one value per call; no caching keeps
  /// the generator state a pure function of the call count).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with given median and sigma of the underlying normal.
  double lognormal(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric-like heavy tail sample: floor of a Pareto(alpha) draw,
  /// clamped to [1, cap]. Used for power-law row degrees.
  std::int64_t pareto_int(double alpha, std::int64_t cap) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    const double x = std::pow(u, -1.0 / alpha);
    const auto v = static_cast<std::int64_t>(x);
    return v < 1 ? 1 : (v > cap ? cap : v);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace spmvml
