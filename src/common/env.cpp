#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace spmvml {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end == raw) ? fallback : v;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end == raw) ? fallback : static_cast<std::int64_t>(v);
}

double corpus_scale() {
  return std::clamp(env_double("SPMVML_CORPUS_SCALE", 1.0), 0.01, 10.0);
}

bool fast_mode() { return env_int("SPMVML_FAST", 0) != 0; }

std::uint64_t root_seed() {
  return static_cast<std::uint64_t>(env_int("SPMVML_SEED", 2018));
}

int thread_count() {
  return static_cast<int>(std::clamp<std::int64_t>(
      env_int("SPMVML_THREADS", 1), 1, 256));
}

}  // namespace spmvml
