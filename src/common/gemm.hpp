// Small dense GEMM kernels for the ML hot paths (batched MLP training).
//
// These are not a BLAS: operand shapes here are mini-batch x layer-width
// (tens to low hundreds), where library-call overhead would dominate.
// What matters is (a) contiguous row-major operands — no per-sample
// std::vector allocation, (b) loop tiling over the reduction dimension so
// the working set stays in L1, and (c) a deterministic accumulation
// order: every output element sums its reduction in ascending-k order and
// is owned by exactly one parallel_for iteration, so results are bitwise
// identical for any thread count.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/parallel.hpp"

namespace spmvml {

/// Rows of C that one parallel_for task handles; also the minimum row
/// count before going parallel at all.
inline constexpr std::int64_t kGemmRowGrain = 8;
/// Reduction-dimension tile: 256 doubles = 2 KB per operand row, safely
/// inside L1 alongside the C row being accumulated.
inline constexpr int kGemmTileK = 256;

/// C (m x n) = A (m x k) * B^T, with B stored row-major n x k, plus an
/// optional bias broadcast over rows (pass nullptr for none). This is the
/// MLP forward shape: activations (batch x in) times a weight matrix
/// stored out x in.
inline void gemm_nt(int m, int n, int k, const double* a, const double* b,
                    const double* bias, double* c) {
  parallel_for(m, kGemmRowGrain, [&](std::int64_t i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (int j = 0; j < n; ++j) crow[j] = bias != nullptr ? bias[j] : 0.0;
    for (int k0 = 0; k0 < k; k0 += kGemmTileK) {
      const int k1 = std::min(k, k0 + kGemmTileK);
      for (int j = 0; j < n; ++j) {
        const double* brow = b + static_cast<std::int64_t>(j) * k;
        double sum = crow[j];
        for (int kk = k0; kk < k1; ++kk) sum += arow[kk] * brow[kk];
        crow[j] = sum;
      }
    }
  });
}

/// C (m x n) = A (m x k) * B (k x n), both row-major. This is the MLP
/// delta back-propagation shape: batch x out deltas times the out x in
/// weight matrix.
inline void gemm_nn(int m, int n, int k, const double* a, const double* b,
                    double* c) {
  parallel_for(m, kGemmRowGrain, [&](std::int64_t i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::fill(crow, crow + n, 0.0);
    // kk-major order keeps the B row streaming and still accumulates each
    // C element in ascending-kk order (determinism).
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;  // ReLU deltas are often sparse
      const double* brow = b + static_cast<std::int64_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

/// C (m x n) = A^T * B where A is k x m and B is k x n, both row-major.
/// This is the MLP weight-gradient shape: (batch x out)^T deltas times
/// batch x in activations, reducing over the batch.
inline void gemm_tn(int m, int n, int k, const double* a, const double* b,
                    double* c) {
  parallel_for(m, kGemmRowGrain, [&](std::int64_t i) {
    double* crow = c + i * n;
    std::fill(crow, crow + n, 0.0);
    for (int kk = 0; kk < k; ++kk) {
      const double av = a[static_cast<std::int64_t>(kk) * m + i];
      if (av == 0.0) continue;
      const double* brow = b + static_cast<std::int64_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

}  // namespace spmvml
