// Streaming (single-pass) descriptive statistics.
//
// Welford's algorithm keeps mean/variance numerically stable across the
// 5-decade value ranges that sparse-matrix row lengths span.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace spmvml {

/// Accumulates count/mean/variance/min/max in one pass, O(1) memory.
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by n, matching numpy.std default —
  /// the convention the paper's feature tables use).
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction
  /// support): the result is exactly the accumulator state for the
  /// concatenation of both streams — count/sum/min/max are exact, and
  /// mean/m2 use the pairwise (Chan et al.) update, which is
  /// deterministic for a fixed merge order and at least as numerically
  /// stable as the sequential Welford update. Parallel feature
  /// extraction relies on a fixed block partition merged in row order,
  /// so merged values never depend on the thread count.
  void merge(const StreamingStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0 || &other == this) {
      const StreamingStats copy = other;  // self-merge safe
      if (n_ == 0) {
        *this = copy;
        return;
      }
      merge(copy);
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Rebuild an accumulator from previously reported summary moments
  /// (count/sum/mean/stddev/min/max — the exact fields the obs report
  /// serializes). Round-trips every getter: stddev is the population
  /// form, so m2 = stddev^2 * n. Lets the report reader reconstruct
  /// histogram stats for re-export without access to the raw stream.
  static StreamingStats from_summary(std::int64_t count, double sum,
                                     double mean, double stddev, double min,
                                     double max) {
    StreamingStats s;
    if (count <= 0) return s;
    s.n_ = count;
    s.sum_ = sum;
    s.mean_ = mean;
    s.m2_ = stddev * stddev * static_cast<double>(count);
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace spmvml
