#include "common/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <map>
#include <mutex>

namespace spmvml::obs {

namespace {

constexpr double kLatencyBounds[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
                                     1e-3, 3e-3, 1e-2, 3e-2, 0.1,  0.3,
                                     1.0,  3.0,  10.0, 30.0};

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::span<const double> default_latency_bounds_s() { return kLatencyBounds; }

/// One thread's private slice of every sharded metric. Vectors grow on
/// demand (a metric registered after the shard existed simply indexes
/// past the current size). `mu` is only ever contended by snapshot().
struct MetricsRegistry::Shard {
  std::mutex mu;
  std::vector<std::uint64_t> counters;
  std::vector<std::vector<std::uint64_t>> hist_buckets;
  std::vector<StreamingStats> hist_stats;
};

struct MetricsRegistry::Impl {
  std::uint64_t uid = next_registry_uid();

  mutable std::mutex mu;  // registration, shard list, gauges
  std::map<std::string, std::size_t, std::less<>> counter_ids;
  std::map<std::string, std::size_t, std::less<>> gauge_ids;
  std::vector<double> gauge_values;
  std::map<std::string, std::size_t, std::less<>> hist_ids;
  // deque: growing never moves earlier elements, so Histogram handles can
  // keep raw pointers into bounds storage.
  std::deque<std::vector<double>> hist_bounds;
  std::vector<std::shared_ptr<Shard>> shards;
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: outlives every thread_local shard cache, so
  // instrumentation in static destructors can never touch a dead registry.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Per-thread cache keyed by registry uid (not address — a test-local
  // registry reallocated at the same address must not alias).
  thread_local std::vector<std::pair<std::uint64_t, std::shared_ptr<Shard>>>
      cache;
  const std::uint64_t uid = impl_->uid;
  for (auto& [id, shard] : cache)
    if (id == uid) return *shard;
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shards.push_back(shard);
  }
  cache.emplace_back(uid, shard);
  return *cache.back().second;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counter_ids.find(name);
  if (it == impl_->counter_ids.end())
    it = impl_->counter_ids
             .emplace(std::string(name), impl_->counter_ids.size())
             .first;
  return Counter(this, it->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauge_ids.find(name);
  if (it == impl_->gauge_ids.end()) {
    it = impl_->gauge_ids.emplace(std::string(name), impl_->gauge_ids.size())
             .first;
    impl_->gauge_values.push_back(0.0);
  }
  return Gauge(this, it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->hist_ids.find(name);
  if (it == impl_->hist_ids.end()) {
    it = impl_->hist_ids.emplace(std::string(name), impl_->hist_ids.size())
             .first;
    if (bounds.empty()) bounds = default_latency_bounds_s();
    std::vector<double> sorted(bounds.begin(), bounds.end());
    std::sort(sorted.begin(), sorted.end());
    impl_->hist_bounds.push_back(std::move(sorted));
  }
  const std::vector<double>& b = impl_->hist_bounds[it->second];
  return Histogram(this, it->second, b.data(), b.size());
}

void Counter::add(std::uint64_t n) {
  MetricsRegistry::Shard& shard = reg_->local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.counters.size() <= id_) shard.counters.resize(id_ + 1, 0);
  shard.counters[id_] += n;
}

void Gauge::set(double v) {
  std::lock_guard<std::mutex> lock(reg_->impl_->mu);
  reg_->impl_->gauge_values[id_] = v;
}

void Gauge::add(double delta) {
  std::lock_guard<std::mutex> lock(reg_->impl_->mu);
  reg_->impl_->gauge_values[id_] += delta;
}

void Histogram::observe(double v) {
  MetricsRegistry::Shard& shard = reg_->local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.hist_buckets.size() <= id_) {
    shard.hist_buckets.resize(id_ + 1);
    shard.hist_stats.resize(id_ + 1);
  }
  std::vector<std::uint64_t>& buckets = shard.hist_buckets[id_];
  if (buckets.empty()) buckets.assign(nbounds_ + 1, 0);
  // First inclusive upper bound >= v; past-the-end = overflow bucket.
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_, bounds_ + nbounds_, v) - bounds_);
  ++buckets[b];
  shard.hist_stats[id_].add(v);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);

  std::vector<std::uint64_t> counter_totals(impl_->counter_ids.size(), 0);
  std::vector<HistogramSnapshot> hists(impl_->hist_ids.size());
  for (const auto& [name, id] : impl_->hist_ids) {
    hists[id].name = name;
    hists[id].bounds = impl_->hist_bounds[id];
    hists[id].buckets.assign(hists[id].bounds.size() + 1, 0);
  }

  // Merge shards in registration order: counter/bucket adds are exact;
  // stats merge with the same pairwise update StreamingStats::merge gives
  // the blocked feature scan.
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (std::size_t i = 0; i < shard->counters.size(); ++i)
      counter_totals[i] += shard->counters[i];
    for (std::size_t h = 0; h < shard->hist_buckets.size(); ++h) {
      const auto& buckets = shard->hist_buckets[h];
      for (std::size_t b = 0; b < buckets.size(); ++b)
        hists[h].buckets[b] += buckets[b];
      if (h < shard->hist_stats.size())
        hists[h].stats.merge(shard->hist_stats[h]);
    }
  }

  for (const auto& [name, id] : impl_->counter_ids)
    snap.counters.emplace_back(name, counter_totals[id]);
  for (const auto& [name, id] : impl_->gauge_ids)
    snap.gauges.emplace_back(name, impl_->gauge_values[id]);
  snap.histograms = std::move(hists);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (double& g : impl_->gauge_values) g = 0.0;
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.assign(shard->counters.size(), 0);
    for (auto& b : shard->hist_buckets) b.assign(b.size(), 0);
    shard->hist_stats.assign(shard->hist_stats.size(), StreamingStats{});
  }
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t n = stats.count();
  if (n == 0) return 0.0;
  // The extremes are tracked exactly; no need to interpolate for them.
  if (q <= 0.0) return stats.min();
  if (q >= 1.0) return stats.max();
  // Rank of the target observation (1-based, ceil), then walk the
  // cumulative bucket counts to the bucket containing it.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (rank > cum) continue;
    double lo, hi;
    if (b >= bounds.size()) {
      // Overflow bucket: no finite upper bound; the exact max is the only
      // honest answer.
      return stats.max();
    }
    hi = bounds[b];
    lo = (b == 0) ? std::min(stats.min(), hi) : bounds[b - 1];
    // Linear interpolation within the bucket, then clamp to the exact
    // observed range (makes single-observation histograms exact).
    double v = lo;
    if (buckets[b] > 0)
      v = lo + (hi - lo) * (static_cast<double>(rank - prev) /
                            static_cast<double>(buckets[b]));
    return std::min(std::max(v, stats.min()), stats.max());
  }
  return stats.max();  // unreachable when buckets/count are consistent
}

// The snapshot vectors are name-sorted (see MetricsSnapshot); these
// lookups binary-search that order. Report/bench code calls them in
// loops, so the log-n here replaced measurable linear-scan time.
std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != counters.end() && it->first == name) return it->second;
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  const auto it = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != gauges.end() && it->first == name) return it->second;
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  const auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const HistogramSnapshot& h, std::string_view key) {
        return h.name < key;
      });
  if (it != histograms.end() && it->name == name) return &*it;
  return nullptr;
}

}  // namespace spmvml::obs
