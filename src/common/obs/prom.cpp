#include "common/obs/prom.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json_writer.hpp"

namespace spmvml::obs {

namespace {

// ---- minimal recursive-descent JSON reader ------------------------------
//
// Just enough JSON to read back what common/json_writer emitted: objects,
// arrays, strings with the escapes escape() produces, numbers, true/false/
// null. Keys keep insertion order (the report writer emits name-sorted
// objects, but the reader re-sorts anyway).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    SPMVML_ENSURE_CAT(pos_ == text_.size(), ErrorCategory::kParse,
                      "trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error(what + " at byte " + std::to_string(pos_),
                ErrorCategory::kParse);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      expect('{');
      v.kind = JsonValue::Kind::kObject;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        JsonValue key = parse_value();
        if (key.kind != JsonValue::Kind::kString) fail("object key");
        expect(':');
        v.fields.emplace_back(std::move(key.str), parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      expect('[');
      v.kind = JsonValue::Kind::kArray;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.items.push_back(parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      ++pos_;
      v.kind = JsonValue::Kind::kString;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char ch = text_[pos_++];
        if (ch == '\\') {
          if (pos_ >= text_.size()) fail("dangling escape");
          const char esc = text_[pos_++];
          switch (esc) {
            case '"': ch = '"'; break;
            case '\\': ch = '\\'; break;
            case '/': ch = '/'; break;
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case 'r': ch = '\r'; break;
            case 'b': ch = '\b'; break;
            case 'f': ch = '\f'; break;
            case 'u': {
              if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
              unsigned code = 0;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_++];
                code <<= 4;
                if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                  code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                  code |= static_cast<unsigned>(h - 'A' + 10);
                else
                  fail("bad \\u escape");
              }
              // The writer only \u-escapes control bytes (< 0x20).
              ch = static_cast<char>(code);
              break;
            }
            default: fail("unknown escape");
          }
        }
        v.str.push_back(ch);
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      ++pos_;  // closing quote
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("unexpected character");
    try {
      v.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    v.kind = JsonValue::Kind::kNumber;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double number_field(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  SPMVML_ENSURE_CAT(v != nullptr && v->kind == JsonValue::Kind::kNumber,
                    ErrorCategory::kParse,
                    "missing numeric field \"" + std::string(key) + "\"");
  return v->num;
}

/// Prometheus float rendering: shortest-round-trip like the JSON writer,
/// but non-finite values spell NaN/+Inf/-Inf instead of `null`.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return JsonWriter::number(v);
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "spmvml_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << ' ' << prom_number(value) << '\n';
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string pname = prometheus_name(h.name);
    out << "# TYPE " << pname << " histogram\n";
    // Prometheus buckets are cumulative; the snapshot's are per-bucket.
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cum += b < h.buckets.size() ? h.buckets[b] : 0;
      out << pname << "_bucket{le=\"" << prom_number(h.bounds[b]) << "\"} "
          << cum << '\n';
    }
    if (h.buckets.size() > h.bounds.size()) cum += h.buckets.back();
    out << pname << "_bucket{le=\"+Inf\"} " << cum << '\n';
    out << pname << "_sum " << prom_number(h.stats.sum()) << '\n';
    out << pname << "_count " << static_cast<std::uint64_t>(h.stats.count())
        << '\n';
  }
}

MetricsSnapshot read_report_metrics(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonReader reader(text);
  const JsonValue root = reader.parse();
  SPMVML_ENSURE_CAT(root.kind == JsonValue::Kind::kObject,
                    ErrorCategory::kParse, "report root is not an object");
  // Accept either a full report ({"run":..., "metrics":{...}}) or a bare
  // metrics object (the serve `stats` response embeds one).
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr) metrics = &root;
  SPMVML_ENSURE_CAT(metrics->kind == JsonValue::Kind::kObject,
                    ErrorCategory::kParse, "\"metrics\" is not an object");

  MetricsSnapshot snap;
  if (const JsonValue* counters = metrics->find("counters")) {
    SPMVML_ENSURE_CAT(counters->kind == JsonValue::Kind::kObject,
                      ErrorCategory::kParse, "\"counters\" is not an object");
    for (const auto& [name, v] : counters->fields) {
      SPMVML_ENSURE_CAT(v.kind == JsonValue::Kind::kNumber,
                        ErrorCategory::kParse, "counter " + name);
      snap.counters.emplace_back(name, static_cast<std::uint64_t>(v.num));
    }
  }
  if (const JsonValue* gauges = metrics->find("gauges")) {
    SPMVML_ENSURE_CAT(gauges->kind == JsonValue::Kind::kObject,
                      ErrorCategory::kParse, "\"gauges\" is not an object");
    for (const auto& [name, v] : gauges->fields) {
      SPMVML_ENSURE_CAT(v.kind == JsonValue::Kind::kNumber,
                        ErrorCategory::kParse, "gauge " + name);
      snap.gauges.emplace_back(name, v.num);
    }
  }
  if (const JsonValue* hists = metrics->find("histograms")) {
    SPMVML_ENSURE_CAT(hists->kind == JsonValue::Kind::kObject,
                      ErrorCategory::kParse, "\"histograms\" is not an object");
    for (const auto& [name, v] : hists->fields) {
      SPMVML_ENSURE_CAT(v.kind == JsonValue::Kind::kObject,
                        ErrorCategory::kParse, "histogram " + name);
      HistogramSnapshot h;
      h.name = name;
      const JsonValue* bounds = v.find("bounds");
      const JsonValue* buckets = v.find("buckets");
      SPMVML_ENSURE_CAT(bounds != nullptr &&
                            bounds->kind == JsonValue::Kind::kArray &&
                            buckets != nullptr &&
                            buckets->kind == JsonValue::Kind::kArray,
                        ErrorCategory::kParse,
                        "histogram " + name + " bounds/buckets");
      for (const JsonValue& b : bounds->items) h.bounds.push_back(b.num);
      for (const JsonValue& b : buckets->items)
        h.buckets.push_back(static_cast<std::uint64_t>(b.num));
      SPMVML_ENSURE_CAT(h.buckets.size() == h.bounds.size() + 1,
                        ErrorCategory::kParse,
                        "histogram " + name + " bucket count mismatch");
      h.stats = StreamingStats::from_summary(
          static_cast<std::int64_t>(number_field(v, "count")),
          number_field(v, "sum"), number_field(v, "mean"),
          number_field(v, "stddev"), number_field(v, "min"),
          number_field(v, "max"));
      snap.histograms.push_back(std::move(h));
    }
  }

  // The lookup helpers binary-search on name order; enforce it here
  // rather than trusting the file.
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace spmvml::obs
