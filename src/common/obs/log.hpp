// Leveled, structured, thread-safe logging for the whole pipeline.
//
//   obs::log_info("collect.start").kv("matrices", n).kv("threads", t);
//
// emits one line like
//
//   t=0.123 level=info tid=0 event=collect.start matrices=64 threads=8
//
// on the log sink (stderr by default). Design constraints, in order:
//
//  * Off by default. The level comes from SPMVML_LOG
//    (debug|info|warn|error|off); unset means off, so every CSV, cache
//    and model artifact the library writes is byte-identical to a build
//    without logging — log output only ever goes to the sink, never to
//    data files.
//  * Zero overhead when off: log_*() checks one relaxed atomic and
//    returns a disabled line whose kv() calls do nothing; no field is
//    formatted, no allocation happens.
//  * Serialized output: lines are assembled in a private buffer and
//    written under one global mutex, so concurrent workers never
//    interleave characters (ObsConcurrency tests run this under TSan).
//
// `t=` is seconds since the first log call (monotonic clock); `tid` is a
// small stable per-thread id shared with the trace writer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace spmvml::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a SPMVML_LOG-style name ("debug", "info", ...); kOff for
/// anything unrecognised.
LogLevel parse_log_level(std::string_view name);

/// Current threshold (initialised from SPMVML_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// Small dense id for the calling thread (0 = first thread that logged
/// or traced). Stable for the thread's lifetime.
int thread_tid();

/// Redirect log output (nullptr restores stderr). Test hook; writes are
/// serialized with the same mutex as normal logging.
void set_log_sink(std::string* capture);

/// One structured line; emits on destruction (end of the full
/// expression). Disabled lines skip all formatting.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept;

  LogLine& kv(std::string_view key, std::string_view value);
  LogLine& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogLine& kv(std::string_view key, double value);
  LogLine& kv(std::string_view key, bool value);
  LogLine& kv(std::string_view key, std::int64_t value);
  LogLine& kv(std::string_view key, std::uint64_t value);
  LogLine& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  LogLine& kv(std::string_view key, unsigned value) {
    return kv(key, static_cast<std::uint64_t>(value));
  }

 private:
  bool enabled_;
  std::string buf_;
};

inline LogLine log_debug(std::string_view event) {
  return LogLine(LogLevel::kDebug, event);
}
inline LogLine log_info(std::string_view event) {
  return LogLine(LogLevel::kInfo, event);
}
inline LogLine log_warn(std::string_view event) {
  return LogLine(LogLevel::kWarn, event);
}
inline LogLine log_error(std::string_view event) {
  return LogLine(LogLevel::kError, event);
}

}  // namespace spmvml::obs
