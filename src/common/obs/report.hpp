// End-of-run summary: dump the merged metrics registry plus run
// metadata as JSON (`spmvml ... --report report.json`).
//
// The file round-trips through common/json_writer, so numbers are
// locale-independent and shortest-round-trip; histograms carry their
// bucket bounds, per-bucket counts and the merged StreamingStats moments.
#pragma once

#include <ostream>
#include <string>

#include "common/obs/metrics.hpp"

namespace spmvml::obs {

/// Run metadata recorded alongside the metrics.
struct ReportMeta {
  std::string tool;     // e.g. "spmvml train"
  std::string command;  // full command line as invoked
  std::uint64_t seed = 0;
  int threads = 1;
  double wall_s = 0.0;
};

/// Serialize `meta` + `snap` as a JSON document.
void write_report_json(std::ostream& out, const ReportMeta& meta,
                       const MetricsSnapshot& snap);

/// Snapshot `registry` and write the report to `path` (atomic temp-file
/// rename, like the corpus cache). Throws spmvml::Error on I/O failure.
void write_report(const std::string& path, const ReportMeta& meta,
                  MetricsRegistry& registry = MetricsRegistry::global());

}  // namespace spmvml::obs
