// End-of-run summary: dump the merged metrics registry plus run
// metadata as JSON (`spmvml ... --report report.json`).
//
// The file round-trips through common/json_writer, so numbers are
// locale-independent and shortest-round-trip; histograms carry their
// bucket bounds, per-bucket counts and the merged StreamingStats moments.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "common/json_writer.hpp"
#include "common/obs/metrics.hpp"

namespace spmvml::obs {

/// Run metadata recorded alongside the metrics.
struct ReportMeta {
  std::string tool;     // e.g. "spmvml train"
  std::string command;  // full command line as invoked
  std::uint64_t seed = 0;
  int threads = 1;
  double wall_s = 0.0;
};

/// Serialize `meta` + `snap` as a JSON document.
void write_report_json(std::ostream& out, const ReportMeta& meta,
                       const MetricsSnapshot& snap);

/// Write just the metrics object ({"counters":...,"gauges":...,
/// "histograms":...}) through an existing writer. Shared by the report
/// file, the serve `stats` control-line response and the periodic
/// snapshot writer, so every consumer sees the same schema.
void write_metrics_object(JsonWriter& w, const MetricsSnapshot& snap);

/// Snapshot `registry` and write the report to `path` (atomic temp-file
/// rename, like the corpus cache). Throws spmvml::Error on I/O failure.
void write_report(const std::string& path, const ReportMeta& meta,
                  MetricsRegistry& registry = MetricsRegistry::global());

/// Background periodic snapshot writer (`serve --stats-every-s`): every
/// `interval_s` seconds it snapshots the global registry and rewrites
/// `path` via the same atomic temp-file rename as write_report, so a
/// scraper (or `spmvml stats-export`) never reads a torn file. I/O
/// failures are logged, not fatal — stats must never take the server
/// down. stop() (or the destructor) writes one final snapshot so the
/// file always reflects the full run.
class PeriodicReporter {
 public:
  PeriodicReporter(std::string path, double interval_s, ReportMeta meta,
                   MetricsRegistry& registry = MetricsRegistry::global());
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stop the thread and write the final snapshot. Idempotent.
  void stop();

  /// Snapshots written so far (test hook).
  std::uint64_t writes() const;

 private:
  void loop();
  bool write_once();

  std::string path_;
  std::chrono::duration<double> interval_;
  ReportMeta meta_;
  MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point started_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t writes_ = 0;
  std::thread thread_;
};

}  // namespace spmvml::obs
