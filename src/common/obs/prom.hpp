// Prometheus text-exposition translation of a metrics snapshot, plus the
// report-JSON reader that feeds it (`spmvml stats-export report.json`).
//
// The exporter is deliberately a pure translation layer: the server only
// ever writes its own report/stats schema (report.hpp), and this module
// turns a snapshot — live, or round-tripped through a report file — into
// the Prometheus text format (# TYPE lines, cumulative `_bucket{le=...}`
// series, `_sum`/`_count`). Metric names are sanitized to the Prometheus
// charset ([a-zA-Z0-9_:]) and prefixed `spmvml_`, so `serve.latency_s`
// becomes `spmvml_serve_latency_s`.
#pragma once

#include <istream>
#include <ostream>

#include "common/obs/metrics.hpp"

namespace spmvml::obs {

/// Sanitize a registry metric name for Prometheus: every byte outside
/// [a-zA-Z0-9_:] becomes '_', and the result gains the "spmvml_" prefix.
std::string prometheus_name(std::string_view name);

/// Write `snap` in the Prometheus text exposition format. Counters map to
/// `# TYPE ... counter`, gauges to `gauge`, histograms to the native
/// histogram triplet: cumulative `_bucket{le="..."}` series ending in
/// le="+Inf", then `_sum` and `_count`.
void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snap);

/// Parse the `metrics` object of a report JSON document (either a full
/// report with a top-level "metrics" key, or a bare metrics object) back
/// into a MetricsSnapshot. Histogram stats are rebuilt from the reported
/// summary moments (StreamingStats::from_summary), which round-trips
/// every field the exporter needs. Throws spmvml::Error (kParse) on
/// malformed input.
MetricsSnapshot read_report_metrics(std::istream& in);

}  // namespace spmvml::obs
