#include "common/obs/report.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/obs/log.hpp"

namespace spmvml::obs {

void write_metrics_object(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) w.kv(name, value);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) w.kv(name, value);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.kv("count", static_cast<std::uint64_t>(h.stats.count()));
    w.kv("sum", h.stats.sum());
    w.kv("mean", h.stats.mean());
    w.kv("stddev", h.stats.stddev());
    w.kv("min", h.stats.min());
    w.kv("max", h.stats.max());
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

void write_report_json(std::ostream& out, const ReportMeta& meta,
                       const MetricsSnapshot& snap) {
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("run");
  w.begin_object();
  w.kv("tool", std::string_view(meta.tool));
  w.kv("command", std::string_view(meta.command));
  w.kv("seed", meta.seed);
  w.kv("threads", meta.threads);
  w.kv("wall_s", meta.wall_s);
  w.end_object();

  w.key("metrics");
  write_metrics_object(w, snap);

  w.end_object();  // root
  out << '\n';
}

void write_report(const std::string& path, const ReportMeta& meta,
                  MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "cannot open " + tmp + " for writing");
    write_report_json(out, meta, snap);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

PeriodicReporter::PeriodicReporter(std::string path, double interval_s,
                                   ReportMeta meta, MetricsRegistry& registry)
    : path_(std::move(path)),
      interval_(interval_s > 0 ? interval_s : 1.0),
      meta_(std::move(meta)),
      registry_(registry),
      started_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { loop(); });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (!thread_.joinable()) return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_once();  // final snapshot: the file always reflects the full run
}

std::uint64_t PeriodicReporter::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

bool PeriodicReporter::write_once() {
  ReportMeta meta = meta_;
  meta.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
  try {
    write_report(path_, meta, registry_);
  } catch (const std::exception& e) {
    // Stats must never take the server down: log and carry on.
    log_warn("stats.write_failed").kv("path", path_).kv("error", e.what());
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
  return true;
}

void PeriodicReporter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(interval_),
                     [this] { return stop_; }))
      break;
    lock.unlock();
    write_once();
    lock.lock();
  }
}

}  // namespace spmvml::obs
