#include "common/obs/report.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/json_writer.hpp"

namespace spmvml::obs {

void write_report_json(std::ostream& out, const ReportMeta& meta,
                       const MetricsSnapshot& snap) {
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("run");
  w.begin_object();
  w.kv("tool", std::string_view(meta.tool));
  w.kv("command", std::string_view(meta.command));
  w.kv("seed", meta.seed);
  w.kv("threads", meta.threads);
  w.kv("wall_s", meta.wall_s);
  w.end_object();

  w.key("metrics");
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) w.kv(name, value);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) w.kv(name, value);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.kv("count", static_cast<std::uint64_t>(h.stats.count()));
    w.kv("sum", h.stats.sum());
    w.kv("mean", h.stats.mean());
    w.kv("stddev", h.stats.stddev());
    w.kv("min", h.stats.min());
    w.kv("max", h.stats.max());
    w.end_object();
  }
  w.end_object();

  w.end_object();  // metrics
  w.end_object();  // root
  out << '\n';
}

void write_report(const std::string& path, const ReportMeta& meta,
                  MetricsRegistry& registry) {
  const MetricsSnapshot snap = registry.snapshot();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "cannot open " + tmp + " for writing");
    write_report_json(out, meta, snap);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace spmvml::obs
