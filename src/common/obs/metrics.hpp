// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms, sharded per thread so the pipeline's hot paths never
// contend on a shared cache line.
//
// Design:
//
//  * A metric handle (Counter / Gauge / Histogram) is a stable, cheap
//    {registry, id} pair returned by MetricsRegistry::counter(name) etc.
//    Handles outlive every thread and are safe to cache in function-local
//    statics.
//  * Counter::add and Histogram::observe write to a per-thread *shard*:
//    each thread that touches a registry lazily registers one shard and
//    only ever writes its own. The shard is protected by a private mutex
//    that only the owner (hot path) and snapshot() (cold path) take, so
//    in steady state the lock is uncontended — the sharding is what keeps
//    parallel collection contention-free, exactly like the per-worker
//    oracle sets.
//  * snapshot() merges all shards in registration order: counters and
//    histogram buckets add exactly; histogram mean/variance merge with
//    StreamingStats::merge (the same pairwise Chan update the blocked
//    feature scan relies on), so merged totals equal a serial run's for
//    count/sum/min/max and are deterministically merged for mean/m2.
//  * Gauges are last-write-wins and global (a "current depth" has no
//    meaningful per-thread decomposition); add() is atomic under the
//    gauge's mutex so concurrent +1/-1 depth tracking is exact.
//
// Shard data persists after its thread exits (the registry owns it), so
// snapshots taken after a pool is destroyed still see all of its work.
// reset() zeroes every metric in place for test isolation; names and
// handles stay valid.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace spmvml::obs {

class MetricsRegistry;

class Counter {
 public:
  void add(std::uint64_t n = 1);
  void inc() { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_;
  std::size_t id_;
};

class Gauge {
 public:
  void set(double v);
  void add(double delta);

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_;
  std::size_t id_;
};

class Histogram {
 public:
  void observe(double v);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::size_t id, const double* bounds,
            std::size_t nbounds)
      : reg_(reg), id_(id), bounds_(bounds), nbounds_(nbounds) {}
  MetricsRegistry* reg_;
  std::size_t id_;
  // Bucket bounds are fixed at registration and owned by the registry
  // (stable storage), so the handle can bucket without taking the
  // registration lock.
  const double* bounds_;
  std::size_t nbounds_;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;            // inclusive upper bounds
  std::vector<std::uint64_t> buckets;    // bounds.size() + 1 (overflow last)
  StreamingStats stats;                  // exact count/sum/min/max

  /// Bucket-interpolated quantile estimate for q in [0,1], clamped to the
  /// exact [min,max] StreamingStats tracks (so a single observation is
  /// exact and no estimate leaves the observed range). The overflow
  /// bucket maps to max; an empty histogram returns 0.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  // All three vectors are name-sorted: counters and gauges come out of
  // std::map iteration, histograms are sorted explicitly by snapshot()
  // (and by the report reader). That ordering IS the name index — the
  // lookup helpers below binary-search it instead of scanning.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup helpers for tests and the report writer; missing names give
  /// 0 / fallback / nullptr. O(log n) over the name-sorted vectors.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name, double fallback = 0.0) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Default histogram bucket bounds: 1us..30s in roughly 3x steps —
/// suitable for the latency-shaped series the pipeline records.
std::span<const double> default_latency_bounds_s();

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& global();

  /// Idempotent lookup-or-create by name. A histogram's bounds are fixed
  /// by the first registration; later calls ignore `bounds`.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name,
                      std::span<const double> bounds = {});

  /// Merged view across all shards (live and retired threads).
  MetricsSnapshot snapshot() const;

  /// Zero every metric in place (names and handles stay valid).
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  struct Impl;
  struct Shard;
  Shard& local_shard();
  std::unique_ptr<Impl> impl_;
};

}  // namespace spmvml::obs
