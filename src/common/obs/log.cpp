#include "common/obs/log.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace spmvml::obs {

namespace {

using Clock = std::chrono::steady_clock;

// -1 = not yet initialised from the environment.
std::atomic<int> g_level{-1};

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

// Capture sink for tests; nullptr = stderr. Guarded by sink_mutex().
std::string* g_capture = nullptr;

Clock::time_point log_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

int level_from_env() {
  const char* raw = std::getenv("SPMVML_LOG");
  if (raw == nullptr || *raw == '\0') return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(parse_log_level(raw));
}

void append_double(std::string& buf, double v) {
  char tmp[32];
  if (!std::isfinite(v)) {
    buf += v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    return;
  }
  const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  if (ec == std::errc{}) buf.append(tmp, ptr);
}

template <typename T>
void append_int(std::string& buf, T v) {
  char tmp[24];
  const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  if (ec == std::errc{}) buf.append(tmp, ptr);
}

/// Values with spaces, quotes or '=' get quoted so lines stay
/// machine-splittable on spaces.
void append_string_value(std::string& buf, std::string_view v) {
  bool plain = !v.empty();
  for (const char c : v)
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
      plain = false;
  if (plain) {
    buf += v;
    return;
  }
  buf += '"';
  for (const char c : v) {
    if (c == '"' || c == '\\') buf += '\\';
    if (c == '\n') {
      buf += "\\n";
      continue;
    }
    buf += c;
  }
  buf += '"';
}

}  // namespace

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = level_from_env();
    int expected = -1;
    // First caller wins; a concurrent set_log_level is preserved.
    g_level.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    v = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return level >= log_level() && log_level() != LogLevel::kOff;
}

int thread_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void set_log_sink(std::string* capture) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  g_capture = capture;
}

LogLine::LogLine(LogLevel level, std::string_view event)
    : enabled_(log_enabled(level)) {
  if (!enabled_) return;
  buf_.reserve(96);
  buf_ += "t=";
  const double t =
      std::chrono::duration<double>(Clock::now() - log_epoch()).count();
  char tmp[32];
  std::snprintf(tmp, sizeof(tmp), "%.3f", t);
  buf_ += tmp;
  buf_ += " level=";
  buf_ += level_name(level);
  buf_ += " tid=";
  append_int(buf_, thread_tid());
  buf_ += " event=";
  append_string_value(buf_, event);
}

LogLine::LogLine(LogLine&& other) noexcept
    : enabled_(other.enabled_), buf_(std::move(other.buf_)) {
  other.enabled_ = false;
}

LogLine::~LogLine() {
  if (!enabled_) return;
  buf_ += '\n';
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (g_capture != nullptr)
    *g_capture += buf_;
  else
    std::fwrite(buf_.data(), 1, buf_.size(), stderr);
}

LogLine& LogLine::kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  buf_ += ' ';
  buf_ += key;
  buf_ += '=';
  append_string_value(buf_, value);
  return *this;
}

LogLine& LogLine::kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  buf_ += ' ';
  buf_ += key;
  buf_ += '=';
  append_double(buf_, value);
  return *this;
}

LogLine& LogLine::kv(std::string_view key, bool value) {
  if (!enabled_) return *this;
  buf_ += ' ';
  buf_ += key;
  buf_ += '=';
  buf_ += value ? "true" : "false";
  return *this;
}

LogLine& LogLine::kv(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  buf_ += ' ';
  buf_ += key;
  buf_ += '=';
  append_int(buf_, value);
  return *this;
}

LogLine& LogLine::kv(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  buf_ += ' ';
  buf_ += key;
  buf_ += '=';
  append_int(buf_, value);
  return *this;
}

}  // namespace spmvml::obs
