#include "common/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/json_writer.hpp"
#include "common/obs/log.hpp"

namespace spmvml::obs {

namespace {

using Clock = std::chrono::steady_clock;

// 0 = not initialised from the environment yet, 1 = off, 2 = recording.
std::atomic<int> g_state{0};

std::mutex& trace_mutex() {
  static std::mutex mu;
  return mu;
}

// All guarded by trace_mutex().
struct TraceState {
  std::string path;
  std::vector<TraceEvent> events;
  Clock::time_point epoch;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: see MetricsRegistry
  return *s;
}

double now_us_locked() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   state().epoch)
      .count();
}

void init_from_env() {
  const char* raw = std::getenv("SPMVML_TRACE");
  if (raw != nullptr && *raw != '\0') {
    trace_start(raw);
    std::lock_guard<std::mutex> lock(trace_mutex());
    if (!state().atexit_registered) {
      state().atexit_registered = true;
      std::atexit([] { trace_stop(); });
    }
  } else {
    int expected = 0;
    g_state.compare_exchange_strong(expected, 1, std::memory_order_relaxed);
  }
}

}  // namespace

bool trace_enabled() {
  const int s = g_state.load(std::memory_order_relaxed);
  if (s == 0) {
    init_from_env();
    return g_state.load(std::memory_order_relaxed) == 2;
  }
  return s == 2;
}

void trace_start(const std::string& path) {
  std::lock_guard<std::mutex> lock(trace_mutex());
  state().path = path;
  state().events.clear();
  state().epoch = Clock::now();
  g_state.store(2, std::memory_order_relaxed);
}

void trace_stop() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  if (g_state.load(std::memory_order_relaxed) != 2) return;
  g_state.store(1, std::memory_order_relaxed);
  if (!state().path.empty()) {
    std::ofstream out(state().path);
    if (out.good()) {
      write_trace_json(out, state().events);
    } else {
      log_error("trace.write_failed").kv("path", state().path);
    }
  }
  state().events.clear();
}

std::vector<TraceEvent> trace_snapshot() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  return state().events;
}

void write_trace_json(std::ostream& out,
                      const std::vector<TraceEvent>& events) {
  JsonWriter w(out, 0);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : events) {
    out << '\n';  // one event per line keeps the file diffable
    w.begin_object();
    w.kv("name", std::string_view(e.name));
    w.kv("cat", std::string_view("spmvml"));
    w.key("ph");
    w.value(std::string_view(&e.phase, 1));
    w.kv("ts", e.ts_us);
    if (e.phase == 'X') w.kv("dur", e.dur_us);
    if (e.phase == 'i') w.kv("s", std::string_view("t"));
    w.kv("pid", std::int64_t{1});
    w.kv("tid", std::int64_t{e.tid});
    if (!e.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const TraceArg& a : e.args) {
        w.key(a.key);
        w.raw_value(a.json);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void trace_instant(std::string_view name) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'i';
  e.tid = thread_tid();
  std::lock_guard<std::mutex> lock(trace_mutex());
  if (g_state.load(std::memory_order_relaxed) != 2) return;
  e.ts_us = now_us_locked();
  state().events.push_back(std::move(e));
}

void trace_instant(std::string_view name, std::string_view id) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'i';
  e.tid = thread_tid();
  e.args.push_back({"id", '"' + JsonWriter::escape(id) + '"'});
  std::lock_guard<std::mutex> lock(trace_mutex());
  if (g_state.load(std::memory_order_relaxed) != 2) return;
  e.ts_us = now_us_locked();
  state().events.push_back(std::move(e));
}

void trace_complete(std::string_view name, double dur_us,
                    std::string_view id) {
  if (!trace_enabled()) return;
  if (dur_us < 0) dur_us = 0;
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'X';
  e.dur_us = dur_us;
  e.tid = thread_tid();
  e.args.push_back({"id", '"' + JsonWriter::escape(id) + '"'});
  std::lock_guard<std::mutex> lock(trace_mutex());
  if (g_state.load(std::memory_order_relaxed) != 2) return;
  const double end_us = now_us_locked();
  e.ts_us = end_us - dur_us;
  if (e.ts_us < 0) {  // duration crossed a trace_start() reset
    e.ts_us = 0;
    e.dur_us = end_us;
  }
  state().events.push_back(std::move(e));
}

TraceSpan::TraceSpan(std::string_view name) : enabled_(trace_enabled()) {
  if (!enabled_) return;
  name_ = std::string(name);
  std::lock_guard<std::mutex> lock(trace_mutex());
  start_us_ = now_us_locked();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.phase = 'X';
  e.tid = thread_tid();
  e.ts_us = start_us_;
  e.args = std::move(args_);
  std::lock_guard<std::mutex> lock(trace_mutex());
  // Tracing may have been stopped while the span was open; drop silently.
  if (g_state.load(std::memory_order_relaxed) != 2) return;
  e.dur_us = now_us_locked() - start_us_;
  if (e.dur_us < 0) e.dur_us = 0;  // span crossed a trace_start() reset
  state().events.push_back(std::move(e));
}

TraceSpan& TraceSpan::arg(std::string_view key, double v) {
  if (enabled_)
    args_.push_back({std::string(key), JsonWriter::number(v)});
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::int64_t v) {
  if (enabled_)
    args_.push_back({std::string(key), std::to_string(v)});
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::uint64_t v) {
  if (enabled_)
    args_.push_back({std::string(key), std::to_string(v)});
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::string_view v) {
  if (enabled_)
    args_.push_back(
        {std::string(key), '"' + JsonWriter::escape(v) + '"'});
  return *this;
}

}  // namespace spmvml::obs
