// Scoped RAII trace spans emitting Chrome trace-event JSON.
//
//   { obs::TraceSpan span("collect.matrix"); span.arg("index", i); ... }
//
// With SPMVML_TRACE=out.json set (or trace_start(path) called), every
// span records one complete ("ph":"X") event with microsecond timestamps
// relative to the trace epoch, the process pid slot fixed at 1, and the
// same small per-thread tid the logger uses. The resulting file loads in
// Perfetto / chrome://tracing. trace_instant() adds thread-scoped instant
// events (backoff requeues, checkpoint writes).
//
// Off by default and zero-overhead when off: TraceSpan's constructor
// checks one relaxed atomic; disabled spans store nothing, take no lock
// and read no clock. Spans are strictly scoped objects, so events on one
// thread always nest properly (the unit tests verify this from the
// recorded intervals).
//
// Events are buffered in memory and written at trace_stop() — or, for
// the SPMVML_TRACE path, from an atexit hook. A span that is still open
// when the buffer is written is simply absent from the file (Chrome's
// own tracer has the same property).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spmvml::obs {

/// True when spans are being recorded. First call reads SPMVML_TRACE.
bool trace_enabled();

/// Start recording; events flush to `path` on trace_stop() or process
/// exit. An empty path records to memory only (tests read it back with
/// trace_snapshot()).
void trace_start(const std::string& path);

/// Stop recording, write the JSON file (if a path was configured) and
/// clear the buffer.
void trace_stop();

struct TraceArg {
  std::string key;
  std::string json;  // pre-rendered JSON value (number or quoted string)
};

struct TraceEvent {
  std::string name;
  char phase = 'X';  // 'X' complete, 'i' instant
  double ts_us = 0;  // relative to the trace epoch
  double dur_us = 0; // complete events only
  int tid = 0;
  std::vector<TraceArg> args;
};

/// Copy of the event buffer (test hook).
std::vector<TraceEvent> trace_snapshot();

/// Serialize events as a Chrome trace-event JSON document.
void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events);

/// Thread-scoped instant event; no-op when tracing is off.
void trace_instant(std::string_view name);

/// Instant event tagged with a request id ("args":{"id":...}); serving
/// uses these for per-request points (admit, shed, infer) that have no
/// duration of their own. No-op when tracing is off.
void trace_instant(std::string_view name, std::string_view id);

/// Complete ("X") event that *ends now* and started dur_us ago, tagged
/// with a request id. Serving phases that start on one thread and end on
/// another (queue wait, whole-request latency) cannot be scoped RAII
/// spans, so they are recorded retroactively from the measured duration.
/// No-op when tracing is off.
void trace_complete(std::string_view name, double dur_us,
                    std::string_view id);

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& arg(std::string_view key, double v);
  TraceSpan& arg(std::string_view key, std::int64_t v);
  TraceSpan& arg(std::string_view key, std::uint64_t v);
  TraceSpan& arg(std::string_view key, int v) {
    return arg(key, static_cast<std::int64_t>(v));
  }
  TraceSpan& arg(std::string_view key, unsigned v) {
    return arg(key, static_cast<std::uint64_t>(v));
  }
  TraceSpan& arg(std::string_view key, std::string_view v);

 private:
  bool enabled_;
  std::string name_;
  double start_us_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace spmvml::obs
