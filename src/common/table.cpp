#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace spmvml {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SPMVML_ENSURE(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SPMVML_ENSURE(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace spmvml
