// Shared work-queue thread pool with deadline-delayed resubmission.
//
// The pool exists for the embarrassingly-parallel stages of the pipeline
// (corpus collection above all): tasks are opaque callables pulled from a
// FIFO ready queue by a fixed set of workers. Two properties matter more
// than raw throughput:
//
//  * submit_after(delay, task) parks a task in a deadline min-heap instead
//    of sleeping inside a worker. This is how transient-retry backoff
//    yields the worker: the retrying task re-enters the ready queue when
//    its deadline passes, and the worker runs other matrices meanwhile.
//    A pool of T workers can therefore overlap arbitrarily many backoff
//    waits, where the serial collector blocked on every one.
//  * wait_idle() gives the submitting thread a barrier over *all* work,
//    including tasks that are currently parked on a deadline and tasks
//    that tasks themselves submitted (resumable state machines).
//
// Determinism note: the pool makes no ordering promises — callers that
// need deterministic output must index results by task identity (see
// collect_corpus's plan-indexed slot array), never by completion order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spmvml {

class ThreadPool {
 public:
  /// Spin up `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks are completed before the workers
  /// join (destruction waits for idle).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for immediate execution.
  void submit(std::function<void()> task);

  /// Enqueue a task that becomes runnable `delay_s` seconds from now.
  /// Negative or zero delay degrades to submit(). The calling worker
  /// returns immediately — nobody sleeps holding a pool slot.
  void submit_after(double delay_s, std::function<void()> task);

  /// Block until every submitted task (immediate and delayed, including
  /// tasks submitted by running tasks) has finished.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling pool worker in [0, size()), or -1 when called
  /// from a thread outside this pool. Lets tasks address per-worker state
  /// (e.g. a private oracle set) without locking.
  static int worker_index();

  /// Liveness snapshot of one worker: whether it is inside a task right
  /// now, and for how long. Workers stamp a heartbeat when a task starts
  /// and clear it when the task returns; a watchdog (the serving
  /// subsystem's) reads the stamps to find stuck workers without any
  /// cooperation from the task itself.
  struct Heartbeat {
    bool busy = false;
    double busy_s = 0.0;  // time inside the current task (0 when idle)
  };

  /// One entry per worker. Lock-free reads of the per-worker atomic
  /// stamps — safe to call from any thread at any rate.
  std::vector<Heartbeat> heartbeats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct DelayedTask {
    Clock::time_point ready_at;
    std::uint64_t seq = 0;  // FIFO tie-break for equal deadlines
    std::function<void()> fn;
    bool operator>(const DelayedTask& o) const {
      return ready_at != o.ready_at ? ready_at > o.ready_at : seq > o.seq;
    }
  };

  void worker_loop(int index);
  /// Move due delayed tasks onto the ready queue. Caller holds mu_.
  void promote_due(Clock::time_point now);

  struct ReadyTask {
    std::function<void()> fn;
    Clock::time_point enqueued;  // ready-queue entry (promotion for delayed)
  };

  /// Update the pool.queue_depth gauge. Caller holds mu_.
  void publish_depth();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here
  std::condition_variable idle_cv_;   // wait_idle waits here
  std::deque<ReadyTask> ready_;
  std::priority_queue<DelayedTask, std::vector<DelayedTask>,
                      std::greater<DelayedTask>>
      delayed_;
  std::uint64_t delayed_seq_ = 0;
  std::size_t pending_ = 0;  // submitted (ready + delayed + running)
  bool stop_ = false;
  /// Per-worker task-start stamps (steady-clock ns; -1 = idle). Sized at
  /// construction, written only by the owning worker.
  std::unique_ptr<std::atomic<std::int64_t>[]> task_started_ns_;
  std::vector<std::thread> workers_;
};

}  // namespace spmvml
