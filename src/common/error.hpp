// Error handling primitives for spmvml.
//
// The library throws spmvml::Error (derived from std::runtime_error) for
// precondition and invariant violations via the SPMVML_ENSURE macro, so
// callers can distinguish library-detected misuse from other failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spmvml {

/// Exception thrown for precondition/invariant violations inside spmvml.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "spmvml: check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace spmvml

/// Verify a precondition/invariant; throws spmvml::Error on failure.
/// Usage: SPMVML_ENSURE(n > 0, "matrix must be non-empty");
#define SPMVML_ENSURE(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) ::spmvml::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
