// Error handling primitives for spmvml.
//
// The library throws spmvml::Error (derived from std::runtime_error) for
// precondition and invariant violations via the SPMVML_ENSURE macro, so
// callers can distinguish library-detected misuse from other failures.
// Every Error carries an ErrorCategory so front ends (the CLI, services)
// can map failure classes to distinct exit codes / responses without
// string-matching messages.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spmvml {

/// Coarse failure taxonomy. Categories are stable API: the CLI maps each
/// to a distinct exit code (see error_exit_code).
enum class ErrorCategory : int {
  kGeneric = 0,           // precondition/invariant violation (default)
  kParse = 1,             // malformed input text (Matrix Market, CSV)
  kIo = 2,                // file open/read/write failures
  kModelFormat = 3,       // corrupt/truncated serialized model stream
  kInfeasibleFormat = 4,  // no candidate format satisfies feasibility
  kMeasurement = 5,       // measurement/collection failure
};

inline const char* error_category_name(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kGeneric: return "generic";
    case ErrorCategory::kParse: return "parse";
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kModelFormat: return "model-format";
    case ErrorCategory::kInfeasibleFormat: return "infeasible-format";
    case ErrorCategory::kMeasurement: return "measurement";
  }
  return "unknown";
}

/// Process exit code for a category (CLI contract; 2 is reserved for
/// usage errors, 0 for success).
inline int error_exit_code(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kGeneric: return 1;
    case ErrorCategory::kParse: return 3;
    case ErrorCategory::kIo: return 4;
    case ErrorCategory::kModelFormat: return 5;
    case ErrorCategory::kInfeasibleFormat: return 6;
    case ErrorCategory::kMeasurement: return 7;
  }
  return 1;
}

/// Exception thrown for precondition/invariant violations inside spmvml.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCategory category = ErrorCategory::kGeneric)
      : std::runtime_error(what), category_(category) {}

  ErrorCategory category() const { return category_; }

 private:
  ErrorCategory category_;
};

namespace detail {

[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg,
                               ErrorCategory category = ErrorCategory::kGeneric) {
  std::ostringstream os;
  os << "spmvml: check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), category);
}

}  // namespace detail
}  // namespace spmvml

/// Verify a precondition/invariant; throws spmvml::Error on failure.
/// Usage: SPMVML_ENSURE(n > 0, "matrix must be non-empty");
#define SPMVML_ENSURE(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) ::spmvml::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Category-tagged variant: SPMVML_ENSURE_CAT(ok, ErrorCategory::kParse, msg)
#define SPMVML_ENSURE_CAT(cond, category, msg)                        \
  do {                                                                \
    if (!(cond))                                                      \
      ::spmvml::detail::raise(#cond, __FILE__, __LINE__, (msg), (category)); \
  } while (0)
