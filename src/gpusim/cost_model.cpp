#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spmvml {
namespace {

constexpr double kIdxBytes = 4.0;  // 32-bit device indices

/// Expected DRAM bytes fetched to gather x[col] for every nonzero.
double gather_bytes(const RowSummary& s, const GpuArch& arch, Precision prec,
                    const CostParams& p) {
  if (s.nnz == 0) return 0.0;
  const double w = value_bytes(prec);
  const double elems_per_line = p.gather_line_bytes / w;

  // Spatial locality: consecutive columns within a row share sectors.
  const double stride = std::max(1.0, s.avg_stride);
  double miss = std::min(1.0, stride / elems_per_line);

  // Temporal locality: if x (or the per-row working span) fits in L2 with
  // room for cross-warp reuse, most gathers hit.
  const double x_bytes = static_cast<double>(s.cols) * w;
  const double capacity_hit = std::clamp(
      static_cast<double>(arch.l2_bytes) * p.l2_reuse_boost / x_bytes, 0.0,
      1.0);
  miss *= (1.0 - 0.9 * capacity_hit);

  // Banded structures walk x almost sequentially.
  miss *= (1.0 - p.band_hit_bonus * s.band_fraction);
  miss = std::max(miss, p.min_miss);
  return static_cast<double>(s.nnz) * p.gather_line_bytes * miss;
}

double max3(double a, double b, double c) { return std::max(a, std::max(b, c)); }

}  // namespace

CostBreakdown simulate_cost(const RowSummary& s, Format f, const GpuArch& arch,
                            Precision prec, const CostParams& p) {
  CostBreakdown out;
  const double w = value_bytes(prec);
  const double bw = arch.mem_bw_gbps * 1e9;
  const double lane_rate = arch.lane_rate();
  const double nnz = static_cast<double>(s.nnz);
  const double rows = static_cast<double>(s.rows);
  const double y_bytes = rows * w;
  const double gather = gather_bytes(s, arch, prec, p);
  out.gather_bytes = gather;
  out.flop_time = 2.0 * nnz / arch.peak_flops(prec);

  double launches = 1.0;
  double setup = p.setup_cycles_basic;
  double traffic = 0.0;
  double eff = 1.0;
  double exec_steps = 0.0;
  double atomics = 0.0;
  double tail = 0.0;

  // Single-warp / single-thread throughput for makespan-tail terms.
  const double warp_step_rate = arch.clock_ghz * 1e9 / p.cycles_per_step;
  const double row_max = static_cast<double>(s.row_max);

  switch (f) {
    case Format::kCoo: {
      traffic = nnz * (2.0 * kIdxBytes + w) + gather + y_bytes;
      eff = p.eff_coo;
      exec_steps = nnz * 1.8;  // product + in-kernel segmented scan
      // The flat COO kernel reduces segments in shared memory and commits
      // warp-boundary carries with global atomics (~one per 32 items).
      atomics = (rows + nnz) * p.atomics_per_warp_chunk;
      launches = p.launches_coo;
      break;
    }
    case Format::kCsr: {
      // Adaptive kernel: take the better of vector (warp-per-row) and
      // scalar (thread-per-row) — what a tuned cuSPARSE csrmv does.
      // Both pay a makespan tail: the longest row is ground by one warp
      // (vector) or one thread (scalar) while the device drains.
      const double tail_vec = (row_max / 32.0) / warp_step_rate;
      const double tail_sca = row_max / warp_step_rate;

      const double eff_vec =
          p.eff_csr_vector *
          std::clamp(s.row_mu / 32.0, p.csr_vector_short_row_floor, 1.0);
      const double base = nnz * (kIdxBytes + w) + rows * 2.0 * kIdxBytes +
                          gather + y_bytes;
      const double t_mem_vec = base / (bw * eff_vec);
      const double t_exec_vec =
          s.csr_vector_lane_steps * p.cycles_per_step / lane_rate;
      const double t_vec = std::max(t_mem_vec, t_exec_vec) + tail_vec;

      const double base_scalar =
          nnz * (kIdxBytes + w) * p.scalar_amplification +
          rows * 2.0 * kIdxBytes + gather + y_bytes;
      const double t_mem_sca = base_scalar / (bw * p.eff_csr_vector);
      const double t_exec_sca =
          s.csr_scalar_lane_steps * p.cycles_per_step / lane_rate;
      const double t_sca = std::max(t_mem_sca, t_exec_sca) + tail_sca;

      if (t_vec <= t_sca) {
        traffic = base;
        eff = eff_vec;
        exec_steps = s.csr_vector_lane_steps;
        tail = tail_vec;
      } else {
        traffic = base_scalar;
        eff = p.eff_csr_vector;
        exec_steps = s.csr_scalar_lane_steps;
        tail = tail_sca;
      }
      break;
    }
    case Format::kEll: {
      const double slots = rows * row_max;
      traffic = slots * (kIdxBytes + w) +
                gather * p.texture_gather_factor + y_bytes;
      eff = p.eff_ell;
      exec_steps = slots;  // padded slots execute (predicated) too
      // Thread-per-row: every thread walks `width` slots; the closing
      // warp runs row_max steps alone.
      tail = row_max / warp_step_rate;
      break;
    }
    case Format::kHyb: {
      const double ell_slots = rows * static_cast<double>(s.hyb_width);
      const double spill = static_cast<double>(s.hyb_spill);
      traffic = ell_slots * (kIdxBytes + w) + spill * (2.0 * kIdxBytes + w) +
                gather * p.texture_gather_factor + y_bytes;
      eff = p.eff_hyb;
      exec_steps = ell_slots + spill * 1.3;
      // Spill entries flush through the COO kernel's segmented reduction;
      // the ELL part's tail is capped at the split width.
      atomics = spill * p.atomics_per_warp_chunk;
      tail = static_cast<double>(s.hyb_width) / warp_step_rate;
      launches = p.launches_hyb;
      setup = 2.0 * p.setup_cycles_basic;
      break;
    }
    case Format::kCsr5: {
      const double tiles = std::ceil(nnz / (32.0 * 16.0));
      traffic = nnz * (kIdxBytes + w) + tiles * 64.0 + gather + y_bytes;
      eff = p.eff_csr5;
      // The in-tile transpose/segmented-sum costs grow mildly with row
      // irregularity (more segments per tile).
      exec_steps = nnz * (p.csr5_exec_overhead +
                          0.04 * std::min(s.row_cv(), 5.0));
      atomics = 0.3 * tiles * p.atomics_per_row;  // cross-tile carries
      setup = p.setup_cycles_csr5;
      launches = p.launches_csr5;
      break;
    }
    case Format::kMergeCsr: {
      traffic = nnz * (kIdxBytes + w) + rows * kIdxBytes + gather + y_bytes;
      eff = p.eff_merge;
      exec_steps = (nnz + rows) * p.merge_exec_overhead;
      setup = p.setup_cycles_merge;
      launches = p.launches_merge;
      break;
    }
    case Format::kSell: {
      // ELL's coalesced column-major streaming over the *sorted-slice*
      // slot count (sell_slots <= rows * row_max, far fewer on skewed
      // matrices), plus the permutation array on the y scatter side.
      const double slots = static_cast<double>(s.sell_slots);
      traffic = slots * (kIdxBytes + w) + rows * kIdxBytes +
                gather * p.texture_gather_factor + y_bytes;
      eff = p.eff_sell;
      exec_steps = slots * p.sell_exec_overhead;
      // Thread-per-row inside each slice: the widest slice holds the
      // longest row, so the closing warp still grinds row_max slots —
      // but the sort packs its peers into the same slice, so the rest
      // of the device is already done. Same tail shape as ELL.
      tail = row_max / warp_step_rate;
      setup = 2.0 * p.setup_cycles_basic;  // slice-width/permutation pass
      launches = p.launches_sell;
      break;
    }
  }

  out.traffic_bytes = traffic;
  out.memory_time = traffic / (bw * eff);
  out.exec_time =
      (exec_steps * p.cycles_per_step + setup) / lane_rate;
  out.atomic_time = atomics / (arch.atomic_throughput_gops * 1e9);
  out.launch_time = launches * arch.launch_overhead_s;
  out.tail_time = tail;
  out.total_time = out.launch_time +
                   max3(out.memory_time, out.exec_time, out.flop_time) +
                   out.atomic_time + out.tail_time;
  return out;
}

double simulate_time(const RowSummary& s, Format f, const GpuArch& arch,
                     Precision prec, const CostParams& params) {
  return simulate_cost(s, f, arch, prec, params).total_time;
}

double to_gflops(const RowSummary& s, double seconds) {
  SPMVML_ENSURE(seconds > 0.0, "non-positive time");
  return 2.0 * static_cast<double>(s.nnz) / seconds / 1e9;
}

}  // namespace spmvml
