// GPU architecture descriptors (the paper's Table III testbeds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spmvml {

/// Scalar value precision of the SpMV study.
enum class Precision : int { kSingle = 0, kDouble = 1 };

inline constexpr int kNumPrecisions = 2;

const char* precision_name(Precision p);
inline int value_bytes(Precision p) { return p == Precision::kSingle ? 4 : 8; }

/// Static architecture parameters that drive the cost model.
struct GpuArch {
  std::string name;
  int sms = 0;                 // streaming multiprocessors
  int cores_per_sm = 0;
  double clock_ghz = 0.0;
  double mem_bw_gbps = 0.0;    // peak DRAM bandwidth, GB/s
  std::int64_t mem_bytes = 0;  // device DRAM capacity
  std::int64_t l2_bytes = 0;
  int warp_size = 32;
  double launch_overhead_s = 0.0;  // fixed per-kernel launch latency
  double atomic_throughput_gops = 0.0;  // global atomic adds per second (G)
  double dp_ratio = 1.0;  // double-precision FLOP rate / single rate

  /// Peak FLOP/s assuming FMA (2 flops per core-cycle).
  double peak_flops(Precision p) const {
    const double base =
        static_cast<double>(sms) * cores_per_sm * clock_ghz * 1e9 * 2.0;
    return p == Precision::kDouble ? base * dp_ratio : base;
  }

  /// Lane-instruction issue rate (lane-cycles per second).
  double lane_rate() const {
    return static_cast<double>(sms) * cores_per_sm * clock_ghz * 1e9;
  }

  /// Resident warps the device can keep in flight (occupancy proxy).
  double concurrent_warps() const {
    return static_cast<double>(sms) * 64.0;  // 64 resident warps/SM
  }
};

/// GPU 1 of Table III: Tesla K40c — 13 Kepler SMs, 192 cores/SM, 824 MHz,
/// 12 GB, 1.5 MB L2 (288 GB/s GDDR5).
GpuArch tesla_k40c();

/// GPU 2 of Table III: Tesla P100 — 56 Pascal SMs, 64 cores/SM, 1328 MHz,
/// 16 GB, 4 MB L2 (732 GB/s HBM2).
GpuArch tesla_p100();

/// Both testbeds in paper order (K80c/K40c first).
std::vector<GpuArch> paper_testbeds();

}  // namespace spmvml
