#include "gpusim/arch.hpp"

#include "common/error.hpp"

namespace spmvml {

const char* precision_name(Precision p) {
  return p == Precision::kSingle ? "single" : "double";
}

GpuArch tesla_k40c() {
  GpuArch a;
  a.name = "K80c";  // the paper labels the Kepler box K80c/K40c interchangeably
  a.sms = 13;
  a.cores_per_sm = 192;
  a.clock_ghz = 0.824;
  a.mem_bw_gbps = 288.0;
  a.mem_bytes = 12LL * 1000 * 1000 * 1000;  // 12 GB GDDR5
  a.l2_bytes = static_cast<std::int64_t>(1.5 * 1024 * 1024);
  a.warp_size = 32;
  a.launch_overhead_s = 5e-6;
  a.atomic_throughput_gops = 0.6;
  a.dp_ratio = 1.0 / 3.0;  // GK110B double-precision throttle
  return a;
}

GpuArch tesla_p100() {
  GpuArch a;
  a.name = "P100";
  a.sms = 56;
  a.cores_per_sm = 64;
  a.clock_ghz = 1.328;
  a.mem_bw_gbps = 732.0;
  a.mem_bytes = 16LL * 1000 * 1000 * 1000;  // 16 GB HBM2
  a.l2_bytes = 4 * 1024 * 1024;
  a.warp_size = 32;
  a.launch_overhead_s = 3.5e-6;
  a.atomic_throughput_gops = 2.5;
  a.dp_ratio = 0.5;  // GP100 1:2 double precision
  return a;
}

std::vector<GpuArch> paper_testbeds() { return {tesla_k40c(), tesla_p100()}; }

}  // namespace spmvml
