// Fault model for the measurement oracle (and feasibility predicates for
// serving).
//
// Real measurement campaigns are full of per-format failures — the paper's
// §IV-C drops ~400 of 2700 SuiteSparse matrices that "did not fit in the
// GPU memory or failed to execute for one or more storage formats". This
// module makes those failures a first-class, *deterministic* state:
//
//  * structural OOM     — a format's device image (ELL padding blow-up,
//                         HYB/CSR5 auxiliary arrays) exceeds the device
//                         memory; a pure function of the matrix digest.
//  * kernel timeout     — the simulated kernel exceeds a watchdog budget
//                         (pathological row skew makes the CSR/ELL makespan
//                         tail arbitrarily long).
//  * transient failure  — seed-derived launch failures at a configurable
//                         rate; *retryable* (the outcome depends on the
//                         attempt number, so a retry can succeed).
//
// The same device-image sizing powers feasibility-aware serving: a
// selector can be constrained to formats that fit a memory budget.
//
// The transient draw is a client of the shared chaos engine
// (common/chaos): the salt chain here is the PR 1 contract, and
// chaos::seeded_roll turns it into the same deterministic Bernoulli the
// serving chaos sites use.
#pragma once

#include <cstdint>
#include <functional>

#include "gpusim/arch.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/format.hpp"

namespace spmvml {

/// Outcome of one oracle measurement.
enum class MeasurementStatus : int {
  kOk = 0,
  kOom = 1,        // device image exceeds memory (structural, not retryable)
  kTimeout = 2,    // kernel watchdog fired (structural, not retryable)
  kTransient = 3,  // launch failure (retryable: retry with attempt+1)
};

inline constexpr int kNumMeasurementStatuses = 4;

const char* measurement_status_name(MeasurementStatus s);

/// True for failure classes where re-running the same kernel can succeed.
inline bool is_retryable(MeasurementStatus s) {
  return s == MeasurementStatus::kTransient;
}

/// Estimated device-resident bytes for SpMV in format `f`: the format's
/// own arrays plus the x and y vectors. 32-bit indices, as in the cost
/// model. This is the quantity the OOM fault and the --mem-budget
/// feasibility predicate gate on.
double format_device_bytes(const RowSummary& s, Format f, Precision prec);

/// Fault-injection knobs. Defaults keep the oracle infallible (the seed
/// behavior); enable and tune per experiment.
struct FaultConfig {
  bool enabled = false;
  /// Usable fraction of device memory (driver/context overhead).
  double memory_headroom = 0.9;
  /// Overrides the arch's mem_bytes when > 0 (for tests).
  std::int64_t device_memory_override = 0;
  /// Kernel watchdog: measurements whose model time exceeds this fail
  /// with kTimeout. <= 0 disables the watchdog.
  double timeout_seconds = 30.0;
  /// Probability that one (cell, attempt) suffers a transient launch
  /// failure. Deterministic in (matrix, format, arch, precision, attempt).
  double transient_rate = 0.0;
};

/// Deterministic fault classifier: decides the status of one measurement
/// before any timing happens.
class FaultModel {
 public:
  FaultModel(FaultConfig config, const GpuArch& arch, Precision prec);

  /// Status of measuring (matrix digest `s`, format `f`) on attempt
  /// `attempt`. `model_seconds` is the noise-free cost-model time (drives
  /// the watchdog). Priority: OOM > timeout > transient.
  MeasurementStatus classify(const RowSummary& s, Format f,
                             double model_seconds, std::uint64_t matrix_seed,
                             int attempt) const;

  const FaultConfig& config() const { return config_; }

  /// Effective usable device memory in bytes.
  double usable_bytes() const;

 private:
  FaultConfig config_;
  GpuArch arch_;
  Precision prec_;
};

/// Per-format feasibility predicate for serving (true = may be selected).
using FeasibilityFn = std::function<bool(Format)>;

/// Predicate: format_device_bytes(s, f, prec) <= budget_bytes. A
/// non-positive budget admits every format.
FeasibilityFn make_memory_feasibility(const RowSummary& s, Precision prec,
                                      std::int64_t budget_bytes);

}  // namespace spmvml
