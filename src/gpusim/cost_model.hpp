// Per-format GPU SpMV cost models.
//
// For each of the seven formats the model computes
//   time = launches * launch_overhead
//        + max( memory_time, execution_time, flop_time ) + serial extras
// where
//   memory_time    = effective DRAM traffic / (peak_bw * format coalescing
//                    efficiency); traffic includes the format's own arrays
//                    (ELL padding reads, COO's duplicated row indices, CSR5
//                    tile descriptors, ...) plus the x-vector gather, whose
//                    miss rate comes from the RowSummary's *column locality*
//                    digest (stride/span/band fraction vs L2 capacity);
//   execution_time = lane-steps / lane_rate, with lane-steps capturing the
//                    mechanisms §II-A describes: vector-CSR pads each row
//                    to a warp multiple (thread divergence on short rows),
//                    scalar-CSR runs each 32-row group at the group's max
//                    row (load imbalance), ELL executes rows*row_max slots
//                    (zero padding), CSR5/merge execute balanced work with
//                    a small fixed overhead (tile desc / merge-path search);
//   serial extras  = COO/HYB segmented-reduction atomics.
//
// All constants live in CostParams so the ablation bench can sweep them.
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/format.hpp"

namespace spmvml {

/// Bumped whenever the cost model's defaults or structure change; label
/// caches carry it so stale measurements are never silently reused.
/// v8: blocked feature extraction (merged Welford accumulators can shift
/// set-2/3 features of >4096-row matrices in the last ulp).
/// v9: SELL-C-sigma joins as the seventh format (new per-format model,
/// and the best-format label space changes for every matrix).
inline constexpr int kOracleVersion = 9;

/// Tunable constants of the cost model (defaults reproduce the paper's
/// qualitative format landscape; see bench/ablation_oracle).
struct CostParams {
  // Coalescing efficiency of each format's own-array streams. ELL/HYB
  // stream column-major (near-perfect); vector-CSR wastes part of each
  // transaction on row boundaries; CSR5/merge are tiled/balanced.
  double eff_coo = 0.92;
  double eff_csr_vector = 0.85;
  double eff_ell = 0.97;
  double eff_hyb = 0.95;
  double eff_csr5 = 0.96;
  double eff_merge = 0.88;
  // SELL streams its slices column-major like ELL but scatters y through
  // the sorted-row permutation, costing a little write coalescing.
  double eff_sell = 0.96;
  // Vector-CSR transactions are only fully used when a row spans the
  // warp; short rows waste most of each 32-wide load. Effective
  // efficiency is eff_csr_vector * clamp(row_mu/32, this floor, 1).
  double csr_vector_short_row_floor = 0.30;
  // Scalar-CSR reads its per-thread streams uncoalesced: sector-amplified.
  double scalar_amplification = 3.2;
  // Instruction cost (cycles) per lane-step of useful/padded work. High
  // enough that divergence/imbalance (lane-step inflation) genuinely binds
  // for short-row and skewed matrices.
  double cycles_per_step = 22.0;
  // Extra per-entry instruction multiplier for CSR5's in-register
  // transpose + segmented sum, and merge's path bookkeeping.
  double csr5_exec_overhead = 1.35;
  double merge_exec_overhead = 1.25;
  // SELL's per-slot predication plus the permutation indirection on the
  // y write side.
  double sell_exec_overhead = 1.10;
  // Fixed kernel setup cost (cycles).
  double setup_cycles_basic = 3.0e3;
  double setup_cycles_csr5 = 2.5e4;
  double setup_cycles_merge = 1.8e4;
  // Effective launch multiples: CSR5 amortises a tile-descriptor pass,
  // merge a path-partitioning search, HYB's two kernels partially overlap
  // via streams — visible on tiny matrices.
  double launches_csr5 = 1.25;
  double launches_merge = 1.15;
  double launches_hyb = 1.6;
  double launches_coo = 1.3;  // flat kernel + carry fix-up pass
  double launches_sell = 1.1;  // slice-descriptor pass partially overlaps
  // x-gather model.
  double gather_line_bytes = 32.0;   // L2 sector size
  double l2_reuse_boost = 3.0;       // temporal reuse multiplier on capacity
  double band_hit_bonus = 0.75;      // miss reduction for banded access
  double min_miss = 0.04;            // floor: cold misses never vanish
  // ELL/HYB kernels route x through the texture/read-only path.
  double texture_gather_factor = 0.75;
  // Segmented-reduction atomics (COO and HYB's spill kernel).
  double atomics_per_row = 1.0;
  double atomics_per_warp_chunk = 1.0 / 32.0;  // per-nnz carry flushes
};

/// Intermediate quantities, exposed so tests/benches can assert on the
/// model's internals (e.g. "ELL traffic grows with padding").
struct CostBreakdown {
  double traffic_bytes = 0.0;
  double gather_bytes = 0.0;
  double memory_time = 0.0;
  double exec_time = 0.0;
  double flop_time = 0.0;
  double atomic_time = 0.0;
  double launch_time = 0.0;
  /// Makespan tail: time one warp/thread grinds the longest row while the
  /// rest of the device idles. Zero for the balanced formats (COO, CSR5,
  /// merge); the dominant skew penalty for CSR and ELL.
  double tail_time = 0.0;
  double total_time = 0.0;
};

/// Noise-free model time for one (matrix, format, arch, precision).
CostBreakdown simulate_cost(const RowSummary& s, Format f, const GpuArch& arch,
                            Precision prec, const CostParams& params = {});

/// Convenience: total seconds only.
double simulate_time(const RowSummary& s, Format f, const GpuArch& arch,
                     Precision prec, const CostParams& params = {});

/// GFLOPS implied by a time (2*nnz flops, the paper's metric).
double to_gflops(const RowSummary& s, double seconds);

}  // namespace spmvml
