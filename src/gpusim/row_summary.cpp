#include "gpusim/row_summary.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <limits>

#include "common/stats.hpp"

namespace spmvml {

RowSummary summarize(const Csr<double>& m) {
  RowSummary s;
  s.rows = m.rows();
  s.cols = m.cols();
  s.nnz = m.nnz();

  StreamingStats row_len, chunk_size, stride, span;
  index_t band_hits = 0;
  // "Banded" means within a window of the structural diagonal; window
  // grows with matrix size but stays a small constant fraction.
  const double diag_scale =
      s.rows > 1 ? static_cast<double>(s.cols) / static_cast<double>(s.rows)
                 : 1.0;
  const auto band_window = std::max<index_t>(
      64, static_cast<index_t>(static_cast<double>(s.cols) * 0.02));

  s.row_min = s.rows > 0 ? std::numeric_limits<index_t>::max() : 0;
  for (index_t r = 0; r < s.rows; ++r) {
    const index_t begin = m.row_ptr()[r], end = m.row_ptr()[r + 1];
    const index_t len = end - begin;
    row_len.add(static_cast<double>(len));
    s.row_max = std::max(s.row_max, len);
    s.row_min = std::min(s.row_min, len);
    if (len == 0) {
      ++s.empty_rows;
      continue;
    }
    const auto diag =
        static_cast<index_t>(static_cast<double>(r) * diag_scale);
    index_t run = 1;
    for (index_t p = begin; p < end; ++p) {
      const index_t c = m.col_idx()[p];
      if (std::llabs(c - diag) <= band_window) ++band_hits;
      if (p > begin) {
        const index_t gap = c - m.col_idx()[p - 1];
        stride.add(static_cast<double>(gap));
        if (gap == 1) {
          ++run;
        } else {
          chunk_size.add(static_cast<double>(run));
          ++s.total_chunks;
          run = 1;
        }
      }
    }
    chunk_size.add(static_cast<double>(run));
    ++s.total_chunks;
    span.add(static_cast<double>(m.col_idx()[end - 1] -
                                 m.col_idx()[begin] + 1));
  }
  if (s.rows == 0) s.row_min = 0;

  s.row_mu = row_len.mean();
  s.row_sigma = row_len.stddev();
  s.chunk_size_mu = chunk_size.count() > 0 ? chunk_size.mean() : 0.0;
  s.avg_stride = stride.count() > 0 ? stride.mean() : 1.0;
  s.span_mu = span.count() > 0 ? span.mean() : 0.0;
  s.band_fraction =
      s.nnz > 0 ? static_cast<double>(band_hits) / static_cast<double>(s.nnz)
                : 0.0;

  // Second pass over row lengths only (O(rows)): kernel-shape statistics.
  s.hyb_width = static_cast<index_t>(std::ceil(s.row_mu));
  index_t group_max = 0;
  for (index_t r = 0; r < s.rows; ++r) {
    const index_t len = m.row_ptr()[r + 1] - m.row_ptr()[r];
    s.csr_vector_lane_steps += std::ceil(static_cast<double>(len) / 32.0) * 32.0;
    group_max = std::max(group_max, len);
    if ((r & 31) == 31 || r == s.rows - 1) {
      s.csr_scalar_lane_steps += static_cast<double>(group_max) * 32.0;
      group_max = 0;
    }
    s.hyb_ell_entries += std::min(len, s.hyb_width);
  }
  s.hyb_spill = s.nnz - s.hyb_ell_entries;

  // SELL-C-sigma slots at the default (32, 128), mirroring
  // Sell::assign_from_csr exactly: sort each sigma window's lengths
  // descending (sigma is a multiple of C and windows start on slice
  // boundaries, so slices never straddle windows), then every C-row
  // chunk pads to its own max; the trailing chunk shrinks to the rows
  // that exist. The fixed window buffer keeps summarize() heap-free.
  std::array<index_t, kSellDefaultSigma> window;
  for (index_t w = 0; w < s.rows; w += kSellDefaultSigma) {
    const index_t n = std::min<index_t>(kSellDefaultSigma, s.rows - w);
    for (index_t i = 0; i < n; ++i)
      window[static_cast<std::size_t>(i)] =
          m.row_ptr()[w + i + 1] - m.row_ptr()[w + i];
    std::sort(window.begin(), window.begin() + n, std::greater<index_t>());
    for (index_t i = 0; i < n; i += kSellDefaultC)
      s.sell_slots += window[static_cast<std::size_t>(i)] *
                      std::min<index_t>(kSellDefaultC, n - i);
  }
  return s;
}

}  // namespace spmvml
