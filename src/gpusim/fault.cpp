#include "gpusim/fault.hpp"

#include <cmath>

#include "common/chaos/chaos.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace spmvml {

namespace {
constexpr double kIdxBytes = 4.0;  // 32-bit device indices
}  // namespace

const char* measurement_status_name(MeasurementStatus s) {
  switch (s) {
    case MeasurementStatus::kOk: return "ok";
    case MeasurementStatus::kOom: return "oom";
    case MeasurementStatus::kTimeout: return "timeout";
    case MeasurementStatus::kTransient: return "transient";
  }
  return "unknown";
}

double format_device_bytes(const RowSummary& s, Format f, Precision prec) {
  const double w = value_bytes(prec);
  const double nnz = static_cast<double>(s.nnz);
  const double rows = static_cast<double>(s.rows);
  const double vectors = (rows + static_cast<double>(s.cols)) * w;
  switch (f) {
    case Format::kCoo:
      return nnz * (2.0 * kIdxBytes + w) + vectors;
    case Format::kCsr:
      return nnz * (kIdxBytes + w) + (rows + 1.0) * kIdxBytes + vectors;
    case Format::kEll:
      return rows * static_cast<double>(s.row_max) * (kIdxBytes + w) + vectors;
    case Format::kHyb:
      return rows * static_cast<double>(s.hyb_width) * (kIdxBytes + w) +
             static_cast<double>(s.hyb_spill) * (2.0 * kIdxBytes + w) +
             vectors;
    case Format::kCsr5: {
      // CSR arrays + per-tile descriptors (32x16 tiles, 64 B each).
      const double tiles = std::ceil(nnz / (32.0 * 16.0));
      return nnz * (kIdxBytes + w) + (rows + 1.0) * kIdxBytes + tiles * 64.0 +
             vectors;
    }
    case Format::kMergeCsr: {
      // CSR arrays + merge-path partition starts (one int2 per 256 items).
      const double partitions = std::ceil((nnz + rows) / 256.0);
      return nnz * (kIdxBytes + w) + (rows + 1.0) * kIdxBytes +
             partitions * 8.0 + vectors;
    }
    case Format::kSell: {
      // Sorted-slice slots + the row permutation and slice descriptors.
      const double slices =
          std::ceil(rows / static_cast<double>(kSellDefaultC));
      return static_cast<double>(s.sell_slots) * (kIdxBytes + w) +
             rows * kIdxBytes + 2.0 * slices * kIdxBytes + vectors;
    }
  }
  SPMVML_ENSURE(false, "unreachable: invalid Format");
  return 0.0;
}

FaultModel::FaultModel(FaultConfig config, const GpuArch& arch,
                       Precision prec)
    : config_(config), arch_(arch), prec_(prec) {
  SPMVML_ENSURE(config_.transient_rate >= 0.0 && config_.transient_rate < 1.0,
                "transient rate must be in [0, 1)");
  SPMVML_ENSURE(config_.memory_headroom > 0.0 && config_.memory_headroom <= 1.0,
                "memory headroom must be in (0, 1]");
}

double FaultModel::usable_bytes() const {
  const double capacity =
      config_.device_memory_override > 0
          ? static_cast<double>(config_.device_memory_override)
          : static_cast<double>(arch_.mem_bytes);
  return capacity * config_.memory_headroom;
}

MeasurementStatus FaultModel::classify(const RowSummary& s, Format f,
                                       double model_seconds,
                                       std::uint64_t matrix_seed,
                                       int attempt) const {
  if (!config_.enabled) return MeasurementStatus::kOk;
  if (format_device_bytes(s, f, prec_) > usable_bytes())
    return MeasurementStatus::kOom;
  if (config_.timeout_seconds > 0.0 && model_seconds > config_.timeout_seconds)
    return MeasurementStatus::kTimeout;
  if (config_.transient_rate > 0.0) {
    // Deterministic in the full measurement identity *and* the attempt, so
    // a retry re-rolls the dice but a re-run of the experiment does not.
    // The draw itself goes through the shared chaos primitive: the oracle
    // fault model and the serving chaos sites roll from one seeded engine
    // (chaos::seeded_roll keeps the PR 1 salt chain bit-identical).
    std::uint64_t salt = hash_combine(matrix_seed, 0xFA17FA17FA17FA17ULL);
    salt = hash_combine(salt, static_cast<std::uint64_t>(f) * 1000003);
    salt = hash_combine(salt, std::hash<std::string>{}(arch_.name));
    salt = hash_combine(salt, static_cast<std::uint64_t>(prec_) + 17);
    salt = chaos::with_attempt(salt, attempt);
    if (chaos::seeded_roll(salt, config_.transient_rate))
      return MeasurementStatus::kTransient;
  }
  return MeasurementStatus::kOk;
}

FeasibilityFn make_memory_feasibility(const RowSummary& s, Precision prec,
                                      std::int64_t budget_bytes) {
  if (budget_bytes <= 0) return [](Format) { return true; };
  const double budget = static_cast<double>(budget_bytes);
  return [s, prec, budget](Format f) {
    return format_device_bytes(s, f, prec) <= budget;
  };
}

}  // namespace spmvml
