// Measurement oracle: what "running SpMV 50 times and averaging" returns.
//
// Layers two kinds of stochasticity on the deterministic cost model:
//  * per-repetition timing jitter (log-normal, averages out over reps,
//    exactly like the paper's 50-run averaging methodology §IV-B), and
//  * a per-(matrix, format, arch, precision) *systematic* factor that does
//    NOT average out — modeling kernel/structure interactions the cost
//    model leaves out. This is the irreducible error an ML model trained
//    on structural features faces on real hardware.
// Both are seeded from the matrix's identity, so the oracle is a pure
// function and every experiment is reproducible.
//
// Measurements can also *fail*: with fault injection enabled (see
// gpusim/fault.hpp) a measurement may come back with an OOM, timeout or
// transient-launch-failure status instead of a time. Transients are
// retryable — call measure() again with a higher attempt number.
#pragma once

#include <vector>

#include "gpusim/arch.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/row_summary.hpp"
#include "sparse/arena.hpp"
#include "sparse/format.hpp"

namespace spmvml {

struct MeasurementConfig {
  int reps = 50;                   // paper: 50 runs averaged
  double rep_sigma = 0.04;         // log-normal per-run jitter
  double systematic_sigma = 0.02; // per-(matrix,format) fixed deviation
  FaultConfig faults;             // disabled by default (infallible oracle)
};

/// A measurement: mean time over reps plus the implied GFLOPS — or a
/// failure status with NaN time.
struct Measurement {
  double seconds = 0.0;
  double gflops = 0.0;
  MeasurementStatus status = MeasurementStatus::kOk;

  bool ok() const { return status == MeasurementStatus::kOk; }
};

class MeasurementOracle {
 public:
  MeasurementOracle(GpuArch arch, Precision prec,
                    MeasurementConfig config = {}, CostParams params = {});

  const GpuArch& arch() const { return arch_; }
  Precision precision() const { return prec_; }
  const FaultModel& fault_model() const { return faults_; }

  /// Timed SpMV for one (matrix, format); matrix_seed identifies the
  /// matrix (the GenSpec seed, or any stable id for external matrices).
  /// `attempt` re-rolls retryable faults only — the timing itself is
  /// attempt-invariant.
  Measurement measure(const RowSummary& s, Format f,
                      std::uint64_t matrix_seed, int attempt = 0) const;

  /// Measure all seven formats at once (shares the summary scan).
  std::array<Measurement, kNumFormats> measure_all(
      const RowSummary& s, std::uint64_t matrix_seed, int attempt = 0) const;

 private:
  GpuArch arch_;
  Precision prec_;
  MeasurementConfig config_;
  CostParams params_;
  FaultModel faults_;
};

/// Host-measurement oracle: converts the CSR master copy into the
/// requested format and times the format's actual CPU SpMV kernel —
/// the ground-truth counterpart to the simulated MeasurementOracle,
/// used to sanity-check the cost model's format ordering on the host.
/// Conversions go through an internal ConversionArena and the work
/// vectors persist across calls, so sweeping a corpus does not churn
/// the allocator. Not thread-safe (one instance per thread).
class HostOracle {
 public:
  /// reps = timed kernel launches averaged per measurement (one untimed
  /// warm-up run precedes them). `params` tunes the conversions (SELL's
  /// (C, sigma)); the default matches the simulated oracle's digest.
  explicit HostOracle(int reps = 5, const ConvertParams& params = {});

  Measurement measure(const Csr<double>& csr, Format f);

  /// Measure all seven formats (shares the x/y vectors and the arena).
  std::array<Measurement, kNumFormats> measure_all(const Csr<double>& csr);

 private:
  int reps_;
  ConversionArena<double> arena_;
  std::vector<double> x_, y_;
};

}  // namespace spmvml
