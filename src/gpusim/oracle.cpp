#include "gpusim/oracle.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace spmvml {

namespace {

// Every measurement lands in exactly one status counter, so the merged
// registry reproduces the fault accounting the collector keeps per run.
obs::Counter& measure_counter(MeasurementStatus status) {
  static obs::Counter ok =
      obs::MetricsRegistry::global().counter("oracle.measure.ok");
  static obs::Counter oom =
      obs::MetricsRegistry::global().counter("oracle.measure.oom");
  static obs::Counter timeout =
      obs::MetricsRegistry::global().counter("oracle.measure.timeout");
  static obs::Counter transient =
      obs::MetricsRegistry::global().counter("oracle.measure.transient");
  switch (status) {
    case MeasurementStatus::kOom: return oom;
    case MeasurementStatus::kTimeout: return timeout;
    case MeasurementStatus::kTransient: return transient;
    case MeasurementStatus::kOk: break;
  }
  return ok;
}

}  // namespace

MeasurementOracle::MeasurementOracle(GpuArch arch, Precision prec,
                                     MeasurementConfig config,
                                     CostParams params)
    : arch_(std::move(arch)),
      prec_(prec),
      config_(config),
      params_(params),
      faults_(config.faults, arch_, prec) {
  SPMVML_ENSURE(config_.reps >= 1, "need at least one repetition");
  SPMVML_ENSURE(config_.rep_sigma >= 0.0 && config_.systematic_sigma >= 0.0,
                "noise sigmas must be non-negative");
}

Measurement MeasurementOracle::measure(const RowSummary& s, Format f,
                                       std::uint64_t matrix_seed,
                                       int attempt) const {
  const double model_time = simulate_time(s, f, arch_, prec_, params_);

  const MeasurementStatus status =
      faults_.classify(s, f, model_time, matrix_seed, attempt);
  measure_counter(status).inc();
  if (status != MeasurementStatus::kOk) {
    Measurement failed;
    failed.seconds = std::numeric_limits<double>::quiet_NaN();
    failed.gflops = std::numeric_limits<double>::quiet_NaN();
    failed.status = status;
    return failed;
  }

  // Seed ties the noise to the full measurement identity.
  std::uint64_t salt = hash_combine(matrix_seed,
                                    static_cast<std::uint64_t>(f) * 1000003);
  salt = hash_combine(salt, std::hash<std::string>{}(arch_.name));
  salt = hash_combine(salt, static_cast<std::uint64_t>(prec_) + 17);
  Rng rng(salt);

  const double systematic = std::exp(rng.normal(0.0, config_.systematic_sigma));
  double sum = 0.0;
  for (int r = 0; r < config_.reps; ++r)
    sum += model_time * systematic * std::exp(rng.normal(0.0, config_.rep_sigma));
  const double mean = sum / config_.reps;

  Measurement m;
  m.seconds = mean;
  m.gflops = to_gflops(s, mean);
  return m;
}

std::array<Measurement, kNumFormats> MeasurementOracle::measure_all(
    const RowSummary& s, std::uint64_t matrix_seed, int attempt) const {
  std::array<Measurement, kNumFormats> out;
  for (int i = 0; i < kNumFormats; ++i)
    out[static_cast<std::size_t>(i)] =
        measure(s, static_cast<Format>(i), matrix_seed, attempt);
  return out;
}

HostOracle::HostOracle(int reps, const ConvertParams& params)
    : reps_(reps), arena_(params) {
  SPMVML_ENSURE(reps_ >= 1, "need at least one repetition");
}

Measurement HostOracle::measure(const Csr<double>& csr, Format f) {
  const AnyMatrix<double>& m = arena_.convert(f, csr);
  // Deterministic non-trivial x so the kernel cannot fold gathers away.
  x_.resize(static_cast<std::size_t>(csr.cols()));
  for (std::size_t i = 0; i < x_.size(); ++i)
    x_[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
  y_.resize(static_cast<std::size_t>(csr.rows()));
  m.spmv(x_, y_);  // warm-up: faults in caches and pages
  WallTimer timer;
  for (int r = 0; r < reps_; ++r) m.spmv(x_, y_);
  const double mean = timer.seconds() / reps_;

  Measurement out;
  out.seconds = mean;
  out.gflops = mean > 0.0
                   ? 2.0 * static_cast<double>(csr.nnz()) / mean / 1e9
                   : 0.0;
  return out;
}

std::array<Measurement, kNumFormats> HostOracle::measure_all(
    const Csr<double>& csr) {
  std::array<Measurement, kNumFormats> out;
  for (int i = 0; i < kNumFormats; ++i)
    out[static_cast<std::size_t>(i)] = measure(csr, static_cast<Format>(i));
  return out;
}

}  // namespace spmvml
