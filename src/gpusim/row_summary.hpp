// Structural digest of a sparse matrix for the GPU cost model.
//
// Computed in one O(nnz) scan and then shared by all seven per-format
// cost models, so labelling a matrix for 7 formats x 2 GPUs x 2
// precisions costs one scan. Crucially, the digest contains *column locality*
// information (avg_stride, span, band fraction) derived from the actual
// column indices — information the paper's 17 features do NOT capture —
// which is what keeps the ML problem realistically hard (DESIGN.md §6.1).
#pragma once

#include "sparse/csr.hpp"

namespace spmvml {

/// The default SELL-C-sigma tuning the digest (and hence the cost
/// model's slot accounting) assumes — must mirror Sell::from_csr's
/// default (C, sigma) = (32, 128).
inline constexpr index_t kSellDefaultC = 32;
inline constexpr index_t kSellDefaultSigma = 128;

struct RowSummary {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;

  // Row-length distribution.
  double row_mu = 0.0;     // mean nnz per row
  double row_sigma = 0.0;  // population stddev of nnz per row
  index_t row_max = 0;
  index_t row_min = 0;
  index_t empty_rows = 0;

  // Contiguous-chunk ("block") structure, as in feature sets 2/3.
  index_t total_chunks = 0;   // nnzb_tot
  double chunk_size_mu = 0.0; // mean length of a contiguous run

  // Column-access locality (beyond the paper's features).
  double avg_stride = 0.0;   // mean gap between consecutive cols in a row
  double span_mu = 0.0;      // mean (max_col - min_col + 1) per row
  double band_fraction = 0.0;  // share of nnz with |col - row*cols/rows| small

  // Kernel-shape statistics (second pass over row lengths only).
  // Vector (warp-per-row) CSR: lane-steps including intra-warp idle lanes.
  double csr_vector_lane_steps = 0.0;  // sum over rows of ceil(len/32)*32
  // Scalar (thread-per-row) CSR: warp executes the max row in its group.
  double csr_scalar_lane_steps = 0.0;  // sum over 32-row groups of max*32
  // HYB split at width ceil(row_mu): entries kept in ELL vs spilled to COO.
  index_t hyb_width = 0;
  index_t hyb_ell_entries = 0;
  index_t hyb_spill = 0;
  // SELL-C-sigma stored slots (incl. per-slice padding) at the default
  // (C, sigma) = (32, 128): rows sort by descending length inside each
  // sigma window, each C-row slice pads to its own max. Always within
  // [nnz, rows * row_max]; the widest slice equals row_max.
  index_t sell_slots = 0;

  /// Padded ELL work: rows * row_max over nnz (1.0 = no padding).
  double ell_padding_ratio() const {
    if (nnz == 0) return 1.0;
    return static_cast<double>(rows) * static_cast<double>(row_max) /
           static_cast<double>(nnz);
  }

  /// Padded SELL work: sell_slots over nnz (1.0 = no padding; never
  /// exceeds ell_padding_ratio()).
  double sell_padding_ratio() const {
    if (nnz == 0) return 1.0;
    return static_cast<double>(sell_slots) / static_cast<double>(nnz);
  }

  /// Coefficient of variation of row lengths.
  double row_cv() const { return row_mu > 0.0 ? row_sigma / row_mu : 0.0; }
};

/// One-pass digest of `m`.
RowSummary summarize(const Csr<double>& m);

}  // namespace spmvml
