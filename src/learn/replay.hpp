// Replay buffer: the learning loop's bounded training-set memory.
//
// Scorecard entries arrive one (features, chosen format, measured GFLOPS)
// observation at a time; the buffer folds them into per-matrix samples
// keyed by the features fingerprint, so repeated traffic on the same
// matrix accumulates per-format measurement sums instead of duplicating
// rows. Shadow-probe entries land exactly like served ones — they are
// how a sample earns measurements for more than one format, which is
// what turns the ledger into labeled classification data (best format =
// argmax mean measured GFLOPS).
//
// Bounded with reservoir-style eviction: when a *new* fingerprint
// arrives at a full buffer, a uniformly random retained sample is
// replaced. Old regimes therefore age out stochastically instead of the
// buffer pinning to whatever filled it first. The RNG is consumed only
// at those eviction points, so the buffer state is a pure function of
// (seed, entry arrival order) — the same SPMVML_SEED and entry stream
// produce byte-identical contents no matter how the drain was chunked.
//
// Thread-safety: one mutex; the trainer's poll thread writes, the stats
// plane and the train task read via snapshot().
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "serve/scorecard.hpp"

namespace spmvml::learn {

/// One matrix's accumulated measurements: mean GFLOPS per format where
/// count > 0, plus the feature vector the models train on.
struct ReplaySample {
  std::uint64_t features_hash = 0;
  std::array<double, kNumFeatures> features{};
  std::array<double, kNumFormats> gflops_sum{};
  std::array<std::uint32_t, kNumFormats> count{};

  bool operator==(const ReplaySample&) const = default;

  double mean_gflops(Format f) const {
    const auto i = static_cast<std::size_t>(f);
    return count[i] > 0 ? gflops_sum[i] / count[i] : 0.0;
  }
  /// Number of formats with at least one measurement.
  int measured_formats() const;
  /// Format with the highest mean measured GFLOPS (ties break toward the
  /// lower format id); requires measured_formats() >= 1.
  Format best_format() const;
};

class ReplayBuffer {
 public:
  ReplayBuffer(std::size_t capacity, std::uint64_t seed);

  /// Fold one scorecard entry in. Entries without a positive measured
  /// GFLOPS (pure prediction traffic) are skipped — they carry no label.
  void add(const serve::ScorecardEntry& e);

  /// Copy of all retained samples in slot order (deterministic given the
  /// entry stream and seed).
  std::vector<ReplaySample> snapshot() const;

  std::size_t size() const;

  struct Stats {
    std::uint64_t observations = 0;  // entries folded in
    std::uint64_t inserted = 0;      // distinct fingerprints admitted
    std::uint64_t evictions = 0;     // samples displaced at capacity
    std::uint64_t skipped = 0;       // entries without a measurement
    std::size_t size = 0;
  };
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  Rng rng_;
  std::vector<ReplaySample> slots_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // hash -> slot
  Stats stats_{};
};

}  // namespace spmvml::learn
