#include "learn/drift.hpp"

#include <algorithm>
#include <cmath>

namespace spmvml::learn {

DriftDetector::DriftDetector(const DriftConfig& cfg) : cfg_(cfg) {
  cfg_.window = std::max(cfg_.window, 1);
  cfg_.trip_after = std::max(cfg_.trip_after, 1);
  cfg_.clear_after = std::max(cfg_.clear_after, 1);
}

bool DriftDetector::observe(const serve::ScorecardEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  if (e.chosen == e.predicted_best) ++hits_;
  if (e.predicted_gflops > 0.0 && e.measured_gflops > 0.0) {
    rel_err_sum_ +=
        std::abs(e.predicted_gflops - e.measured_gflops) / e.measured_gflops;
    ++rel_err_count_;
  }
  if (seen_ < cfg_.window) return false;

  // Window boundary: evaluate, then reset the accumulators.
  const double accuracy = static_cast<double>(hits_) / seen_;
  const double rme =
      rel_err_count_ > 0 ? rel_err_sum_ / rel_err_count_ : -1.0;
  seen_ = 0;
  hits_ = 0;
  rel_err_sum_ = 0.0;
  rel_err_count_ = 0;

  ++stats_.windows;
  stats_.last_accuracy = accuracy;
  stats_.last_rme = rme;
  const bool drifted =
      (rme >= 0.0 && rme > cfg_.rme_threshold) || accuracy < cfg_.accuracy_floor;
  bool fired = false;
  if (drifted) {
    ++stats_.drifted_windows;
    clean_streak_ = 0;
    ++drifted_streak_;
    if (drifted_streak_ >= cfg_.trip_after && !stats_.tripped) {
      stats_.tripped = true;
      ++stats_.trips;
      fired = true;  // rising edge: fire once per latch
    }
  } else {
    drifted_streak_ = 0;
    ++clean_streak_;
    if (clean_streak_ >= cfg_.clear_after) stats_.tripped = false;
  }
  return fired;
}

DriftDetector::Stats DriftDetector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spmvml::learn
