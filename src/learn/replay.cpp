#include "learn/replay.hpp"

#include "common/error.hpp"

namespace spmvml::learn {

int ReplaySample::measured_formats() const {
  int n = 0;
  for (const auto c : count) n += (c > 0) ? 1 : 0;
  return n;
}

Format ReplaySample::best_format() const {
  int best = -1;
  double best_gflops = -1.0;
  for (int f = 0; f < kNumFormats; ++f) {
    if (count[static_cast<std::size_t>(f)] == 0) continue;
    const double g = mean_gflops(static_cast<Format>(f));
    if (g > best_gflops) {
      best_gflops = g;
      best = f;
    }
  }
  SPMVML_ENSURE(best >= 0, "best_format on a sample with no measurements");
  return static_cast<Format>(best);
}

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity > 0 ? capacity : 1), rng_(seed) {
  slots_.reserve(capacity_);
}

void ReplayBuffer::add(const serve::ScorecardEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (e.measured_gflops <= 0.0) {
    ++stats_.skipped;
    stats_.size = slots_.size();
    return;
  }
  const auto fi = static_cast<std::size_t>(e.chosen);
  const auto it = index_.find(e.features_hash);
  if (it != index_.end()) {
    ReplaySample& s = slots_[it->second];
    s.gflops_sum[fi] += e.measured_gflops;
    ++s.count[fi];
  } else {
    ReplaySample s;
    s.features_hash = e.features_hash;
    s.features = e.features;
    s.gflops_sum[fi] = e.measured_gflops;
    s.count[fi] = 1;
    if (slots_.size() < capacity_) {
      index_.emplace(s.features_hash, slots_.size());
      slots_.push_back(s);
    } else {
      // Reservoir-style aging: only this branch consumes the RNG, so
      // buffer contents depend on the entry stream alone, never on how
      // the scorecard drain was chunked.
      const auto victim = static_cast<std::size_t>(
          rng_() % static_cast<std::uint64_t>(slots_.size()));
      index_.erase(slots_[victim].features_hash);
      index_.emplace(s.features_hash, victim);
      slots_[victim] = s;
      ++stats_.evictions;
    }
    ++stats_.inserted;
  }
  ++stats_.observations;
  stats_.size = slots_.size();
}

std::vector<ReplaySample> ReplayBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_;
}

std::size_t ReplayBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

ReplayBuffer::Stats ReplayBuffer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spmvml::learn
