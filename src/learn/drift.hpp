// Drift detector: decides *when* the learning loop should retrain.
//
// Watches the stream of scored (non-probe) scorecard entries in fixed
// windows and evaluates two signals at each window boundary:
//
//  * windowed relative model error — mean |predicted - measured| /
//    measured GFLOPS. The robust shift signal: a perf model trained on
//    one workload regime prices an out-of-distribution regime wrong
//    immediately, whatever format it picks.
//  * windowed selection accuracy — chosen == predicted-best fraction.
//    The user-visible symptom: the classifier and the perf model stop
//    agreeing once traffic leaves the training distribution.
//
// Hysteresis on both edges so transient bursts don't churn models:
// `trip_after` consecutive drifted windows arm the trip (observe()
// returns true exactly once, edge-triggered), and the trip stays latched
// until `clear_after` consecutive clean windows — only then can it fire
// again. A latched detector keeps evaluating, so stats stay live.
#pragma once

#include <cstdint>
#include <mutex>

#include "serve/scorecard.hpp"

namespace spmvml::learn {

struct DriftConfig {
  int window = 64;             // scored entries per evaluation window
  double rme_threshold = 0.5;  // windowed RME above this is drifted
  double accuracy_floor = 0.5; // windowed accuracy below this is drifted
  int trip_after = 2;          // consecutive drifted windows to fire
  int clear_after = 2;         // consecutive clean windows to unlatch
};

class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& cfg);

  /// Feed one scored entry. Returns true exactly once per trip (the
  /// rising edge after `trip_after` consecutive drifted windows).
  /// Probe entries must not be fed — they describe the learner's own
  /// shadow measurements, not traffic.
  bool observe(const serve::ScorecardEntry& e);

  struct Stats {
    std::uint64_t windows = 0;          // completed evaluation windows
    std::uint64_t drifted_windows = 0;  // windows judged drifted
    std::uint64_t trips = 0;            // rising edges fired
    bool tripped = false;               // currently latched
    double last_accuracy = -1.0;        // last completed window (-1 = none)
    double last_rme = -1.0;
  };
  Stats stats() const;

 private:
  DriftConfig cfg_;
  mutable std::mutex mu_;
  // Current-window accumulators.
  int seen_ = 0;
  int hits_ = 0;
  double rel_err_sum_ = 0.0;
  int rel_err_count_ = 0;
  // Hysteresis state.
  int drifted_streak_ = 0;
  int clean_streak_ = 0;
  Stats stats_{};
};

}  // namespace spmvml::learn
