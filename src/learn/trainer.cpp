#include "learn/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"

#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"

namespace spmvml::learn {

namespace {

/// Holdout scoring of one picking policy: mean measured regret (best
/// measured GFLOPS / picked measured GFLOPS - 1) plus the mean relative
/// prediction error on the picked format (|predicted - measured| /
/// measured GFLOPS) — the calibration signal that breaks regret ties.
struct RegretAccum {
  double sum = 0.0;
  double rel_err_sum = 0.0;
  int n = 0;
  void add(const ReplaySample& s, Format pick, double predicted_seconds) {
    const double picked = s.mean_gflops(pick);
    const double best = s.mean_gflops(s.best_format());
    if (picked > 0.0 && best > 0.0) {
      sum += best / picked - 1.0;
      const double nnz = s.features[kNnzTot];
      if (nnz > 0.0 && predicted_seconds > 0.0 &&
          std::isfinite(predicted_seconds)) {
        const double predicted_gflops = 2.0 * nnz / (predicted_seconds * 1e9);
        rel_err_sum += std::abs(predicted_gflops - picked) / picked;
      }
      ++n;
    }
  }
  double mean() const { return n > 0 ? sum / n : -1.0; }
  double mean_rel_err() const { return n > 0 ? rel_err_sum / n : -1.0; }
};

/// argmin of predicted seconds over the formats this sample measured
/// (regret is only defined against measured truth). Returns kNumFormats
/// when no modeled format was measured.
template <typename PredictSeconds>
Format measured_argmin(const ReplaySample& s, std::span<const Format> formats,
                       PredictSeconds&& predict) {
  Format best = static_cast<Format>(kNumFormats);
  double best_t = 0.0;
  for (const Format f : formats) {
    if (s.count[static_cast<std::size_t>(f)] == 0) continue;
    const double t = predict(f);
    if (!std::isfinite(t)) continue;
    if (best == static_cast<Format>(kNumFormats) || t < best_t) {
      best = f;
      best_t = t;
    }
  }
  return best;
}

}  // namespace

OnlineTrainer::OnlineTrainer(const TrainerConfig& cfg,
                             const serve::Scorecard& scorecard,
                             serve::ModelRegistry& registry, ThreadPool& pool)
    : cfg_(cfg),
      scorecard_(scorecard),
      registry_(registry),
      pool_(pool),
      replay_(cfg.replay_capacity, hash_combine(cfg.seed, 0x4c45414eULL)),
      drift_(cfg.drift) {
  stats_.enabled = cfg_.enabled;
  last_retrain_ = std::chrono::steady_clock::now();
  if (cfg_.enabled) poller_ = std::thread([this] { poll_loop(); });
}

OnlineTrainer::~OnlineTrainer() { stop(); }

void OnlineTrainer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  // A training task may still be queued or running on the shared pool;
  // it captures `this`, so destruction must wait for it.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !train_inflight_; });
}

void OnlineTrainer::poke() { cv_.notify_all(); }

void OnlineTrainer::poll_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double>(cfg_.poll_every_s));
    if (stop_) break;
    drain_once();
    // Retrain when drift fired or the periodic interval elapsed — with
    // enough replay data, no retrain already in flight, and outside the
    // churn-limiting gap.
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_retrain_).count();
    const bool periodic_due =
        cfg_.retrain_every_s > 0.0 && since_last >= cfg_.retrain_every_s;
    if ((drift_pending_ || periodic_due) && !train_inflight_ &&
        since_last >= cfg_.min_retrain_gap_s &&
        replay_.size() >= cfg_.min_samples) {
      drift_pending_ = false;
      train_inflight_ = true;
      last_retrain_ = now;
      ++stats_.retrains;
      obs::MetricsRegistry::global().counter("serve.trainer.retrains").inc();
      pool_.submit([this] { train(); });
    }
  }
}

void OnlineTrainer::drain_once() {
  // Caller holds mu_. The scorecard has its own lock; nothing in the
  // scorecard ever calls back into the trainer, so the order is safe.
  static obs::Counter drift_trips =
      obs::MetricsRegistry::global().counter("serve.trainer.drift_trips");
  static obs::Gauge replay_size =
      obs::MetricsRegistry::global().gauge("serve.trainer.replay_size");
  const auto drained = scorecard_.drain_since(cursor_);
  cursor_ = drained.next_seq;
  ++stats_.polls;
  stats_.drained += drained.entries.size();
  stats_.dropped += drained.dropped;
  for (const auto& e : drained.entries) {
    replay_.add(e);
    if (!e.probe && drift_.observe(e)) {
      drift_pending_ = true;
      drift_trips.inc();
      obs::log_info("serve.trainer.drift_trip")
          .kv("replay_size", replay_.size())
          .kv("rme", drift_.stats().last_rme)
          .kv("accuracy", drift_.stats().last_accuracy);
    }
  }
  replay_size.set(static_cast<double>(replay_.size()));
}

void OnlineTrainer::train() {
  static obs::Counter swaps =
      obs::MetricsRegistry::global().counter("serve.trainer.swaps");
  static obs::Counter discards =
      obs::MetricsRegistry::global().counter("serve.trainer.discards");
  static obs::Counter aborted =
      obs::MetricsRegistry::global().counter("serve.trainer.aborted");
  obs::TraceSpan span("serve.trainer.retrain");

  enum class Outcome { kSwapped, kDiscarded, kAborted };
  Outcome outcome = Outcome::kAborted;
  std::string detail;
  std::uint64_t published = 0;
  double cand_regret = -1.0;
  double live_regret = -1.0;
  double cand_rme = -1.0;
  double live_rme = -1.0;

  try {
    const auto live = registry_.current();
    const auto samples = replay_.snapshot();
    if (!live || !live->selector) {
      detail = "no live bundle";
    } else if (samples.size() < cfg_.min_samples) {
      detail = "replay thinner than min_samples";
    } else {
      // Deterministic holdout split, keyed by the features fingerprint:
      // a matrix stays on the same side of the split across retrains.
      std::vector<const ReplaySample*> fit_set, holdout;
      for (const auto& s : samples) {
        const double u = static_cast<double>(
                             hash_combine(cfg_.seed, s.features_hash) >> 11) *
                         0x1.0p-53;
        (u < cfg_.holdout_fraction ? holdout : fit_set).push_back(&s);
      }

      const FeatureSet sel_fs = live->selector->feature_set();
      const FeatureSet perf_fs =
          live->perf ? live->perf->feature_set() : sel_fs;
      const std::vector<Format> candidates(live->selector->candidates().begin(),
                                           live->selector->candidates().end());

      // Per-format regression sets: measured (features -> log10 seconds).
      // Samples with >= 2 measured formats carry real "which format won"
      // evidence; enough of them must exist before a retrain is viable.
      std::size_t multi_measured = 0;
      std::vector<Format> perf_formats;
      std::vector<ml::Matrix> perf_x(kNumFormats);
      std::vector<std::vector<double>> perf_y(kNumFormats);
      for (const ReplaySample* s : fit_set) {
        FeatureVector fv;
        fv.values = s->features;
        const double nnz = fv[kNnzTot];
        if (nnz <= 0.0) continue;
        for (int f = 0; f < kNumFormats; ++f) {
          const double g = s->mean_gflops(static_cast<Format>(f));
          if (g <= 0.0) continue;
          perf_x[static_cast<std::size_t>(f)].push_back(fv.select(perf_fs));
          perf_y[static_cast<std::size_t>(f)].push_back(
              seconds_to_regression_target(2.0 * nnz / (g * 1e9)));
        }
        if (s->measured_formats() >= 2) ++multi_measured;
      }
      for (int f = 0; f < kNumFormats; ++f)
        if (!perf_x[static_cast<std::size_t>(f)].empty())
          perf_formats.push_back(static_cast<Format>(f));

      if (multi_measured < cfg_.min_labeled) {
        detail = "too few multi-format-labeled samples";
      } else if (perf_formats.empty()) {
        detail = "no per-format measurements";
      } else {
        std::vector<ml::Matrix> fit_x;
        std::vector<std::vector<double>> fit_y;
        for (const Format f : perf_formats) {
          fit_x.push_back(std::move(perf_x[static_cast<std::size_t>(f)]));
          fit_y.push_back(std::move(perf_y[static_cast<std::size_t>(f)]));
        }
        PerfModel perf(cfg_.regressor_kind, perf_fs, perf_formats, cfg_.fast);
        perf.fit_samples(fit_x, fit_y);
        auto perf_ptr = std::make_shared<const PerfModel>(std::move(perf));

        // Distill the classifier from the candidate regressors' argmin
        // (the paper's indirect classification, deployed): select-mode
        // picks then agree with the ranking the holdout validation
        // below actually scores. Training it on raw per-sample argmax
        // labels instead would let single noisy measurements flip
        // labels and leave the served selector inconsistent with the
        // validated perf model.
        ml::Matrix cls_x;
        std::vector<int> cls_y;
        for (const ReplaySample* s : fit_set) {
          FeatureVector fv;
          fv.values = s->features;
          if (fv[kNnzTot] <= 0.0) continue;
          Format pick = static_cast<Format>(kNumFormats);
          double pick_t = 0.0;
          for (const Format f : perf_ptr->formats()) {
            const double t = perf_ptr->predict_seconds(fv, f);
            if (!std::isfinite(t) || t <= 0.0) continue;
            if (pick == static_cast<Format>(kNumFormats) || t < pick_t) {
              pick = f;
              pick_t = t;
            }
          }
          const auto it = std::find(candidates.begin(), candidates.end(), pick);
          if (it == candidates.end()) continue;
          cls_x.push_back(fv.select(sel_fs));
          cls_y.push_back(static_cast<int>(it - candidates.begin()));
        }
        auto selector = std::make_shared<FormatSelector>(
            cfg_.selector_kind, sel_fs, candidates, cfg_.fast);
        selector->fit(cls_x, cls_y);

        // Holdout validation: both bundles pick a format per sample from
        // the formats that sample actually measured; mean measured
        // regret decides. The candidate must strictly beat the live
        // bundle (no live perf model = nothing to lose to).
        RegretAccum cand, prev;
        for (const ReplaySample* s : holdout) {
          if (s->measured_formats() < 2) continue;
          FeatureVector fv;
          fv.values = s->features;
          const Format cand_pick = measured_argmin(
              *s, perf_ptr->formats(),
              [&](Format f) { return perf_ptr->predict_seconds(fv, f); });
          if (cand_pick == static_cast<Format>(kNumFormats)) continue;
          if (live->perf) {
            const Format live_pick = measured_argmin(
                *s, live->perf->formats(),
                [&](Format f) { return live->perf->predict_seconds(fv, f); });
            if (live_pick == static_cast<Format>(kNumFormats)) continue;
            prev.add(*s, live_pick,
                     live->perf->predict_seconds(fv, live_pick));
          }
          cand.add(*s, cand_pick, perf_ptr->predict_seconds(fv, cand_pick));
        }
        cand_regret = cand.mean();
        live_regret = prev.mean();
        cand_rme = cand.mean_rel_err();
        live_rme = prev.mean_rel_err();

        bool publish;
        if (!live->perf) {
          publish = true;  // candidate adds capability the live bundle lacks
          detail = "no live perf model to beat";
        } else if (cand.n == 0 || prev.n == 0) {
          publish = false;
          detail = "no comparable holdout samples";
        } else {
          publish = cand_regret < live_regret;
          // Regret tie-break: when one format wins the whole holdout
          // slice (common on a single backend), every competent bundle
          // ties at regret ~0 and regret alone can never rotate a stale
          // model out. Regrets within kRegretTieTol count as tied —
          // replay means come from single timed SpMVs, so a few percent
          // is measurement noise, not a real selection gap. A candidate
          // that picks no worse than that AND prices the holdout
          // markedly closer to measured truth (clear relative and
          // absolute margin) still wins — calibrated predictions drive
          // indirect mode and predicted_us even when picks agree.
          constexpr double kRegretTieTol = 0.05;
          if (!publish && cand_regret <= live_regret + kRegretTieTol &&
              cand_rme >= 0.0 && live_rme >= 0.0 &&
              cand_rme + 0.05 < live_rme && cand_rme < 0.9 * live_rme) {
            publish = true;
            detail = "regret tie broken on holdout prediction error";
          }
          if (!publish) detail = "candidate did not beat live bundle";
        }

        if (publish) {
          try {
            published =
                registry_.install(std::move(selector), std::move(perf_ptr),
                                  live->version);
            outcome = Outcome::kSwapped;
          } catch (const Error& e) {
            // Raced by another publisher or failed probe validation;
            // the registry journaled the details.
            outcome = Outcome::kDiscarded;
            detail = e.what();
          }
        } else {
          outcome = Outcome::kDiscarded;
        }
      }
    }
  } catch (const std::exception& e) {
    outcome = Outcome::kAborted;
    detail = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (outcome) {
      case Outcome::kSwapped:
        ++stats_.swaps;
        stats_.last_published_version = published;
        break;
      case Outcome::kDiscarded:
        ++stats_.discards;
        break;
      case Outcome::kAborted:
        ++stats_.aborted;
        break;
    }
    stats_.last_candidate_regret = cand_regret;
    stats_.last_live_regret = live_regret;
    stats_.last_candidate_rme = cand_rme;
    stats_.last_live_rme = live_rme;
    train_inflight_ = false;
  }
  cv_.notify_all();

  switch (outcome) {
    case Outcome::kSwapped:
      swaps.inc();
      span.arg("outcome", "swap").arg("version", published);
      obs::log_info("serve.trainer.swap")
          .kv("version", published)
          .kv("candidate_regret", cand_regret)
          .kv("live_regret", live_regret)
          .kv("candidate_rme", cand_rme)
          .kv("live_rme", live_rme);
      break;
    case Outcome::kDiscarded:
      discards.inc();
      span.arg("outcome", "discard").arg("reason", detail);
      obs::log_info("serve.trainer.discard")
          .kv("reason", detail)
          .kv("candidate_regret", cand_regret)
          .kv("live_regret", live_regret);
      break;
    case Outcome::kAborted:
      aborted.inc();
      span.arg("outcome", "abort").arg("reason", detail);
      obs::log_warn("serve.trainer.abort").kv("reason", detail);
      break;
  }
}

OnlineTrainer::Stats OnlineTrainer::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.replay = replay_.stats();
  s.drift = drift_.stats();
  return s;
}

}  // namespace spmvml::learn
