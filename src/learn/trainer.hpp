// OnlineTrainer: the background loop that closes measurement →
// retraining → deployment (DESIGN.md §5k).
//
// A dedicated poll thread drains new scorecard entries through a
// drain_since() cursor, folds them into the ReplayBuffer, and feeds the
// scored ones to the DriftDetector. When drift fires — or a periodic
// retrain interval elapses — it submits one training task to the shared
// ThreadPool (never more than one in flight):
//
//   1. snapshot the replay buffer and the live bundle;
//   2. deterministic per-sample holdout split (seeded, keyed by the
//      features fingerprint so the split is stable across retrains);
//   3. refit per-format regressors on measured (features → log10 s)
//      samples, then distill the classifier from the regressors' argmin
//      — the production version of the paper's indirect classification,
//      with live traffic standing in for the offline corpus; the served
//      selector stays consistent with the perf model validation scores;
//   4. validate on the holdout slice: the candidate's mean measured
//      regret must beat the live bundle's — or tie it (within a small
//      noise tolerance) while pricing the holdout markedly closer to
//      measured truth (mean relative prediction error on the picked
//      format, with clear relative and absolute margins) — else the
//      candidate is discarded without touching the registry;
//   5. publish through ModelRegistry::install(..., expected_version =
//      the version trained against) — the probe-validated, journaled,
//      chaos-covered swap path. If another publisher (admin `swap`)
//      moved the version meanwhile, the stale candidate is discarded.
//
// Failure semantics: every exit from a training task is accounted for —
// published (swaps), beaten by the live model or raced (discards), or
// aborted for thin data (aborted). The serving path never blocks on the
// trainer; a trainer crash-equivalent (task throwing) leaves the live
// bundle untouched and the journal consistent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "learn/drift.hpp"
#include "learn/replay.hpp"
#include "serve/model_registry.hpp"

namespace spmvml {
class ThreadPool;
}

namespace spmvml::learn {

struct TrainerConfig {
  bool enabled = false;
  std::size_t replay_capacity = 4096;
  double poll_every_s = 0.25;    // scorecard drain cadence
  double retrain_every_s = 0.0;  // periodic retrain; 0 = drift-only
  DriftConfig drift;
  double holdout_fraction = 0.25;
  std::size_t min_samples = 32;  // replay samples required to retrain
  std::size_t min_labeled = 8;   // samples with >= 2 measured formats
  double min_retrain_gap_s = 1.0;
  std::uint64_t seed = 2018;
  ModelKind selector_kind = ModelKind::kDecisionTree;
  RegressorKind regressor_kind = RegressorKind::kDecisionTree;
  bool fast = true;  // fast-mode model hyper-parameters
};

class OnlineTrainer {
 public:
  /// The scorecard is the feed, the registry the publish path, the pool
  /// where training tasks run. All three must outlive stop().
  OnlineTrainer(const TrainerConfig& cfg, const serve::Scorecard& scorecard,
                serve::ModelRegistry& registry, ThreadPool& pool);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Join the poll thread and wait for any in-flight training task.
  /// Idempotent; called by Service::shutdown() before the pool drains.
  void stop();

  /// Wake the poll loop now (benches/tests compress the cadence).
  void poke();

  struct Stats {
    bool enabled = false;
    std::uint64_t polls = 0;
    std::uint64_t drained = 0;  // scorecard entries consumed
    std::uint64_t dropped = 0;  // entries evicted before the cursor saw them
    std::uint64_t retrains = 0;
    std::uint64_t swaps = 0;     // candidates published
    std::uint64_t discards = 0;  // beaten by live model or lost the race
    std::uint64_t aborted = 0;   // retrains with too little data
    std::uint64_t last_published_version = 0;
    double last_candidate_regret = -1.0;  // holdout mean regret (-1 = none)
    double last_live_regret = -1.0;
    /// Holdout mean relative prediction error on each bundle's own pick
    /// (-1 = no validation ran): the regret tie-breaker.
    double last_candidate_rme = -1.0;
    double last_live_rme = -1.0;
    ReplayBuffer::Stats replay;
    DriftDetector::Stats drift;
  };
  Stats stats() const;

 private:
  void poll_loop();
  void drain_once();
  /// One full retrain attempt (runs on the pool).
  void train();

  TrainerConfig cfg_;
  const serve::Scorecard& scorecard_;
  serve::ModelRegistry& registry_;
  ThreadPool& pool_;

  ReplayBuffer replay_;
  DriftDetector drift_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool train_inflight_ = false;
  bool drift_pending_ = false;  // drift fired, retrain not yet started
  std::uint64_t cursor_ = 0;    // drain_since() sequence cursor
  std::chrono::steady_clock::time_point last_retrain_;
  Stats stats_{};

  std::thread poller_;
};

}  // namespace spmvml::learn
