#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spmvml::ml {

double accuracy(const std::vector<int>& truth, const std::vector<int>& pred) {
  SPMVML_ENSURE(truth.size() == pred.size() && !truth.empty(),
                "accuracy needs equal-sized, non-empty vectors");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (truth[i] == pred[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

std::vector<std::vector<int>> confusion_matrix(const std::vector<int>& truth,
                                               const std::vector<int>& pred,
                                               int num_classes) {
  SPMVML_ENSURE(truth.size() == pred.size(), "size mismatch");
  std::vector<std::vector<int>> m(
      static_cast<std::size_t>(num_classes),
      std::vector<int>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    SPMVML_ENSURE(truth[i] >= 0 && truth[i] < num_classes &&
                      pred[i] >= 0 && pred[i] < num_classes,
                  "class out of range");
    ++m[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(pred[i])];
  }
  return m;
}

double relative_mean_error(const std::vector<double>& measured,
                           const std::vector<double>& predicted) {
  SPMVML_ENSURE(measured.size() == predicted.size() && !measured.empty(),
                "RME needs equal-sized, non-empty vectors");
  double sum = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    SPMVML_ENSURE(measured[i] > 0.0, "measured values must be positive");
    sum += std::abs(predicted[i] - measured[i]) / measured[i];
  }
  return sum / static_cast<double>(measured.size());
}

SlowdownBins slowdown_bins(const std::vector<double>& slowdowns) {
  SlowdownBins b;
  for (double s : slowdowns) {
    SPMVML_ENSURE(s >= 1.0 - 1e-9, "slowdown ratios must be >= 1");
    if (s <= 1.0 + 1e-9) {
      ++b.no_slowdown;
    } else {
      ++b.any_slowdown;
      if (s >= 1.2) ++b.ge_1_2;
      if (s >= 1.5) ++b.ge_1_5;
      if (s >= 2.0) ++b.ge_2_0;
    }
  }
  return b;
}

double mean_slowdown(const std::vector<double>& slowdowns) {
  SPMVML_ENSURE(!slowdowns.empty(), "empty slowdown vector");
  double sum = 0.0;
  for (double s : slowdowns) sum += s;
  return sum / static_cast<double>(slowdowns.size());
}

}  // namespace spmvml::ml
