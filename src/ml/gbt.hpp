// Gradient-boosted trees — the paper's "XGBoost" (§II-B.4).
//
// Faithful to the XGBoost formulation: trees are fit to first/second-order
// gradients of the loss, split gain is the regularised second-order gain
//   0.5 * (GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda)) - gamma
// and leaves output -G/(H+lambda), shrunk by the learning rate.
// Multiclass uses one tree per class per round under softmax cross-entropy.
// Growth is level-wise over globally pre-sorted feature columns, so a tree
// level costs O(features * samples) regardless of node count.
//
// Feature importance is tracked both as split counts (the "F score" the
// paper's Figs. 4/5 plot) and as total gain.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/model.hpp"

namespace spmvml::ml {

struct GbtParams {
  int n_estimators = 150;   // boosting rounds
  int max_depth = 6;
  double learning_rate = 0.1;
  double reg_lambda = 1.0;  // L2 on leaf weights
  double gamma = 0.0;       // minimum split gain
  double min_child_weight = 1.0;
  double subsample = 1.0;   // row subsampling per tree
  std::uint64_t seed = 7;
};

namespace detail {

/// One regression tree over gradient statistics (flattened node array).
struct GradTree {
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1, right = -1;
    double weight = 0.0;  // leaf output
  };
  std::vector<Node> nodes;

  double predict(const std::vector<double>& row) const;
};

/// Trains GradTrees and accumulates importance. Shared by the classifier
/// and regressor wrappers.
class GbtCore {
 public:
  void configure(const GbtParams& params, int num_features);

  /// Fit one tree to (grad, hess) on `x`; returns the tree.
  GradTree fit_tree(const Matrix& x, const std::vector<double>& grad,
                    const std::vector<double>& hess, std::uint64_t tree_seed);

  const std::vector<double>& split_counts() const { return split_counts_; }
  const std::vector<double>& gain_sums() const { return gain_sums_; }

 private:
  GbtParams params_;
  int num_features_ = 0;
  // Per-feature sample order (argsort), computed once per fit().
  std::vector<std::vector<std::uint32_t>> sorted_;
  std::vector<double> split_counts_;
  std::vector<double> gain_sums_;
  const Matrix* x_cache_ = nullptr;

  void ensure_presorted(const Matrix& x);
};

}  // namespace detail

class GbtClassifier final : public Classifier {
 public:
  explicit GbtClassifier(GbtParams params = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const std::vector<double>& row) const override;
  std::vector<double> predict_proba(
      const std::vector<double>& row) const override;

  /// Split-count importance per feature (the F score of Figs. 4/5).
  std::vector<double> feature_importance_weight() const;
  /// Total split gain per feature.
  std::vector<double> feature_importance_gain() const;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  GbtParams params_;
  int num_classes_ = 0;
  int num_features_ = 0;
  // trees_[round * num_classes_ + k]
  std::vector<detail::GradTree> trees_;
  std::vector<double> importance_weight_;
  std::vector<double> importance_gain_;

  std::vector<double> raw_scores(const std::vector<double>& row) const;
};

class GbtRegressor final : public Regressor {
 public:
  explicit GbtRegressor(GbtParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict(const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  GbtParams params_;
  double base_score_ = 0.0;
  std::vector<detail::GradTree> trees_;
};

}  // namespace spmvml::ml
