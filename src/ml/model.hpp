// Abstract model interfaces of the ML layer.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/dataset.hpp"

namespace spmvml::ml {

/// Multiclass classifier interface.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on samples `x` with integer class labels `y` in [0, K).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// Predicted class for one sample.
  virtual int predict(const std::vector<double>& row) const = 0;

  /// Class-probability estimates (uniform fallback for margin models).
  virtual std::vector<double> predict_proba(
      const std::vector<double>& row) const = 0;

  /// Serialize the fitted model to a stream (text format; see
  /// ml/serialize.hpp). load() restores an inference-ready model.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;

  std::vector<int> predict_batch(const Matrix& x) const {
    std::vector<int> out;
    out.reserve(x.size());
    for (const auto& row : x) out.push_back(predict(row));
    return out;
  }
};

/// Scalar regressor interface.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const Matrix& x, const std::vector<double>& y) = 0;
  virtual double predict(const std::vector<double>& row) const = 0;

  /// Serialize the fitted model; load() restores an inference-ready model.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;

  std::vector<double> predict_batch(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.size());
    for (const auto& row : x) out.push_back(predict(row));
    return out;
  }
};

using ClassifierPtr = std::unique_ptr<Classifier>;
using RegressorPtr = std::unique_ptr<Regressor>;

}  // namespace spmvml::ml
