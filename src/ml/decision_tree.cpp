#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace spmvml::ml {
namespace {

using detail::TreeNode;

/// Result of the best-split search at one node.
struct Split {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Generic recursive CART builder. `impurity` and `leaf_fill` close over
/// task-specific state (class counts vs target sums).
class Builder {
 public:
  Builder(const Matrix& x, TreeParams params)
      : x_(x), params_(params), num_features_(x.empty() ? 0 : static_cast<int>(x.front().size())) {}

  virtual ~Builder() = default;

  int build(std::vector<std::size_t> idx, int depth,
            std::vector<TreeNode>& nodes) {
    const int me = static_cast<int>(nodes.size());
    nodes.emplace_back();
    fill_leaf(idx, nodes[static_cast<std::size_t>(me)]);
    if (depth >= params_.max_depth ||
        static_cast<int>(idx.size()) < params_.min_samples_split ||
        is_pure(idx)) {
      return me;
    }
    const Split split = best_split(idx);
    if (split.feature < 0 || split.gain <= 1e-12) return me;

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : idx) {
      (x_[i][static_cast<std::size_t>(split.feature)] <= split.threshold
           ? left_idx
           : right_idx)
          .push_back(i);
    }
    if (static_cast<int>(left_idx.size()) < params_.min_samples_leaf ||
        static_cast<int>(right_idx.size()) < params_.min_samples_leaf) {
      return me;
    }
    idx.clear();
    idx.shrink_to_fit();
    const int left = build(std::move(left_idx), depth + 1, nodes);
    const int right = build(std::move(right_idx), depth + 1, nodes);
    nodes[static_cast<std::size_t>(me)].feature = split.feature;
    nodes[static_cast<std::size_t>(me)].threshold = split.threshold;
    nodes[static_cast<std::size_t>(me)].left = left;
    nodes[static_cast<std::size_t>(me)].right = right;
    return me;
  }

 protected:
  virtual bool is_pure(const std::vector<std::size_t>& idx) const = 0;
  virtual void fill_leaf(const std::vector<std::size_t>& idx,
                         TreeNode& node) const = 0;
  /// Impurity-weighted score of a candidate partition; larger is better.
  virtual Split best_split(const std::vector<std::size_t>& idx) const = 0;

  const Matrix& x_;
  TreeParams params_;
  int num_features_;
};

class ClassBuilder final : public Builder {
 public:
  ClassBuilder(const Matrix& x, const std::vector<int>& y, int k,
               TreeParams params)
      : Builder(x, params), y_(y), k_(k) {}

 private:
  bool is_pure(const std::vector<std::size_t>& idx) const override {
    for (std::size_t i = 1; i < idx.size(); ++i)
      if (y_[idx[i]] != y_[idx[0]]) return false;
    return true;
  }

  void fill_leaf(const std::vector<std::size_t>& idx,
                 TreeNode& node) const override {
    node.distribution.assign(static_cast<std::size_t>(k_), 0.0);
    for (std::size_t i : idx)
      node.distribution[static_cast<std::size_t>(y_[i])] += 1.0;
    for (double& d : node.distribution) d /= static_cast<double>(idx.size());
  }

  static double gini(const std::vector<double>& counts, double total) {
    double g = 1.0;
    for (double c : counts) {
      const double p = c / total;
      g -= p * p;
    }
    return g;
  }

  Split best_split(const std::vector<std::size_t>& idx) const override {
    const double n = static_cast<double>(idx.size());
    std::vector<double> total_counts(static_cast<std::size_t>(k_), 0.0);
    for (std::size_t i : idx)
      total_counts[static_cast<std::size_t>(y_[i])] += 1.0;
    const double parent = gini(total_counts, n);

    Split best;
    std::vector<std::size_t> order(idx);
    std::vector<double> left_counts(static_cast<std::size_t>(k_));
    for (int f = 0; f < num_features_; ++f) {
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return x_[a][static_cast<std::size_t>(f)] <
                         x_[b][static_cast<std::size_t>(f)];
                });
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
        left_counts[static_cast<std::size_t>(y_[order[pos]])] += 1.0;
        const double xl = x_[order[pos]][static_cast<std::size_t>(f)];
        const double xr = x_[order[pos + 1]][static_cast<std::size_t>(f)];
        if (xl == xr) continue;
        const double nl = static_cast<double>(pos + 1);
        const double nr = n - nl;
        std::vector<double> right_counts(total_counts);
        for (int c = 0; c < k_; ++c)
          right_counts[static_cast<std::size_t>(c)] -=
              left_counts[static_cast<std::size_t>(c)];
        const double gain = parent - (nl / n) * gini(left_counts, nl) -
                            (nr / n) * gini(right_counts, nr);
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = 0.5 * (xl + xr);
        }
      }
    }
    return best;
  }

  const std::vector<int>& y_;
  int k_;
};

class RegBuilder final : public Builder {
 public:
  RegBuilder(const Matrix& x, const std::vector<double>& y, TreeParams params)
      : Builder(x, params), y_(y) {}

 private:
  bool is_pure(const std::vector<std::size_t>& idx) const override {
    for (std::size_t i = 1; i < idx.size(); ++i)
      if (y_[idx[i]] != y_[idx[0]]) return false;
    return true;
  }

  void fill_leaf(const std::vector<std::size_t>& idx,
                 TreeNode& node) const override {
    double sum = 0.0;
    for (std::size_t i : idx) sum += y_[i];
    node.value = sum / static_cast<double>(idx.size());
  }

  Split best_split(const std::vector<std::size_t>& idx) const override {
    const double n = static_cast<double>(idx.size());
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i : idx) {
      total_sum += y_[i];
      total_sq += y_[i] * y_[i];
    }
    const double parent_sse = total_sq - total_sum * total_sum / n;

    Split best;
    std::vector<std::size_t> order(idx);
    for (int f = 0; f < num_features_; ++f) {
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return x_[a][static_cast<std::size_t>(f)] <
                         x_[b][static_cast<std::size_t>(f)];
                });
      double left_sum = 0.0, left_sq = 0.0;
      for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
        const double yv = y_[order[pos]];
        left_sum += yv;
        left_sq += yv * yv;
        const double xl = x_[order[pos]][static_cast<std::size_t>(f)];
        const double xr = x_[order[pos + 1]][static_cast<std::size_t>(f)];
        if (xl == xr) continue;
        const double nl = static_cast<double>(pos + 1);
        const double nr = n - nl;
        const double sse_l = left_sq - left_sum * left_sum / nl;
        const double right_sum = total_sum - left_sum;
        const double sse_r =
            (total_sq - left_sq) - right_sum * right_sum / nr;
        const double gain = parent_sse - sse_l - sse_r;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = 0.5 * (xl + xr);
        }
      }
    }
    return best;
  }

  const std::vector<double>& y_;
};

const TreeNode& descend(const std::vector<TreeNode>& nodes,
                        const std::vector<double>& row) {
  SPMVML_ENSURE(!nodes.empty(), "tree not fitted");
  int cur = 0;
  while (nodes[static_cast<std::size_t>(cur)].feature >= 0) {
    const auto& node = nodes[static_cast<std::size_t>(cur)];
    cur = row[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes[static_cast<std::size_t>(cur)];
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(TreeParams params)
    : params_(params) {}

void DecisionTreeClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  num_classes_ = *std::max_element(y.begin(), y.end()) + 1;
  nodes_.clear();
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  ClassBuilder builder(x, y, num_classes_, params_);
  builder.build(std::move(idx), 0, nodes_);
}

int DecisionTreeClassifier::predict(const std::vector<double>& row) const {
  const auto& dist = descend(nodes_, row).distribution;
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) -
                          dist.begin());
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    const std::vector<double>& row) const {
  return descend(nodes_, row).distribution;
}

namespace {

void save_nodes(std::ostream& out, const std::vector<TreeNode>& nodes) {
  io::write_scalar(out, nodes.size());
  for (const auto& n : nodes) {
    out << n.feature << ' ';
    io::write_scalar(out, n.threshold);
    out << n.left << ' ' << n.right << ' ';
    io::write_scalar(out, n.value);
    io::write_vector(out, n.distribution);
  }
}

std::vector<TreeNode> load_nodes(std::istream& in) {
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count < (1u << 28), "model stream corrupt: node count");
  std::vector<TreeNode> nodes(count);
  for (auto& n : nodes) {
    n.feature = io::read_scalar<int>(in);
    n.threshold = io::read_scalar<double>(in);
    n.left = io::read_scalar<int>(in);
    n.right = io::read_scalar<int>(in);
    n.value = io::read_scalar<double>(in);
    n.distribution = io::read_vector<double>(in);
  }
  return nodes;
}

}  // namespace

void DecisionTreeClassifier::save(std::ostream& out) const {
  io::write_tag(out, "dtree_classifier");
  io::write_scalar(out, num_classes_);
  save_nodes(out, nodes_);
}

void DecisionTreeClassifier::load(std::istream& in) {
  io::read_tag(in, "dtree_classifier");
  num_classes_ = io::read_scalar<int>(in);
  nodes_ = load_nodes(in);
}

void DecisionTreeRegressor::save(std::ostream& out) const {
  io::write_tag(out, "dtree_regressor");
  save_nodes(out, nodes_);
}

void DecisionTreeRegressor::load(std::istream& in) {
  io::read_tag(in, "dtree_regressor");
  nodes_ = load_nodes(in);
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params)
    : params_(params) {}

void DecisionTreeRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  nodes_.clear();
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  RegBuilder builder(x, y, params_);
  builder.build(std::move(idx), 0, nodes_);
}

double DecisionTreeRegressor::predict(const std::vector<double>& row) const {
  return descend(nodes_, row).value;
}

}  // namespace spmvml::ml
