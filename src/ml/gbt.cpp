#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "ml/serialize.hpp"

namespace spmvml::ml {

namespace {

/// Shared per-round observability handles for both boosters.
obs::Counter& gbt_rounds_counter() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("ml.gbt.rounds");
  return c;
}

obs::Gauge& gbt_loss_gauge() {
  static obs::Gauge g =
      obs::MetricsRegistry::global().gauge("ml.gbt.round_loss");
  return g;
}

obs::Histogram& gbt_round_hist() {
  static obs::Histogram h = obs::MetricsRegistry::global().histogram(
      "ml.gbt.round_s", obs::default_latency_bounds_s());
  return h;
}

/// Record one finished boosting round. The loss is derived from values
/// the fit loop already computed, so training results never depend on
/// whether anything observes them.
void gbt_round_done(const char* which, int round, double mean_loss,
                    double wall_s, obs::TraceSpan& span) {
  gbt_rounds_counter().inc();
  gbt_loss_gauge().set(mean_loss);
  gbt_round_hist().observe(wall_s);
  span.arg("loss", mean_loss);
  obs::log_debug("gbt.round")
      .kv("model", which)
      .kv("round", round)
      .kv("loss", mean_loss)
      .kv("wall_s", wall_s);
}

}  // namespace

namespace detail {

double GradTree::predict(const std::vector<double>& row) const {
  if (nodes.empty()) return 0.0;
  int cur = 0;
  while (nodes[static_cast<std::size_t>(cur)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(cur)];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right;
  }
  return nodes[static_cast<std::size_t>(cur)].weight;
}

void GbtCore::configure(const GbtParams& params, int num_features) {
  params_ = params;
  num_features_ = num_features;
  split_counts_.assign(static_cast<std::size_t>(num_features), 0.0);
  gain_sums_.assign(static_cast<std::size_t>(num_features), 0.0);
  sorted_.clear();
  x_cache_ = nullptr;
}

void GbtCore::ensure_presorted(const Matrix& x) {
  if (x_cache_ == &x && !sorted_.empty()) return;
  x_cache_ = &x;
  const auto n = static_cast<std::uint32_t>(x.size());
  sorted_.assign(static_cast<std::size_t>(num_features_), {});
  for (int f = 0; f < num_features_; ++f) {
    auto& ord = sorted_[static_cast<std::size_t>(f)];
    ord.resize(n);
    std::iota(ord.begin(), ord.end(), 0u);
    std::sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
      return x[a][static_cast<std::size_t>(f)] <
             x[b][static_cast<std::size_t>(f)];
    });
  }
}

GradTree GbtCore::fit_tree(const Matrix& x, const std::vector<double>& grad,
                           const std::vector<double>& hess,
                           std::uint64_t tree_seed) {
  ensure_presorted(x);
  const std::size_t n = x.size();
  const double lambda = params_.reg_lambda;

  // Row subsampling: excluded rows get node -1 and never contribute.
  std::vector<int> node_of(n, 0);
  if (params_.subsample < 1.0) {
    Rng rng(hash_combine(tree_seed, 0x5ab5a3D1eULL));
    for (std::size_t i = 0; i < n; ++i)
      if (!rng.bernoulli(params_.subsample)) node_of[i] = -1;
  }

  GradTree tree;
  tree.nodes.emplace_back();
  std::vector<int> live_nodes = {0};  // nodes open at the current level

  struct NodeStats {
    double g = 0.0, h = 0.0;
  };
  std::vector<NodeStats> stats(1);
  for (std::size_t i = 0; i < n; ++i) {
    if (node_of[i] < 0) continue;
    stats[0].g += grad[i];
    stats[0].h += hess[i];
  }
  tree.nodes[0].weight = -stats[0].g / (stats[0].h + lambda);

  struct Candidate {
    double gain = 0.0;
    int feature = -1;
    double threshold = 0.0;
  };

  for (int depth = 0; depth < params_.max_depth && !live_nodes.empty();
       ++depth) {
    // Per-live-node best split search, one sweep per feature.
    std::vector<Candidate> best(tree.nodes.size());
    std::vector<NodeStats> left_acc(tree.nodes.size());
    std::vector<double> prev_value(tree.nodes.size());
    std::vector<char> has_prev(tree.nodes.size());

    for (int f = 0; f < num_features_; ++f) {
      for (int nid : live_nodes) {
        left_acc[static_cast<std::size_t>(nid)] = {};
        has_prev[static_cast<std::size_t>(nid)] = 0;
      }
      for (std::uint32_t i : sorted_[static_cast<std::size_t>(f)]) {
        const int nid = node_of[i];
        if (nid < 0 || tree.nodes[static_cast<std::size_t>(nid)].feature >= 0)
          continue;
        auto& acc = left_acc[static_cast<std::size_t>(nid)];
        const double v = x[i][static_cast<std::size_t>(f)];
        if (has_prev[static_cast<std::size_t>(nid)] &&
            v > prev_value[static_cast<std::size_t>(nid)] && acc.h > 0.0) {
          // Evaluate the split between prev_value and v.
          const auto& tot = stats[static_cast<std::size_t>(nid)];
          const double gl = acc.g, hl = acc.h;
          const double gr = tot.g - gl, hr = tot.h - hl;
          if (hl >= params_.min_child_weight &&
              hr >= params_.min_child_weight) {
            const double gain =
                0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
                       tot.g * tot.g / (tot.h + lambda)) -
                params_.gamma;
            if (gain > best[static_cast<std::size_t>(nid)].gain) {
              best[static_cast<std::size_t>(nid)] = {
                  gain, f, 0.5 * (prev_value[static_cast<std::size_t>(nid)] + v)};
            }
          }
        }
        acc.g += grad[i];
        acc.h += hess[i];
        prev_value[static_cast<std::size_t>(nid)] = v;
        has_prev[static_cast<std::size_t>(nid)] = 1;
      }
    }

    // Materialise accepted splits.
    std::vector<int> next_level;
    for (int nid : live_nodes) {
      const auto& cand = best[static_cast<std::size_t>(nid)];
      if (cand.feature < 0 || cand.gain <= 0.0) continue;
      const int l = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      const int r = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      auto& node = tree.nodes[static_cast<std::size_t>(nid)];
      node.feature = cand.feature;
      node.threshold = cand.threshold;
      node.left = l;
      node.right = r;
      split_counts_[static_cast<std::size_t>(cand.feature)] += 1.0;
      gain_sums_[static_cast<std::size_t>(cand.feature)] += cand.gain;
      next_level.push_back(l);
      next_level.push_back(r);
    }
    if (next_level.empty()) break;

    // Reassign samples and accumulate child stats.
    stats.resize(tree.nodes.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int nid = node_of[i];
      if (nid < 0) continue;
      const auto& node = tree.nodes[static_cast<std::size_t>(nid)];
      if (node.feature < 0) continue;
      const int child = x[i][static_cast<std::size_t>(node.feature)] <=
                                node.threshold
                            ? node.left
                            : node.right;
      node_of[i] = child;
      stats[static_cast<std::size_t>(child)].g += grad[i];
      stats[static_cast<std::size_t>(child)].h += hess[i];
    }
    for (int nid : next_level) {
      auto& node = tree.nodes[static_cast<std::size_t>(nid)];
      node.weight = -stats[static_cast<std::size_t>(nid)].g /
                    (stats[static_cast<std::size_t>(nid)].h + lambda);
    }
    live_nodes = std::move(next_level);
  }
  return tree;
}

}  // namespace detail

GbtClassifier::GbtClassifier(GbtParams params) : params_(params) {}

void GbtClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  const std::size_t n = x.size();
  num_features_ = static_cast<int>(x.front().size());
  num_classes_ = *std::max_element(y.begin(), y.end()) + 1;
  SPMVML_ENSURE(num_classes_ >= 2, "need at least two classes");

  detail::GbtCore core;
  core.configure(params_, num_features_);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.n_estimators) *
                 static_cast<std::size_t>(num_classes_));

  // Raw scores per (sample, class).
  std::vector<double> scores(n * static_cast<std::size_t>(num_classes_), 0.0);
  std::vector<double> grad(n), hess(n);

  for (int round = 0; round < params_.n_estimators; ++round) {
    obs::TraceSpan round_span("gbt.round");
    round_span.arg("round", round);
    WallTimer round_timer;
    double round_loss = 0.0;
    for (int k = 0; k < num_classes_; ++k) {
      // Softmax grad/hess for class k.
      for (std::size_t i = 0; i < n; ++i) {
        const double* s = &scores[i * static_cast<std::size_t>(num_classes_)];
        double mx = s[0];
        for (int c = 1; c < num_classes_; ++c) mx = std::max(mx, s[c]);
        double denom = 0.0;
        for (int c = 0; c < num_classes_; ++c) denom += std::exp(s[c] - mx);
        const double pk = std::exp(s[k] - mx) / denom;
        grad[i] = pk - (y[i] == k ? 1.0 : 0.0);
        hess[i] = std::max(pk * (1.0 - pk), 1e-6);
        // Multinomial log-loss of the round's starting scores, counted
        // once per sample (k == 0): -log p(y) = log(denom) + mx - s[y].
        if (k == 0)
          round_loss +=
              std::log(denom) + mx - s[static_cast<std::size_t>(y[i])];
      }
      auto tree = core.fit_tree(
          x, grad, hess,
          hash_combine(params_.seed,
                       static_cast<std::uint64_t>(round) * 131 +
                           static_cast<std::uint64_t>(k)));
      for (std::size_t i = 0; i < n; ++i)
        scores[i * static_cast<std::size_t>(num_classes_) +
               static_cast<std::size_t>(k)] +=
            params_.learning_rate * tree.predict(x[i]);
      trees_.push_back(std::move(tree));
    }
    gbt_round_done("classifier", round, round_loss / static_cast<double>(n),
                   round_timer.seconds(), round_span);
  }
  importance_weight_ = core.split_counts();
  importance_gain_ = core.gain_sums();
}

std::vector<double> GbtClassifier::raw_scores(
    const std::vector<double>& row) const {
  std::vector<double> s(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t)
    s[t % static_cast<std::size_t>(num_classes_)] +=
        params_.learning_rate * trees_[t].predict(row);
  return s;
}

int GbtClassifier::predict(const std::vector<double>& row) const {
  const auto s = raw_scores(row);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<double> GbtClassifier::predict_proba(
    const std::vector<double>& row) const {
  auto s = raw_scores(row);
  const double mx = *std::max_element(s.begin(), s.end());
  double denom = 0.0;
  for (double& v : s) {
    v = std::exp(v - mx);
    denom += v;
  }
  for (double& v : s) v /= denom;
  return s;
}

std::vector<double> GbtClassifier::feature_importance_weight() const {
  return importance_weight_;
}

std::vector<double> GbtClassifier::feature_importance_gain() const {
  return importance_gain_;
}

namespace {

void save_trees(std::ostream& out, const std::vector<detail::GradTree>& trees) {
  io::write_scalar(out, trees.size());
  for (const auto& tree : trees) {
    io::write_scalar(out, tree.nodes.size());
    for (const auto& n : tree.nodes) {
      out << n.feature << ' ';
      io::write_scalar(out, n.threshold);
      out << n.left << ' ' << n.right << ' ';
      io::write_scalar(out, n.weight);
    }
  }
}

std::vector<detail::GradTree> load_trees(std::istream& in) {
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count < (1u << 26), "model stream corrupt: tree count");
  std::vector<detail::GradTree> trees(count);
  for (auto& tree : trees) {
    const auto nodes = io::read_scalar<std::size_t>(in);
    SPMVML_ENSURE(nodes < (1u << 28), "model stream corrupt: node count");
    tree.nodes.resize(nodes);
    for (auto& n : tree.nodes) {
      n.feature = io::read_scalar<int>(in);
      n.threshold = io::read_scalar<double>(in);
      n.left = io::read_scalar<int>(in);
      n.right = io::read_scalar<int>(in);
      n.weight = io::read_scalar<double>(in);
    }
  }
  return trees;
}

}  // namespace

void GbtClassifier::save(std::ostream& out) const {
  io::write_tag(out, "gbt_classifier");
  io::write_scalar(out, num_classes_);
  io::write_scalar(out, num_features_);
  io::write_scalar(out, params_.learning_rate);
  save_trees(out, trees_);
  io::write_vector(out, importance_weight_);
  io::write_vector(out, importance_gain_);
}

void GbtClassifier::load(std::istream& in) {
  io::read_tag(in, "gbt_classifier");
  num_classes_ = io::read_scalar<int>(in);
  num_features_ = io::read_scalar<int>(in);
  params_.learning_rate = io::read_scalar<double>(in);
  trees_ = load_trees(in);
  importance_weight_ = io::read_vector<double>(in);
  importance_gain_ = io::read_vector<double>(in);
}

void GbtRegressor::save(std::ostream& out) const {
  io::write_tag(out, "gbt_regressor");
  io::write_scalar(out, params_.learning_rate);
  io::write_scalar(out, base_score_);
  save_trees(out, trees_);
}

void GbtRegressor::load(std::istream& in) {
  io::read_tag(in, "gbt_regressor");
  params_.learning_rate = io::read_scalar<double>(in);
  base_score_ = io::read_scalar<double>(in);
  trees_ = load_trees(in);
}

GbtRegressor::GbtRegressor(GbtParams params) : params_(params) {}

void GbtRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  const std::size_t n = x.size();
  detail::GbtCore core;
  core.configure(params_, static_cast<int>(x.front().size()));
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.n_estimators));

  base_score_ = std::accumulate(y.begin(), y.end(), 0.0) /
                static_cast<double>(n);
  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n), hess(n, 1.0);
  for (int round = 0; round < params_.n_estimators; ++round) {
    obs::TraceSpan round_span("gbt.round");
    round_span.arg("round", round);
    WallTimer round_timer;
    double round_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = pred[i] - y[i];
      round_loss += 0.5 * grad[i] * grad[i];
    }
    auto tree = core.fit_tree(
        x, grad, hess,
        hash_combine(params_.seed, static_cast<std::uint64_t>(round) + 997));
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += params_.learning_rate * tree.predict(x[i]);
    trees_.push_back(std::move(tree));
    gbt_round_done("regressor", round, round_loss / static_cast<double>(n),
                   round_timer.seconds(), round_span);
  }
}

double GbtRegressor::predict(const std::vector<double>& row) const {
  double out = base_score_;
  for (const auto& tree : trees_)
    out += params_.learning_rate * tree.predict(row);
  return out;
}

}  // namespace spmvml::ml
