#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ml/serialize.hpp"

namespace spmvml::ml {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.x.reserve(indices.size());
  if (!labels.empty()) out.labels.reserve(indices.size());
  if (!targets.empty()) out.targets.reserve(indices.size());
  for (std::size_t i : indices) {
    SPMVML_ENSURE(i < size(), "subset index out of range");
    out.x.push_back(x[i]);
    if (!labels.empty()) out.labels.push_back(labels[i]);
    if (!targets.empty()) out.targets.push_back(targets[i]);
  }
  return out;
}

void Dataset::validate() const {
  for (const auto& row : x)
    SPMVML_ENSURE(static_cast<int>(row.size()) == num_features(),
                  "ragged feature matrix");
  SPMVML_ENSURE(labels.empty() || labels.size() == x.size(),
                "labels size mismatch");
  SPMVML_ENSURE(targets.empty() || targets.size() == x.size(),
                "targets size mismatch");
}

namespace {

/// Indices grouped by label (single group when labels are absent).
std::map<int, std::vector<std::size_t>> strata(const Dataset& data) {
  std::map<int, std::vector<std::size_t>> groups;
  if (data.labels.empty()) {
    auto& all = groups[0];
    all.resize(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) all[i] = i;
  } else {
    for (std::size_t i = 0; i < data.size(); ++i)
      groups[data.labels[i]].push_back(i);
  }
  return groups;
}

void shuffle_indices(std::vector<std::size_t>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1],
              v[static_cast<std::size_t>(rng.uniform_int(0,
                  static_cast<std::int64_t>(i) - 1))]);
}

}  // namespace

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
split_indices(const Dataset& data, double test_fraction, std::uint64_t seed) {
  SPMVML_ENSURE(test_fraction > 0.0 && test_fraction < 1.0,
                "test_fraction must be in (0,1)");
  Rng rng(hash_combine(seed, 0x7e57ULL));
  std::vector<std::size_t> train_idx, test_idx;
  for (auto& [label, idx] : strata(data)) {
    (void)label;
    shuffle_indices(idx, rng);
    const auto n_test = static_cast<std::size_t>(
        std::llround(static_cast<double>(idx.size()) * test_fraction));
    for (std::size_t i = 0; i < idx.size(); ++i)
      (i < n_test ? test_idx : train_idx).push_back(idx[i]);
  }
  // Shuffle again so downstream minibatching sees mixed classes.
  shuffle_indices(train_idx, rng);
  shuffle_indices(test_idx, rng);
  return {std::move(train_idx), std::move(test_idx)};
}

TrainTestSplit train_test_split(const Dataset& data, double test_fraction,
                                std::uint64_t seed) {
  auto [train_idx, test_idx] = split_indices(data, test_fraction, seed);
  return {data.subset(train_idx), data.subset(test_idx)};
}

std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
k_folds(const Dataset& data, int k, std::uint64_t seed) {
  SPMVML_ENSURE(k >= 2, "need k >= 2 folds");
  Rng rng(hash_combine(seed, 0xf01d5ULL));
  std::vector<std::vector<std::size_t>> fold_members(
      static_cast<std::size_t>(k));
  for (auto& [label, idx] : strata(data)) {
    (void)label;
    shuffle_indices(idx, rng);
    for (std::size_t i = 0; i < idx.size(); ++i)
      fold_members[i % static_cast<std::size_t>(k)].push_back(idx[i]);
  }
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      out;
  for (int f = 0; f < k; ++f) {
    std::vector<std::size_t> train, test = fold_members[static_cast<std::size_t>(f)];
    for (int g = 0; g < k; ++g)
      if (g != f)
        train.insert(train.end(), fold_members[static_cast<std::size_t>(g)].begin(),
                     fold_members[static_cast<std::size_t>(g)].end());
    shuffle_indices(train, rng);
    out.emplace_back(std::move(train), std::move(test));
  }
  return out;
}

void StandardScaler::fit(const Matrix& x) {
  SPMVML_ENSURE(!x.empty(), "cannot fit scaler on empty data");
  const std::size_t d = x.front().size();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    StreamingStats st;
    for (const auto& row : x) st.add(row[j]);
    mean_[j] = st.mean();
    std_[j] = st.stddev() > 1e-12 ? st.stddev() : 1.0;
  }
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& row) const {
  SPMVML_ENSURE(fitted(), "scaler not fitted");
  SPMVML_ENSURE(row.size() == mean_.size(), "dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) / std_[j];
  return out;
}

void StandardScaler::save(std::ostream& out) const {
  io::write_tag(out, "scaler");
  io::write_vector(out, mean_);
  io::write_vector(out, std_);
}

void StandardScaler::load(std::istream& in) {
  io::read_tag(in, "scaler");
  mean_ = io::read_vector<double>(in);
  std_ = io::read_vector<double>(in);
}

Matrix StandardScaler::transform(const Matrix& x) const {
  Matrix out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace spmvml::ml
