#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/serialize.hpp"

namespace spmvml::ml {
namespace detail {

namespace {

double rbf(const std::vector<double>& a, const std::vector<double>& b,
           double gamma) {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-gamma * d2);
}

}  // namespace

void BinarySvm::fit(const Matrix& x, const std::vector<int>& y,
                    const SvmParams& p) {
  SPMVML_ENSURE(x.size() == y.size() && !x.empty(), "bad SVM training data");
  const std::size_t n = x.size();
  gamma_ = p.gamma;

  // Full kernel cache — pair subsets in this study stay < ~2500 samples.
  std::vector<std::vector<float>> k(n, std::vector<float>(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      k[i][j] = k[j][i] = static_cast<float>(rbf(x[i], x[j], gamma_));

  std::vector<double> alpha(n, 0.0);
  std::vector<double> err(n);  // f(x_i) - y_i with current alphas
  for (std::size_t i = 0; i < n; ++i) err[i] = -static_cast<double>(y[i]);
  double b = 0.0;

  Rng rng(p.seed);
  // One (i, j) update; returns true when the pair made progress.
  auto try_update = [&](std::size_t i, std::size_t j) -> bool {
    if (i == j) return false;
    const double yi = y[i], yj = y[j];
    const double ei = err[i], ej = err[j];
    const double ai_old = alpha[i], aj_old = alpha[j];
    double lo, hi;
    if (yi != yj) {
      lo = std::max(0.0, aj_old - ai_old);
      hi = std::min(p.c, p.c + aj_old - ai_old);
    } else {
      lo = std::max(0.0, ai_old + aj_old - p.c);
      hi = std::min(p.c, ai_old + aj_old);
    }
    if (hi - lo < 1e-12) return false;
    const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
    if (eta >= -1e-12) return false;

    double aj = aj_old - yj * (ei - ej) / eta;
    aj = std::clamp(aj, lo, hi);
    if (std::abs(aj - aj_old) < 1e-8 * (aj + aj_old + 1e-8)) return false;
    const double ai = ai_old + yi * yj * (aj_old - aj);

    const double b1 = b - ei - yi * (ai - ai_old) * k[i][i] -
                      yj * (aj - aj_old) * k[i][j];
    const double b2 = b - ej - yi * (ai - ai_old) * k[i][j] -
                      yj * (aj - aj_old) * k[j][j];
    double new_b;
    if (ai > 0.0 && ai < p.c) {
      new_b = b1;
    } else if (aj > 0.0 && aj < p.c) {
      new_b = b2;
    } else {
      new_b = 0.5 * (b1 + b2);
    }

    const double di = yi * (ai - ai_old);
    const double dj = yj * (aj - aj_old);
    for (std::size_t t = 0; t < n; ++t)
      err[t] += di * k[i][t] + dj * k[j][t] + (new_b - b);
    alpha[i] = ai;
    alpha[j] = aj;
    b = new_b;
    return true;
  };

  int passes = 0, iters = 0;
  while (passes < p.max_passes && iters < p.max_iters) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iters < p.max_iters; ++i) {
      const double yi = y[i];
      const double ei = err[i];
      if (!((yi * ei < -p.tol && alpha[i] < p.c) ||
            (yi * ei > p.tol && alpha[i] > 0.0))) {
        continue;
      }
      // First choice: maximise |E_i - E_j| (Platt's heuristic); if that
      // pair cannot make progress, fall back to random partners so a
      // degenerate argmax cannot wedge the solver.
      std::size_t j = i;
      double best = -1.0;
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (cand == i) continue;
        const double gap = std::abs(ei - err[cand]);
        if (gap > best) {
          best = gap;
          j = cand;
        }
      }
      bool progressed = try_update(i, j);
      for (int attempt = 0; attempt < 4 && !progressed; ++attempt) {
        progressed = try_update(
            i, static_cast<std::size_t>(
                   rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
      if (progressed) {
        ++changed;
        ++iters;
      }
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  bias_ = b;
  support_.clear();
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      support_.push_back(x[i]);
      alpha_y_.push_back(alpha[i] * y[i]);
    }
  }
}

double BinarySvm::decision(const std::vector<double>& row) const {
  double f = bias_;
  for (std::size_t s = 0; s < support_.size(); ++s)
    f += alpha_y_[s] * rbf(support_[s], row, gamma_);
  return f;
}

void BinarySvm::save(std::ostream& out) const {
  io::write_tag(out, "binary_svm");
  io::write_scalar(out, bias_);
  io::write_scalar(out, gamma_);
  io::write_vector(out, alpha_y_);
  io::write_matrix(out, support_);
}

void BinarySvm::load(std::istream& in) {
  io::read_tag(in, "binary_svm");
  bias_ = io::read_scalar<double>(in);
  gamma_ = io::read_scalar<double>(in);
  alpha_y_ = io::read_vector<double>(in);
  support_ = io::read_matrix(in);
  SPMVML_ENSURE(alpha_y_.size() == support_.size(),
                "model stream corrupt: SV count mismatch");
}

}  // namespace detail

void SvmClassifier::save(std::ostream& out) const {
  io::write_tag(out, "svm_classifier");
  io::write_scalar(out, num_classes_);
  scaler_.save(out);
  io::write_scalar(out, pairs_.size());
  for (const auto& pair : pairs_) {
    io::write_scalar(out, pair.a);
    io::write_scalar(out, pair.b);
    pair.svm.save(out);
  }
}

void SvmClassifier::load(std::istream& in) {
  io::read_tag(in, "svm_classifier");
  num_classes_ = io::read_scalar<int>(in);
  scaler_.load(in);
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count < 4096, "bad pair count");
  pairs_.assign(count, {});
  for (auto& pair : pairs_) {
    pair.a = io::read_scalar<int>(in);
    pair.b = io::read_scalar<int>(in);
    pair.svm.load(in);
  }
}

SvmClassifier::SvmClassifier(SvmParams params) : params_(params) {}

namespace {

/// Signed log compression: sign(v) * log1p(|v|). Monotone, preserves
/// sign, tames count features spanning decades.
double slog(double v) { return v >= 0.0 ? std::log1p(v) : -std::log1p(-v); }

}  // namespace

std::vector<double> SvmClassifier::preprocess(
    const std::vector<double>& row) const {
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) out[j] = slog(row[j]);
  return scaler_.fitted() ? scaler_.transform(out) : out;
}

void SvmClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  num_classes_ = *std::max_element(y.begin(), y.end()) + 1;

  // Pipeline: signed log (count features span decades) then standardise.
  Matrix logged;
  logged.reserve(x.size());
  for (const auto& row : x) {
    std::vector<double> lr(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) lr[j] = slog(row[j]);
    logged.push_back(std::move(lr));
  }
  scaler_.fit(logged);
  const Matrix xs = scaler_.transform(logged);

  pairs_.clear();
  for (int a = 0; a < num_classes_; ++a) {
    for (int b = a + 1; b < num_classes_; ++b) {
      Matrix px;
      std::vector<int> py;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (y[i] == a) {
          px.push_back(xs[i]);
          py.push_back(+1);
        } else if (y[i] == b) {
          px.push_back(xs[i]);
          py.push_back(-1);
        }
      }
      // A pair with a missing class can never be queried decisively; skip.
      if (px.empty() ||
          std::all_of(py.begin(), py.end(), [&](int v) { return v == py[0]; }))
        continue;
      Pair pair;
      pair.a = a;
      pair.b = b;
      pair.svm.fit(px, py, params_);
      pairs_.push_back(std::move(pair));
    }
  }
}

std::vector<double> SvmClassifier::predict_proba(
    const std::vector<double>& row) const {
  SPMVML_ENSURE(num_classes_ > 0, "SVM not fitted");
  const auto rs = preprocess(row);
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& pair : pairs_) {
    const double d = pair.svm.decision(rs);
    ++votes[static_cast<std::size_t>(d > 0.0 ? pair.a : pair.b)];
  }
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0.0)
    for (double& v : votes) v /= total;
  return votes;
}

int SvmClassifier::predict(const std::vector<double>& row) const {
  const auto votes = predict_proba(row);
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace spmvml::ml
