// CART decision tree — the "decision tree" baseline of §II-B.1.
//
// Exact greedy splitting: each node sorts candidate thresholds per feature
// and picks the split maximising Gini gain (classification) or variance
// reduction (regression).
#pragma once

#include <vector>

#include "ml/model.hpp"

namespace spmvml::ml {

struct TreeParams {
  int max_depth = 16;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
};

namespace detail {

/// Shared node storage for classification and regression trees.
struct TreeNode {
  int feature = -1;          // -1 marks a leaf
  double threshold = 0.0;    // go left when x[feature] <= threshold
  int left = -1, right = -1; // child indices
  std::vector<double> distribution;  // class probabilities (classification)
  double value = 0.0;                // mean target (regression)
};

}  // namespace detail

class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeParams params = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const std::vector<double>& row) const override;
  std::vector<double> predict_proba(
      const std::vector<double>& row) const override;

  int num_classes() const { return num_classes_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  TreeParams params_;
  int num_classes_ = 0;
  std::vector<detail::TreeNode> nodes_;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict(const std::vector<double>& row) const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  TreeParams params_;
  std::vector<detail::TreeNode> nodes_;
};

}  // namespace spmvml::ml
