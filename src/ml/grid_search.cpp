#include "ml/grid_search.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "ml/metrics.hpp"

namespace spmvml::ml {

std::vector<ParamPoint> make_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  std::vector<ParamPoint> grid = {{}};
  for (const auto& [name, values] : axes) {
    SPMVML_ENSURE(!values.empty(), "empty grid axis: " + name);
    std::vector<ParamPoint> next;
    next.reserve(grid.size() * values.size());
    for (const auto& point : grid) {
      for (double v : values) {
        ParamPoint p = point;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

GridSearchResult grid_search_classifier(const ClassifierFactory& factory,
                                        const std::vector<ParamPoint>& grid,
                                        const Dataset& data, int folds,
                                        std::uint64_t seed) {
  SPMVML_ENSURE(!grid.empty(), "empty grid");
  const auto splits = k_folds(data, folds, seed);
  GridSearchResult best;
  best.best_score = -std::numeric_limits<double>::infinity();
  for (const auto& point : grid) {
    double score_sum = 0.0;
    for (const auto& [train_idx, test_idx] : splits) {
      const Dataset train = data.subset(train_idx);
      const Dataset test = data.subset(test_idx);
      auto model = factory(point);
      model->fit(train.x, train.labels);
      score_sum += accuracy(test.labels, model->predict_batch(test.x));
    }
    const double score = score_sum / static_cast<double>(splits.size());
    if (score > best.best_score) {
      best.best_score = score;
      best.best_params = point;
    }
  }
  return best;
}

GridSearchResult grid_search_regressor(const RegressorFactory& factory,
                                       const std::vector<ParamPoint>& grid,
                                       const Dataset& data, int folds,
                                       std::uint64_t seed) {
  SPMVML_ENSURE(!grid.empty(), "empty grid");
  const auto splits = k_folds(data, folds, seed);
  GridSearchResult best;
  best.best_score = -std::numeric_limits<double>::infinity();
  for (const auto& point : grid) {
    double score_sum = 0.0;
    for (const auto& [train_idx, test_idx] : splits) {
      const Dataset train = data.subset(train_idx);
      const Dataset test = data.subset(test_idx);
      auto model = factory(point);
      model->fit(train.x, train.targets);
      score_sum -= relative_mean_error(test.targets, model->predict_batch(test.x));
    }
    const double score = score_sum / static_cast<double>(splits.size());
    if (score > best.best_score) {
      best.best_score = score;
      best.best_params = point;
    }
  }
  return best;
}

}  // namespace spmvml::ml
