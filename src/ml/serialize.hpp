// Tiny text-based serialization helpers shared by the model save/load
// implementations. The format is line-oriented tokens: human-inspectable,
// deterministic, and round-trips doubles exactly via max_digits10.
#pragma once

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace spmvml::ml::io {

/// Write a tag token (sanity anchor for load-time checks).
inline void write_tag(std::ostream& out, const std::string& tag) {
  out << tag << '\n';
}

/// Consume and verify a tag token.
inline void read_tag(std::istream& in, const std::string& tag) {
  std::string got;
  in >> got;
  SPMVML_ENSURE_CAT(static_cast<bool>(in) && got == tag,
                    ErrorCategory::kModelFormat,
                    "model stream corrupt: expected tag '" + tag + "', got '" +
                        got + "'");
}

inline void write_scalar(std::ostream& out, double v) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10) << v
      << '\n';
}
inline void write_scalar(std::ostream& out, int v) { out << v << '\n'; }
inline void write_scalar(std::ostream& out, std::size_t v) { out << v << '\n'; }

template <typename T>
T read_scalar(std::istream& in) {
  T v{};
  in >> v;
  SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kModelFormat,
                    "model stream truncated");
  return v;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  out << v.size();
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const T& x : v) out << ' ' << x;
  out << '\n';
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto n = read_scalar<std::size_t>(in);
  SPMVML_ENSURE_CAT(n < (1u << 28), ErrorCategory::kModelFormat,
                    "model stream corrupt: absurd vector size");
  std::vector<T> v(n);
  for (auto& x : v) {
    in >> x;
    SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kModelFormat,
                      "model stream truncated");
  }
  return v;
}

inline void write_matrix(std::ostream& out,
                         const std::vector<std::vector<double>>& m) {
  write_scalar(out, m.size());
  for (const auto& row : m) write_vector(out, row);
}

inline std::vector<std::vector<double>> read_matrix(std::istream& in) {
  const auto n = read_scalar<std::size_t>(in);
  SPMVML_ENSURE_CAT(n < (1u << 28), ErrorCategory::kModelFormat,
                    "model stream corrupt: absurd matrix size");
  std::vector<std::vector<double>> m(n);
  for (auto& row : m) row = read_vector<double>(in);
  return m;
}

}  // namespace spmvml::ml::io
