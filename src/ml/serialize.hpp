// Tiny text-based serialization helpers shared by the model save/load
// implementations. The format is line-oriented tokens: human-inspectable,
// deterministic, and round-trips doubles exactly via max_digits10.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace spmvml::ml::io {

/// Write a tag token (sanity anchor for load-time checks).
inline void write_tag(std::ostream& out, const std::string& tag) {
  out << tag << '\n';
}

/// Consume and verify a tag token.
inline void read_tag(std::istream& in, const std::string& tag) {
  std::string got;
  in >> got;
  SPMVML_ENSURE_CAT(static_cast<bool>(in) && got == tag,
                    ErrorCategory::kModelFormat,
                    "model stream corrupt: expected tag '" + tag + "', got '" +
                        got + "'");
}

inline void write_scalar(std::ostream& out, double v) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10) << v
      << '\n';
}
inline void write_scalar(std::ostream& out, int v) { out << v << '\n'; }
inline void write_scalar(std::ostream& out, std::size_t v) { out << v << '\n'; }

template <typename T>
T read_scalar(std::istream& in) {
  T v{};
  in >> v;
  SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kModelFormat,
                    "model stream truncated");
  return v;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  out << v.size();
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const T& x : v) out << ' ' << x;
  out << '\n';
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto n = read_scalar<std::size_t>(in);
  SPMVML_ENSURE_CAT(n < (1u << 28), ErrorCategory::kModelFormat,
                    "model stream corrupt: absurd vector size");
  std::vector<T> v(n);
  for (auto& x : v) {
    in >> x;
    SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kModelFormat,
                      "model stream truncated");
  }
  return v;
}

inline void write_matrix(std::ostream& out,
                         const std::vector<std::vector<double>>& m) {
  write_scalar(out, m.size());
  for (const auto& row : m) write_vector(out, row);
}

inline std::vector<std::vector<double>> read_matrix(std::istream& in) {
  const auto n = read_scalar<std::size_t>(in);
  SPMVML_ENSURE_CAT(n < (1u << 28), ErrorCategory::kModelFormat,
                    "model stream corrupt: absurd matrix size");
  std::vector<std::vector<double>> m(n);
  for (auto& row : m) row = read_vector<double>(in);
  return m;
}

// ---------------------------------------------------------------------------
// Model-file envelope.
//
// Top-level model files (FormatSelector, PerfModel) are wrapped in a
// one-line header followed by the raw payload:
//
//   spmvml-model 1 <kind> <entries> <payload_bytes> <fnv1a64-hex>
//
// magic + format version make foreign files fail fast; payload_bytes
// catches truncation before any token parsing; the FNV-1a checksum
// catches bit rot and hand edits. `entries` is the model's top-level
// cardinality (candidate formats / per-format regressors) so a loader
// can cross-check the parsed payload against the header. All failures
// throw Error(kModelFormat) — the safe-hot-swap contract: a registry
// never publishes a bundle whose envelope did not verify.

inline constexpr const char* kModelMagic = "spmvml-model";
inline constexpr int kModelFormatVersion = 1;

/// FNV-1a over the payload bytes.
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

inline void write_envelope(std::ostream& out, std::string_view kind,
                           std::size_t entries, const std::string& payload) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  out << kModelMagic << ' ' << kModelFormatVersion << ' ' << kind << ' '
      << entries << ' ' << payload.size() << ' ' << hex << '\n'
      << payload;
}

/// Read and verify an envelope; returns the payload. `entries_out`
/// receives the header cardinality for the caller to cross-check.
inline std::string read_envelope(std::istream& in, std::string_view kind,
                                 std::size_t* entries_out = nullptr) {
  std::string magic, got_kind, checksum_hex;
  int version = 0;
  std::size_t entries = 0, bytes = 0;
  in >> magic;
  SPMVML_ENSURE_CAT(static_cast<bool>(in) && magic == kModelMagic,
                    ErrorCategory::kModelFormat,
                    "not a spmvml model file (missing '" +
                        std::string(kModelMagic) + "' magic)");
  in >> version >> got_kind >> entries >> bytes >> checksum_hex;
  SPMVML_ENSURE_CAT(static_cast<bool>(in), ErrorCategory::kModelFormat,
                    "model file header truncated");
  SPMVML_ENSURE_CAT(version == kModelFormatVersion,
                    ErrorCategory::kModelFormat,
                    "unsupported model format version " +
                        std::to_string(version));
  SPMVML_ENSURE_CAT(got_kind == kind, ErrorCategory::kModelFormat,
                    "model kind mismatch: file holds '" + got_kind +
                        "', expected '" + std::string(kind) + "'");
  SPMVML_ENSURE_CAT(bytes < (1u << 30), ErrorCategory::kModelFormat,
                    "model file header claims an absurd payload size");
  SPMVML_ENSURE_CAT(in.get() == '\n', ErrorCategory::kModelFormat,
                    "model file header is malformed");
  std::string payload(bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  SPMVML_ENSURE_CAT(static_cast<std::size_t>(in.gcount()) == bytes,
                    ErrorCategory::kModelFormat,
                    "model file truncated: payload shorter than header "
                    "declares");
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  SPMVML_ENSURE_CAT(checksum_hex == hex, ErrorCategory::kModelFormat,
                    "model file checksum mismatch (corrupt payload)");
  if (entries_out != nullptr) *entries_out = entries;
  return payload;
}

}  // namespace spmvml::ml::io
