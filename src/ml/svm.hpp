// Multiclass SVM (§II-B.2): binary soft-margin SVC with an RBF kernel
// trained by SMO (Platt's simplified variant with a full kernel cache and
// a randomised second-choice fallback), combined one-vs-one with majority
// voting — the construction behind scikit-learn's SVC that the paper uses
// (its C/gamma grid is §IV-D's).
//
// Inputs are log1p-transformed and standardised internally; RBF margins
// are meaningless on raw count features that span ten orders of
// magnitude.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/model.hpp"

namespace spmvml::ml {

struct SvmParams {
  double c = 10.0;      // soft-margin penalty
  double gamma = 0.1;   // RBF width (on log1p + standardised features)
  double tol = 1e-3;    // KKT tolerance
  int max_passes = 8;   // SMO sweeps without progress before stopping
  int max_iters = 40000;
  std::uint64_t seed = 11;
};

namespace detail {

/// Binary SVC; labels must be +1/-1.
class BinarySvm {
 public:
  void fit(const Matrix& x, const std::vector<int>& y, const SvmParams& p);
  /// Decision value f(x); classify by sign.
  double decision(const std::vector<double>& row) const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  Matrix support_;
  std::vector<double> alpha_y_;  // alpha_i * y_i for support vectors
  double bias_ = 0.0;
  double gamma_ = 0.0;
};

}  // namespace detail

class SvmClassifier final : public Classifier {
 public:
  explicit SvmClassifier(SvmParams params = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const std::vector<double>& row) const override;
  /// Vote shares over classes (not calibrated probabilities).
  std::vector<double> predict_proba(
      const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  /// log1p on non-negative inputs, then z-score (the internal pipeline).
  std::vector<double> preprocess(const std::vector<double>& row) const;

  SvmParams params_;
  int num_classes_ = 0;
  StandardScaler scaler_;
  struct Pair {
    int a = 0, b = 0;  // classes: decision > 0 votes a, else b
    detail::BinarySvm svm;
  };
  std::vector<Pair> pairs_;
};

}  // namespace spmvml::ml
