#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/gemm.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "ml/serialize.hpp"

namespace spmvml::ml {
namespace detail {

void MlpNet::init(int in, int out, const MlpParams& p) {
  SPMVML_ENSURE(in > 0 && out > 0, "bad layer sizes");
  params_ = p;
  step_ = 0;
  layers_.clear();
  Rng rng(hash_combine(p.seed, 0x31337ULL));
  std::vector<int> sizes = {in};
  sizes.insert(sizes.end(), p.hidden.begin(), p.hidden.end());
  sizes.push_back(out);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    MlpLayer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    const auto n = static_cast<std::size_t>(layer.in) *
                   static_cast<std::size_t>(layer.out);
    layer.w.resize(n);
    // He initialisation for ReLU layers.
    const double scale = std::sqrt(2.0 / layer.in);
    for (auto& w : layer.w) w = rng.normal(0.0, scale);
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.mw.assign(n, 0.0);
    layer.vw.assign(n, 0.0);
    layer.mb.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.vb.assign(static_cast<std::size_t>(layer.out), 0.0);
    layers_.push_back(std::move(layer));
  }
}

const double* MlpNet::forward_batch(const double* x, int rows,
                                    MlpBatchScratch& scratch) const {
  const std::size_t L = layers_.size();
  scratch.act.resize(L);
  const double* cur = x;
  for (std::size_t l = 0; l < L; ++l) {
    const auto& layer = layers_[l];
    auto& out = scratch.act[l];
    out.resize(static_cast<std::size_t>(rows) *
               static_cast<std::size_t>(layer.out));
    gemm_nt(rows, layer.out, layer.in, cur, layer.w.data(), layer.b.data(),
            out.data());
    if (l + 1 < L)
      for (double& v : out) v = v > 0.0 ? v : 0.0;  // ReLU on hidden layers
    cur = out.data();
  }
  return cur;
}

std::vector<double> MlpNet::forward(const std::vector<double>& x) const {
  // Batch-of-one through the GEMM path; the thread-local scratch makes
  // repeated inference allocation-free after the first call per thread.
  thread_local MlpBatchScratch scratch;
  const double* out = forward_batch(x.data(), 1, scratch);
  return std::vector<double>(out, out + layers_.back().out);
}

namespace {

/// Adam step with decoupled weight decay on one parameter array.
void adam(std::vector<double>& w, std::vector<double>& m,
          std::vector<double>& v, const std::vector<double>& g,
          double lr, double decay, std::int64_t t) {
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double c1 = 1.0 - std::pow(b1, static_cast<double>(t));
  const double c2 = 1.0 - std::pow(b2, static_cast<double>(t));
  for (std::size_t i = 0; i < w.size(); ++i) {
    m[i] = b1 * m[i] + (1.0 - b1) * g[i];
    v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
    const double mhat = m[i] / c1;
    const double vhat = v[i] / c2;
    w[i] -= lr * (mhat / (std::sqrt(vhat) + eps) + decay * w[i]);
  }
}

}  // namespace

void train_mlp(
    MlpNet& net, const Matrix& x,
    const std::function<double(std::size_t, const std::vector<double>&,
                               std::vector<double>&)>& grad_out) {
  const MlpParams& p = net.params();
  auto& layers = net.layers();
  const std::size_t n = x.size();
  const std::size_t L = layers.size();
  const auto B = static_cast<std::size_t>(std::max(1, p.batch_size));
  const auto in0 = static_cast<std::size_t>(layers.front().in);
  const int out_dim = layers.back().out;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(hash_combine(p.seed, 0xbadC0deULL));

  // Contiguous row-major mini-batch buffers, allocated once and reused
  // for every batch of every epoch: packed inputs, post-activation
  // outputs per layer (via forward_batch), pre-activation deltas, and
  // gradient accumulators. The whole inner loop is GEMM-shaped —
  // per-sample work is only the tiny output-gradient callback.
  std::vector<double> xb(B * in0);
  MlpBatchScratch scratch;
  std::vector<std::vector<double>> delta(L);
  std::vector<std::vector<double>> gw(L), gb(L);
  for (std::size_t l = 0; l < L; ++l) {
    delta[l].resize(B * static_cast<std::size_t>(layers[l].out));
    gw[l].resize(layers[l].w.size());
    gb[l].resize(layers[l].b.size());
  }
  std::vector<double> raw(static_cast<std::size_t>(out_dim));
  std::vector<double> out_grad;

  // Per-epoch observability handles. Function-local statics keep the
  // name lookups off the training path entirely.
  static obs::Counter epochs_counter =
      obs::MetricsRegistry::global().counter("ml.mlp.epochs");
  static obs::Gauge loss_gauge =
      obs::MetricsRegistry::global().gauge("ml.mlp.epoch_loss");
  static obs::Histogram epoch_hist = obs::MetricsRegistry::global().histogram(
      "ml.mlp.epoch_s", obs::default_latency_bounds_s());

  for (int epoch = 0; epoch < p.epochs; ++epoch) {
    obs::TraceSpan epoch_span("mlp.epoch");
    epoch_span.arg("epoch", epoch);
    WallTimer epoch_timer;
    double epoch_loss = 0.0;

    // Fisher–Yates reshuffle each epoch.
    for (std::size_t i = n; i > 1; --i)
      std::swap(order[i - 1], order[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

    for (std::size_t start = 0; start < n; start += B) {
      const std::size_t stop = std::min(n, start + B);
      const int bsz = static_cast<int>(stop - start);
      const double inv_batch = 1.0 / static_cast<double>(bsz);

      // Pack the shuffled batch rows into one contiguous block.
      for (std::size_t s = start; s < stop; ++s)
        std::copy(x[order[s]].begin(), x[order[s]].end(),
                  xb.begin() + (s - start) * in0);

      // Forward all samples at once; scratch.act[l] caches the
      // post-activation values backward needs.
      const double* top = net.forward_batch(xb.data(), bsz, scratch);

      // Output gradients, one callback per sample (output dims are tiny).
      auto& dtop = delta[L - 1];
      for (std::size_t s = start; s < stop; ++s) {
        const std::size_t row = (s - start) * static_cast<std::size_t>(out_dim);
        std::copy(top + row, top + row + out_dim, raw.begin());
        epoch_loss += grad_out(order[s], raw, out_grad);
        std::copy(out_grad.begin(), out_grad.end(), dtop.begin() + row);
      }

      // Backward: weight/bias gradients reduce over the batch; delta
      // propagation is one GEMM against the layer's weights followed by
      // the ReLU mask of the cached activations.
      for (std::size_t l = L; l-- > 0;) {
        const auto& layer = layers[l];
        const double* a_in = l == 0 ? xb.data() : scratch.act[l - 1].data();
        gemm_tn(layer.out, layer.in, bsz, delta[l].data(), a_in,
                gw[l].data());
        for (double& g : gw[l]) g *= inv_batch;
        for (int o = 0; o < layer.out; ++o) {
          double sum = 0.0;
          for (int s = 0; s < bsz; ++s)
            sum += delta[l][static_cast<std::size_t>(s) *
                                static_cast<std::size_t>(layer.out) +
                            static_cast<std::size_t>(o)];
          gb[l][static_cast<std::size_t>(o)] = sum * inv_batch;
        }
        if (l == 0) break;
        auto& prev = delta[l - 1];
        gemm_nn(bsz, layer.in, layer.out, delta[l].data(), layer.w.data(),
                prev.data());
        // ReLU derivative of the hidden activation.
        const auto& act_prev = scratch.act[l - 1];
        const std::size_t count =
            static_cast<std::size_t>(bsz) * static_cast<std::size_t>(layer.in);
        for (std::size_t i = 0; i < count; ++i)
          if (act_prev[i] <= 0.0) prev[i] = 0.0;
      }

      ++net.step();
      for (std::size_t l = 0; l < L; ++l) {
        adam(layers[l].w, layers[l].mw, layers[l].vw, gw[l], p.learning_rate,
             p.weight_decay, net.step());
        adam(layers[l].b, layers[l].mb, layers[l].vb, gb[l], p.learning_rate,
             0.0, net.step());
      }
    }

    const double mean_loss =
        n > 0 ? epoch_loss / static_cast<double>(n) : 0.0;
    epochs_counter.inc();
    loss_gauge.set(mean_loss);
    epoch_hist.observe(epoch_timer.seconds());
    epoch_span.arg("loss", mean_loss);
    obs::log_debug("mlp.epoch")
        .kv("epoch", epoch)
        .kv("loss", mean_loss)
        .kv("wall_s", epoch_timer.seconds());
  }
}

void MlpNet::save(std::ostream& out) const {
  io::write_tag(out, "mlpnet");
  io::write_scalar(out, layers_.size());
  for (const auto& l : layers_) {
    io::write_scalar(out, l.in);
    io::write_scalar(out, l.out);
    io::write_vector(out, l.w);
    io::write_vector(out, l.b);
  }
}

void MlpNet::load(std::istream& in) {
  io::read_tag(in, "mlpnet");
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count < 64, "model stream corrupt: layer count");
  layers_.assign(count, {});
  for (auto& l : layers_) {
    l.in = io::read_scalar<int>(in);
    l.out = io::read_scalar<int>(in);
    l.w = io::read_vector<double>(in);
    l.b = io::read_vector<double>(in);
    SPMVML_ENSURE(l.w.size() == static_cast<std::size_t>(l.in) *
                                     static_cast<std::size_t>(l.out) &&
                      l.b.size() == static_cast<std::size_t>(l.out),
                  "model stream corrupt: layer shapes");
    // Fresh (zero) Adam moments: the loaded net is inference-ready and
    // can also be fine-tuned from an optimizer cold start.
    l.mw.assign(l.w.size(), 0.0);
    l.vw.assign(l.w.size(), 0.0);
    l.mb.assign(l.b.size(), 0.0);
    l.vb.assign(l.b.size(), 0.0);
  }
  step_ = 0;
}

namespace {

/// Signed log compression (see svm.cpp): counts span decades; z-scores on
/// raw counts leave extreme outliers that blow up ReLU nets.
double mlp_slog(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

ml::Matrix slog_all(const Matrix& x) {
  Matrix out = x;
  for (auto& row : out)
    for (auto& v : row) v = mlp_slog(v);
  return out;
}

std::vector<double> slog_row(const std::vector<double>& row) {
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) out[j] = mlp_slog(row[j]);
  return out;
}

}  // namespace

}  // namespace detail

void MlpClassifier::save(std::ostream& out) const {
  io::write_tag(out, "mlp_classifier");
  io::write_scalar(out, num_classes_);
  scaler_.save(out);
  net_.save(out);
}

void MlpClassifier::load(std::istream& in) {
  io::read_tag(in, "mlp_classifier");
  num_classes_ = io::read_scalar<int>(in);
  scaler_.load(in);
  net_.load(in);
}

void MlpRegressor::save(std::ostream& out) const {
  io::write_tag(out, "mlp_regressor");
  io::write_scalar(out, y_mean_);
  io::write_scalar(out, y_std_);
  scaler_.save(out);
  net_.save(out);
}

void MlpRegressor::load(std::istream& in) {
  io::read_tag(in, "mlp_regressor");
  y_mean_ = io::read_scalar<double>(in);
  y_std_ = io::read_scalar<double>(in);
  scaler_.load(in);
  net_.load(in);
}

void MlpEnsembleClassifier::save(std::ostream& out) const {
  io::write_tag(out, "mlp_ensemble_classifier");
  io::write_scalar(out, members_.size());
  for (const auto& m : members_) m.save(out);
}

void MlpEnsembleClassifier::load(std::istream& in) {
  io::read_tag(in, "mlp_ensemble_classifier");
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count >= 1 && count < 1024, "bad ensemble size");
  members_.assign(count, MlpClassifier(params_));
  for (auto& m : members_) m.load(in);
}

void MlpEnsembleRegressor::save(std::ostream& out) const {
  io::write_tag(out, "mlp_ensemble_regressor");
  io::write_scalar(out, members_.size());
  for (const auto& m : members_) m.save(out);
}

void MlpEnsembleRegressor::load(std::istream& in) {
  io::read_tag(in, "mlp_ensemble_regressor");
  const auto count = io::read_scalar<std::size_t>(in);
  SPMVML_ENSURE(count >= 1 && count < 1024, "bad ensemble size");
  members_.assign(count, MlpRegressor(params_));
  for (auto& m : members_) m.load(in);
}

MlpClassifier::MlpClassifier(MlpParams params) : params_(params) {}

void MlpClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  num_classes_ = *std::max_element(y.begin(), y.end()) + 1;
  const Matrix logged = detail::slog_all(x);
  scaler_.fit(logged);
  const Matrix xs = scaler_.transform(logged);
  net_.init(static_cast<int>(xs.front().size()), num_classes_, params_);
  detail::train_mlp(
      net_, xs,
      [&](std::size_t i, const std::vector<double>& raw,
          std::vector<double>& grad) {
        // Softmax cross-entropy gradient: p - onehot.
        grad.resize(raw.size());
        const double mx = *std::max_element(raw.begin(), raw.end());
        double denom = 0.0;
        for (std::size_t k = 0; k < raw.size(); ++k) {
          grad[k] = std::exp(raw[k] - mx);
          denom += grad[k];
        }
        for (std::size_t k = 0; k < raw.size(); ++k) {
          grad[k] /= denom;
          if (static_cast<int>(k) == y[i]) grad[k] -= 1.0;
        }
        // CE loss = -log p(y) = log(sum exp(raw - mx)) - (raw[y] - mx).
        return mx + std::log(denom) - raw[static_cast<std::size_t>(y[i])];
      });
}

std::vector<double> MlpClassifier::predict_proba(
    const std::vector<double>& row) const {
  auto raw = net_.forward(scaler_.transform(detail::slog_row(row)));
  const double mx = *std::max_element(raw.begin(), raw.end());
  double denom = 0.0;
  for (double& v : raw) {
    v = std::exp(v - mx);
    denom += v;
  }
  for (double& v : raw) v /= denom;
  return raw;
}

int MlpClassifier::predict(const std::vector<double>& row) const {
  const auto p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

MlpRegressor::MlpRegressor(MlpParams params) : params_(params) {}

void MlpRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  SPMVML_ENSURE(!x.empty() && x.size() == y.size(), "bad training data");
  const Matrix logged = detail::slog_all(x);
  scaler_.fit(logged);
  const Matrix xs = scaler_.transform(logged);
  StreamingStats ys;
  for (double v : y) ys.add(v);
  y_mean_ = ys.mean();
  y_std_ = ys.stddev() > 1e-12 ? ys.stddev() : 1.0;

  net_.init(static_cast<int>(xs.front().size()), 1, params_);
  detail::train_mlp(net_, xs,
                    [&](std::size_t i, const std::vector<double>& raw,
                        std::vector<double>& grad) {
                      grad.resize(1);
                      const double target = (y[i] - y_mean_) / y_std_;
                      grad[0] = raw[0] - target;  // d/draw of 0.5*(raw-t)^2
                      return 0.5 * grad[0] * grad[0];
                    });
}

double MlpRegressor::predict(const std::vector<double>& row) const {
  const auto raw = net_.forward(scaler_.transform(detail::slog_row(row)));
  // Clamp to a few standard units: a diverged activation must not produce
  // astronomically wrong (and RME-dominating) extrapolations.
  const double z = std::clamp(raw[0], -6.0, 6.0);
  return z * y_std_ + y_mean_;
}

MlpEnsembleClassifier::MlpEnsembleClassifier(MlpParams params, int n_members)
    : params_(params), n_members_(n_members) {
  SPMVML_ENSURE(n_members_ >= 1, "ensemble needs members");
}

void MlpEnsembleClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  members_.clear();
  for (int m = 0; m < n_members_; ++m) {
    MlpParams p = params_;
    p.seed = hash_combine(params_.seed, static_cast<std::uint64_t>(m) + 41);
    members_.emplace_back(p);
    members_.back().fit(x, y);
  }
}

std::vector<double> MlpEnsembleClassifier::predict_proba(
    const std::vector<double>& row) const {
  SPMVML_ENSURE(!members_.empty(), "ensemble not fitted");
  std::vector<double> acc;
  for (const auto& m : members_) {
    const auto p = m.predict_proba(row);
    if (acc.empty()) acc.assign(p.size(), 0.0);
    for (std::size_t k = 0; k < p.size(); ++k) acc[k] += p[k];
  }
  for (double& v : acc) v /= static_cast<double>(members_.size());
  return acc;
}

int MlpEnsembleClassifier::predict(const std::vector<double>& row) const {
  const auto p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

MlpEnsembleRegressor::MlpEnsembleRegressor(MlpParams params, int n_members)
    : params_(params), n_members_(n_members) {
  SPMVML_ENSURE(n_members_ >= 1, "ensemble needs members");
}

void MlpEnsembleRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  members_.clear();
  for (int m = 0; m < n_members_; ++m) {
    MlpParams p = params_;
    p.seed = hash_combine(params_.seed, static_cast<std::uint64_t>(m) + 83);
    members_.emplace_back(p);
    members_.back().fit(x, y);
  }
}

double MlpEnsembleRegressor::predict(const std::vector<double>& row) const {
  SPMVML_ENSURE(!members_.empty(), "ensemble not fitted");
  double sum = 0.0;
  for (const auto& m : members_) sum += m.predict(row);
  return sum / static_cast<double>(members_.size());
}

}  // namespace spmvml::ml
