#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spmvml::ml {

/// Everything the backward pass needs from one forward pass.
struct CnnClassifier::Activations {
  Tensor input;        // 1 x S x S
  Tensor conv1, pool1; // c1 x S x S, c1 x S/2 x S/2
  Tensor conv2, pool2; // c2 x S/2 x S/2, c2 x S/4 x S/4
  std::vector<int> pool1_arg, pool2_arg;  // argmax flat indices
  std::vector<float> fc1;                 // hidden (post-ReLU)
  std::vector<float> logits;              // K raw outputs
};

CnnClassifier::CnnClassifier(CnnParams params) : params_(params) {
  SPMVML_ENSURE(params_.image_size % 4 == 0,
                "image_size must be divisible by 4 (two 2x2 pools)");
}

std::vector<CnnClassifier::Param*> CnnClassifier::all_params() {
  return {&conv1_w_, &conv1_b_, &conv2_w_, &conv2_b_,
          &fc1_w_,   &fc1_b_,   &fc2_w_,   &fc2_b_};
}

void CnnClassifier::forward(const std::vector<float>& image,
                            Activations& act) const {
  const int s = params_.image_size;
  const int c1 = params_.conv1_channels, c2 = params_.conv2_channels;
  SPMVML_ENSURE(static_cast<int>(image.size()) == s * s,
                "image size mismatch");

  act.input.init(1, s, s);
  std::copy(image.begin(), image.end(), act.input.v.begin());

  // conv1 + ReLU.
  act.conv1.init(c1, s, s);
  for (int oc = 0; oc < c1; ++oc) {
    const float bias = conv1_b_.v[static_cast<std::size_t>(oc)];
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        float sum = bias;
        for (int ky = -1; ky <= 1; ++ky) {
          const int yy = y + ky;
          if (yy < 0 || yy >= s) continue;
          for (int kx = -1; kx <= 1; ++kx) {
            const int xx = x + kx;
            if (xx < 0 || xx >= s) continue;
            sum += conv1_w_.v[static_cast<std::size_t>(
                       (oc * 9) + (ky + 1) * 3 + (kx + 1))] *
                   act.input.at(0, yy, xx);
          }
        }
        act.conv1.at(oc, y, x) = sum > 0.0f ? sum : 0.0f;
      }
    }
  }

  // pool1 (2x2 max).
  const int h1 = s / 2;
  act.pool1.init(c1, h1, h1);
  act.pool1_arg.assign(act.pool1.v.size(), 0);
  for (int ch = 0; ch < c1; ++ch) {
    for (int y = 0; y < h1; ++y) {
      for (int x = 0; x < h1; ++x) {
        float best = -1e30f;
        int arg = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const float v = act.conv1.at(ch, 2 * y + dy, 2 * x + dx);
            if (v > best) {
              best = v;
              arg = ((ch * s) + 2 * y + dy) * s + 2 * x + dx;
            }
          }
        }
        act.pool1.at(ch, y, x) = best;
        act.pool1_arg[static_cast<std::size_t>((ch * h1 + y) * h1 + x)] = arg;
      }
    }
  }

  // conv2 + ReLU (c1 -> c2 channels).
  act.conv2.init(c2, h1, h1);
  for (int oc = 0; oc < c2; ++oc) {
    const float bias = conv2_b_.v[static_cast<std::size_t>(oc)];
    for (int y = 0; y < h1; ++y) {
      for (int x = 0; x < h1; ++x) {
        float sum = bias;
        for (int ic = 0; ic < c1; ++ic) {
          for (int ky = -1; ky <= 1; ++ky) {
            const int yy = y + ky;
            if (yy < 0 || yy >= h1) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const int xx = x + kx;
              if (xx < 0 || xx >= h1) continue;
              sum += conv2_w_.v[static_cast<std::size_t>(
                         ((oc * c1 + ic) * 9) + (ky + 1) * 3 + (kx + 1))] *
                     act.pool1.at(ic, yy, xx);
            }
          }
        }
        act.conv2.at(oc, y, x) = sum > 0.0f ? sum : 0.0f;
      }
    }
  }

  // pool2.
  const int h2 = h1 / 2;
  act.pool2.init(c2, h2, h2);
  act.pool2_arg.assign(act.pool2.v.size(), 0);
  for (int ch = 0; ch < c2; ++ch) {
    for (int y = 0; y < h2; ++y) {
      for (int x = 0; x < h2; ++x) {
        float best = -1e30f;
        int arg = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const float v = act.conv2.at(ch, 2 * y + dy, 2 * x + dx);
            if (v > best) {
              best = v;
              arg = ((ch * h1) + 2 * y + dy) * h1 + 2 * x + dx;
            }
          }
        }
        act.pool2.at(ch, y, x) = best;
        act.pool2_arg[static_cast<std::size_t>((ch * h2 + y) * h2 + x)] = arg;
      }
    }
  }

  // fc1 + ReLU.
  const int flat = flat_size_;
  act.fc1.assign(static_cast<std::size_t>(params_.hidden), 0.0f);
  for (int o = 0; o < params_.hidden; ++o) {
    float sum = fc1_b_.v[static_cast<std::size_t>(o)];
    const float* w = &fc1_w_.v[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(flat)];
    for (int i = 0; i < flat; ++i)
      sum += w[i] * act.pool2.v[static_cast<std::size_t>(i)];
    act.fc1[static_cast<std::size_t>(o)] = sum > 0.0f ? sum : 0.0f;
  }

  // fc2 (logits).
  act.logits.assign(static_cast<std::size_t>(num_classes_), 0.0f);
  for (int o = 0; o < num_classes_; ++o) {
    float sum = fc2_b_.v[static_cast<std::size_t>(o)];
    const float* w = &fc2_w_.v[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(params_.hidden)];
    for (int i = 0; i < params_.hidden; ++i)
      sum += w[i] * act.fc1[static_cast<std::size_t>(i)];
    act.logits[static_cast<std::size_t>(o)] = sum;
  }
}

void CnnClassifier::backward(const Activations& act,
                             const std::vector<float>& grad_out,
                             std::vector<std::vector<float>>& grads) const {
  const int s = params_.image_size;
  const int c1 = params_.conv1_channels, c2 = params_.conv2_channels;
  const int h1 = s / 2;
  const int flat = flat_size_;

  // fc2 backward.
  std::vector<float> d_fc1(static_cast<std::size_t>(params_.hidden), 0.0f);
  for (int o = 0; o < num_classes_; ++o) {
    const float d = grad_out[static_cast<std::size_t>(o)];
    grads[7][static_cast<std::size_t>(o)] += d;  // fc2_b
    float* gw = &grads[6][static_cast<std::size_t>(o) *
                          static_cast<std::size_t>(params_.hidden)];
    const float* w = &fc2_w_.v[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(params_.hidden)];
    for (int i = 0; i < params_.hidden; ++i) {
      gw[i] += d * act.fc1[static_cast<std::size_t>(i)];
      d_fc1[static_cast<std::size_t>(i)] += d * w[i];
    }
  }
  for (int i = 0; i < params_.hidden; ++i)
    if (act.fc1[static_cast<std::size_t>(i)] <= 0.0f)
      d_fc1[static_cast<std::size_t>(i)] = 0.0f;

  // fc1 backward.
  std::vector<float> d_pool2(static_cast<std::size_t>(flat), 0.0f);
  for (int o = 0; o < params_.hidden; ++o) {
    const float d = d_fc1[static_cast<std::size_t>(o)];
    if (d == 0.0f) continue;
    grads[5][static_cast<std::size_t>(o)] += d;  // fc1_b
    float* gw = &grads[4][static_cast<std::size_t>(o) *
                          static_cast<std::size_t>(flat)];
    const float* w = &fc1_w_.v[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(flat)];
    for (int i = 0; i < flat; ++i) {
      gw[i] += d * act.pool2.v[static_cast<std::size_t>(i)];
      d_pool2[static_cast<std::size_t>(i)] += d * w[i];
    }
  }

  // pool2 backward -> d_conv2 (post-ReLU grad routed through argmax).
  std::vector<float> d_conv2(
      static_cast<std::size_t>(c2) * h1 * h1, 0.0f);
  for (std::size_t i = 0; i < d_pool2.size(); ++i)
    d_conv2[static_cast<std::size_t>(act.pool2_arg[i])] += d_pool2[i];
  // ReLU derivative of conv2.
  for (std::size_t i = 0; i < d_conv2.size(); ++i)
    if (act.conv2.v[i] <= 0.0f) d_conv2[i] = 0.0f;

  // conv2 backward.
  std::vector<float> d_pool1(static_cast<std::size_t>(c1) * h1 * h1, 0.0f);
  for (int oc = 0; oc < c2; ++oc) {
    for (int y = 0; y < h1; ++y) {
      for (int x = 0; x < h1; ++x) {
        const float d =
            d_conv2[static_cast<std::size_t>((oc * h1 + y) * h1 + x)];
        if (d == 0.0f) continue;
        grads[3][static_cast<std::size_t>(oc)] += d;  // conv2_b
        for (int ic = 0; ic < c1; ++ic) {
          for (int ky = -1; ky <= 1; ++ky) {
            const int yy = y + ky;
            if (yy < 0 || yy >= h1) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const int xx = x + kx;
              if (xx < 0 || xx >= h1) continue;
              const auto widx = static_cast<std::size_t>(
                  ((oc * c1 + ic) * 9) + (ky + 1) * 3 + (kx + 1));
              grads[2][widx] += d * act.pool1.at(ic, yy, xx);
              d_pool1[static_cast<std::size_t>((ic * h1 + yy) * h1 + xx)] +=
                  d * conv2_w_.v[widx];
            }
          }
        }
      }
    }
  }

  // pool1 backward -> d_conv1, ReLU derivative.
  std::vector<float> d_conv1(static_cast<std::size_t>(c1) * s * s, 0.0f);
  for (std::size_t i = 0; i < d_pool1.size(); ++i)
    d_conv1[static_cast<std::size_t>(act.pool1_arg[i])] += d_pool1[i];
  for (std::size_t i = 0; i < d_conv1.size(); ++i)
    if (act.conv1.v[i] <= 0.0f) d_conv1[i] = 0.0f;

  // conv1 backward (input grads not needed).
  for (int oc = 0; oc < c1; ++oc) {
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        const float d = d_conv1[static_cast<std::size_t>((oc * s + y) * s + x)];
        if (d == 0.0f) continue;
        grads[1][static_cast<std::size_t>(oc)] += d;  // conv1_b
        for (int ky = -1; ky <= 1; ++ky) {
          const int yy = y + ky;
          if (yy < 0 || yy >= s) continue;
          for (int kx = -1; kx <= 1; ++kx) {
            const int xx = x + kx;
            if (xx < 0 || xx >= s) continue;
            grads[0][static_cast<std::size_t>((oc * 9) + (ky + 1) * 3 +
                                              (kx + 1))] +=
                d * act.input.at(0, yy, xx);
          }
        }
      }
    }
  }
}

void CnnClassifier::fit(const ImageSet& images, const std::vector<int>& labels) {
  SPMVML_ENSURE(!images.empty() && images.size() == labels.size(),
                "bad training data");
  num_classes_ = *std::max_element(labels.begin(), labels.end()) + 1;
  SPMVML_ENSURE(num_classes_ >= 2, "need at least two classes");
  const int s = params_.image_size;
  const int c1 = params_.conv1_channels, c2 = params_.conv2_channels;
  flat_size_ = c2 * (s / 4) * (s / 4);

  Rng rng(hash_combine(params_.seed, 0xCADDE11ULL));
  auto he_init = [&](Param& p, std::size_t n, int fan_in) {
    p.init(n);
    const double scale = std::sqrt(2.0 / fan_in);
    for (auto& w : p.v) w = static_cast<float>(rng.normal(0.0, scale));
  };
  he_init(conv1_w_, static_cast<std::size_t>(c1) * 9, 9);
  conv1_b_.init(static_cast<std::size_t>(c1));
  he_init(conv2_w_, static_cast<std::size_t>(c2) * c1 * 9, c1 * 9);
  conv2_b_.init(static_cast<std::size_t>(c2));
  he_init(fc1_w_, static_cast<std::size_t>(params_.hidden) * flat_size_,
          flat_size_);
  fc1_b_.init(static_cast<std::size_t>(params_.hidden));
  he_init(fc2_w_, static_cast<std::size_t>(num_classes_) * params_.hidden,
          params_.hidden);
  fc2_b_.init(static_cast<std::size_t>(num_classes_));
  step_ = 0;

  auto params = all_params();
  std::vector<std::vector<float>> grads(params.size());

  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);
  Activations act;
  std::vector<float> grad_out;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(params_.batch_size)) {
      const std::size_t stop = std::min(
          order.size(), start + static_cast<std::size_t>(params_.batch_size));
      for (std::size_t g = 0; g < params.size(); ++g)
        grads[g].assign(params[g]->v.size(), 0.0f);
      const float inv = 1.0f / static_cast<float>(stop - start);

      for (std::size_t idx = start; idx < stop; ++idx) {
        const std::size_t i = order[idx];
        forward(images[i], act);
        // Softmax cross-entropy gradient.
        grad_out.assign(static_cast<std::size_t>(num_classes_), 0.0f);
        float mx = act.logits[0];
        for (float v : act.logits) mx = std::max(mx, v);
        float denom = 0.0f;
        for (int k = 0; k < num_classes_; ++k) {
          grad_out[static_cast<std::size_t>(k)] =
              std::exp(act.logits[static_cast<std::size_t>(k)] - mx);
          denom += grad_out[static_cast<std::size_t>(k)];
        }
        for (int k = 0; k < num_classes_; ++k) {
          grad_out[static_cast<std::size_t>(k)] =
              (grad_out[static_cast<std::size_t>(k)] / denom -
               (labels[i] == k ? 1.0f : 0.0f)) *
              inv;
        }
        backward(act, grad_out, grads);
      }

      // Adam step.
      ++step_;
      constexpr float b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
      const float c1m = 1.0f - std::pow(b1, static_cast<float>(step_));
      const float c2m = 1.0f - std::pow(b2, static_cast<float>(step_));
      const auto lr = static_cast<float>(params_.learning_rate);
      for (std::size_t g = 0; g < params.size(); ++g) {
        auto& p = *params[g];
        for (std::size_t i = 0; i < p.v.size(); ++i) {
          p.m[i] = b1 * p.m[i] + (1.0f - b1) * grads[g][i];
          p.a[i] = b2 * p.a[i] + (1.0f - b2) * grads[g][i] * grads[g][i];
          p.v[i] -= lr * (p.m[i] / c1m) / (std::sqrt(p.a[i] / c2m) + eps);
        }
      }
    }
  }
}

std::vector<double> CnnClassifier::predict_proba(
    const std::vector<float>& image) const {
  SPMVML_ENSURE(num_classes_ > 0, "CNN not fitted");
  Activations act;
  forward(image, act);
  std::vector<double> probs(static_cast<std::size_t>(num_classes_));
  double mx = act.logits[0];
  for (float v : act.logits) mx = std::max<double>(mx, v);
  double denom = 0.0;
  for (int k = 0; k < num_classes_; ++k) {
    probs[static_cast<std::size_t>(k)] =
        std::exp(act.logits[static_cast<std::size_t>(k)] - mx);
    denom += probs[static_cast<std::size_t>(k)];
  }
  for (double& p : probs) p /= denom;
  return probs;
}

int CnnClassifier::predict(const std::vector<float>& image) const {
  const auto p = predict_proba(image);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> CnnClassifier::predict_batch(const ImageSet& images) const {
  std::vector<int> out;
  out.reserve(images.size());
  for (const auto& img : images) out.push_back(predict(img));
  return out;
}

}  // namespace spmvml::ml
