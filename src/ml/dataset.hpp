// Dataset container + split/fold/scaling utilities for the ML layer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

namespace spmvml::ml {

/// Row-major sample matrix: X[i] is sample i's feature vector.
using Matrix = std::vector<std::vector<double>>;

/// Supervised dataset. `labels` is used by classifiers, `targets` by
/// regressors; either may be empty when unused.
struct Dataset {
  Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;

  std::size_t size() const { return x.size(); }
  int num_features() const {
    return x.empty() ? 0 : static_cast<int>(x.front().size());
  }

  /// Subset by sample indices (copies rows).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Throws if rows are ragged or label/target sizes mismatch.
  void validate() const;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random split with `test_fraction` of samples held out; stratified by
/// label when labels are present (the paper's 80-20 protocol §IV-B).
TrainTestSplit train_test_split(const Dataset& data, double test_fraction,
                                std::uint64_t seed);

/// Index-level variant of train_test_split, for callers that must keep
/// side arrays (e.g. per-sample format times) aligned with the split.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
split_indices(const Dataset& data, double test_fraction, std::uint64_t seed);

/// K-fold partition: returns (train_indices, test_indices) per fold,
/// stratified by label when labels are present (the paper's 5-fold CV).
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
k_folds(const Dataset& data, int k, std::uint64_t seed);

/// Feature standardiser: z = (x - mean) / std per column.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  std::vector<double> transform(const std::vector<double>& row) const;
  Matrix transform(const Matrix& x) const;
  bool fitted() const { return !mean_.empty(); }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace spmvml::ml
