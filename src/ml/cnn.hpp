// Small convolutional network for matrix-image classification — the
// Zhao et al. (PPoPP'18) approach the paper's §VII compares against.
//
// Fixed architecture on an S x S single-channel image:
//   conv 3x3 (1 -> c1), ReLU, maxpool 2x2,
//   conv 3x3 (c1 -> c2), ReLU, maxpool 2x2,
//   dense -> hidden, ReLU, dense -> K, softmax.
// Trained with minibatch Adam on cross-entropy. Deliberately compact: the
// point is reproducing the comparison, not a DL framework.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace spmvml::ml {

struct CnnParams {
  int image_size = 32;
  int conv1_channels = 8;
  int conv2_channels = 16;
  int hidden = 32;
  int epochs = 25;
  int batch_size = 16;
  double learning_rate = 1e-3;
  std::uint64_t seed = 19;
};

/// Image matrix: one row per sample, image_size^2 floats in [0,1].
using ImageSet = std::vector<std::vector<float>>;

class CnnClassifier {
 public:
  explicit CnnClassifier(CnnParams params = {});

  /// Train on images with integer class labels in [0, K).
  void fit(const ImageSet& images, const std::vector<int>& labels);

  int predict(const std::vector<float>& image) const;
  std::vector<double> predict_proba(const std::vector<float>& image) const;

  std::vector<int> predict_batch(const ImageSet& images) const;

  int num_classes() const { return num_classes_; }

 private:
  struct Tensor {
    int c = 0, h = 0, w = 0;
    std::vector<float> v;  // c*h*w, channel-major
    float& at(int ch, int y, int x) {
      return v[static_cast<std::size_t>((ch * h + y) * w + x)];
    }
    float at(int ch, int y, int x) const {
      return v[static_cast<std::size_t>((ch * h + y) * w + x)];
    }
    void init(int c_, int h_, int w_) {
      c = c_;
      h = h_;
      w = w_;
      v.assign(static_cast<std::size_t>(c) * h * w, 0.0f);
    }
  };

  /// Parameter block with Adam moments.
  struct Param {
    std::vector<float> v, m, a;  // value, first, second moment
    void init(std::size_t n) {
      v.assign(n, 0.0f);
      m.assign(n, 0.0f);
      a.assign(n, 0.0f);
    }
  };

  struct Activations;  // per-sample forward state (defined in .cpp)

  void forward(const std::vector<float>& image, Activations& act) const;
  void backward(const Activations& act, const std::vector<float>& grad_out,
                std::vector<std::vector<float>>& grads) const;

  CnnParams params_;
  int num_classes_ = 0;
  // conv weights: (out_c, in_c, 3, 3) flattened; dense row-major.
  Param conv1_w_, conv1_b_, conv2_w_, conv2_b_;
  Param fc1_w_, fc1_b_, fc2_w_, fc2_b_;
  int flat_size_ = 0;
  std::int64_t step_ = 0;

  std::vector<Param*> all_params();
};

}  // namespace spmvml::ml
