// Evaluation metrics used throughout the paper's result sections.
#pragma once

#include <vector>

namespace spmvml::ml {

/// Fraction of predictions equal to truth.
double accuracy(const std::vector<int>& truth, const std::vector<int>& pred);

/// K x K confusion matrix: entry [t][p] counts truth t predicted as p.
std::vector<std::vector<int>> confusion_matrix(const std::vector<int>& truth,
                                               const std::vector<int>& pred,
                                               int num_classes);

/// Relative mean error: mean(|pred - measured| / measured) — §VI's metric.
double relative_mean_error(const std::vector<double>& measured,
                           const std::vector<double>& predicted);

/// Slowdown histogram of Tables XI–XIII. slowdowns[i] is
/// t(predicted format) / t(best format) for sample i (>= 1.0).
struct SlowdownBins {
  int no_slowdown = 0;      // predicted format == best (ratio == 1)
  int any_slowdown = 0;     // ratio > 1 (cumulative)
  int ge_1_2 = 0;           // ratio >= 1.2
  int ge_1_5 = 0;           // ratio >= 1.5
  int ge_2_0 = 0;           // ratio >= 2.0
};

SlowdownBins slowdown_bins(const std::vector<double>& slowdowns);

/// Mean of the slowdown ratios (1.0 = perfect selection).
double mean_slowdown(const std::vector<double>& slowdowns);

}  // namespace spmvml::ml
