// GridSearchCV equivalent (§IV-D): exhaustive hyper-parameter search
// scored by stratified k-fold cross-validation accuracy (classification)
// or negative RME (regression).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace spmvml::ml {

/// One hyper-parameter assignment, e.g. {"max_depth": 6, "lr": 0.1}.
using ParamPoint = std::map<std::string, double>;

/// Cartesian product of per-parameter value lists.
std::vector<ParamPoint> make_grid(
    const std::map<std::string, std::vector<double>>& axes);

using ClassifierFactory = std::function<ClassifierPtr(const ParamPoint&)>;
using RegressorFactory = std::function<RegressorPtr(const ParamPoint&)>;

struct GridSearchResult {
  ParamPoint best_params;
  double best_score = 0.0;  // mean CV accuracy, or -RME for regression
};

/// k-fold CV over every grid point; returns the best assignment.
GridSearchResult grid_search_classifier(const ClassifierFactory& factory,
                                        const std::vector<ParamPoint>& grid,
                                        const Dataset& data, int folds,
                                        std::uint64_t seed);

GridSearchResult grid_search_regressor(const RegressorFactory& factory,
                                       const std::vector<ParamPoint>& grid,
                                       const Dataset& data, int folds,
                                       std::uint64_t seed);

}  // namespace spmvml::ml
