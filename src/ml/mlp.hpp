// Multi-layer perceptron (§II-B.3) and MLP ensembles (§VI).
//
// Architecture follows §IV-D: three hidden layers of 96/48/16 ReLU units,
// mini-batches of 16, trained with Adam. Classification uses softmax
// cross-entropy; regression a linear head on MSE with internally
// standardised targets. Inputs are standardised internally.
// The ensemble (§VI-A) averages the predictions of independently
// initialised members — the paper's "MLP ensemble regressor".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/model.hpp"

namespace spmvml::ml {

struct MlpParams {
  std::vector<int> hidden = {96, 48, 16};
  int epochs = 60;
  int batch_size = 16;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  std::uint64_t seed = 13;
};

namespace detail {

struct MlpLayer {
  int in = 0, out = 0;
  std::vector<double> w;  // out x in, row-major
  std::vector<double> b;
  // Adam moments.
  std::vector<double> mw, vw, mb, vb;
};

/// Reusable per-layer activation buffers for forward_batch. Passing the
/// same scratch across calls eliminates every per-sample allocation in
/// the training and batch-inference hot paths.
struct MlpBatchScratch {
  std::vector<std::vector<double>> act;  // act[l]: rows x layers[l].out
};

/// Dense feed-forward core shared by the classifier/regressor wrappers.
/// Training (backprop + Adam) lives in mlp.cpp.
class MlpNet {
 public:
  /// Build layers for `in` inputs and `out` raw outputs.
  void init(int in, int out, const MlpParams& p);

  /// Forward pass; returns raw output activations (no softmax).
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Forward `rows` samples stored contiguously row-major in `x`
  /// (rows x in). Returns a pointer to the rows x out raw outputs, owned
  /// by `scratch` and valid until its next use. Deterministic: results
  /// are bitwise identical to per-sample forward() for any thread count.
  const double* forward_batch(const double* x, int rows,
                              MlpBatchScratch& scratch) const;

  std::vector<MlpLayer>& layers() { return layers_; }
  const std::vector<MlpLayer>& layers() const { return layers_; }
  const MlpParams& params() const { return params_; }
  std::int64_t& step() { return step_; }

  /// Weights/biases only (Adam moments are training state, not saved).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<MlpLayer> layers_;
  MlpParams params_;
  std::int64_t step_ = 0;
};

/// Run `epochs` of minibatch Adam. `grad_out(i, raw, grad)` must fill
/// `grad` with dLoss/draw for sample i given raw outputs `raw`, and
/// return the sample's loss. The loss feeds the per-epoch observability
/// series (ml.mlp.epoch_loss / epoch spans) only — it never influences
/// the optimisation, so training results are unchanged by logging state.
void train_mlp(
    MlpNet& net, const Matrix& x,
    const std::function<double(std::size_t, const std::vector<double>&,
                               std::vector<double>&)>& grad_out);

}  // namespace detail

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const std::vector<double>& row) const override;
  std::vector<double> predict_proba(
      const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  MlpParams params_;
  int num_classes_ = 0;
  StandardScaler scaler_;
  detail::MlpNet net_;
};

class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict(const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  MlpParams params_;
  StandardScaler scaler_;
  double y_mean_ = 0.0, y_std_ = 1.0;
  detail::MlpNet net_;
};

/// Averages `n_members` MLP classifiers with different seeds.
class MlpEnsembleClassifier final : public Classifier {
 public:
  explicit MlpEnsembleClassifier(MlpParams params = {}, int n_members = 5);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  int predict(const std::vector<double>& row) const override;
  std::vector<double> predict_proba(
      const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  MlpParams params_;
  int n_members_;
  std::vector<MlpClassifier> members_;
};

/// Averages `n_members` MLP regressors — the paper's ensemble regressor.
class MlpEnsembleRegressor final : public Regressor {
 public:
  explicit MlpEnsembleRegressor(MlpParams params = {}, int n_members = 5);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict(const std::vector<double>& row) const override;

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  MlpParams params_;
  int n_members_;
  std::vector<MlpRegressor> members_;
};

}  // namespace spmvml::ml
