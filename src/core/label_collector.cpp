#include "core/label_collector.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "gpusim/row_summary.hpp"

namespace spmvml {

int MatrixRecord::best_among(int arch, Precision prec,
                             std::span<const Format> candidates) const {
  SPMVML_ENSURE(!candidates.empty(), "no candidate formats");
  int best = -1;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!valid(arch, prec, candidates[i])) continue;
    const double t = time(arch, prec, candidates[i]);
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int MatrixRecord::num_valid(int arch, Precision prec) const {
  int n = 0;
  for (Format f : kAllFormats)
    if (valid(arch, prec, f)) ++n;
  return n;
}

bool MatrixRecord::fully_valid() const {
  for (int a = 0; a < kNumArchs; ++a)
    for (int p = 0; p < kNumPrecisions; ++p)
      if (num_valid(a, static_cast<Precision>(p)) != kNumFormats) return false;
  return true;
}

namespace {

/// Measure one cell, retrying transient failures with capped exponential
/// backoff. Structural failures (OOM, timeout) return immediately.
Measurement measure_with_retry(const MeasurementOracle& oracle,
                               const RowSummary& summary, Format f,
                               std::uint64_t seed,
                               const CollectOptions& options,
                               CollectStats& stats) {
  Measurement m;
  for (int attempt = 0;; ++attempt) {
    m = oracle.measure(summary, f, seed, attempt);
    if (!is_retryable(m.status) || attempt >= options.max_retries) break;
    ++stats.transient_retries;
    if (options.backoff_base_s > 0.0) {
      const double delay = std::min(
          options.backoff_base_s * static_cast<double>(1 << attempt),
          options.backoff_cap_s);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  return m;
}

/// Try to restore a checkpoint matching this plan. Returns the number of
/// plan entries already processed (0 = start from scratch).
std::size_t try_resume(const CorpusPlan& plan, const CollectOptions& options,
                       LabeledCorpus& corpus) {
  if (options.checkpoint_path.empty() ||
      !std::filesystem::exists(options.checkpoint_path))
    return 0;
  try {
    std::size_t cached_plan = 0, cached_done = 0;
    std::uint64_t cached_hash = 0;
    LabeledCorpus cached = load_corpus_csv(options.checkpoint_path,
                                           &cached_plan, &cached_hash,
                                           &cached_done);
    if (cached_plan == plan.size() && cached_hash == plan_fingerprint(plan) &&
        cached_done <= plan.size() && cached.size() <= cached_done) {
      corpus.records = std::move(cached.records);
      corpus.stats.resumed_records = corpus.records.size();
      return cached_done;
    }
  } catch (const Error&) {
    // Corrupt or stale checkpoint: re-collect from scratch.
  }
  return 0;
}

}  // namespace

LabeledCorpus collect_corpus(const CorpusPlan& plan,
                             const CollectOptions& options) {
  LabeledCorpus corpus;
  corpus.records.reserve(plan.size());
  CollectStats& stats = corpus.stats;

  const std::uint64_t fingerprint = plan_fingerprint(plan);
  const std::size_t start = try_resume(plan, options, corpus);

  // One oracle per (arch, precision); they share the cost parameters.
  const auto archs = paper_testbeds();
  SPMVML_ENSURE(archs.size() == kNumArchs, "expected two testbeds");
  MeasurementConfig measurement = options.measurement;
  measurement.faults = options.faults;
  std::vector<MeasurementOracle> oracles;
  for (const auto& arch : archs)
    for (int p = 0; p < kNumPrecisions; ++p)
      oracles.emplace_back(arch, static_cast<Precision>(p), measurement,
                           options.cost);

  for (std::size_t m = start; m < plan.size(); ++m) {
    const GenSpec& spec = plan.specs[m];
    const Csr<double> matrix = generate(spec);
    const RowSummary summary = summarize(matrix);
    ++stats.attempted;

    // §IV-C as a wholesale filter, kept for the fault-free configuration
    // (the ELL image is by far the largest; 12 bytes per padded slot).
    // With faults enabled, infeasible formats fail per-cell instead.
    if (!options.faults.enabled && options.format_memory_limit > 0) {
      const double ell_bytes = static_cast<double>(summary.rows) *
                               static_cast<double>(summary.row_max) * 12.0;
      if (ell_bytes > static_cast<double>(options.format_memory_limit)) {
        ++stats.dropped_prefilter;
        if (options.progress) options.progress(m + 1, plan.size());
        continue;
      }
    }

    MatrixRecord rec;
    rec.seed = spec.seed;
    rec.bucket = plan.bucket_of[m];
    rec.family = static_cast<int>(spec.family);
    rec.rows = static_cast<double>(matrix.rows());
    rec.cols = static_cast<double>(matrix.cols());
    rec.nnz = static_cast<double>(matrix.nnz());
    rec.features = extract_features(matrix);

    std::size_t valid_cells = 0;
    for (int a = 0; a < kNumArchs; ++a) {
      for (int p = 0; p < kNumPrecisions; ++p) {
        const auto& oracle =
            oracles[static_cast<std::size_t>(a * kNumPrecisions + p)];
        for (int f = 0; f < kNumFormats; ++f) {
          const Measurement cell = measure_with_retry(
              oracle, summary, static_cast<Format>(f), spec.seed, options,
              stats);
          rec.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(f)] = cell.seconds;
          if (cell.ok()) {
            ++valid_cells;
          } else {
            ++stats.failed_cells;
            switch (cell.status) {
              case MeasurementStatus::kOom: ++stats.oom_cells; break;
              case MeasurementStatus::kTimeout: ++stats.timeout_cells; break;
              case MeasurementStatus::kTransient:
                ++stats.transient_cells;
                break;
              case MeasurementStatus::kOk: break;
            }
          }
        }
      }
    }

    // A matrix is only dropped wholesale when *every* cell failed — there
    // is nothing to learn from it.
    if (valid_cells == 0) {
      ++stats.dropped_all_failed;
    } else {
      corpus.records.push_back(rec);
    }

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (m + 1 - start) % options.checkpoint_every == 0 &&
        m + 1 < plan.size()) {
      save_corpus_csv(options.checkpoint_path, corpus, plan.size(),
                      fingerprint, m + 1);
    }
    if (options.progress) options.progress(m + 1, plan.size());
  }
  stats.kept = corpus.records.size();
  if (!options.checkpoint_path.empty())
    save_corpus_csv(options.checkpoint_path, corpus, plan.size(), fingerprint,
                    plan.size());
  return corpus;
}

void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size, std::uint64_t plan_hash,
                     std::size_t done) {
  // Write to a temp file and rename so a kill mid-write never leaves a
  // truncated checkpoint behind (rename within a directory is atomic).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "cannot open " + tmp + " for writing");
    out << "# spmvml oracle v" << kOracleVersion << " plan " << plan_size
        << " hash " << plan_hash << " done " << done << '\n';
    out << "seed,bucket,family,rows,cols,nnz";
    for (int f = 0; f < kNumFeatures; ++f) out << ',' << feature_name(f);
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          out << ",t_a" << a << "p" << p << "f" << f;
    out << '\n';
    out.precision(17);
    for (const auto& r : corpus.records) {
      out << r.seed << ',' << r.bucket << ',' << r.family << ',' << r.rows
          << ',' << r.cols << ',' << r.nnz;
      for (int f = 0; f < kNumFeatures; ++f) out << ',' << r.features[f];
      for (int a = 0; a < kNumArchs; ++a)
        for (int p = 0; p < kNumPrecisions; ++p)
          for (int f = 0; f < kNumFormats; ++f) {
            const double t = r.seconds[static_cast<std::size_t>(a)]
                                      [static_cast<std::size_t>(p)]
                                      [static_cast<std::size_t>(f)];
            // Failed cells round-trip as the literal "nan".
            if (std::isfinite(t))
              out << ',' << t;
            else
              out << ",nan";
          }
      out << '\n';
    }
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size) {
  save_corpus_csv(path, corpus, plan_size, 0, plan_size);
}

LabeledCorpus load_corpus_csv(const std::string& path,
                              std::size_t* cached_plan_size,
                              std::uint64_t* cached_plan_hash,
                              std::size_t* cached_done) {
  std::ifstream in(path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo, "cannot open " + path);
  std::string line;
  SPMVML_ENSURE_CAT(static_cast<bool>(std::getline(in, line)),
                    ErrorCategory::kParse, "empty CSV");
  const std::string prefix =
      "# spmvml oracle v" + std::to_string(kOracleVersion) + " plan ";
  SPMVML_ENSURE_CAT(line.rfind(prefix, 0) == 0, ErrorCategory::kParse,
                    "corpus cache written by a different oracle version — "
                    "delete " + path);
  {
    std::istringstream header(line.substr(prefix.size()));
    std::size_t plan_size = 0, done = 0;
    std::uint64_t hash = 0;
    std::string hash_kw, done_kw;
    header >> plan_size >> hash_kw >> hash >> done_kw >> done;
    SPMVML_ENSURE_CAT(static_cast<bool>(header) && hash_kw == "hash" &&
                          done_kw == "done",
                      ErrorCategory::kParse,
                      "corpus cache header malformed — delete " + path);
    if (cached_plan_size != nullptr) *cached_plan_size = plan_size;
    if (cached_plan_hash != nullptr) *cached_plan_hash = hash;
    if (cached_done != nullptr) *cached_done = done;
  }
  SPMVML_ENSURE_CAT(static_cast<bool>(std::getline(in, line)),
                    ErrorCategory::kParse, "missing CSV header");

  LabeledCorpus corpus;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next_cell = [&]() -> const std::string& {
      SPMVML_ENSURE_CAT(static_cast<bool>(std::getline(row, cell, ',')),
                        ErrorCategory::kParse, "truncated CSV row");
      return cell;
    };
    auto next = [&]() -> double { return std::stod(next_cell()); };
    MatrixRecord r;
    // Seed must round-trip exactly — parse as integer, not double.
    r.seed = std::stoull(next_cell());
    r.bucket = static_cast<int>(next());
    r.family = static_cast<int>(next());
    r.rows = next();
    r.cols = next();
    r.nnz = next();
    for (int f = 0; f < kNumFeatures; ++f)
      r.features.values[static_cast<std::size_t>(f)] = next();
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          r.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                   [static_cast<std::size_t>(f)] = next();
    corpus.records.push_back(r);
  }
  return corpus;
}

LabeledCorpus load_or_collect(const std::string& cache_path,
                              const CorpusPlan& plan,
                              const CollectOptions& options) {
  if (std::filesystem::exists(cache_path)) {
    try {
      std::size_t cached_plan = 0, cached_done = 0;
      std::uint64_t cached_hash = 0;
      LabeledCorpus cached = load_corpus_csv(cache_path, &cached_plan,
                                             &cached_hash, &cached_done);
      if (cached_plan == plan.size() &&
          cached_hash == plan_fingerprint(plan) &&
          cached_done == plan.size())
        return cached;
      // Plan changed (different SPMVML_CORPUS_SCALE / seed / contents) or
      // the cache is a partial checkpoint: fall through to collection,
      // which resumes matching checkpoints by itself.
    } catch (const Error&) {
      // Stale or corrupt cache (e.g. oracle version bump): re-collect.
    }
  }
  CollectOptions opts = options;
  if (opts.checkpoint_path.empty()) opts.checkpoint_path = cache_path;
  return collect_corpus(plan, opts);
}

}  // namespace spmvml
