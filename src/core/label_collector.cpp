#include "core/label_collector.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "gpusim/row_summary.hpp"

namespace spmvml {

int MatrixRecord::best_among(int arch, Precision prec,
                             std::span<const Format> candidates) const {
  SPMVML_ENSURE(!candidates.empty(), "no candidate formats");
  int best = 0;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double t = time(arch, prec, candidates[i]);
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(i);
    }
  }
  return best;
}

LabeledCorpus collect_corpus(const CorpusPlan& plan,
                             const CollectOptions& options) {
  LabeledCorpus corpus;
  corpus.records.reserve(plan.size());

  // One oracle per (arch, precision); they share the cost parameters.
  const auto archs = paper_testbeds();
  SPMVML_ENSURE(archs.size() == kNumArchs, "expected two testbeds");
  std::vector<MeasurementOracle> oracles;
  for (const auto& arch : archs)
    for (int p = 0; p < kNumPrecisions; ++p)
      oracles.emplace_back(arch, static_cast<Precision>(p),
                           options.measurement, options.cost);

  for (std::size_t m = 0; m < plan.size(); ++m) {
    const GenSpec& spec = plan.specs[m];
    const Csr<double> matrix = generate(spec);
    const RowSummary summary = summarize(matrix);

    // §IV-C: exclude matrices at least one format cannot execute (the
    // ELL image is by far the largest; 12 bytes per padded slot).
    if (options.format_memory_limit > 0) {
      const double ell_bytes = static_cast<double>(summary.rows) *
                               static_cast<double>(summary.row_max) * 12.0;
      if (ell_bytes > static_cast<double>(options.format_memory_limit)) {
        if (options.progress) options.progress(m + 1, plan.size());
        continue;
      }
    }

    MatrixRecord rec;
    rec.seed = spec.seed;
    rec.bucket = plan.bucket_of[m];
    rec.family = static_cast<int>(spec.family);
    rec.rows = static_cast<double>(matrix.rows());
    rec.cols = static_cast<double>(matrix.cols());
    rec.nnz = static_cast<double>(matrix.nnz());
    rec.features = extract_features(matrix);

    for (int a = 0; a < kNumArchs; ++a) {
      for (int p = 0; p < kNumPrecisions; ++p) {
        const auto& oracle =
            oracles[static_cast<std::size_t>(a * kNumPrecisions + p)];
        const auto times = oracle.measure_all(summary, spec.seed);
        for (int f = 0; f < kNumFormats; ++f)
          rec.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(f)] =
              times[static_cast<std::size_t>(f)].seconds;
      }
    }
    corpus.records.push_back(rec);
    if (options.progress) options.progress(m + 1, plan.size());
  }
  return corpus;
}

void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size) {
  std::ofstream out(path);
  SPMVML_ENSURE(out.good(), "cannot open " + path + " for writing");
  out << "# spmvml oracle v" << kOracleVersion << " plan " << plan_size
      << '\n';
  out << "seed,bucket,family,rows,cols,nnz";
  for (int f = 0; f < kNumFeatures; ++f) out << ',' << feature_name(f);
  for (int a = 0; a < kNumArchs; ++a)
    for (int p = 0; p < kNumPrecisions; ++p)
      for (int f = 0; f < kNumFormats; ++f)
        out << ",t_a" << a << "p" << p << "f" << f;
  out << '\n';
  out.precision(17);
  for (const auto& r : corpus.records) {
    out << r.seed << ',' << r.bucket << ',' << r.family << ',' << r.rows
        << ',' << r.cols << ',' << r.nnz;
    for (int f = 0; f < kNumFeatures; ++f) out << ',' << r.features[f];
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          out << ','
              << r.seconds[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(f)];
    out << '\n';
  }
  SPMVML_ENSURE(out.good(), "write failed for " + path);
}

LabeledCorpus load_corpus_csv(const std::string& path,
                              std::size_t* cached_plan_size) {
  std::ifstream in(path);
  SPMVML_ENSURE(in.good(), "cannot open " + path);
  std::string line;
  SPMVML_ENSURE(static_cast<bool>(std::getline(in, line)), "empty CSV");
  const std::string prefix =
      "# spmvml oracle v" + std::to_string(kOracleVersion) + " plan ";
  SPMVML_ENSURE(line.rfind(prefix, 0) == 0,
                "corpus cache written by a different oracle version — "
                "delete " + path);
  if (cached_plan_size != nullptr)
    *cached_plan_size = std::stoull(line.substr(prefix.size()));
  SPMVML_ENSURE(static_cast<bool>(std::getline(in, line)),
                "missing CSV header");

  LabeledCorpus corpus;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    auto next_cell = [&]() -> const std::string& {
      SPMVML_ENSURE(static_cast<bool>(std::getline(row, cell, ',')),
                    "truncated CSV row");
      return cell;
    };
    auto next = [&]() -> double { return std::stod(next_cell()); };
    MatrixRecord r;
    // Seed must round-trip exactly — parse as integer, not double.
    r.seed = std::stoull(next_cell());
    r.bucket = static_cast<int>(next());
    r.family = static_cast<int>(next());
    r.rows = next();
    r.cols = next();
    r.nnz = next();
    for (int f = 0; f < kNumFeatures; ++f)
      r.features.values[static_cast<std::size_t>(f)] = next();
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          r.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                   [static_cast<std::size_t>(f)] = next();
    corpus.records.push_back(r);
  }
  return corpus;
}

LabeledCorpus load_or_collect(const std::string& cache_path,
                              const CorpusPlan& plan,
                              const CollectOptions& options) {
  if (std::filesystem::exists(cache_path)) {
    try {
      std::size_t cached_plan = 0;
      LabeledCorpus cached = load_corpus_csv(cache_path, &cached_plan);
      if (cached_plan == plan.size()) return cached;
      // Plan changed (e.g. different SPMVML_CORPUS_SCALE): re-collect.
    } catch (const Error&) {
      // Stale or corrupt cache (e.g. oracle version bump): re-collect.
    }
  }
  LabeledCorpus corpus = collect_corpus(plan, options);
  save_corpus_csv(cache_path, corpus, plan.size());
  return corpus;
}

}  // namespace spmvml
