#include "core/label_collector.hpp"

#include <charconv>
#include <chrono>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "gpusim/row_summary.hpp"

namespace spmvml {

namespace {

// Collection-level accounting, one registry series per CollectStats
// field (the oracle separately counts every measure() call by status;
// these count *final* cell outcomes after retries).
struct CollectMetrics {
  obs::Counter cells_measured;
  obs::Counter cells_failed_oom;
  obs::Counter cells_failed_timeout;
  obs::Counter cells_failed_transient;
  obs::Counter retries;
  obs::Counter matrices_kept;
  obs::Counter matrices_dropped_prefilter;
  obs::Counter matrices_dropped_all_failed;
  obs::Counter cache_hits;
  obs::Counter resumed_records;
  obs::Counter checkpoints;
};

CollectMetrics& collect_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static CollectMetrics m{
      reg.counter("collect.cells.measured"),
      reg.counter("collect.cells.failed.oom"),
      reg.counter("collect.cells.failed.timeout"),
      reg.counter("collect.cells.failed.transient"),
      reg.counter("collect.retries"),
      reg.counter("collect.matrices.kept"),
      reg.counter("collect.matrices.dropped_prefilter"),
      reg.counter("collect.matrices.dropped_all_failed"),
      reg.counter("collect.cache.hits"),
      reg.counter("collect.resume.records"),
      reg.counter("collect.checkpoints"),
  };
  return m;
}

}  // namespace

int MatrixRecord::best_among(int arch, Precision prec,
                             std::span<const Format> candidates) const {
  SPMVML_ENSURE(!candidates.empty(), "no candidate formats");
  int best = -1;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!valid(arch, prec, candidates[i])) continue;
    const double t = time(arch, prec, candidates[i]);
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int MatrixRecord::num_valid(int arch, Precision prec) const {
  int n = 0;
  for (Format f : kAllFormats)
    if (valid(arch, prec, f)) ++n;
  return n;
}

bool MatrixRecord::fully_valid() const {
  for (int a = 0; a < kNumArchs; ++a)
    for (int p = 0; p < kNumPrecisions; ++p)
      if (num_valid(a, static_cast<Precision>(p)) != kNumFormats) return false;
  return true;
}

double backoff_delay_s(const CollectOptions& options, int attempt) {
  if (options.backoff_base_s <= 0.0) return 0.0;
  // exp2 saturates to +inf for huge exponents, so the min() against the
  // cap is well-defined for any retry budget (1 << attempt would be UB
  // past 30 on 32-bit int).
  const double factor = std::exp2(static_cast<double>(std::min(attempt, 1023)));
  return std::min(options.backoff_base_s * factor, options.backoff_cap_s);
}

namespace {

constexpr std::size_t kCellsPerMatrix = static_cast<std::size_t>(kNumArchs) *
                                        kNumPrecisions * kNumFormats;

/// Per-plan-entry accounting, merged into CollectStats in plan order so
/// totals match the serial run exactly.
struct EntryStats {
  bool attempted = false;
  bool dropped_prefilter = false;
  bool dropped_all_failed = false;
  std::size_t failed_cells = 0;
  std::size_t oom_cells = 0;
  std::size_t timeout_cells = 0;
  std::size_t transient_cells = 0;
  std::size_t transient_retries = 0;

  void merge_into(CollectStats& s) const {
    s.attempted += attempted ? 1 : 0;
    s.dropped_prefilter += dropped_prefilter ? 1 : 0;
    s.dropped_all_failed += dropped_all_failed ? 1 : 0;
    s.failed_cells += failed_cells;
    s.oom_cells += oom_cells;
    s.timeout_cells += timeout_cells;
    s.transient_cells += transient_cells;
    s.transient_retries += transient_retries;

    // merge_into runs exactly once per plan entry on both the serial and
    // the parallel path, so it doubles as the registry sink. A run that
    // dies on an exception loses the unmerged tail — same as CollectStats.
    CollectMetrics& m = collect_metrics();
    if (attempted && !dropped_prefilter) m.cells_measured.add(kCellsPerMatrix);
    if (oom_cells > 0) m.cells_failed_oom.add(oom_cells);
    if (timeout_cells > 0) m.cells_failed_timeout.add(timeout_cells);
    if (transient_cells > 0) m.cells_failed_transient.add(transient_cells);
    if (transient_retries > 0) m.retries.add(transient_retries);
    if (dropped_prefilter) m.matrices_dropped_prefilter.inc();
    if (dropped_all_failed) m.matrices_dropped_all_failed.inc();
    if (attempted && !dropped_prefilter && !dropped_all_failed)
      m.matrices_kept.inc();
  }
};

void count_failed_cell(MeasurementStatus status, EntryStats& stats) {
  ++stats.failed_cells;
  switch (status) {
    case MeasurementStatus::kOom: ++stats.oom_cells; break;
    case MeasurementStatus::kTimeout: ++stats.timeout_cells; break;
    case MeasurementStatus::kTransient: ++stats.transient_cells; break;
    case MeasurementStatus::kOk: break;
  }
}

/// Measure one cell, retrying transient failures with capped exponential
/// backoff. Structural failures (OOM, timeout) return immediately. Serial
/// path only — the parallel collector requeues on the pool instead of
/// sleeping.
Measurement measure_with_retry(const MeasurementOracle& oracle,
                               const RowSummary& summary, Format f,
                               std::uint64_t seed,
                               const CollectOptions& options,
                               EntryStats& stats) {
  obs::TraceSpan span("collect.cell");
  span.arg("format", static_cast<int>(f));
  Measurement m;
  int attempts = 1;
  for (int attempt = 0;; ++attempt, ++attempts) {
    m = oracle.measure(summary, f, seed, attempt);
    if (!is_retryable(m.status) || attempt >= options.max_retries) break;
    ++stats.transient_retries;
    const double delay = backoff_delay_s(options, attempt);
    if (delay > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  span.arg("attempts", attempts).arg("ok", static_cast<int>(m.ok()));
  return m;
}

/// §IV-C as a wholesale filter, kept for the fault-free configuration
/// (the ELL image is by far the largest; 12 bytes per padded slot).
/// With faults enabled, infeasible formats fail per-cell instead.
bool prefilter_drops(const RowSummary& summary, const CollectOptions& options) {
  if (options.faults.enabled || options.format_memory_limit <= 0) return false;
  const double ell_bytes = static_cast<double>(summary.rows) *
                           static_cast<double>(summary.row_max) * 12.0;
  return ell_bytes > static_cast<double>(options.format_memory_limit);
}

std::vector<MeasurementOracle> make_oracle_set(const CollectOptions& options) {
  const auto archs = paper_testbeds();
  SPMVML_ENSURE(archs.size() == kNumArchs, "expected two testbeds");
  MeasurementConfig measurement = options.measurement;
  measurement.faults = options.faults;
  std::vector<MeasurementOracle> oracles;
  for (const auto& arch : archs)
    for (int p = 0; p < kNumPrecisions; ++p)
      oracles.emplace_back(arch, static_cast<Precision>(p), measurement,
                           options.cost);
  return oracles;
}

/// Try to restore a checkpoint matching this plan. Returns the number of
/// plan entries already processed (0 = start from scratch).
std::size_t try_resume(const CorpusPlan& plan, const CollectOptions& options,
                       LabeledCorpus& corpus) {
  if (options.checkpoint_path.empty() ||
      !std::filesystem::exists(options.checkpoint_path))
    return 0;
  try {
    std::size_t cached_plan = 0, cached_done = 0;
    std::uint64_t cached_hash = 0;
    LabeledCorpus cached = load_corpus_csv(options.checkpoint_path,
                                           &cached_plan, &cached_hash,
                                           &cached_done);
    if (cached_plan == plan.size() && cached_hash == plan_fingerprint(plan) &&
        cached_done <= plan.size() && cached.size() <= cached_done) {
      corpus.records = std::move(cached.records);
      corpus.stats.resumed_records = corpus.records.size();
      collect_metrics().resumed_records.add(corpus.records.size());
      obs::log_info("collect.resume")
          .kv("checkpoint", options.checkpoint_path)
          .kv("records", corpus.records.size())
          .kv("done", cached_done);
      return cached_done;
    }
  } catch (const Error&) {
    // Corrupt or stale checkpoint: re-collect from scratch.
  }
  return 0;
}

/// Fill the spec-derived part of a record (everything except timings).
/// Returns false when the §IV-C prefilter drops the matrix.
bool prepare_record(const GenSpec& spec, int bucket,
                    const CollectOptions& options, MatrixRecord& rec,
                    RowSummary& summary, EntryStats& stats) {
  const Csr<double> matrix = generate(spec);
  summary = summarize(matrix);
  stats.attempted = true;
  if (prefilter_drops(summary, options)) {
    stats.dropped_prefilter = true;
    return false;
  }
  rec.seed = spec.seed;
  rec.bucket = bucket;
  rec.family = static_cast<int>(spec.family);
  rec.rows = static_cast<double>(matrix.rows());
  rec.cols = static_cast<double>(matrix.cols());
  rec.nnz = static_cast<double>(matrix.nnz());
  rec.features = extract_features(matrix);
  return true;
}

LabeledCorpus collect_corpus_serial(const CorpusPlan& plan,
                                    const CollectOptions& options) {
  LabeledCorpus corpus;
  corpus.records.reserve(plan.size());
  CollectStats& stats = corpus.stats;

  const std::uint64_t fingerprint = plan_fingerprint(plan);
  const std::size_t start = try_resume(plan, options, corpus);

  // One oracle per (arch, precision); they share the cost parameters.
  const std::vector<MeasurementOracle> oracles = make_oracle_set(options);

  for (std::size_t m = start; m < plan.size(); ++m) {
    obs::TraceSpan mspan("collect.matrix");
    mspan.arg("index", static_cast<std::uint64_t>(m))
        .arg("seed", plan.specs[m].seed);
    MatrixRecord rec;
    RowSummary summary;
    EntryStats entry;
    const bool keep_measuring = prepare_record(
        plan.specs[m], plan.bucket_of[m], options, rec, summary, entry);
    if (!keep_measuring) {
      entry.merge_into(stats);
      if (options.progress) options.progress(m + 1, plan.size());
      continue;
    }

    std::size_t valid_cells = 0;
    for (int a = 0; a < kNumArchs; ++a) {
      for (int p = 0; p < kNumPrecisions; ++p) {
        const auto& oracle =
            oracles[static_cast<std::size_t>(a * kNumPrecisions + p)];
        for (int f = 0; f < kNumFormats; ++f) {
          const Measurement cell =
              measure_with_retry(oracle, summary, static_cast<Format>(f),
                                 rec.seed, options, entry);
          rec.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(f)] = cell.seconds;
          if (cell.ok())
            ++valid_cells;
          else
            count_failed_cell(cell.status, entry);
        }
      }
    }

    // A matrix is only dropped wholesale when *every* cell failed — there
    // is nothing to learn from it.
    if (valid_cells == 0)
      entry.dropped_all_failed = true;
    else
      corpus.records.push_back(rec);
    entry.merge_into(stats);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (m + 1 - start) % options.checkpoint_every == 0 &&
        m + 1 < plan.size()) {
      save_corpus_csv(options.checkpoint_path, corpus, plan.size(),
                      fingerprint, m + 1);
      collect_metrics().checkpoints.inc();
      obs::trace_instant("collect.checkpoint");
      obs::log_debug("collect.checkpoint")
          .kv("done", m + 1)
          .kv("records", corpus.records.size());
    }
    if (options.progress) options.progress(m + 1, plan.size());
  }
  stats.kept = corpus.records.size();
  if (!options.checkpoint_path.empty())
    save_corpus_csv(options.checkpoint_path, corpus, plan.size(), fingerprint,
                    plan.size());
  return corpus;
}

// ---------------------------------------------------------------------------
// Parallel collection.
//
// Each plan entry is one resumable task: generate → summarize →
// extract_features → measure all cells. When a cell needs transient-retry
// backoff the task snapshots its position (cell index + attempt) and
// requeues itself on the pool with a deadline instead of sleeping, so the
// worker immediately moves on to another matrix. Finished entries land in
// a plan-indexed slot array; the assembled corpus is therefore bitwise
// identical to the serial run for any thread count. Checkpoints cover the
// longest fully-complete prefix in plan order.

struct EntrySlot {
  MatrixRecord rec;
  bool kept = false;
  EntryStats stats;
};

struct MatrixTask {
  std::size_t index = 0;
  bool prepared = false;
  bool dropped = false;
  RowSummary summary;
  MatrixRecord rec;
  std::size_t cell = 0;  // linear over (arch, precision, format)
  int attempt = 0;
  std::size_t valid_cells = 0;
  EntryStats stats;
};

struct ParallelCollectContext {
  const CorpusPlan& plan;
  const CollectOptions& options;
  std::uint64_t fingerprint = 0;
  std::size_t start = 0;

  ThreadPool pool;
  // One oracle set per worker: task state never shares oracle storage
  // with another in-flight matrix.
  std::vector<std::vector<MeasurementOracle>> worker_oracles;

  std::mutex mu;
  std::vector<EntrySlot> slots;
  std::vector<char> entry_done;
  std::size_t prefix = 0;           // first plan index not yet complete
  std::size_t last_checkpoint = 0;  // prefix at the last checkpoint write
  std::size_t completed = 0;        // finished entries (progress reporting)
  const std::vector<MatrixRecord>* resumed_records = nullptr;
  std::exception_ptr error;
  bool cancelled = false;

  ParallelCollectContext(const CorpusPlan& p, const CollectOptions& o,
                         int threads)
      : plan(p), options(o), pool(threads) {
    for (int t = 0; t < pool.size(); ++t)
      worker_oracles.push_back(make_oracle_set(options));
  }
};

/// Snapshot the longest complete prefix into a checkpoint file. Caller
/// holds ctx.mu.
void write_prefix_checkpoint(ParallelCollectContext& ctx, std::size_t done) {
  LabeledCorpus snapshot;
  snapshot.records.reserve(ctx.resumed_records->size() + done - ctx.start);
  snapshot.records = *ctx.resumed_records;
  for (std::size_t i = ctx.start; i < done; ++i)
    if (ctx.slots[i].kept) snapshot.records.push_back(ctx.slots[i].rec);
  save_corpus_csv(ctx.options.checkpoint_path, snapshot, ctx.plan.size(),
                  ctx.fingerprint, done);
  collect_metrics().checkpoints.inc();
  obs::trace_instant("collect.checkpoint");
  obs::log_debug("collect.checkpoint")
      .kv("done", done)
      .kv("records", snapshot.records.size());
}

void finish_entry(ParallelCollectContext& ctx, const MatrixTask& task) {
  std::lock_guard<std::mutex> lock(ctx.mu);
  EntrySlot& slot = ctx.slots[task.index];
  slot.kept = task.prepared && !task.dropped && task.valid_cells > 0;
  if (slot.kept) slot.rec = task.rec;
  slot.stats = task.stats;
  ctx.entry_done[task.index] = 1;
  ++ctx.completed;

  while (ctx.prefix < ctx.plan.size() && ctx.entry_done[ctx.prefix])
    ++ctx.prefix;
  if (ctx.cancelled) return;  // draining after a failure: stay quiet
  const CollectOptions& opt = ctx.options;
  if (!opt.checkpoint_path.empty() && opt.checkpoint_every > 0 &&
      ctx.prefix < ctx.plan.size() && ctx.prefix > ctx.last_checkpoint &&
      (ctx.prefix - ctx.start) / opt.checkpoint_every >
          (ctx.last_checkpoint - ctx.start) / opt.checkpoint_every) {
    ctx.last_checkpoint = ctx.prefix;
    write_prefix_checkpoint(ctx, ctx.prefix);
  }
  // Serialized under the lock; `done` is monotonic exactly like the
  // serial path's (m + 1).
  if (opt.progress) opt.progress(ctx.start + ctx.completed, ctx.plan.size());
}

void run_matrix_task(ParallelCollectContext& ctx,
                     const std::shared_ptr<MatrixTask>& task) {
  try {
    {
      std::lock_guard<std::mutex> lock(ctx.mu);
      // After a failure, never-started entries drain as no-ops, but
      // entries with partial progress (including ones parked in backoff)
      // run to completion so the longest-prefix checkpoint is maximal.
      if (ctx.cancelled && !task->prepared) return;
    }
    // One span per task *segment*: a matrix parked for backoff shows as
    // several collect.matrix slices with the requeue gap between them.
    obs::TraceSpan mspan("collect.matrix");
    mspan.arg("index", static_cast<std::uint64_t>(task->index));
    if (!task->prepared) {
      const std::size_t m = task->index;
      task->dropped =
          !prepare_record(ctx.plan.specs[m], ctx.plan.bucket_of[m],
                          ctx.options, task->rec, task->summary, task->stats);
      task->prepared = true;
      if (task->dropped) {
        finish_entry(ctx, *task);
        return;
      }
    }

    const int wi = ThreadPool::worker_index();
    const auto& oracles =
        ctx.worker_oracles[wi >= 0 ? static_cast<std::size_t>(wi) : 0];
    while (task->cell < kCellsPerMatrix) {
      const auto machine = task->cell / kNumFormats;
      const int f = static_cast<int>(task->cell % kNumFormats);
      Measurement cell;
      {
        obs::TraceSpan cspan("collect.cell");
        cspan.arg("format", f).arg("attempt", task->attempt);
        cell = oracles[machine].measure(task->summary, static_cast<Format>(f),
                                        task->rec.seed, task->attempt);
        cspan.arg("ok", static_cast<int>(cell.ok()));
      }
      if (is_retryable(cell.status) &&
          task->attempt < ctx.options.max_retries) {
        ++task->stats.transient_retries;
        const double delay = backoff_delay_s(ctx.options, task->attempt);
        ++task->attempt;
        if (delay > 0.0) {
          // Yield the worker: park this matrix until the deadline and let
          // the pool run other entries meanwhile.
          obs::trace_instant("collect.backoff_requeue");
          obs::log_debug("collect.backoff_requeue")
              .kv("index", static_cast<std::uint64_t>(task->index))
              .kv("cell", static_cast<std::uint64_t>(task->cell))
              .kv("delay_s", delay);
          auto self = task;
          ctx.pool.submit_after(
              delay, [&ctx, self] { run_matrix_task(ctx, self); });
          return;
        }
        continue;  // backoff disabled: retry in place
      }
      const auto a = machine / kNumPrecisions;
      const auto p = machine % kNumPrecisions;
      task->rec.seconds[a][p][static_cast<std::size_t>(f)] = cell.seconds;
      if (cell.ok())
        ++task->valid_cells;
      else
        count_failed_cell(cell.status, task->stats);
      task->attempt = 0;
      ++task->cell;
    }
    finish_entry(ctx, *task);
  } catch (...) {
    std::lock_guard<std::mutex> lock(ctx.mu);
    if (!ctx.error) ctx.error = std::current_exception();
    ctx.cancelled = true;
  }
}

LabeledCorpus collect_corpus_parallel(const CorpusPlan& plan,
                                      const CollectOptions& options,
                                      int threads) {
  LabeledCorpus corpus;
  corpus.records.reserve(plan.size());

  ParallelCollectContext ctx(plan, options, threads);
  ctx.fingerprint = plan_fingerprint(plan);
  ctx.start = try_resume(plan, options, corpus);
  ctx.resumed_records = &corpus.records;
  ctx.slots.resize(plan.size());
  ctx.entry_done.assign(plan.size(), 0);
  // Entries restored from the checkpoint count as complete.
  for (std::size_t i = 0; i < ctx.start; ++i) ctx.entry_done[i] = 1;
  ctx.prefix = ctx.start;
  ctx.last_checkpoint = ctx.start;

  for (std::size_t m = ctx.start; m < plan.size(); ++m) {
    auto task = std::make_shared<MatrixTask>();
    task->index = m;
    ctx.pool.submit([&ctx, task] { run_matrix_task(ctx, task); });
  }
  ctx.pool.wait_idle();
  if (ctx.error) {
    // A "killed" run still leaves the longest fully-complete prefix on
    // disk, so the next invocation resumes instead of starting over.
    // In-flight tasks kept finishing after the failure (only queued work
    // is drained), so ctx.prefix reflects everything completed.
    if (!options.checkpoint_path.empty() && ctx.prefix > ctx.start)
      write_prefix_checkpoint(ctx, ctx.prefix);
    std::rethrow_exception(ctx.error);
  }

  // Deterministic assembly: records and stats merge in plan order, never
  // in completion order.
  CollectStats& stats = corpus.stats;
  for (std::size_t i = ctx.start; i < plan.size(); ++i) {
    const EntrySlot& slot = ctx.slots[i];
    slot.stats.merge_into(stats);
    if (slot.kept) corpus.records.push_back(slot.rec);
  }
  stats.kept = corpus.records.size();
  if (!options.checkpoint_path.empty())
    save_corpus_csv(options.checkpoint_path, corpus, plan.size(),
                    ctx.fingerprint, plan.size());
  return corpus;
}

}  // namespace

LabeledCorpus collect_corpus(const CorpusPlan& plan,
                             const CollectOptions& options) {
  const int threads = options.threads > 0 ? options.threads : thread_count();
  obs::TraceSpan span("collect.corpus");
  span.arg("matrices", static_cast<std::uint64_t>(plan.size()))
      .arg("threads", threads);
  obs::log_info("collect.start")
      .kv("matrices", plan.size())
      .kv("threads", threads)
      .kv("faults", options.faults.enabled);
  WallTimer timer;
  LabeledCorpus corpus = threads <= 1
                             ? collect_corpus_serial(plan, options)
                             : collect_corpus_parallel(plan, options, threads);
  obs::log_info("collect.done")
      .kv("wall_s", timer.seconds())
      .kv("kept", corpus.stats.kept)
      .kv("failed_cells", corpus.stats.failed_cells)
      .kv("retries", corpus.stats.transient_retries)
      .kv("resumed", corpus.stats.resumed_records);
  return corpus;
}

void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size, std::uint64_t plan_hash,
                     std::size_t done) {
  // Write to a temp file and rename so a kill mid-write never leaves a
  // truncated checkpoint behind (rename within a directory is atomic).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "cannot open " + tmp + " for writing");
    out << "# spmvml oracle v" << kOracleVersion << " plan " << plan_size
        << " hash " << plan_hash << " done " << done << '\n';
    out << "seed,bucket,family,rows,cols,nnz";
    for (int f = 0; f < kNumFeatures; ++f) out << ',' << feature_name(f);
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          out << ",t_a" << a << "p" << p << "f" << f;
    out << '\n';
    out.precision(17);
    for (const auto& r : corpus.records) {
      out << r.seed << ',' << r.bucket << ',' << r.family << ',' << r.rows
          << ',' << r.cols << ',' << r.nnz;
      for (int f = 0; f < kNumFeatures; ++f) out << ',' << r.features[f];
      for (int a = 0; a < kNumArchs; ++a)
        for (int p = 0; p < kNumPrecisions; ++p)
          for (int f = 0; f < kNumFormats; ++f) {
            const double t = r.seconds[static_cast<std::size_t>(a)]
                                      [static_cast<std::size_t>(p)]
                                      [static_cast<std::size_t>(f)];
            // Failed cells round-trip as the literal "nan".
            if (std::isfinite(t))
              out << ',' << t;
            else
              out << ",nan";
          }
      out << '\n';
    }
    SPMVML_ENSURE_CAT(out.good(), ErrorCategory::kIo,
                      "write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size) {
  save_corpus_csv(path, corpus, plan_size, 0, plan_size);
}

namespace {

/// Zero-allocation cursor over one CSV line: std::from_chars directly on
/// the raw character range. Checkpoints re-read the whole cache on every
/// resume, so row parsing is a measurable startup cost; from_chars is
/// several times faster than istringstream + std::stod and still
/// round-trips precision-17 doubles, "nan" cells and integer seeds
/// exactly.
class CsvCursor {
 public:
  explicit CsvCursor(const std::string& line)
      : p_(line.data()), end_(line.data() + line.size()) {}

  double next_double() { return next<double>(); }
  std::uint64_t next_u64() { return next<std::uint64_t>(); }

 private:
  template <typename T>
  T next() {
    if (!first_) {
      SPMVML_ENSURE_CAT(p_ < end_ && *p_ == ',', ErrorCategory::kParse,
                        "truncated CSV row");
      ++p_;
    }
    first_ = false;
    T value{};
    const auto [ptr, ec] = std::from_chars(p_, end_, value);
    SPMVML_ENSURE_CAT(ec == std::errc{}, ErrorCategory::kParse,
                      "bad CSV cell");
    p_ = ptr;
    return value;
  }

  const char* p_;
  const char* end_;
  bool first_ = true;
};

}  // namespace

LabeledCorpus load_corpus_csv(const std::string& path,
                              std::size_t* cached_plan_size,
                              std::uint64_t* cached_plan_hash,
                              std::size_t* cached_done) {
  std::ifstream in(path);
  SPMVML_ENSURE_CAT(in.good(), ErrorCategory::kIo, "cannot open " + path);
  std::string line;
  SPMVML_ENSURE_CAT(static_cast<bool>(std::getline(in, line)),
                    ErrorCategory::kParse, "empty CSV");
  const std::string prefix =
      "# spmvml oracle v" + std::to_string(kOracleVersion) + " plan ";
  SPMVML_ENSURE_CAT(line.rfind(prefix, 0) == 0, ErrorCategory::kParse,
                    "corpus cache written by a different oracle version — "
                    "delete " + path);
  {
    const char* p = line.data() + prefix.size();
    const char* end = line.data() + line.size();
    std::size_t plan_size = 0, done = 0;
    std::uint64_t hash = 0;
    auto field = [&](const char* keyword, auto& value) -> bool {
      if (keyword != nullptr) {
        while (p < end && *p == ' ') ++p;
        const std::size_t klen = std::strlen(keyword);
        if (end - p < static_cast<std::ptrdiff_t>(klen) ||
            std::string_view(p, klen) != keyword)
          return false;
        p += klen;
        while (p < end && *p == ' ') ++p;
      }
      const auto [ptr, ec] = std::from_chars(p, end, value);
      p = ptr;
      return ec == std::errc{};
    };
    SPMVML_ENSURE_CAT(field(nullptr, plan_size) && field("hash", hash) &&
                          field("done", done),
                      ErrorCategory::kParse,
                      "corpus cache header malformed — delete " + path);
    if (cached_plan_size != nullptr) *cached_plan_size = plan_size;
    if (cached_plan_hash != nullptr) *cached_plan_hash = hash;
    if (cached_done != nullptr) *cached_done = done;
  }
  SPMVML_ENSURE_CAT(static_cast<bool>(std::getline(in, line)),
                    ErrorCategory::kParse, "missing CSV header");

  LabeledCorpus corpus;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CsvCursor row(line);
    MatrixRecord r;
    // Seed must round-trip exactly — parse as integer, not double.
    r.seed = row.next_u64();
    r.bucket = static_cast<int>(row.next_double());
    r.family = static_cast<int>(row.next_double());
    r.rows = row.next_double();
    r.cols = row.next_double();
    r.nnz = row.next_double();
    for (int f = 0; f < kNumFeatures; ++f)
      r.features.values[static_cast<std::size_t>(f)] = row.next_double();
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (int f = 0; f < kNumFormats; ++f)
          r.seconds[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)]
                   [static_cast<std::size_t>(f)] = row.next_double();
    corpus.records.push_back(r);
  }
  return corpus;
}

LabeledCorpus load_or_collect(const std::string& cache_path,
                              const CorpusPlan& plan,
                              const CollectOptions& options) {
  if (std::filesystem::exists(cache_path)) {
    try {
      std::size_t cached_plan = 0, cached_done = 0;
      std::uint64_t cached_hash = 0;
      LabeledCorpus cached = load_corpus_csv(cache_path, &cached_plan,
                                             &cached_hash, &cached_done);
      if (cached_plan == plan.size() &&
          cached_hash == plan_fingerprint(plan) &&
          cached_done == plan.size()) {
        collect_metrics().cache_hits.inc();
        obs::log_info("collect.cache_hit")
            .kv("path", cache_path)
            .kv("records", cached.size());
        return cached;
      }
      // Plan changed (different SPMVML_CORPUS_SCALE / seed / contents) or
      // the cache is a partial checkpoint: fall through to collection,
      // which resumes matching checkpoints by itself.
    } catch (const Error&) {
      // Stale or corrupt cache (e.g. oracle version bump): re-collect.
    }
  }
  CollectOptions opts = options;
  if (opts.checkpoint_path.empty()) opts.checkpoint_path = cache_path;
  return collect_corpus(plan, opts);
}

}  // namespace spmvml
