#include "core/format_selector.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "ml/serialize.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace spmvml {

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDecisionTree: return "decs. tree";
    case ModelKind::kSvm: return "SVM";
    case ModelKind::kMlp: return "MLP";
    case ModelKind::kXgboost: return "XGBST";
    case ModelKind::kMlpEnsemble: return "MLP ens.";
  }
  SPMVML_ENSURE(false, "unreachable: invalid ModelKind");
  return "";
}

ml::ClassifierPtr make_classifier(ModelKind kind, bool fast) {
  switch (kind) {
    case ModelKind::kDecisionTree: {
      ml::TreeParams p;
      p.max_depth = 16;
      p.min_samples_leaf = 2;
      return std::make_unique<ml::DecisionTreeClassifier>(p);
    }
    case ModelKind::kSvm: {
      ml::SvmParams p;  // tuned defaults: C=10, gamma=0.1 (see §IV-D grid)
      if (fast) p.max_iters = 4000;
      return std::make_unique<ml::SvmClassifier>(p);
    }
    case ModelKind::kMlp: {
      ml::MlpParams p;
      p.epochs = fast ? 15 : 60;
      return std::make_unique<ml::MlpClassifier>(p);
    }
    case ModelKind::kXgboost: {
      ml::GbtParams p;
      p.n_estimators = fast ? 40 : 150;
      p.max_depth = 6;
      p.learning_rate = 0.1;
      return std::make_unique<ml::GbtClassifier>(p);
    }
    case ModelKind::kMlpEnsemble: {
      ml::MlpParams p;
      p.epochs = fast ? 15 : 60;
      return std::make_unique<ml::MlpEnsembleClassifier>(p, fast ? 3 : 5);
    }
  }
  SPMVML_ENSURE(false, "unreachable: invalid ModelKind");
  return nullptr;
}

FormatSelector::FormatSelector(ModelKind kind, FeatureSet feature_set,
                               std::span<const Format> candidates, bool fast)
    : kind_(kind),
      feature_set_(feature_set),
      candidates_(candidates.begin(), candidates.end()),
      model_(make_classifier(kind, fast)) {
  SPMVML_ENSURE(!candidates_.empty(), "need candidate formats");
}

void FormatSelector::fit(const ml::Matrix& x, const std::vector<int>& labels) {
  model_->fit(x, labels);
}

void FormatSelector::fit(const LabeledCorpus& corpus, int arch,
                         Precision prec) {
  const auto study = make_classification_study(corpus, arch, prec,
                                               candidates_, feature_set_);
  fit(study.data.x, study.data.labels);
}

int FormatSelector::predict_label(
    const std::vector<double>& selected_features) const {
  return model_->predict(selected_features);
}

Format FormatSelector::select(const FeatureVector& features) const {
  const int label = predict_label(features.select(feature_set_));
  SPMVML_ENSURE(label >= 0 && label < static_cast<int>(candidates_.size()),
                "classifier produced out-of-range label");
  const Format chosen = candidates_[static_cast<std::size_t>(label)];
  // Per-format serving counts (serve.select.CSR, serve.select.ELL, ...):
  // the live distribution a deployed selector hands out.
  obs::MetricsRegistry::global()
      .counter(std::string("serve.select.") + format_name(chosen))
      .inc();
  return chosen;
}

Format FormatSelector::select(const Csr<double>& matrix) const {
  return select(extract_features(matrix));
}

Selection FormatSelector::select_feasible(const FeatureVector& features,
                                          const FeasibilityFn& feasible) const {
  SPMVML_ENSURE(static_cast<bool>(feasible), "null feasibility predicate");
  Selection result;
  result.predicted = select(features);
  result.format = result.predicted;
  if (feasible(result.predicted)) return result;

  // Fall back to the feasible candidate the classifier likes best.
  const auto proba = model_->predict_proba(features.select(feature_set_));
  double best_p = -1.0;
  bool found = false;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (!feasible(candidates_[i])) continue;
    const double p = i < proba.size() ? proba[i] : 0.0;
    if (!found || p > best_p) {
      best_p = p;
      result.format = candidates_[i];
      found = true;
    }
  }
  if (!found) {
    // CSR is the always-feasible floor: its arrays ARE the input matrix,
    // so if CSR does not fit, no selection can run at all.
    const auto csr = std::find(candidates_.begin(), candidates_.end(),
                               Format::kCsr);
    SPMVML_ENSURE_CAT(csr != candidates_.end(),
                      ErrorCategory::kInfeasibleFormat,
                      "no candidate format is feasible under the given "
                      "constraints");
    result.format = Format::kCsr;
  }
  result.fallback = true;
  obs::MetricsRegistry::global().counter("serve.fallback").inc();
  obs::log_warn("serve.fallback")
      .kv("predicted", format_name(result.predicted))
      .kv("served", format_name(result.format));
  return result;
}

Selection FormatSelector::select_feasible(const Csr<double>& matrix,
                                          const FeasibilityFn& feasible) const {
  return select_feasible(extract_features(matrix), feasible);
}

void FormatSelector::save(std::ostream& out) const {
  // Serialize the payload aside, then wrap it in the checksummed model
  // envelope — loaders verify integrity before parsing a single token.
  std::ostringstream payload;
  ml::io::write_tag(payload, "format_selector");
  ml::io::write_scalar(payload, static_cast<int>(kind_));
  ml::io::write_scalar(payload, static_cast<int>(feature_set_));
  std::vector<int> cands;
  for (Format f : candidates_) cands.push_back(static_cast<int>(f));
  ml::io::write_vector(payload, cands);
  model_->save(payload);
  ml::io::write_envelope(out, "format_selector", candidates_.size(),
                         payload.str());
}

FormatSelector FormatSelector::load_selector(std::istream& raw) {
  std::size_t entries = 0;
  std::istringstream in(ml::io::read_envelope(raw, "format_selector",
                                              &entries));
  ml::io::read_tag(in, "format_selector");
  const int kind = ml::io::read_scalar<int>(in);
  SPMVML_ENSURE_CAT(kind >= 0 && kind < kNumModelKinds,
                    ErrorCategory::kModelFormat, "bad model kind");
  const int set = ml::io::read_scalar<int>(in);
  SPMVML_ENSURE_CAT(set >= 0 && set < kNumFeatureSets,
                    ErrorCategory::kModelFormat, "bad feature set");
  const auto cands = ml::io::read_vector<int>(in);
  std::vector<Format> formats;
  for (int c : cands) {
    SPMVML_ENSURE_CAT(c >= 0 && c < kNumFormats, ErrorCategory::kModelFormat,
                      "bad candidate format");
    formats.push_back(static_cast<Format>(c));
  }
  SPMVML_ENSURE_CAT(formats.size() == entries, ErrorCategory::kModelFormat,
                    "header/payload candidate count mismatch");
  FormatSelector selector(static_cast<ModelKind>(kind),
                          static_cast<FeatureSet>(set), formats);
  selector.model_->load(in);
  return selector;
}

}  // namespace spmvml
