// Performance modeling (§VI): predict SpMV execution time per format.
//
// Two shapes, as in the paper:
//  * per-format models (§VI-B) — one regressor per storage format;
//  * a joint model (§VI-A)      — one regressor over (features ⊕ format
//    one-hot) samples covering all formats at once.
// Regressors train on log10(seconds); predictions are returned in seconds.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>

#include "core/study.hpp"
#include "ml/model.hpp"

namespace spmvml {

/// Regressor families used in §VI.
enum class RegressorKind : int {
  kMlp = 0,
  kMlpEnsemble = 1,
  kXgboost = 2,
  kDecisionTree = 3,
};

const char* regressor_name(RegressorKind kind);

/// Untrained regressor with tuned defaults; `fast` shrinks effort.
ml::RegressorPtr make_regressor(RegressorKind kind, bool fast = false);

/// Per-format performance model.
class PerfModel {
 public:
  PerfModel(RegressorKind kind, FeatureSet feature_set,
            std::span<const Format> formats, bool fast = false);

  void fit(const LabeledCorpus& corpus, int arch, Precision prec);

  /// Online refit from raw samples (the serving learning loop):
  /// x_per_format[i] / y_per_format[i] are the design matrix and
  /// log10(seconds) regression targets for formats()[i]. Feature rows
  /// must already be projected onto feature_set(); every modeled format
  /// needs at least one sample. All regressors are fitted off to the
  /// side and swapped in together, so a throwing fit leaves the model
  /// unchanged.
  void fit_samples(const std::vector<ml::Matrix>& x_per_format,
                   const std::vector<std::vector<double>>& y_per_format);

  /// Predicted SpMV seconds for `format` on a matrix with `features`.
  double predict_seconds(const FeatureVector& features, Format format) const;

  /// Predicted seconds for every modeled format (order = formats()).
  std::vector<double> predict_all(const FeatureVector& features) const;

  std::span<const Format> formats() const { return formats_; }
  FeatureSet feature_set() const { return feature_set_; }

  /// Persist the fitted per-format regressors; load_model() restores an
  /// inference-ready copy.
  void save(std::ostream& out) const;
  static PerfModel load_model(std::istream& in);

 private:
  RegressorKind kind_;
  FeatureSet feature_set_;
  std::vector<Format> formats_;
  bool fast_;
  std::vector<ml::RegressorPtr> models_;  // parallel to formats_
};

/// Joint model over (features ⊕ format one-hot).
class JointPerfModel {
 public:
  JointPerfModel(RegressorKind kind, FeatureSet feature_set,
                 std::span<const Format> formats, bool fast = false);

  void fit(const LabeledCorpus& corpus, int arch, Precision prec);

  double predict_seconds(const FeatureVector& features, Format format) const;

  std::span<const Format> formats() const { return formats_; }

 private:
  RegressorKind kind_;
  FeatureSet feature_set_;
  std::vector<Format> formats_;
  ml::RegressorPtr model_;
};

}  // namespace spmvml
