#include "core/study.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/obs/trace.hpp"

namespace spmvml {

double seconds_to_regression_target(double seconds) {
  SPMVML_ENSURE(seconds > 0.0, "non-positive time");
  // Times span ~5 decades; training on log10 keeps MSE meaningful across
  // the range (ablated in bench/ablation_oracle).
  return std::log10(seconds);
}

double regression_target_to_seconds(double target) {
  return std::pow(10.0, target);
}

ClassificationStudy make_classification_study(
    const LabeledCorpus& corpus, int arch, Precision prec,
    std::span<const Format> candidates, FeatureSet feature_set,
    bool drop_coo_best) {
  SPMVML_ENSURE(!candidates.empty(), "no candidate formats");
  obs::TraceSpan span("study.classification");
  span.arg("records", static_cast<std::uint64_t>(corpus.records.size()));
  ClassificationStudy study;
  study.candidates.assign(candidates.begin(), candidates.end());
  for (const auto& rec : corpus.records) {
    if (drop_coo_best) {
      // §V-A: skip matrices where COO wins outright over every format.
      bool coo_best = rec.valid(arch, prec, Format::kCoo);
      const double coo_t = rec.time(arch, prec, Format::kCoo);
      for (Format f : kAllFormats)
        if (f != Format::kCoo && rec.valid(arch, prec, f) &&
            rec.time(arch, prec, f) < coo_t)
          coo_best = false;
      if (coo_best) continue;
    }
    // Partial labels: the best-format label only considers formats that
    // measured successfully; matrices where *every* candidate failed
    // carry no label and are skipped.
    const int label = rec.best_among(arch, prec, candidates);
    if (label < 0) continue;
    study.data.x.push_back(rec.features.select(feature_set));
    study.data.labels.push_back(label);
    std::vector<double> row_times;
    row_times.reserve(candidates.size());
    for (Format f : candidates)
      row_times.push_back(rec.valid(arch, prec, f)
                              ? rec.time(arch, prec, f)
                              : std::numeric_limits<double>::infinity());
    study.times.push_back(std::move(row_times));
  }
  study.data.validate();
  return study;
}

RegressionStudy make_joint_regression_study(const LabeledCorpus& corpus,
                                            int arch, Precision prec,
                                            std::span<const Format> formats,
                                            FeatureSet feature_set) {
  SPMVML_ENSURE(!formats.empty(), "no formats");
  obs::TraceSpan span("study.joint_regression");
  span.arg("records", static_cast<std::uint64_t>(corpus.records.size()));
  RegressionStudy study;
  for (const auto& rec : corpus.records) {
    const auto base = rec.features.select(feature_set);
    for (std::size_t fi = 0; fi < formats.size(); ++fi) {
      // Partial labels: failed cells contribute no regression sample.
      if (!rec.valid(arch, prec, formats[fi])) continue;
      std::vector<double> x = base;
      for (std::size_t k = 0; k < formats.size(); ++k)
        x.push_back(k == fi ? 1.0 : 0.0);  // format one-hot
      const double t = rec.time(arch, prec, formats[fi]);
      study.data.x.push_back(std::move(x));
      study.data.targets.push_back(seconds_to_regression_target(t));
      study.seconds.push_back(t);
    }
  }
  study.data.validate();
  return study;
}

RegressionStudy make_format_regression_study(const LabeledCorpus& corpus,
                                             int arch, Precision prec,
                                             Format format,
                                             FeatureSet feature_set) {
  obs::TraceSpan span("study.format_regression");
  span.arg("format", format_name(format))
      .arg("records", static_cast<std::uint64_t>(corpus.records.size()));
  RegressionStudy study;
  for (const auto& rec : corpus.records) {
    if (!rec.valid(arch, prec, format)) continue;
    const double t = rec.time(arch, prec, format);
    study.data.x.push_back(rec.features.select(feature_set));
    study.data.targets.push_back(seconds_to_regression_target(t));
    study.seconds.push_back(t);
  }
  study.data.validate();
  return study;
}

CooCensus coo_census(const LabeledCorpus& corpus, int arch, Precision prec) {
  CooCensus census;
  census.total = corpus.size();
  double penalty_sum = 0.0;
  std::size_t penalty_count = 0;
  for (const auto& rec : corpus.records) {
    // Records whose COO cell failed cannot be COO-best.
    if (!rec.valid(arch, prec, Format::kCoo)) continue;
    const double coo_t = rec.time(arch, prec, Format::kCoo);
    double best_other = std::numeric_limits<double>::infinity();
    for (Format f : kAllFormats)
      if (f != Format::kCoo && rec.valid(arch, prec, f))
        best_other = std::min(best_other, rec.time(arch, prec, f));
    if (coo_t < best_other) {
      ++census.coo_best_all;
      if (std::isfinite(best_other)) {
        penalty_sum += best_other / coo_t;
        ++penalty_count;
      }
    }
    double best_basic = std::numeric_limits<double>::infinity();
    for (Format f : kBasicFormats)
      if (rec.valid(arch, prec, f))
        best_basic = std::min(best_basic, rec.time(arch, prec, f));
    if (coo_t < best_basic) ++census.coo_best_basic4;
  }
  census.mean_exclusion_penalty =
      penalty_count > 0 ? penalty_sum / static_cast<double>(penalty_count)
                        : 1.0;
  return census;
}

}  // namespace spmvml
