#include "core/tuning.hpp"

#include "common/error.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace spmvml {

std::vector<ml::ParamPoint> paper_grid(ModelKind kind, bool fast) {
  std::map<std::string, std::vector<double>> axes;
  switch (kind) {
    case ModelKind::kXgboost:
      axes = {{"n_estimators", {50, 100, 200, 500}},
              {"max_depth", {32, 64, 128}},
              {"learning_rate", {0.1, 0.01}}};
      break;
    case ModelKind::kSvm:
      axes = {{"C", {100, 1000, 10000}}, {"gamma", {0.1, 0.01, 0.001}}};
      break;
    case ModelKind::kDecisionTree:
      axes = {{"max_depth", {8, 16, 32}}, {"min_samples_leaf", {1, 2, 8}}};
      break;
    case ModelKind::kMlp:
    case ModelKind::kMlpEnsemble:
      axes = {{"epochs", {30, 60}}, {"learning_rate", {1e-3, 3e-4}}};
      break;
  }
  if (fast) {
    for (auto& [name, values] : axes) {
      (void)name;
      values.resize(std::min<std::size_t>(values.size(), 2));
    }
  }
  return ml::make_grid(axes);
}

ml::ClassifierPtr make_classifier_with(ModelKind kind,
                                       const ml::ParamPoint& params) {
  auto get = [&](const char* name, double fallback) {
    const auto it = params.find(name);
    return it == params.end() ? fallback : it->second;
  };
  switch (kind) {
    case ModelKind::kXgboost: {
      ml::GbtParams p;
      p.n_estimators = static_cast<int>(get("n_estimators", 150));
      p.max_depth = static_cast<int>(get("max_depth", 6));
      p.learning_rate = get("learning_rate", 0.1);
      return std::make_unique<ml::GbtClassifier>(p);
    }
    case ModelKind::kSvm: {
      ml::SvmParams p;
      p.c = get("C", 10.0);
      p.gamma = get("gamma", 0.1);
      return std::make_unique<ml::SvmClassifier>(p);
    }
    case ModelKind::kDecisionTree: {
      ml::TreeParams p;
      p.max_depth = static_cast<int>(get("max_depth", 16));
      p.min_samples_leaf = static_cast<int>(get("min_samples_leaf", 2));
      return std::make_unique<ml::DecisionTreeClassifier>(p);
    }
    case ModelKind::kMlp: {
      ml::MlpParams p;
      p.epochs = static_cast<int>(get("epochs", 60));
      p.learning_rate = get("learning_rate", 1e-3);
      return std::make_unique<ml::MlpClassifier>(p);
    }
    case ModelKind::kMlpEnsemble: {
      ml::MlpParams p;
      p.epochs = static_cast<int>(get("epochs", 60));
      p.learning_rate = get("learning_rate", 1e-3);
      return std::make_unique<ml::MlpEnsembleClassifier>(p, 5);
    }
  }
  SPMVML_ENSURE(false, "unreachable: invalid ModelKind");
  return nullptr;
}

ml::GridSearchResult tune_classifier(ModelKind kind, const ml::Dataset& data,
                                     int folds, std::uint64_t seed,
                                     bool fast) {
  return ml::grid_search_classifier(
      [kind](const ml::ParamPoint& point) {
        return make_classifier_with(kind, point);
      },
      paper_grid(kind, fast), data, folds, seed);
}

}  // namespace spmvml
