#include "core/perf_model.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "ml/serialize.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/mlp.hpp"

namespace spmvml {

const char* regressor_name(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kMlp: return "MLP regressor";
    case RegressorKind::kMlpEnsemble: return "MLP Ensemble Regressor";
    case RegressorKind::kXgboost: return "XGBST regressor";
    case RegressorKind::kDecisionTree: return "decs. tree regressor";
  }
  SPMVML_ENSURE(false, "unreachable: invalid RegressorKind");
  return "";
}

ml::RegressorPtr make_regressor(RegressorKind kind, bool fast) {
  switch (kind) {
    case RegressorKind::kMlp: {
      ml::MlpParams p;
      p.epochs = fast ? 15 : 60;
      return std::make_unique<ml::MlpRegressor>(p);
    }
    case RegressorKind::kMlpEnsemble: {
      ml::MlpParams p;
      p.epochs = fast ? 15 : 50;
      return std::make_unique<ml::MlpEnsembleRegressor>(p, fast ? 3 : 5);
    }
    case RegressorKind::kXgboost: {
      ml::GbtParams p;
      p.n_estimators = fast ? 40 : 200;
      p.max_depth = 6;
      return std::make_unique<ml::GbtRegressor>(p);
    }
    case RegressorKind::kDecisionTree: {
      ml::TreeParams p;
      p.max_depth = 16;
      p.min_samples_leaf = 2;
      return std::make_unique<ml::DecisionTreeRegressor>(p);
    }
  }
  SPMVML_ENSURE(false, "unreachable: invalid RegressorKind");
  return nullptr;
}

PerfModel::PerfModel(RegressorKind kind, FeatureSet feature_set,
                     std::span<const Format> formats, bool fast)
    : kind_(kind),
      feature_set_(feature_set),
      formats_(formats.begin(), formats.end()),
      fast_(fast) {
  SPMVML_ENSURE(!formats_.empty(), "need formats");
}

void PerfModel::fit(const LabeledCorpus& corpus, int arch, Precision prec) {
  models_.clear();
  for (Format f : formats_) {
    const auto study =
        make_format_regression_study(corpus, arch, prec, f, feature_set_);
    auto model = make_regressor(kind_, fast_);
    model->fit(study.data.x, study.data.targets);
    models_.push_back(std::move(model));
  }
}

void PerfModel::fit_samples(
    const std::vector<ml::Matrix>& x_per_format,
    const std::vector<std::vector<double>>& y_per_format) {
  SPMVML_ENSURE(x_per_format.size() == formats_.size() &&
                    y_per_format.size() == formats_.size(),
                "fit_samples: one sample set per modeled format");
  std::vector<ml::RegressorPtr> models;
  models.reserve(formats_.size());
  for (std::size_t i = 0; i < formats_.size(); ++i) {
    SPMVML_ENSURE(!x_per_format[i].empty() &&
                      x_per_format[i].size() == y_per_format[i].size(),
                  std::string("fit_samples: need samples for ") +
                      format_name(formats_[i]));
    auto model = make_regressor(kind_, fast_);
    model->fit(x_per_format[i], y_per_format[i]);
    models.push_back(std::move(model));
  }
  models_ = std::move(models);
}

double PerfModel::predict_seconds(const FeatureVector& features,
                                  Format format) const {
  const auto it = std::find(formats_.begin(), formats_.end(), format);
  SPMVML_ENSURE(it != formats_.end(), "format not modeled");
  const auto idx = static_cast<std::size_t>(it - formats_.begin());
  SPMVML_ENSURE(idx < models_.size(), "model not fitted");
  const double target = models_[idx]->predict(features.select(feature_set_));
  return regression_target_to_seconds(target);
}

std::vector<double> PerfModel::predict_all(
    const FeatureVector& features) const {
  std::vector<double> out;
  out.reserve(formats_.size());
  for (Format f : formats_) out.push_back(predict_seconds(features, f));
  return out;
}

void PerfModel::save(std::ostream& out) const {
  SPMVML_ENSURE(models_.size() == formats_.size(), "model not fitted");
  std::ostringstream payload;
  ml::io::write_tag(payload, "perf_model");
  ml::io::write_scalar(payload, static_cast<int>(kind_));
  ml::io::write_scalar(payload, static_cast<int>(feature_set_));
  std::vector<int> fmts;
  for (Format f : formats_) fmts.push_back(static_cast<int>(f));
  ml::io::write_vector(payload, fmts);
  for (const auto& model : models_) model->save(payload);
  ml::io::write_envelope(out, "perf_model", formats_.size(), payload.str());
}

PerfModel PerfModel::load_model(std::istream& raw) {
  std::size_t entries = 0;
  std::istringstream in(ml::io::read_envelope(raw, "perf_model", &entries));
  ml::io::read_tag(in, "perf_model");
  const int kind = ml::io::read_scalar<int>(in);
  SPMVML_ENSURE_CAT(
      kind >= 0 && kind <= static_cast<int>(RegressorKind::kDecisionTree),
      ErrorCategory::kModelFormat, "bad regressor kind");
  const int set = ml::io::read_scalar<int>(in);
  SPMVML_ENSURE_CAT(set >= 0 && set < kNumFeatureSets,
                    ErrorCategory::kModelFormat, "bad feature set");
  const auto fmts = ml::io::read_vector<int>(in);
  std::vector<Format> formats;
  for (int f : fmts) {
    SPMVML_ENSURE_CAT(f >= 0 && f < kNumFormats, ErrorCategory::kModelFormat,
                      "bad format");
    formats.push_back(static_cast<Format>(f));
  }
  SPMVML_ENSURE_CAT(formats.size() == entries, ErrorCategory::kModelFormat,
                    "header/payload format count mismatch");
  PerfModel model(static_cast<RegressorKind>(kind),
                  static_cast<FeatureSet>(set), formats);
  for (std::size_t i = 0; i < formats.size(); ++i) {
    model.models_.push_back(make_regressor(model.kind_, false));
    model.models_.back()->load(in);
  }
  return model;
}

JointPerfModel::JointPerfModel(RegressorKind kind, FeatureSet feature_set,
                               std::span<const Format> formats, bool fast)
    : kind_(kind),
      feature_set_(feature_set),
      formats_(formats.begin(), formats.end()),
      model_(make_regressor(kind, fast)) {
  SPMVML_ENSURE(!formats_.empty(), "need formats");
}

void JointPerfModel::fit(const LabeledCorpus& corpus, int arch,
                         Precision prec) {
  const auto study = make_joint_regression_study(corpus, arch, prec, formats_,
                                                 feature_set_);
  model_->fit(study.data.x, study.data.targets);
}

double JointPerfModel::predict_seconds(const FeatureVector& features,
                                       Format format) const {
  const auto it = std::find(formats_.begin(), formats_.end(), format);
  SPMVML_ENSURE(it != formats_.end(), "format not modeled");
  std::vector<double> x = features.select(feature_set_);
  for (std::size_t k = 0; k < formats_.size(); ++k)
    x.push_back(formats_[k] == format ? 1.0 : 0.0);
  return regression_target_to_seconds(model_->predict(x));
}

}  // namespace spmvml
