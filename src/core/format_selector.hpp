// FormatSelector — the library's headline API: train a classifier on a
// labeled corpus, then pick the best storage format for an unseen matrix.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>

#include "core/study.hpp"
#include "gpusim/fault.hpp"
#include "ml/model.hpp"

namespace spmvml {

/// The model families compared in §V.
enum class ModelKind : int {
  kDecisionTree = 0,
  kSvm = 1,
  kMlp = 2,
  kXgboost = 3,
  kMlpEnsemble = 4,
};

inline constexpr int kNumModelKinds = 5;

const char* model_name(ModelKind kind);

/// Outcome of a feasibility-constrained selection. `predicted` is the
/// model's unconstrained pick; `format` is the served choice after the
/// feasibility predicate (== predicted unless `fallback`).
struct Selection {
  Format format = Format::kCsr;
  Format predicted = Format::kCsr;
  bool fallback = false;
};

/// Instantiate an untrained classifier with the library's tuned defaults.
/// `fast` shrinks training effort for smoke runs.
ml::ClassifierPtr make_classifier(ModelKind kind, bool fast = false);

class FormatSelector {
 public:
  /// Train on a prepared study (80/20 protocol is the caller's business —
  /// pass the training split).
  FormatSelector(ModelKind kind, FeatureSet feature_set,
                 std::span<const Format> candidates, bool fast = false);

  void fit(const ml::Matrix& x, const std::vector<int>& labels);

  /// Convenience: train straight from a labeled corpus.
  void fit(const LabeledCorpus& corpus, int arch, Precision prec);

  /// Predicted best format for an unseen matrix.
  Format select(const Csr<double>& matrix) const;
  Format select(const FeatureVector& features) const;

  /// Feasibility-constrained selection: never returns a format the
  /// predicate rejects. When the model's pick is infeasible, falls back
  /// to the feasible candidate the classifier ranks highest (by class
  /// probability); when *no* candidate is feasible, serves CSR — the
  /// always-feasible floor (its arrays are the input itself) — if it is a
  /// candidate, and throws Error(kInfeasibleFormat) otherwise.
  Selection select_feasible(const FeatureVector& features,
                            const FeasibilityFn& feasible) const;
  Selection select_feasible(const Csr<double>& matrix,
                            const FeasibilityFn& feasible) const;

  /// Label-space prediction (index into candidates).
  int predict_label(const std::vector<double>& selected_features) const;

  FeatureSet feature_set() const { return feature_set_; }
  std::span<const Format> candidates() const { return candidates_; }
  const ml::Classifier& classifier() const { return *model_; }

  /// Persist the trained selector (model kind + feature set + candidates
  /// + fitted model). load_selector() restores an inference-ready copy.
  void save(std::ostream& out) const;
  static FormatSelector load_selector(std::istream& in);

 private:
  ModelKind kind_;
  FeatureSet feature_set_;
  std::vector<Format> candidates_;
  ml::ClassifierPtr model_;
};

}  // namespace spmvml
