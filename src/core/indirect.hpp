// Indirect classification (§VI-C): select the format whose *predicted*
// execution time is lowest, and score correctness with a tolerance — a
// prediction counts as correct when the measured time of the chosen format
// is within (1 + tolerance) of the measured best.
#pragma once

#include "core/format_selector.hpp"
#include "core/perf_model.hpp"

namespace spmvml {

class IndirectSelector {
 public:
  explicit IndirectSelector(PerfModel model) : model_(std::move(model)) {}

  /// Format with the smallest predicted time.
  Format select(const FeatureVector& features) const;

  /// Feasibility-constrained selection: smallest predicted time among
  /// formats the predicate accepts. Falls back to CSR (the always-feasible
  /// floor) when nothing is feasible, throwing Error(kInfeasibleFormat) if
  /// CSR is not modeled.
  Selection select_feasible(const FeatureVector& features,
                            const FeasibilityFn& feasible) const;

  const PerfModel& model() const { return model_; }

 private:
  PerfModel model_;
};

/// Score a set of per-sample choices against measured candidate times.
/// `chosen[i]` indexes into the candidates of `times[i]`; correctness uses
/// measured_time(chosen) <= (1 + tolerance) * measured_time(best).
double tolerance_accuracy(const std::vector<int>& chosen,
                          const std::vector<std::vector<double>>& times,
                          double tolerance);

/// Slowdown ratios t(chosen)/t(best) per sample (for Tables XI–XIII).
std::vector<double> selection_slowdowns(
    const std::vector<int>& chosen,
    const std::vector<std::vector<double>>& times);

}  // namespace spmvml
