// Study assembly: turn a LabeledCorpus into ML datasets for one
// (GPU, precision) configuration — the unit every results table varies.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/label_collector.hpp"
#include "ml/dataset.hpp"

namespace spmvml {

/// Classification study (§V): features -> best-format label.
struct ClassificationStudy {
  ml::Dataset data;                    // x = selected features, labels set
  std::vector<Format> candidates;      // label index -> format
  /// Full candidate-time row per sample (same order as candidates), for
  /// slowdown analysis and indirect classification.
  std::vector<std::vector<double>> times;
};

/// Build the classification study.
///  * candidates: e.g. kBasicFormats (Tables IV–VI) or kAllFormats (VII–IX)
///  * drop_coo_best: apply §V-A — remove matrices whose best format is COO
///    (only meaningful when COO is not in `candidates`).
ClassificationStudy make_classification_study(
    const LabeledCorpus& corpus, int arch, Precision prec,
    std::span<const Format> candidates, FeatureSet feature_set,
    bool drop_coo_best = false);

/// Regression study (§VI): predict execution time.
/// Joint mode appends a one-hot format encoding to the features so one
/// model covers all 7 formats (the paper's "combined" model); per-format
/// mode emits one dataset per format.
struct RegressionStudy {
  ml::Dataset data;   // targets = log10(seconds); see note below
  /// Raw measured seconds per sample (targets are log-transformed).
  std::vector<double> seconds;
};

/// Joint study over all formats in `formats`.
RegressionStudy make_joint_regression_study(const LabeledCorpus& corpus,
                                            int arch, Precision prec,
                                            std::span<const Format> formats,
                                            FeatureSet feature_set);

/// Single-format study (§VI-B).
RegressionStudy make_format_regression_study(const LabeledCorpus& corpus,
                                             int arch, Precision prec,
                                             Format format,
                                             FeatureSet feature_set);

/// Undo the log transform applied to regression targets.
double regression_target_to_seconds(double target);
double seconds_to_regression_target(double seconds);

/// §V-A census: fraction of matrices whose fastest format is COO, plus the
/// mean penalty (best-other / best) over those cases.
struct CooCensus {
  std::size_t total = 0;
  std::size_t coo_best_all = 0;   // COO beats the other six
  std::size_t coo_best_basic4 = 0; // COO beats ELL/CSR/HYB
  double mean_exclusion_penalty = 1.0;
};
CooCensus coo_census(const LabeledCorpus& corpus, int arch, Precision prec);

}  // namespace spmvml
