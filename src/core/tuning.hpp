// Hyper-parameter tuning (§IV-D): the paper's GridSearchCV protocol with
// its published grids —
//   XGBoost: n_estimators {50,100,200,500}, max_depth {32,64,128},
//            learning_rate {.1,.01}
//   SVM:     C {100,1000,10000}, gamma {.1,.01,.001}
// scored by stratified k-fold cross-validation accuracy.
#pragma once

#include "core/format_selector.hpp"
#include "ml/grid_search.hpp"

namespace spmvml {

/// The paper's §IV-D grid for `kind` (decision tree and MLP get small
/// pragmatic grids; the paper only specifies XGBoost's and SVM's).
/// `fast` truncates each axis to its first entries.
std::vector<ml::ParamPoint> paper_grid(ModelKind kind, bool fast = false);

/// Instantiate a classifier with explicit hyper-parameters (keys as in
/// paper_grid); unspecified values fall back to the tuned defaults.
ml::ClassifierPtr make_classifier_with(ModelKind kind,
                                       const ml::ParamPoint& params);

/// Run GridSearchCV over paper_grid(kind) and return the winning point
/// plus its CV score.
ml::GridSearchResult tune_classifier(ModelKind kind, const ml::Dataset& data,
                                     int folds, std::uint64_t seed,
                                     bool fast = false);

}  // namespace spmvml
