// Non-ML baselines from the paper's related work (§VII), implemented so
// the benches can compare them against the ML pipeline:
//
//  * AnalyticalModel  — a white-box bandwidth model in the spirit of
//    Li et al. (TPDS'15): predicts SpMV time per format from the 17
//    features and the GPU's datasheet numbers alone (no training). The
//    paper argues such models miss feature interactions; the bench
//    quantifies the gap.
//  * SamplingSelector — Zardoshti et al. (JoS'16): time a small row
//    window of the actual matrix in every format and pick the winner;
//    accuracy vs sampled fraction is the trade-off.
//  * ConfidenceSelector — Li et al.'s SMAT (PLDI'13 line): trust the
//    classifier when it is confident, otherwise fall back to measuring
//    the top candidates.
#pragma once

#include "core/format_selector.hpp"
#include "gpusim/oracle.hpp"

namespace spmvml {

/// White-box performance model: time(features, format) from first
/// principles (traffic / bandwidth + launch), no learned parameters.
class AnalyticalModel {
 public:
  AnalyticalModel(GpuArch arch, Precision prec)
      : arch_(std::move(arch)), prec_(prec) {}

  /// Predicted seconds for one format.
  double predict_seconds(const FeatureVector& f, Format format) const;

  /// argmin over `candidates` (indices into the span).
  int select(const FeatureVector& f,
             std::span<const Format> candidates) const;

 private:
  GpuArch arch_;
  Precision prec_;
};

/// Run-a-sample selector: extracts a contiguous row window holding
/// roughly `sample_fraction` of the nonzeros, measures every candidate
/// on it with the oracle, returns the measured winner.
class SamplingSelector {
 public:
  SamplingSelector(const MeasurementOracle& oracle, double sample_fraction)
      : oracle_(oracle), fraction_(sample_fraction) {}

  /// Index into `candidates` of the sampled winner.
  int select(const Csr<double>& matrix, std::uint64_t matrix_seed,
             std::span<const Format> candidates) const;

  /// The sampled submatrix (exposed for tests).
  static Csr<double> sample_rows(const Csr<double>& matrix, double fraction);

 private:
  const MeasurementOracle& oracle_;
  double fraction_;
};

/// Classifier + execution fallback: when the model's top probability is
/// below `threshold`, the top-2 candidates are "executed" (measured times
/// supplied by the caller) and the measured-best wins.
class ConfidenceSelector {
 public:
  ConfidenceSelector(const ml::Classifier& model, double threshold)
      : model_(model), threshold_(threshold) {}

  struct Choice {
    int label = 0;        // index into the study's candidates
    bool executed = false;  // true when the fallback ran
  };

  /// `measured_times[k]` is the measured time of candidate k (used only
  /// when confidence is below the threshold).
  Choice select(const std::vector<double>& features,
                std::span<const double> measured_times) const;

 private:
  const ml::Classifier& model_;
  double threshold_;
};

}  // namespace spmvml
