#include "core/indirect.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace spmvml {

Format IndirectSelector::select(const FeatureVector& features) const {
  const auto predicted = model_.predict_all(features);
  const auto best = std::min_element(predicted.begin(), predicted.end());
  return model_.formats()[static_cast<std::size_t>(best - predicted.begin())];
}

double tolerance_accuracy(const std::vector<int>& chosen,
                          const std::vector<std::vector<double>>& times,
                          double tolerance) {
  SPMVML_ENSURE(chosen.size() == times.size() && !chosen.empty(),
                "size mismatch");
  SPMVML_ENSURE(tolerance >= 0.0, "negative tolerance");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& row = times[i];
    SPMVML_ENSURE(chosen[i] >= 0 &&
                      chosen[i] < static_cast<int>(row.size()),
                  "choice out of range");
    const double best = *std::min_element(row.begin(), row.end());
    if (row[static_cast<std::size_t>(chosen[i])] <=
        (1.0 + tolerance) * best)
      ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(chosen.size());
}

std::vector<double> selection_slowdowns(
    const std::vector<int>& chosen,
    const std::vector<std::vector<double>>& times) {
  SPMVML_ENSURE(chosen.size() == times.size(), "size mismatch");
  std::vector<double> out;
  out.reserve(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& row = times[i];
    const double best = *std::min_element(row.begin(), row.end());
    out.push_back(std::max(1.0,
                           row[static_cast<std::size_t>(chosen[i])] / best));
  }
  return out;
}

}  // namespace spmvml
