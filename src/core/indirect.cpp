#include "core/indirect.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace spmvml {

Format IndirectSelector::select(const FeatureVector& features) const {
  const auto predicted = model_.predict_all(features);
  const auto best = std::min_element(predicted.begin(), predicted.end());
  return model_.formats()[static_cast<std::size_t>(best - predicted.begin())];
}

Selection IndirectSelector::select_feasible(
    const FeatureVector& features, const FeasibilityFn& feasible) const {
  SPMVML_ENSURE(static_cast<bool>(feasible), "null feasibility predicate");
  const auto predicted = model_.predict_all(features);
  const auto formats = model_.formats();

  Selection result;
  const auto best = std::min_element(predicted.begin(), predicted.end());
  result.predicted = formats[static_cast<std::size_t>(best - predicted.begin())];
  result.format = result.predicted;
  if (feasible(result.predicted)) return result;

  double best_t = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < formats.size(); ++i) {
    if (!feasible(formats[i])) continue;
    if (predicted[i] < best_t) {
      best_t = predicted[i];
      result.format = formats[i];
      found = true;
    }
  }
  if (!found) {
    const auto csr = std::find(formats.begin(), formats.end(), Format::kCsr);
    SPMVML_ENSURE_CAT(csr != formats.end(), ErrorCategory::kInfeasibleFormat,
                      "no modeled format is feasible under the given "
                      "constraints");
    result.format = Format::kCsr;
  }
  result.fallback = true;
  return result;
}

double tolerance_accuracy(const std::vector<int>& chosen,
                          const std::vector<std::vector<double>>& times,
                          double tolerance) {
  SPMVML_ENSURE(chosen.size() == times.size() && !chosen.empty(),
                "size mismatch");
  SPMVML_ENSURE(tolerance >= 0.0, "negative tolerance");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& row = times[i];
    SPMVML_ENSURE(chosen[i] >= 0 &&
                      chosen[i] < static_cast<int>(row.size()),
                  "choice out of range");
    const double best = *std::min_element(row.begin(), row.end());
    if (row[static_cast<std::size_t>(chosen[i])] <=
        (1.0 + tolerance) * best)
      ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(chosen.size());
}

std::vector<double> selection_slowdowns(
    const std::vector<int>& chosen,
    const std::vector<std::vector<double>>& times) {
  SPMVML_ENSURE(chosen.size() == times.size(), "size mismatch");
  std::vector<double> out;
  out.reserve(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& row = times[i];
    const double best = *std::min_element(row.begin(), row.end());
    out.push_back(std::max(1.0,
                           row[static_cast<std::size_t>(chosen[i])] / best));
  }
  return out;
}

}  // namespace spmvml
