// Label collection (§IV-B): run the measurement oracle for every matrix in
// a corpus plan and keep one compact record per matrix — features plus the
// mean execution time for all 7 formats x 2 GPUs x 2 precisions.
//
// Matrices are generated, scanned and discarded one at a time (the full
// corpus would not fit in memory), and the result can be cached to CSV so
// every bench after the first starts instantly.
//
// Fault tolerance: with fault injection enabled (CollectOptions::faults)
// individual (arch, precision, format) cells can fail — OOM, timeout, or
// transient launch failure. Transients are retried with capped exponential
// backoff; cells that stay failed are recorded as NaN (a validity mask)
// instead of dropping the whole matrix, reproducing the paper's §IV-C
// exclusion as a *policy* rather than a hard-coded filter. Collection can
// checkpoint to the cache file every N matrices, so a killed run resumes
// where it left off without re-measuring completed matrices.
//
// Parallelism: with CollectOptions::threads > 1 (or SPMVML_THREADS set)
// plan entries are processed concurrently by a shared thread pool. Every
// record is a pure function of its GenSpec, so results are assembled into
// a plan-indexed slot array and the returned corpus — and any CSV written
// from it — is bitwise identical to the serial run for every thread
// count. Checkpoints always cover the longest fully-complete *prefix* in
// plan order, so resume semantics are unchanged. Transient-retry backoff
// is a deadline-based requeue on the pool: a waiting matrix never stalls
// a worker.
#pragma once

#include <array>
#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "features/features.hpp"
#include "gpusim/oracle.hpp"
#include "synth/corpus.hpp"

namespace spmvml {

inline constexpr int kNumArchs = 2;  // 0 = K80c, 1 = P100

/// Everything the studies need to know about one corpus matrix.
struct MatrixRecord {
  std::uint64_t seed = 0;      // GenSpec seed (matrix identity)
  int bucket = 0;              // Table-I bucket index
  int family = 0;              // MatrixFamily
  double rows = 0, cols = 0, nnz = 0;
  FeatureVector features;
  /// seconds[arch][precision][format] — mean of `reps` timed runs, or NaN
  /// for cells whose measurement failed (the validity mask).
  std::array<std::array<std::array<double, kNumFormats>, kNumPrecisions>,
             kNumArchs>
      seconds{};

  double time(int arch, Precision prec, Format f) const {
    return seconds[static_cast<std::size_t>(arch)]
                  [static_cast<std::size_t>(prec)]
                  [static_cast<std::size_t>(f)];
  }

  /// True when the cell holds a usable measurement (finite, positive).
  bool valid(int arch, Precision prec, Format f) const {
    const double t = time(arch, prec, f);
    return std::isfinite(t) && t > 0.0;
  }

  /// Number of valid cells for one (arch, precision) machine config.
  int num_valid(int arch, Precision prec) const;

  /// True when every cell of every machine config measured successfully.
  bool fully_valid() const;

  double gflops(int arch, Precision prec, Format f) const {
    return 2.0 * nnz / time(arch, prec, f) / 1e9;
  }

  /// argmin over *valid* `candidates` of time(); returns index into
  /// candidates, or -1 when no candidate has a valid measurement.
  int best_among(int arch, Precision prec,
                 std::span<const Format> candidates) const;
};

/// Failure/recovery accounting for one collection run.
struct CollectStats {
  std::size_t attempted = 0;           // plan entries processed
  std::size_t kept = 0;                // records in the corpus
  std::size_t dropped_prefilter = 0;   // legacy §IV-C wholesale filter
  std::size_t dropped_all_failed = 0;  // every cell failed
  std::size_t failed_cells = 0;        // cells invalid after retries
  std::size_t oom_cells = 0;
  std::size_t timeout_cells = 0;
  std::size_t transient_cells = 0;     // transient after retry budget
  std::size_t transient_retries = 0;   // retry attempts issued
  std::size_t resumed_records = 0;     // restored from a checkpoint
};

struct LabeledCorpus {
  std::vector<MatrixRecord> records;
  CollectStats stats;

  std::size_t size() const { return records.size(); }
};

struct CollectOptions {
  MeasurementConfig measurement;
  CostParams cost;
  /// Fault injection (copied into measurement.faults at collection time).
  /// Disabled by default — the oracle is infallible, as in the seed.
  FaultConfig faults;
  /// §IV-C exclusion: the paper dropped ~400 of 2700 matrices that "did
  /// not fit in the GPU memory or failed to execute for one or more
  /// storage formats". With faults *disabled* we reproduce that as a
  /// wholesale pre-filter: drop matrices whose ELL image exceeds this
  /// budget (the K80c's 12 GB by default); 0 disables the filter. With
  /// faults enabled the filter is skipped — infeasible formats fail
  /// per-cell instead and the matrix is kept.
  std::int64_t format_memory_limit = 12LL * 1000 * 1000 * 1000;
  /// Transient-failure retry budget per cell (capped exponential backoff).
  int max_retries = 3;
  /// Base backoff sleep in seconds (doubles per retry, capped at
  /// backoff_cap_s). 0 disables sleeping — the schedule is still computed
  /// and the retry accounting still happens, which is what tests want.
  double backoff_base_s = 0.0;
  double backoff_cap_s = 1.0;
  /// When non-empty, collection checkpoints the partial corpus here every
  /// `checkpoint_every` matrices and resumes from it on restart (plan
  /// fingerprint must match).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 25;
  /// Called after each matrix with (done, total); pass {} to disable.
  /// With threads > 1 the callback runs on worker threads but is always
  /// serialized (done is monotonic); a throwing callback cancels the run.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Worker threads: 1 = the serial loop, >1 = the deterministic parallel
  /// pipeline, 0 = read SPMVML_THREADS (default 1).
  int threads = 0;
};

/// Backoff sleep before retry `attempt + 1` of a transient failure:
/// base * 2^attempt, capped at backoff_cap_s and safe for arbitrarily
/// large attempt counts (the doubling saturates instead of overflowing).
/// Returns 0 when backoff is disabled (base <= 0).
double backoff_delay_s(const CollectOptions& options, int attempt);

/// Generate + summarise + measure every matrix in the plan.
LabeledCorpus collect_corpus(const CorpusPlan& plan,
                             const CollectOptions& options = {});

/// CSV round-trip for the cache. `plan_size` records how many matrices
/// the generating plan had (collection may keep fewer after the §IV-C
/// exclusion); `plan_hash` is the plan fingerprint; `done` is how many
/// plan entries have been processed (== plan_size for a complete corpus,
/// less for a checkpoint). Failed cells round-trip as NaN. The loader can
/// return the header fields via the out-parameters.
void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size, std::uint64_t plan_hash,
                     std::size_t done);
/// Back-compat overload: hash 0, done == plan_size.
void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size);
LabeledCorpus load_corpus_csv(const std::string& path,
                              std::size_t* cached_plan_size = nullptr,
                              std::uint64_t* cached_plan_hash = nullptr,
                              std::size_t* cached_done = nullptr);

/// Load from `cache_path` if present, complete, and matching the plan's
/// size and content fingerprint; otherwise collect (checkpointing to the
/// cache file, resuming any matching partial checkpoint) and save. The
/// workhorse entry point for all benches.
LabeledCorpus load_or_collect(const std::string& cache_path,
                              const CorpusPlan& plan,
                              const CollectOptions& options = {});

}  // namespace spmvml
