// Label collection (§IV-B): run the measurement oracle for every matrix in
// a corpus plan and keep one compact record per matrix — features plus the
// mean execution time for all 6 formats x 2 GPUs x 2 precisions.
//
// Matrices are generated, scanned and discarded one at a time (the full
// corpus would not fit in memory), and the result can be cached to CSV so
// every bench after the first starts instantly.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "features/features.hpp"
#include "gpusim/oracle.hpp"
#include "synth/corpus.hpp"

namespace spmvml {

inline constexpr int kNumArchs = 2;  // 0 = K80c, 1 = P100

/// Everything the studies need to know about one corpus matrix.
struct MatrixRecord {
  std::uint64_t seed = 0;      // GenSpec seed (matrix identity)
  int bucket = 0;              // Table-I bucket index
  int family = 0;              // MatrixFamily
  double rows = 0, cols = 0, nnz = 0;
  FeatureVector features;
  /// seconds[arch][precision][format] — mean of `reps` timed runs.
  std::array<std::array<std::array<double, kNumFormats>, kNumPrecisions>,
             kNumArchs>
      seconds{};

  double time(int arch, Precision prec, Format f) const {
    return seconds[static_cast<std::size_t>(arch)]
                  [static_cast<std::size_t>(prec)]
                  [static_cast<std::size_t>(f)];
  }

  double gflops(int arch, Precision prec, Format f) const {
    return 2.0 * nnz / time(arch, prec, f) / 1e9;
  }

  /// argmin over `candidates` of time(); returns index into candidates.
  int best_among(int arch, Precision prec,
                 std::span<const Format> candidates) const;
};

struct LabeledCorpus {
  std::vector<MatrixRecord> records;

  std::size_t size() const { return records.size(); }
};

struct CollectOptions {
  MeasurementConfig measurement;
  CostParams cost;
  /// §IV-C exclusion: the paper dropped ~400 of 2700 matrices that "did
  /// not fit in the GPU memory or failed to execute for one or more
  /// storage formats". We drop matrices whose ELL image exceeds this
  /// budget (the K80c's 12 GB by default); 0 disables the filter.
  std::int64_t format_memory_limit = 12LL * 1000 * 1000 * 1000;
  /// Called after each matrix with (done, total); pass {} to disable.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Generate + summarise + measure every matrix in the plan.
LabeledCorpus collect_corpus(const CorpusPlan& plan,
                             const CollectOptions& options = {});

/// CSV round-trip for the cache. `plan_size` records how many matrices
/// the generating plan had (collection may keep fewer after the §IV-C
/// exclusion); the loader can return it via `cached_plan_size`.
void save_corpus_csv(const std::string& path, const LabeledCorpus& corpus,
                     std::size_t plan_size);
LabeledCorpus load_corpus_csv(const std::string& path,
                              std::size_t* cached_plan_size = nullptr);

/// Load from `cache_path` if present and matching plan.size(); otherwise
/// collect and save. The workhorse entry point for all benches.
LabeledCorpus load_or_collect(const std::string& cache_path,
                              const CorpusPlan& plan,
                              const CollectOptions& options = {});

}  // namespace spmvml
