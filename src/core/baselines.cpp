#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "gpusim/row_summary.hpp"

namespace spmvml {

double AnalyticalModel::predict_seconds(const FeatureVector& f,
                                        Format format) const {
  // White-box traffic model from features only. Constants are datasheet
  // numbers, not fitted parameters; the structure mirrors the simulator's
  // mechanisms but it cannot see column locality, the HYB split, CSR's
  // kernel choice, or measurement noise — exactly the information gap the
  // paper attributes to analytical approaches.
  const double w = value_bytes(prec_);
  constexpr double idx = 4.0;
  const double rows = std::max(1.0, f[kNRows]);
  const double nnz = std::max(1.0, f[kNnzTot]);
  const double mu = std::max(1.0, f[kNnzMu]);
  const double row_max = std::max(1.0, f[kNnzMax]);
  const double bw = arch_.mem_bw_gbps * 1e9;

  // Assume a flat 50% gather miss (no structural information available).
  const double gather = nnz * 16.0;
  const double y_bytes = rows * w;

  double traffic = 0.0;
  double launches = 1.0;
  switch (format) {
    case Format::kCoo:
      traffic = nnz * (2.0 * idx + w) + gather + y_bytes;
      launches = 1.3;
      break;
    case Format::kCsr:
      traffic = (nnz * (idx + w) + rows * 2.0 * idx + gather + y_bytes) /
                std::clamp(mu / 32.0, 0.35, 1.0);
      break;
    case Format::kEll:
      traffic = rows * row_max * (idx + w) + gather + y_bytes;
      break;
    case Format::kHyb: {
      // Normal-ish approximation of the split at the mean row length.
      const double sigma = f[kNnzSigma];
      const double spill = std::min(0.6, 0.4 * sigma / mu);
      traffic = nnz * (1.0 - spill) * (idx + w) * 1.1 +
                nnz * spill * (2.0 * idx + w) + gather + y_bytes;
      launches = 1.6;
      break;
    }
    case Format::kCsr5:
      traffic = nnz * (idx + w) * 1.05 + gather + y_bytes;
      launches = 1.25;
      break;
    case Format::kMergeCsr:
      traffic = nnz * (idx + w) * 1.08 + rows * idx + gather + y_bytes;
      launches = 1.15;
      break;
    case Format::kSell: {
      // Sliced-ELL padding estimated from the length distribution alone:
      // a sorted 32-row slice pads roughly to mu + sigma, capped at the
      // max row (the model cannot see the true per-slice widths).
      const double sigma = f[kNnzSigma];
      const double est_width = std::min(row_max, mu + sigma);
      traffic = rows * est_width * (idx + w) + rows * idx + gather + y_bytes;
      launches = 1.1;
      break;
    }
  }
  return launches * arch_.launch_overhead_s + traffic / (bw * 0.9);
}

int AnalyticalModel::select(const FeatureVector& f,
                            std::span<const Format> candidates) const {
  SPMVML_ENSURE(!candidates.empty(), "no candidates");
  int best = 0;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const double t = predict_seconds(f, candidates[k]);
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(k);
    }
  }
  return best;
}

Csr<double> SamplingSelector::sample_rows(const Csr<double>& matrix,
                                          double fraction) {
  SPMVML_ENSURE(fraction > 0.0 && fraction <= 1.0, "bad sample fraction");
  const index_t target =
      std::max<index_t>(1, static_cast<index_t>(
                               static_cast<double>(matrix.nnz()) * fraction));
  // Contiguous window from the top — what a cheap runtime probe does.
  index_t rows = 0;
  while (rows < matrix.rows() && matrix.row_ptr()[rows] < target) ++rows;
  rows = std::max<index_t>(rows, 1);

  std::vector<index_t> row_ptr(matrix.row_ptr().begin(),
                               matrix.row_ptr().begin() + rows + 1);
  const index_t sampled_nnz = row_ptr.back();
  std::vector<index_t> col_idx(matrix.col_idx().begin(),
                               matrix.col_idx().begin() + sampled_nnz);
  std::vector<double> values(matrix.values().begin(),
                             matrix.values().begin() + sampled_nnz);
  return Csr<double>(rows, matrix.cols(), std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

int SamplingSelector::select(const Csr<double>& matrix,
                             std::uint64_t matrix_seed,
                             std::span<const Format> candidates) const {
  SPMVML_ENSURE(!candidates.empty(), "no candidates");
  const auto sample = sample_rows(matrix, fraction_);
  const auto summary = summarize(sample);
  int best = 0;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const double t =
        oracle_.measure(summary, candidates[k], matrix_seed ^ 0x5a3bULL)
            .seconds;
    if (t < best_t) {
      best_t = t;
      best = static_cast<int>(k);
    }
  }
  return best;
}

ConfidenceSelector::Choice ConfidenceSelector::select(
    const std::vector<double>& features,
    std::span<const double> measured_times) const {
  const auto probs = model_.predict_proba(features);
  // Classifiers size their probability vector by the largest label seen in
  // training, so a candidate format that never won the training argmin is
  // simply absent — treat it as probability zero rather than a hard error.
  SPMVML_ENSURE(probs.size() <= measured_times.size() && probs.size() >= 2,
                "probability / time size mismatch");
  const auto top =
      static_cast<std::size_t>(std::max_element(probs.begin(), probs.end()) -
                               probs.begin());
  if (probs[top] >= threshold_) return {static_cast<int>(top), false};

  // Execute the two most probable candidates; measured winner takes it.
  std::size_t second = top == 0 ? 1 : 0;
  for (std::size_t k = 0; k < probs.size(); ++k)
    if (k != top && probs[k] > probs[second]) second = k;
  const std::size_t winner =
      measured_times[top] <= measured_times[second] ? top : second;
  return {static_cast<int>(winner), true};
}

}  // namespace spmvml
