#include "serve/scorecard.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/obs/metrics.hpp"
#include "ml/serialize.hpp"

namespace spmvml::serve {

namespace {

constexpr double kRelErrBounds[] = {0.01, 0.02, 0.05, 0.1, 0.2,
                                    0.5,  1.0,  2.0,  5.0};

double rel_err(const ScorecardEntry& e) {
  if (e.predicted_gflops <= 0.0 || e.measured_gflops <= 0.0) return -1.0;
  return std::abs(e.predicted_gflops - e.measured_gflops) / e.measured_gflops;
}

}  // namespace

std::uint64_t features_fingerprint(std::span<const double> values) {
  // Hash the IEEE-754 bytes: bit-identical features (the cache key
  // property the feature cache already relies on) get identical
  // fingerprints across runs and processes.
  std::string bytes(values.size() * sizeof(double), '\0');
  if (!values.empty())
    std::memcpy(bytes.data(), values.data(), bytes.size());
  return ml::io::fnv1a64(bytes);
}

Scorecard::Scorecard(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void Scorecard::apply(const ScorecardEntry& e, int sign) {
  if (e.probe) return;  // shadow measurements stay out of the aggregates
  window_scored_ += sign;
  if (e.chosen == e.predicted_best) window_hits_ += sign;
  window_regret_sum_ += sign * e.regret;
  const double err = rel_err(e);
  if (err >= 0.0) {
    window_rel_err_sum_ += sign * err;
    window_rel_err_count_ += sign;
  }
}

Scorecard::Summary Scorecard::summary_locked() const {
  Summary s;
  s.total = total_;
  s.window = ring_.size();
  s.scored = static_cast<std::size_t>(std::max<std::int64_t>(window_scored_, 0));
  if (window_scored_ > 0) {
    const double scored = static_cast<double>(window_scored_);
    s.accuracy = static_cast<double>(window_hits_) / scored;
    s.mean_regret = window_regret_sum_ / scored;
    s.rme = window_rel_err_count_ > 0
                ? window_rel_err_sum_ /
                      static_cast<double>(window_rel_err_count_)
                : 0.0;
  }
  return s;
}

void Scorecard::record(const ScorecardEntry& e) {
  static obs::Counter records =
      obs::MetricsRegistry::global().counter("serve.scorecard.records");
  static obs::Counter probes =
      obs::MetricsRegistry::global().counter("serve.scorecard.probes");
  static obs::Counter hits =
      obs::MetricsRegistry::global().counter("serve.scorecard.hits");
  static obs::Gauge accuracy =
      obs::MetricsRegistry::global().gauge("serve.scorecard.accuracy");
  static obs::Gauge mean_regret =
      obs::MetricsRegistry::global().gauge("serve.scorecard.mean_regret");
  static obs::Gauge rme =
      obs::MetricsRegistry::global().gauge("serve.scorecard.rme");
  static obs::Histogram rel_err_hist = obs::MetricsRegistry::global().histogram(
      "serve.scorecard.rel_err", kRelErrBounds);

  Summary snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      apply(ring_[next_], -1);  // evict the oldest
      ring_[next_] = e;
    }
    next_ = (next_ + 1) % capacity_;
    apply(e, +1);
    ++total_;
    snap = summary_locked();
  }

  records.inc();
  if (e.probe) {
    probes.inc();
    return;  // shadow measurement: the traffic-facing gauges stand pat
  }
  if (e.chosen == e.predicted_best) hits.inc();
  accuracy.set(snap.accuracy);
  mean_regret.set(snap.mean_regret);
  rme.set(snap.rme);
  const double err = rel_err(e);
  if (err >= 0.0) rel_err_hist.observe(err);
}

std::vector<ScorecardEntry> Scorecard::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScorecardEntry> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is ring order
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

Scorecard::Drained Scorecard::drain_since(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  Drained out;
  out.next_seq = total_;
  // Retained entries carry sequence numbers [total_ - window, total_);
  // entry k (the k-th record() ever) lives in slot k % capacity_.
  const std::uint64_t oldest = total_ - ring_.size();
  const std::uint64_t first = std::max(seq, oldest);
  if (seq < oldest) out.dropped = oldest - seq;
  if (first < total_) {
    out.entries.reserve(static_cast<std::size_t>(total_ - first));
    for (std::uint64_t s = first; s < total_; ++s)
      out.entries.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
  }
  return out;
}

Scorecard::Summary Scorecard::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return summary_locked();
}

}  // namespace spmvml::serve
