// Versioned model registry with atomic hot-swap.
//
// The serving loop must never observe a half-installed model: a bundle
// (classifier + optional per-format regressors) is loaded and validated
// off to the side, then published by swapping one shared_ptr under a
// mutex. Readers copy the pointer (a few ns) and keep their copy for the
// whole micro-batch, so in-flight requests always finish on the model
// they started with — the old bundle is freed when the last batch holding
// it completes, never under it.
//
// Validation-on-load runs a probe prediction through every model before
// publishing: a bundle that loads from disk (envelope checksum already
// verified by the model-file header) but produces out-of-range labels or
// non-finite times is rejected with the error taxonomy and the previous
// version stays live.
//
// Crash-safe swaps: every install attempt — published, rolled back, or
// discarded — is journaled as a SwapEvent, and a version number is
// assigned only at the instant of successful publication, so the live
// version sequence is strictly monotonic with no gaps a rolled-back swap
// could leave. The chaos site registry_swap injects mid-swap faults
// between validation and publication; the previous bundle stays live
// ("the registry is never without a valid bundle") and the failure lands
// in the journal.
//
// Concurrent publishers (the admin `swap` control line vs the background
// trainer) are serialized on a dedicated publish mutex held across
// validate → chaos → publish, so one install is entirely ordered before
// the other — a half-installed candidate cannot exist. A publisher that
// trained its candidate against a specific live version passes it as
// `expected_version`; if another publisher won the race in the meantime,
// the stale candidate is journaled as "discard" and rejected without
// touching the live bundle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/format_selector.hpp"
#include "core/perf_model.hpp"

namespace spmvml::serve {

struct ModelBundle {
  std::uint64_t version = 0;
  std::shared_ptr<const FormatSelector> selector;  // required
  std::shared_ptr<const PerfModel> perf;  // optional: enables indirect/predict
};

/// One journal entry of the swap history.
struct SwapEvent {
  /// Version published by this event; 0 for a rolled-back or discarded
  /// attempt (no version is ever burned on a failure).
  std::uint64_t version = 0;
  std::string action;  // "install", "rollback", or "discard"
  std::string detail;  // failure reason for rollbacks/discards
};

/// install() sentinel: publish regardless of the live version.
inline constexpr std::uint64_t kAnyVersion = ~std::uint64_t{0};

class ModelRegistry {
 public:
  /// Validate and publish a bundle; returns the assigned version
  /// (monotonic from 1). Throws without changing the live bundle when
  /// validation fails. When `expected_version` is not kAnyVersion and
  /// the live version no longer matches (another publisher won the
  /// race), the candidate is journaled as "discard" and an Error
  /// (kGeneric) is thrown — the stale bundle is never installed.
  std::uint64_t install(std::shared_ptr<const FormatSelector> selector,
                        std::shared_ptr<const PerfModel> perf = nullptr,
                        std::uint64_t expected_version = kAnyVersion);

  /// Load model files (selector required, perf optional — empty path
  /// skips it), validate, publish. I/O failures map to kIo, corrupt
  /// files to kModelFormat; either way the previous bundle stays live.
  std::uint64_t install_files(const std::string& selector_path,
                              const std::string& perf_path = "");

  /// Current bundle; nullptr before the first install. The returned
  /// shared_ptr keeps the bundle alive across any later swap.
  std::shared_ptr<const ModelBundle> current() const;

  /// Version of the live bundle (0 before the first install).
  std::uint64_t version() const;

  /// Copy of the swap journal: every install and rollback, in order.
  std::vector<SwapEvent> history() const;

 private:
  static void validate(const ModelBundle& bundle);
  /// Append to the journal. Caller holds mu_.
  void journal(std::uint64_t version, const char* action,
               const std::string& detail);

  mutable std::mutex mu_;
  /// Serializes whole install attempts (validate → chaos → publish) so
  /// concurrent publishers are fully ordered. Always acquired before
  /// mu_; readers take only mu_ and never block on a slow validation.
  std::mutex publish_mu_;
  std::shared_ptr<const ModelBundle> current_;
  std::uint64_t next_version_ = 1;
  /// Install attempts (including rolled-back ones): the chaos identity,
  /// so a retried swap re-rolls its fault dice.
  std::atomic<std::uint64_t> install_seq_{0};
  std::vector<SwapEvent> history_;
};

}  // namespace spmvml::serve
