// Sharded LRU cache of per-matrix serving state, keyed by matrix content
// hash.
//
// A format-selection request for a matrix the service has already seen
// must not pay the O(nnz) Table II extraction pass again — repeat traffic
// is the common case next to a job scheduler, where the same operator
// matrix is submitted for every solve. The cache stores the feature
// vector together with the structural digest (RowSummary) so the memory
// feasibility gate is also free on a hit.
//
// Concurrency: the key space is split across independent shards (shard =
// key mod nshards; keys are splitmix-mixed so the low bits are uniform),
// each with its own mutex and its own LRU list. Concurrent clients on
// different shards never touch the same lock — the same contention
// strategy as the metrics registry's per-thread shards. Within a shard,
// get() is a move-to-front and put() evicts from the back.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "features/features.hpp"
#include "gpusim/row_summary.hpp"

namespace spmvml::serve {

/// Content hash of a CSR matrix: dimensions, structure and value bit
/// patterns all contribute, so any change to the matrix changes the key.
std::uint64_t matrix_content_hash(const Csr<double>& m);

struct CachedFeatures {
  FeatureVector features;
  RowSummary summary;
};

class FeatureCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs
  /// (clamped to >= 1 each). capacity 0 disables caching entirely.
  explicit FeatureCache(std::size_t capacity, int shards = 8);

  /// Lookup; a hit refreshes the entry's LRU position.
  std::optional<CachedFeatures> get(std::uint64_t key);

  /// Insert or refresh; evicts the least-recently-used entry of the
  /// key's shard when that shard is full.
  void put(std::uint64_t key, const CachedFeatures& value);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  /// Merged view over all shards (locks each shard briefly).
  Stats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map holds iterators into the list.
    std::list<std::pair<std::uint64_t, CachedFeatures>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, CachedFeatures>>::
                           iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t key);

  std::size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace spmvml::serve
