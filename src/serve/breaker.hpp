// Per-stage circuit breaker for the serving request path.
//
// A stage that keeps failing (or keeps missing its latency budget) must
// stop being *tried*: every doomed attempt burns worker time that
// healthy requests need, and under a fault burst the retry traffic
// alone can collapse the service. The breaker is the standard three-
// state machine:
//
//   closed ──(error rate or latency EWMA over threshold)──> open
//   open   ──(cooldown elapsed)──> half-open
//   half-open ──(probe successes)──> closed
//             ──(any probe failure)──> open (cooldown restarts)
//
// While a stage's breaker is open the Service walks down the
// degradation ladder instead of calling the stage: indirect requests
// fall back to the direct classifier, and when the classifier stage
// itself is open, to the static CSR answer (always valid, needs no
// model and no features).
//
// Time is passed in explicitly (steady_clock time_points), so the state
// machine is unit-testable without sleeping; callers use Clock::now().
// All methods are thread-safe; the lock is per-breaker and the critical
// sections are a handful of arithmetic ops.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace spmvml::serve {

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* breaker_state_name(BreakerState s);

struct BreakerConfig {
  /// Sliding outcome window: the error-rate trip needs at least this
  /// many recorded outcomes and fires when the windowed error fraction
  /// reaches `error_threshold`.
  int window = 16;
  double error_threshold = 0.5;
  /// Latency trip: EWMA of recorded stage latency above this opens the
  /// breaker (0 disables the latency trip).
  double latency_threshold_ms = 0.0;
  double ewma_alpha = 0.2;
  /// open -> half-open after this cooldown.
  double open_cooldown_ms = 100.0;
  /// Consecutive half-open successes required to close again.
  int half_open_probes = 3;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  CircuitBreaker(std::string name, BreakerConfig config);

  /// May the caller attempt the stage right now? Closed: yes. Open:
  /// no, until the cooldown promotes to half-open (this call performs
  /// the promotion). Half-open: yes — traffic is the probe.
  bool allow(Clock::time_point now);

  /// Record one stage outcome. Failures and latency feed the trip
  /// conditions; in half-open, `half_open_probes` consecutive successes
  /// close the breaker and any failure reopens it.
  void record(bool ok, double latency_ms, Clock::time_point now);

  BreakerState state() const;
  double latency_ewma_ms() const;
  std::uint64_t trips() const;
  const std::string& name() const { return name_; }

 private:
  void trip(Clock::time_point now);   // -> open (caller holds mu_)
  void publish_state(BreakerState s); // metrics gauge (caller holds mu_)

  const std::string name_;
  const BreakerConfig cfg_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  Clock::time_point opened_at_{};
  // Sliding window as counters over the last `window` outcomes: a ring
  // of booleans would do, but counts are all the trip needs.
  std::uint64_t window_total_ = 0;
  std::uint64_t window_errors_ = 0;
  std::uint64_t samples_ = 0;  // lifetime outcomes (latency-trip warmup)
  double latency_ewma_ms_ = 0.0;
  bool have_latency_ = false;
  int half_open_successes_ = 0;
  std::uint64_t trips_ = 0;
};

}  // namespace spmvml::serve
