// Prediction scorecard: the serving-side ledger of "what the model said
// vs what the hardware did".
//
// Whenever a materialize request runs a real conversion + SpMV, the
// service records one ScorecardEntry — the feature values and their
// fingerprint, the chosen format, the perf model's predicted-best format
// and predicted GFLOPS, the measured GFLOPS of the actual SpMV, and the
// chosen-vs-best regret under the model's own time predictions. Entries
// land in a bounded ring journal (oldest evicted first) and roll up into
// live registry gauges:
//
//   serve.scorecard.records   counter  entries ever recorded
//   serve.scorecard.probes    counter  shadow-probe entries recorded
//   serve.scorecard.hits      counter  chosen == predicted-best
//   serve.scorecard.accuracy  gauge    hit fraction over the ring window
//   serve.scorecard.mean_regret gauge  mean regret over the window
//   serve.scorecard.rme       gauge    mean |pred-meas|/meas over the
//                                      window (entries with both sides)
//   serve.scorecard.rel_err   histogram per-entry |pred-meas|/meas
//
// Probe entries (probe = true) are shadow measurements the learning loop
// takes of formats the service did *not* serve; they ride the ring as
// training data but are excluded from every window aggregate so the
// accuracy/RME gauges keep describing real traffic only.
//
// This is the drift feed the ROADMAP "close the loop" item needs: the
// retraining loop drains new entries via drain_since() (features ↔
// measured truth) and watches the window aggregates for drift without
// touching request paths.
//
// Thread-safety: record() and the read accessors take one mutex; the ring
// aggregates (hits, regret, RME sums) are maintained incrementally so a
// record is O(1), never a rescan of the window. drain_since(seq) returns
// only entries newer than `seq`, so a steady poller pays O(new entries)
// per call instead of entries()'s O(window) copy.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "features/features.hpp"
#include "sparse/format.hpp"

namespace spmvml::serve {

/// FNV-1a over the raw bytes of the feature values: a stable fingerprint
/// tying a scorecard entry back to the feature vector that produced the
/// prediction (the retraining loop's join key).
std::uint64_t features_fingerprint(std::span<const double> values);

struct ScorecardEntry {
  std::uint64_t features_hash = 0;
  /// Full Table-II feature values (the retraining design matrix; the
  /// hash above is their fingerprint).
  std::array<double, kNumFeatures> features{};
  Format chosen = Format::kCsr;
  /// argmin of the perf model's predicted times; == chosen when no perf
  /// model was available (accuracy then measures classifier self-agreement).
  Format predicted_best = Format::kCsr;
  double predicted_gflops = 0.0;  // perf-model estimate for chosen; 0 = none
  double measured_gflops = 0.0;   // from the timed SpMV on the real matrix
  /// predicted_time(chosen) / predicted_time(predicted_best) - 1; 0 when
  /// the chosen format is the predicted best or no perf model ran.
  double regret = 0.0;
  std::uint64_t model_version = 0;
  /// Shadow measurement of a non-served format (learning loop only):
  /// excluded from window aggregates, never affects the served response.
  bool probe = false;
};

class Scorecard {
 public:
  explicit Scorecard(std::size_t capacity = 1024);

  /// Append one entry (evicting the oldest past capacity) and refresh the
  /// registry counters/gauges listed above.
  void record(const ScorecardEntry& e);

  /// Ring contents, oldest first (the retraining feed).
  std::vector<ScorecardEntry> entries() const;

  /// Result of a cursor-based drain: entries with sequence number in
  /// [seq, next_seq), oldest first. Sequence numbers count entries ever
  /// recorded (entry k is the k-th record(), starting at 0); pass
  /// next_seq back on the next call to see only what is new.
  struct Drained {
    std::uint64_t next_seq = 0;
    /// Entries evicted from the ring before this caller drained them
    /// (cursor fell more than one window behind).
    std::uint64_t dropped = 0;
    std::vector<ScorecardEntry> entries;
  };

  /// Entries recorded at or after sequence number `seq` that are still
  /// retained. O(new entries) under the lock — the poller-friendly
  /// alternative to entries(). seq == 0 drains the whole window.
  Drained drain_since(std::uint64_t seq) const;

  struct Summary {
    std::uint64_t total = 0;    // entries ever recorded (probes included)
    std::size_t window = 0;     // entries currently retained
    std::size_t scored = 0;     // non-probe entries in the window
    double accuracy = 0.0;      // chosen == predicted_best fraction (scored)
    double mean_regret = 0.0;   // mean regret (scored)
    double rme = 0.0;           // mean |pred-meas|/meas (scored, both sides)
  };
  Summary summary() const;

 private:
  /// Window-aggregate delta for one entry entering (+1) or leaving (-1).
  void apply(const ScorecardEntry& e, int sign);
  Summary summary_locked() const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<ScorecardEntry> ring_;  // circular once full
  std::size_t next_ = 0;              // insertion cursor
  std::uint64_t total_ = 0;
  // Incremental window aggregates (signed: apply() subtracts on evict).
  // Probe entries never enter them; window_scored_ is the denominator.
  std::int64_t window_scored_ = 0;
  std::int64_t window_hits_ = 0;
  double window_regret_sum_ = 0.0;
  double window_rel_err_sum_ = 0.0;
  std::int64_t window_rel_err_count_ = 0;
};

}  // namespace spmvml::serve
