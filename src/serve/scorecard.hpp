// Prediction scorecard: the serving-side ledger of "what the model said
// vs what the hardware did".
//
// Whenever a materialize request runs a real conversion + SpMV, the
// service records one ScorecardEntry — the features fingerprint, the
// chosen format, the perf model's predicted-best format and predicted
// GFLOPS, the measured GFLOPS of the actual SpMV, and the chosen-vs-best
// regret under the model's own time predictions. Entries land in a
// bounded ring journal (oldest evicted first) and roll up into live
// registry gauges:
//
//   serve.scorecard.records   counter  entries ever recorded
//   serve.scorecard.hits      counter  chosen == predicted-best
//   serve.scorecard.accuracy  gauge    hit fraction over the ring window
//   serve.scorecard.mean_regret gauge  mean regret over the window
//   serve.scorecard.rme       gauge    mean |pred-meas|/meas over the
//                                      window (entries with both sides)
//   serve.scorecard.rel_err   histogram per-entry |pred-meas|/meas
//
// This is exactly the drift feed the ROADMAP "close the loop" item needs:
// a retraining loop can drain entries() (features hash ↔ measured truth)
// or watch the gauges for drift without touching request paths.
//
// Thread-safety: record() and the read accessors take one mutex; the ring
// aggregates (hits, regret, RME sums) are maintained incrementally so a
// record is O(1), never a rescan of the window.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "sparse/format.hpp"

namespace spmvml::serve {

/// FNV-1a over the raw bytes of the feature values: a stable fingerprint
/// tying a scorecard entry back to the feature vector that produced the
/// prediction (the retraining loop's join key).
std::uint64_t features_fingerprint(std::span<const double> values);

struct ScorecardEntry {
  std::uint64_t features_hash = 0;
  Format chosen = Format::kCsr;
  /// argmin of the perf model's predicted times; == chosen when no perf
  /// model was available (accuracy then measures classifier self-agreement).
  Format predicted_best = Format::kCsr;
  double predicted_gflops = 0.0;  // perf-model estimate for chosen; 0 = none
  double measured_gflops = 0.0;   // from the timed SpMV on the real matrix
  /// predicted_time(chosen) / predicted_time(predicted_best) - 1; 0 when
  /// the chosen format is the predicted best or no perf model ran.
  double regret = 0.0;
  std::uint64_t model_version = 0;
};

class Scorecard {
 public:
  explicit Scorecard(std::size_t capacity = 1024);

  /// Append one entry (evicting the oldest past capacity) and refresh the
  /// registry counters/gauges listed above.
  void record(const ScorecardEntry& e);

  /// Ring contents, oldest first (the retraining feed).
  std::vector<ScorecardEntry> entries() const;

  struct Summary {
    std::uint64_t total = 0;    // entries ever recorded
    std::size_t window = 0;     // entries currently retained
    double accuracy = 0.0;      // chosen == predicted_best fraction (window)
    double mean_regret = 0.0;   // mean regret (window)
    double rme = 0.0;           // mean |pred-meas|/meas (window, both sides)
  };
  Summary summary() const;

 private:
  /// Window-aggregate delta for one entry entering (+1) or leaving (-1).
  void apply(const ScorecardEntry& e, int sign);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<ScorecardEntry> ring_;  // circular once full
  std::size_t next_ = 0;              // insertion cursor
  std::uint64_t total_ = 0;
  // Incremental window aggregates (signed: apply() subtracts on evict).
  std::int64_t window_hits_ = 0;
  double window_regret_sum_ = 0.0;
  double window_rel_err_sum_ = 0.0;
  std::int64_t window_rel_err_count_ = 0;
};

}  // namespace spmvml::serve
