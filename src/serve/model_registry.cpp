#include "serve/model_registry.hpp"

#include <cmath>
#include <fstream>

#include "common/chaos/chaos.hpp"
#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"

namespace spmvml::serve {

namespace {

/// Plausible mid-sized matrix digest used as the validation probe: the
/// exact values are irrelevant, only that every model in the bundle maps
/// them to a sane output before the bundle goes live.
FeatureVector probe_features() {
  FeatureVector f;
  f.values = {1000.0, 1000.0, 5000.0, 5.0, 0.5,  12.0, 1.0, 2.5, 4000.0,
              4.0,    1.5,    9.0,    1.0, 1.25, 0.5,  6.0, 1.0};
  return f;
}

}  // namespace

void ModelRegistry::validate(const ModelBundle& bundle) {
  SPMVML_ENSURE_CAT(bundle.selector != nullptr, ErrorCategory::kModelFormat,
                    "model bundle has no selector");
  const FeatureVector probe = probe_features();
  // select() throws on out-of-range labels; reaching a format is the check.
  (void)bundle.selector->select(probe);
  if (bundle.perf) {
    for (const Format f : bundle.perf->formats()) {
      const double t = bundle.perf->predict_seconds(probe, f);
      SPMVML_ENSURE_CAT(std::isfinite(t) && t > 0.0,
                        ErrorCategory::kModelFormat,
                        std::string("perf model predicts non-finite time for ") +
                            format_name(f));
    }
  }
}

void ModelRegistry::journal(std::uint64_t version, const char* action,
                            const std::string& detail) {
  history_.push_back(SwapEvent{version, action, detail});
}

std::uint64_t ModelRegistry::install(
    std::shared_ptr<const FormatSelector> selector,
    std::shared_ptr<const PerfModel> perf,
    std::uint64_t expected_version) {
  obs::TraceSpan span("serve.registry.install");
  // One publisher at a time, end to end: while this install validates
  // and publishes, a racing publisher waits here, then sees the new
  // live version and (if it pinned expected_version) discards.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  if (expected_version != kAnyVersion) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t live = current_ ? current_->version : 0;
    if (live != expected_version) {
      journal(0, "discard",
              "candidate trained against version " +
                  std::to_string(expected_version) + ", live is " +
                  std::to_string(live));
      obs::MetricsRegistry::global().counter("serve.registry.discard").inc();
      obs::log_warn("serve.registry.discard")
          .kv("expected_version", expected_version)
          .kv("live_version", live);
      throw Error("registry version moved; candidate discarded");
    }
  }
  auto bundle = std::make_shared<ModelBundle>();
  bundle->selector = std::move(selector);
  bundle->perf = std::move(perf);
  try {
    validate(*bundle);
    // Chaos site registry_swap: a fault between validation and
    // publication models a crash mid-swap. Nothing below this point can
    // fail, so rolling back here proves the previous bundle stays live
    // through the whole window.
    const chaos::Fault fault = chaos::hit(
        chaos::Site::kRegistrySwap,
        chaos::with_attempt(
            0x5e9157e5u,
            static_cast<int>(
                install_seq_.fetch_add(1, std::memory_order_relaxed))));
    if (fault) {
      chaos::apply_latency(fault);
      SPMVML_ENSURE_CAT(fault.kind == chaos::FaultKind::kLatency,
                        ErrorCategory::kIo,
                        "injected mid-swap fault; previous bundle stays live");
    }
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mu_);
    journal(0, "rollback", e.what());
    obs::MetricsRegistry::global().counter("serve.registry.rollback").inc();
    obs::log_warn("serve.registry.rollback")
        .kv("live_version", current_ ? current_->version : 0)
        .kv("reason", e.what());
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  bundle->version = next_version_++;
  journal(bundle->version, "install", "");
  current_ = std::move(bundle);
  obs::MetricsRegistry::global().counter("serve.registry.swap").inc();
  obs::MetricsRegistry::global().gauge("serve.registry.version").set(
      static_cast<double>(current_->version));
  obs::log_info("serve.registry.swap")
      .kv("version", current_->version)
      .kv("has_perf", current_->perf != nullptr);
  span.arg("version", current_->version);
  return current_->version;
}

std::uint64_t ModelRegistry::install_files(const std::string& selector_path,
                                           const std::string& perf_path) {
  std::shared_ptr<const FormatSelector> selector;
  std::shared_ptr<const PerfModel> perf;
  try {
    std::ifstream sel_in(selector_path, std::ios::binary);
    SPMVML_ENSURE_CAT(sel_in.good(), ErrorCategory::kIo,
                      "cannot open model file " + selector_path);
    selector = std::make_shared<const FormatSelector>(
        FormatSelector::load_selector(sel_in));

    if (!perf_path.empty()) {
      std::ifstream perf_in(perf_path, std::ios::binary);
      SPMVML_ENSURE_CAT(perf_in.good(), ErrorCategory::kIo,
                        "cannot open model file " + perf_path);
      perf = std::make_shared<const PerfModel>(PerfModel::load_model(perf_in));
    }
  } catch (const Error& e) {
    // A file that cannot be loaded is a failed swap attempt too;
    // install() journals its own failures, load failures land here.
    std::lock_guard<std::mutex> lock(mu_);
    journal(0, "rollback", e.what());
    throw;
  }
  return install(std::move(selector), std::move(perf));
}

std::shared_ptr<const ModelBundle> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->version : 0;
}

std::vector<SwapEvent> ModelRegistry::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace spmvml::serve
