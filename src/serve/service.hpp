// The online serving loop: bounded request queue -> micro-batches ->
// batched inference on the thread pool.
//
// Life of a request (DESIGN.md §5f, hardening §5h, ingest §5i):
//
//   submit() ── admission control ──> dispatch shard ──> dispatcher
//     (reject "overloaded" when full;      │  coalesces up to max_batch
//      shed when the estimated queue       │  or waits max_delay_ms
//      wait cannot meet the deadline       v
//      or the admission target)   thread-pool batch task: resolve
//               features (ingest + feature caches), run the classifier
//               ONCE per batch, per-format regressors for indirect and
//               predict requests, fulfil callbacks
//
// Sharded dispatch: submit() round-robins requests across dispatch_shards
// independent {mutex, queue, dispatcher thread} shards, so producers no
// longer serialize on one queue lock. Each shard keeps the micro-batch
// window semantics of the single dispatcher; an idle shard steals the
// oldest requests from a backlogged neighbour (overflow hint + steal
// scan), so one hot shard cannot strand latency while others sleep.
// dispatch_shards = 1 reproduces the original single-dispatcher service.
//
// Ingestion: matrix files resolve through the MatrixCache (matrix_cache.hpp)
// — stat-cache content keys, a byte-budget LRU of parsed CSRs served as
// borrowed refcounted views, binary sidecar loads, and single-flight miss
// coalescing. A repeat request costs two stat() calls and two hash-map
// lookups; the text parse happens once per distinct file content.
//
// Deadlines: a request may carry deadline_ms. Indirect selection costs a
// regressor pass per modeled format; when the measured per-item cost
// (EWMA over past batches) no longer fits in the remaining budget — or
// the deadline has already expired in the queue — the request degrades
// to the direct classifier instead of missing the deadline entirely.
//
// Degradation ladder (each rung is guarded by a circuit breaker and by
// chaos-injected faults with a bounded retry budget):
//
//   indirect (argmin of regressors)
//     └─> direct classifier          (regress breaker open / deadline)
//           └─> static CSR fallback  (feature or inference stage down;
//                                     CSR needs no model and no features,
//                                     so the selection is always valid)
//
// A watchdog thread (enabled by watchdog_ms > 0) reads the pool's
// per-worker heartbeats; when a worker has been inside one task longer
// than the budget, every overdue in-flight batch has its undelivered
// requests failed cleanly. Responses are delivered through a
// compare-and-swap slot, so a stuck worker that eventually finishes
// becomes a no-op instead of a double callback.
//
// Hot-swap: each batch pins the registry's current bundle once; a swap
// mid-batch is invisible to that batch and takes effect from the next.
// Swaps never touch the ingest cache: a borrowed matrix view stays valid
// across any number of swaps and evictions.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/arch.hpp"
#include "learn/trainer.hpp"
#include "serve/breaker.hpp"
#include "serve/feature_cache.hpp"
#include "serve/matrix_cache.hpp"
#include "sparse/csr.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/scorecard.hpp"

namespace spmvml::serve {

struct ServiceConfig {
  /// Batch-inference workers (thread pool size), clamped to >= 1.
  int threads = 1;
  /// Coalesce at most this many requests per inference batch.
  std::size_t max_batch = 16;
  /// How long the dispatcher holds an open batch waiting for more
  /// requests before running it anyway.
  double max_delay_ms = 1.0;
  /// Admission control: pending requests beyond this are rejected.
  /// The capacity is global across dispatch shards.
  std::size_t queue_capacity = 256;
  /// Feature-cache entries (0 disables the cache) and shard count.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Materialized-matrix ingest cache: byte budget for parsed CSR
  /// instances (serve --ingest-cache-mb; 0 disables caching, every load
  /// re-parses but single-flight coalescing still applies) and its LRU
  /// shard count.
  std::size_t ingest_cache_bytes = 256ull << 20;
  int ingest_cache_shards = 8;
  /// Dispatch shards (serve --shards): independent pending queues and
  /// dispatcher threads; submit round-robins across them and idle shards
  /// steal from backlogged ones. 1 = the original single dispatcher.
  int dispatch_shards = 1;
  /// Precision assumed by the memory-feasibility gate.
  Precision precision = Precision::kDouble;
  /// Default memory budget in GB (0 = unconstrained); a request's
  /// mem_budget_gb overrides it.
  double mem_budget_gb = 0.0;
  /// Deadline-feasibility load shedding: when > 0, a request whose
  /// estimated queue wait (queue depth x per-item cost EWMA / workers)
  /// exceeds this target is shed at admission with an honest
  /// "shed:overload" instead of joining a queue it cannot clear. A
  /// request carrying a deadline is additionally shed when the estimate
  /// already exceeds the deadline. 0 keeps the seed behavior (reject
  /// only when the queue is full).
  double admission_target_ms = 0.0;
  /// Per-request transient-fault retry budget (all stages combined).
  int max_retries = 2;
  /// Linear backoff between retries of a faulted stage.
  double retry_backoff_ms = 0.5;
  /// Watchdog budget: when > 0, a batch in flight longer than this while
  /// a pool worker is stuck inside one task has its requests failed
  /// cleanly. 0 disables the watchdog thread entirely.
  double watchdog_ms = 0.0;
  /// Tuning shared by the per-stage circuit breakers (features,
  /// inference, regress, materialize).
  BreakerConfig breaker;
  /// Online learning loop (serve --learn; DESIGN.md §5k). Off by
  /// default: with enabled == false the trainer is never constructed,
  /// no shadow probes run, and serving behavior is byte-identical to a
  /// build without the subsystem.
  learn::TrainerConfig learn;
};

class Service {
 public:
  using Callback = std::function<void(const Response&)>;

  Service(ServiceConfig config, ModelRegistry& registry);
  ~Service();  // drains: all accepted requests get a response

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous submit; `done` runs exactly once, on a worker thread
  /// (or inline for admission rejections). Never throws: failures are
  /// delivered as ok=false responses.
  void submit(Request req, Callback done);

  /// Future-returning submit.
  std::future<Response> submit(Request req);

  /// Synchronous convenience: submit + wait.
  Response call(Request req);

  /// Stop accepting, drain the queue, run every outstanding batch and
  /// callback, then return. Idempotent; the destructor calls it.
  void shutdown();

  const FeatureCache& cache() const { return cache_; }
  const MatrixCache& ingest() const { return ingest_; }
  /// Prediction scorecard: one entry per materialized conversion+SpMV
  /// (predicted vs measured GFLOPS, chosen-vs-best regret). The drift
  /// feed for the continual-retraining loop.
  const Scorecard& scorecard() const { return scorecard_; }
  /// Online trainer; nullptr unless the service runs with learn.enabled.
  const learn::OnlineTrainer* learner() const { return trainer_.get(); }

  struct Counters {
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;  // per-request errors (bad path, parse, ...)
    std::uint64_t shed = 0;    // admission-shed (subset of rejected)
    std::uint64_t retries = 0;          // transient-fault retries spent
    std::uint64_t watchdog_killed = 0;  // requests failed by the watchdog
    std::uint64_t breaker_trips = 0;    // sum over the stage breakers
    std::uint64_t steals = 0;  // batches an idle shard stole from another
  };
  Counters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Once-only response delivery: the batch worker and the watchdog race
  /// benignly for the same slot; the CAS guarantees exactly one wins.
  struct ResponseSlot {
    Callback done;
    std::atomic<bool> delivered{false};
    /// Win the right to respond (worker vs. watchdog race). The winner
    /// must account *before* finish(): once the callback runs, the
    /// caller may read Service::counters() and must see this request.
    bool claim() {
      bool expected = false;
      return delivered.compare_exchange_strong(expected, true);
    }
    void finish(const Response& r) { done(r); }
    bool deliver(const Response& r) {
      if (!claim()) return false;
      finish(r);
      return true;
    }
  };

  struct Pending {
    Request req;
    std::shared_ptr<ResponseSlot> slot;
    Clock::time_point enqueued;
  };

  /// One dispatch shard: its own pending queue, lock, and dispatcher
  /// thread. Producers touch exactly one shard per submit.
  struct DispatchShard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    std::thread dispatcher;  // started in the Service constructor body
  };

  /// Watchdog view of one in-flight batch: enough to fail its requests
  /// without touching the worker's state.
  struct Inflight {
    Clock::time_point started;
    std::vector<std::shared_ptr<ResponseSlot>> slots;
    std::vector<Response> skeletons;  // id/mode prefilled
  };

  void dispatcher_loop(std::size_t shard_index);
  /// Take the oldest pending requests (up to max_batch) from another
  /// shard's queue. Called with no shard lock held; returns the stolen
  /// batch (possibly empty).
  std::vector<Pending> steal_batch(std::size_t thief_index);
  void launch_batch(std::vector<Pending> batch);
  void process_batch(std::vector<Pending>& batch);
  void watchdog_loop();
  void kill_overdue(Clock::time_point now);
  /// Resolve features (+ digest when a matrix is available) for one
  /// request. Returns false after recording an error in `rsp` OR after
  /// putting the request on the static-CSR rung (`csr_fallback`). When
  /// `keep_view` is non-null (materialize requests) a borrowed ingest
  /// view of the CSR is stored into it for the stage-4 arena conversion.
  bool resolve_features(Pending& item, Response& rsp, FeatureVector& features,
                        RowSummary& summary, bool& has_summary,
                        bool& csr_fallback,
                        std::shared_ptr<const Csr<double>>* keep_view);

  ServiceConfig cfg_;
  ModelRegistry& registry_;
  FeatureCache cache_;
  MatrixCache ingest_;
  Scorecard scorecard_;
  ThreadPool pool_;

  CircuitBreaker feature_breaker_;
  CircuitBreaker inference_breaker_;
  CircuitBreaker regress_breaker_;
  CircuitBreaker materialize_breaker_;

  /// Constructed only when cfg_.learn.enabled; declared after the pool
  /// and scorecard it references so it is destroyed first (shutdown()
  /// stops it explicitly before the pool drains).
  std::unique_ptr<learn::OnlineTrainer> trainer_;
  /// Round-robin cursor for the shadow-probe format choice (learning
  /// mode only): which extra format the next materialize request times.
  std::atomic<std::uint64_t> probe_seq_{0};

  std::vector<std::unique_ptr<DispatchShard>> shards_;
  std::atomic<bool> stopping_{false};
  /// Round-robin cursor for submit()'s shard choice.
  std::atomic<std::uint64_t> submit_seq_{0};
  /// Requests sitting in shard queues (global, for the capacity gate).
  std::atomic<std::uint64_t> total_queued_{0};
  /// Backlogged-shard hint: bumped by submit() when a shard's queue
  /// exceeds one full batch; wakes a neighbour to steal.
  std::atomic<int> steal_hint_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::once_flag shutdown_once_;

  std::mutex inflight_mu_;
  std::uint64_t inflight_seq_ = 0;
  std::map<std::uint64_t, Inflight> inflight_;

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> watchdog_killed_{0};
  /// EWMA of per-item regressor cost (ms) across all formats; 0 until
  /// the first indirect/predict batch measures it.
  std::atomic<double> indirect_item_cost_ms_{0.0};
  /// EWMA of total per-item batch cost (ms): drives admission shedding.
  /// Asymmetric smoothing — falls fast (cache-warm batches should stop
  /// the shedding quickly), rises slowly (one slow batch is not a
  /// regime change).
  std::atomic<double> batch_item_cost_ms_{0.0};
  /// Items admitted but not yet finished (shard queues + batches in
  /// or awaiting the pool). The dispatchers drain their queues into
  /// pool tasks immediately, so queue sizes alone hide the real backlog.
  std::atomic<std::uint64_t> backlog_{0};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace spmvml::serve
