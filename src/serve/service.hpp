// The online serving loop: bounded request queue -> micro-batches ->
// batched inference on the thread pool.
//
// Life of a request (DESIGN.md §5f, hardening §5h):
//
//   submit() ── admission control ──> pending queue ──> dispatcher
//     (reject "overloaded" when full;      │  coalesces up to max_batch
//      shed when the estimated queue       │  or waits max_delay_ms
//      wait cannot meet the deadline       v
//      or the admission target)   thread-pool batch task: resolve
//               features (cache), run the classifier ONCE per batch,
//               per-format regressors for indirect and predict
//               requests, fulfil callbacks
//
// Deadlines: a request may carry deadline_ms. Indirect selection costs a
// regressor pass per modeled format; when the measured per-item cost
// (EWMA over past batches) no longer fits in the remaining budget — or
// the deadline has already expired in the queue — the request degrades
// to the direct classifier instead of missing the deadline entirely.
//
// Degradation ladder (each rung is guarded by a circuit breaker and by
// chaos-injected faults with a bounded retry budget):
//
//   indirect (argmin of regressors)
//     └─> direct classifier          (regress breaker open / deadline)
//           └─> static CSR fallback  (feature or inference stage down;
//                                     CSR needs no model and no features,
//                                     so the selection is always valid)
//
// A watchdog thread (enabled by watchdog_ms > 0) reads the pool's
// per-worker heartbeats; when a worker has been inside one task longer
// than the budget, every overdue in-flight batch has its undelivered
// requests failed cleanly. Responses are delivered through a
// compare-and-swap slot, so a stuck worker that eventually finishes
// becomes a no-op instead of a double callback.
//
// Hot-swap: each batch pins the registry's current bundle once; a swap
// mid-batch is invisible to that batch and takes effect from the next.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_pool.hpp"
#include "gpusim/arch.hpp"
#include "serve/breaker.hpp"
#include "serve/feature_cache.hpp"
#include "sparse/csr.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"

namespace spmvml::serve {

struct ServiceConfig {
  /// Batch-inference workers (thread pool size), clamped to >= 1.
  int threads = 1;
  /// Coalesce at most this many requests per inference batch.
  std::size_t max_batch = 16;
  /// How long the dispatcher holds an open batch waiting for more
  /// requests before running it anyway.
  double max_delay_ms = 1.0;
  /// Admission control: pending requests beyond this are rejected.
  std::size_t queue_capacity = 256;
  /// Feature-cache entries (0 disables the cache) and shard count.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Precision assumed by the memory-feasibility gate.
  Precision precision = Precision::kDouble;
  /// Default memory budget in GB (0 = unconstrained); a request's
  /// mem_budget_gb overrides it.
  double mem_budget_gb = 0.0;
  /// Deadline-feasibility load shedding: when > 0, a request whose
  /// estimated queue wait (queue depth x per-item cost EWMA / workers)
  /// exceeds this target is shed at admission with an honest
  /// "shed:overload" instead of joining a queue it cannot clear. A
  /// request carrying a deadline is additionally shed when the estimate
  /// already exceeds the deadline. 0 keeps the seed behavior (reject
  /// only when the queue is full).
  double admission_target_ms = 0.0;
  /// Per-request transient-fault retry budget (all stages combined).
  int max_retries = 2;
  /// Linear backoff between retries of a faulted stage.
  double retry_backoff_ms = 0.5;
  /// Watchdog budget: when > 0, a batch in flight longer than this while
  /// a pool worker is stuck inside one task has its requests failed
  /// cleanly. 0 disables the watchdog thread entirely.
  double watchdog_ms = 0.0;
  /// Tuning shared by the per-stage circuit breakers (features,
  /// inference, regress, materialize).
  BreakerConfig breaker;
};

class Service {
 public:
  using Callback = std::function<void(const Response&)>;

  Service(ServiceConfig config, ModelRegistry& registry);
  ~Service();  // drains: all accepted requests get a response

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous submit; `done` runs exactly once, on a worker thread
  /// (or inline for admission rejections). Never throws: failures are
  /// delivered as ok=false responses.
  void submit(Request req, Callback done);

  /// Future-returning submit.
  std::future<Response> submit(Request req);

  /// Synchronous convenience: submit + wait.
  Response call(Request req);

  /// Stop accepting, drain the queue, run every outstanding batch and
  /// callback, then return. Idempotent; the destructor calls it.
  void shutdown();

  const FeatureCache& cache() const { return cache_; }

  struct Counters {
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;  // per-request errors (bad path, parse, ...)
    std::uint64_t shed = 0;    // admission-shed (subset of rejected)
    std::uint64_t retries = 0;          // transient-fault retries spent
    std::uint64_t watchdog_killed = 0;  // requests failed by the watchdog
    std::uint64_t breaker_trips = 0;    // sum over the stage breakers
  };
  Counters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Once-only response delivery: the batch worker and the watchdog race
  /// benignly for the same slot; the CAS guarantees exactly one wins.
  struct ResponseSlot {
    Callback done;
    std::atomic<bool> delivered{false};
    bool deliver(const Response& r) {
      bool expected = false;
      if (!delivered.compare_exchange_strong(expected, true)) return false;
      done(r);
      return true;
    }
  };

  struct Pending {
    Request req;
    std::shared_ptr<ResponseSlot> slot;
    Clock::time_point enqueued;
  };

  /// Watchdog view of one in-flight batch: enough to fail its requests
  /// without touching the worker's state.
  struct Inflight {
    Clock::time_point started;
    std::vector<std::shared_ptr<ResponseSlot>> slots;
    std::vector<Response> skeletons;  // id/mode prefilled
  };

  void dispatcher_loop();
  void process_batch(std::vector<Pending>& batch);
  void watchdog_loop();
  void kill_overdue(Clock::time_point now);
  /// Resolve features (+ digest when a matrix is available) for one
  /// request. Returns false after recording an error in `rsp` OR after
  /// putting the request on the static-CSR rung (`csr_fallback`). When
  /// `keep_matrix` is non-null (materialize requests) the parsed CSR is
  /// moved into it for the stage-4 arena conversion.
  bool resolve_features(Pending& item, Response& rsp, FeatureVector& features,
                        RowSummary& summary, bool& has_summary,
                        bool& csr_fallback, Csr<double>* keep_matrix);

  ServiceConfig cfg_;
  ModelRegistry& registry_;
  FeatureCache cache_;
  ThreadPool pool_;

  CircuitBreaker feature_breaker_;
  CircuitBreaker inference_breaker_;
  CircuitBreaker regress_breaker_;
  CircuitBreaker materialize_breaker_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::once_flag shutdown_once_;

  std::mutex inflight_mu_;
  std::uint64_t inflight_seq_ = 0;
  std::map<std::uint64_t, Inflight> inflight_;

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> watchdog_killed_{0};
  /// EWMA of per-item regressor cost (ms) across all formats; 0 until
  /// the first indirect/predict batch measures it.
  std::atomic<double> indirect_item_cost_ms_{0.0};
  /// EWMA of total per-item batch cost (ms): drives admission shedding.
  std::atomic<double> batch_item_cost_ms_{0.0};
  /// Items admitted but not yet finished (dispatcher queue + batches in
  /// or awaiting the pool). The dispatcher drains `queue_` into pool
  /// tasks immediately, so queue_.size() alone hides the real backlog.
  std::atomic<std::uint64_t> backlog_{0};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  std::thread dispatcher_;  // last member: started after everything above
};

}  // namespace spmvml::serve
