// The online serving loop: bounded request queue -> micro-batches ->
// batched inference on the thread pool.
//
// Life of a request (DESIGN.md §5f):
//
//   submit() ── admission control ──> pending queue ──> dispatcher
//     (reject "overloaded" when full)      │  coalesces up to max_batch
//                                          │  or waits max_delay_ms
//                                          v
//               thread-pool batch task: resolve features (cache), run
//               the classifier ONCE per batch (batched MLP forward /
//               per-row GBT), per-format regressors for indirect and
//               predict requests, fulfil callbacks
//
// Deadlines: a request may carry deadline_ms. Indirect selection costs a
// regressor pass per modeled format; when the measured per-item cost
// (EWMA over past batches) no longer fits in the remaining budget — or
// the deadline has already expired in the queue — the request degrades
// to the direct classifier instead of missing the deadline entirely
// (the "degradation ladder": indirect -> direct -> reject-at-admission).
//
// Hot-swap: each batch pins the registry's current bundle once; a swap
// mid-batch is invisible to that batch and takes effect from the next.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "common/thread_pool.hpp"
#include "gpusim/arch.hpp"
#include "serve/feature_cache.hpp"
#include "sparse/csr.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"

namespace spmvml::serve {

struct ServiceConfig {
  /// Batch-inference workers (thread pool size), clamped to >= 1.
  int threads = 1;
  /// Coalesce at most this many requests per inference batch.
  std::size_t max_batch = 16;
  /// How long the dispatcher holds an open batch waiting for more
  /// requests before running it anyway.
  double max_delay_ms = 1.0;
  /// Admission control: pending requests beyond this are rejected.
  std::size_t queue_capacity = 256;
  /// Feature-cache entries (0 disables the cache) and shard count.
  std::size_t cache_capacity = 512;
  int cache_shards = 8;
  /// Precision assumed by the memory-feasibility gate.
  Precision precision = Precision::kDouble;
  /// Default memory budget in GB (0 = unconstrained); a request's
  /// mem_budget_gb overrides it.
  double mem_budget_gb = 0.0;
};

class Service {
 public:
  using Callback = std::function<void(const Response&)>;

  Service(ServiceConfig config, ModelRegistry& registry);
  ~Service();  // drains: all accepted requests get a response

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous submit; `done` runs exactly once, on a worker thread
  /// (or inline for admission rejections). Never throws: failures are
  /// delivered as ok=false responses.
  void submit(Request req, Callback done);

  /// Future-returning submit.
  std::future<Response> submit(Request req);

  /// Synchronous convenience: submit + wait.
  Response call(Request req);

  /// Stop accepting, drain the queue, run every outstanding batch and
  /// callback, then return. Idempotent; the destructor calls it.
  void shutdown();

  const FeatureCache& cache() const { return cache_; }

  struct Counters {
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;  // per-request errors (bad path, parse, ...)
  };
  Counters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request req;
    Callback done;
    Clock::time_point enqueued;
  };

  void dispatcher_loop();
  void process_batch(std::vector<Pending>& batch);
  /// Resolve features (+ digest when a matrix is available) for one
  /// request; returns false after delivering an error response. When
  /// `keep_matrix` is non-null (materialize requests) the parsed CSR is
  /// moved into it for the stage-4 arena conversion.
  bool resolve_features(Pending& item, Response& rsp, FeatureVector& features,
                        RowSummary& summary, bool& has_summary,
                        Csr<double>* keep_matrix);

  ServiceConfig cfg_;
  ModelRegistry& registry_;
  FeatureCache cache_;
  ThreadPool pool_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::once_flag shutdown_once_;

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> failed_{0};
  /// EWMA of per-item regressor cost (ms) across all formats; 0 until
  /// the first indirect/predict batch measures it.
  std::atomic<double> indirect_item_cost_ms_{0.0};

  std::thread dispatcher_;  // last member: started after everything above
};

}  // namespace spmvml::serve
