// Graceful drain on SIGTERM.
//
// A serving process under an orchestrator is told to die with SIGTERM
// and is expected to stop *accepting* while still *finishing*: every
// request already admitted gets its response, then the process exits 0.
// The mechanism is the smallest thing that works — the handler sets one
// atomic flag (the only async-signal-safe action worth taking), and the
// CLI's stdin loop polls the flag between reads. The handler is
// installed without SA_RESTART so a read(2) blocked on stdin returns
// EINTR instead of resuming, which bounds the reaction time to one poll
// interval even under zero traffic.
//
// request_drain() triggers the same path programmatically, which is how
// the drain tests exercise the flow without racing a real signal
// delivery against gtest's own handlers.
#pragma once

namespace spmvml::serve {

/// Install the SIGTERM handler (idempotent). No SA_RESTART: blocking
/// reads are interrupted so the loop re-checks drain_requested().
void install_drain_handler();

/// Has SIGTERM (or request_drain) been seen?
bool drain_requested();

/// Programmatic drain: same effect as receiving SIGTERM.
void request_drain();

/// Reset the flag so tests can run multiple drain cycles in one process.
void reset_drain_for_test();

}  // namespace spmvml::serve
