#include "serve/feature_cache.hpp"

#include <bit>

#include "common/obs/metrics.hpp"
#include "common/rng.hpp"

namespace spmvml::serve {

namespace {

// Cache-wide counters live in the global registry (serve.cache.*) so the
// --report summary and the serving bench see hit ratios without plumbing;
// the per-shard integers back FeatureCache::stats() for tests.
obs::Counter& hit_counter() {
  static obs::Counter c = obs::MetricsRegistry::global().counter("serve.cache.hit");
  return c;
}
obs::Counter& miss_counter() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("serve.cache.miss");
  return c;
}
obs::Counter& evict_counter() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("serve.cache.evict");
  return c;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t word) {
  return hash_combine(h, word);
}

}  // namespace

std::uint64_t matrix_content_hash(const Csr<double>& m) {
  std::uint64_t h = 0x5eed5eed5eed5eedULL;
  h = mix(h, static_cast<std::uint64_t>(m.rows()));
  h = mix(h, static_cast<std::uint64_t>(m.cols()));
  h = mix(h, static_cast<std::uint64_t>(m.nnz()));
  for (const auto v : m.row_ptr()) h = mix(h, static_cast<std::uint64_t>(v));
  for (const auto v : m.col_idx()) h = mix(h, static_cast<std::uint64_t>(v));
  for (const double v : m.values()) h = mix(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

FeatureCache::FeatureCache(std::size_t capacity, int shards) {
  const auto n = static_cast<std::size_t>(shards < 1 ? 1 : shards);
  if (capacity == 0) return;  // disabled: no shards, every get misses
  const std::size_t used = capacity < n ? capacity : n;
  shard_capacity_ = (capacity + used - 1) / used;
  shards_.reserve(used);
  for (std::size_t i = 0; i < used; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

FeatureCache::Shard& FeatureCache::shard_for(std::uint64_t key) {
  return *shards_[key % shards_.size()];
}

std::optional<CachedFeatures> FeatureCache::get(std::uint64_t key) {
  if (shards_.empty()) {
    miss_counter().inc();
    return std::nullopt;
  }
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    miss_counter().inc();
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
  ++s.hits;
  hit_counter().inc();
  return it->second->second;
}

void FeatureCache::put(std::uint64_t key, const CachedFeatures& value) {
  if (shards_.empty()) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->second = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= shard_capacity_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
    evict_counter().inc();
  }
  s.lru.emplace_front(key, value);
  s.index[key] = s.lru.begin();
}

FeatureCache::Stats FeatureCache::stats() const {
  Stats out;
  out.capacity = shard_capacity_ * shards_.size();
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    out.hits += s->hits;
    out.misses += s->misses;
    out.evictions += s->evictions;
    out.size += s->lru.size();
  }
  obs::MetricsRegistry::global().gauge("serve.cache.size").set(
      static_cast<double>(out.size));
  return out;
}

}  // namespace spmvml::serve
