// Zero-copy matrix ingestion for the serving hot path: a content-hash-
// keyed cache of parsed matrices, plus the machinery that makes repeat
// traffic cost no I/O at all.
//
// Three layers (DESIGN.md §5i):
//
//  * Stat cache: path -> (file identity, content key). A request naming a
//    file the service has already ingested resolves its content hash from
//    two stat() calls — no open, no read, no parse. File identity is
//    (size, mtime) of the matrix file and of its sidecar when one was
//    used; any change invalidates the mapping and forces a re-ingest.
//
//  * Materialized-matrix cache: sharded LRU (same contention strategy as
//    the feature cache) holding parsed Csr<double> instances behind
//    shared_ptr. Requests receive *borrowed read-only views*: the
//    shared_ptr refcount pins the matrix, so eviction — or a model
//    hot-swap, which never touches this cache — cannot invalidate an
//    in-flight batch; the storage is freed when the last view drops.
//    Capacity is a byte budget (serve --ingest-cache-mb), split evenly
//    across shards; an entry bigger than its shard's budget is served
//    uncached rather than thrashing the whole shard.
//
//  * Single-flight miss coalescing: concurrent misses on the same path
//    wait on one parse instead of running N duplicate parses. The first
//    comer parses outside any cache lock and publishes through a
//    shared_future; a parse failure propagates the same Error to every
//    waiter and is never negatively cached.
//
// Ingest resolution order for a path P (transparent to the caller):
//   1. P ends in ".spmvml-csr"  -> binary CSR load (errors propagate);
//   2. "P.spmvml-csr" exists and is not older than P -> binary CSR load,
//      falling back to 3 when the sidecar is corrupt;
//   3. Matrix Market text parse of P.
// The content key is always recomputed from the parsed arrays
// (matrix_content_hash), so both routes yield the same key — and the
// same feature-cache entries — for the same matrix.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/feature_cache.hpp"
#include "sparse/csr.hpp"

namespace spmvml::serve {

class MatrixCache {
 public:
  /// A borrowed read-only view of an ingested matrix. Holding it pins the
  /// storage regardless of cache eviction.
  struct View {
    std::shared_ptr<const Csr<double>> matrix;
    std::uint64_t key = 0;   // matrix_content_hash of *matrix
    bool cache_hit = false;  // served from the materialized cache
    bool sidecar = false;    // loaded via the binary sidecar (on parse)
  };

  /// `budget_bytes` of matrix storage across `shards` LRUs (clamped to
  /// >= 1 shard). budget 0 disables caching: every load parses, but
  /// single-flight coalescing still applies.
  explicit MatrixCache(std::size_t budget_bytes, int shards = 8);

  /// Content key for `path` from the stat cache alone (two stat calls,
  /// no reads). nullopt when the path is unknown or the file changed.
  std::optional<std::uint64_t> resolve_key(const std::string& path);

  /// Full ingest: stat-cache + LRU fast path, else single-flight parse.
  /// Throws Error(kIo/kParse) exactly like the underlying readers.
  View load(const std::string& path);

  /// Direct cache lookup by content key (refreshes LRU position).
  std::optional<std::shared_ptr<const Csr<double>>> get(std::uint64_t key);

  struct Stats {
    std::uint64_t hits = 0;         // LRU hits (incl. via resolve_key+get)
    std::uint64_t misses = 0;       // LRU misses
    std::uint64_t parses = 0;       // actual loads performed (either route)
    std::uint64_t sidecar_loads = 0;  // parses served by the binary sidecar
    std::uint64_t coalesced = 0;    // loads that waited on another's parse
    std::uint64_t evictions = 0;
    std::uint64_t oversize = 0;     // matrices too big for a shard budget
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t budget_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const Csr<double>> matrix;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used; the map holds iterators into the list.
    std::list<std::pair<std::uint64_t, Entry>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, Entry>>::iterator>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversize = 0;
  };

  /// File identity for stat-cache validity: (size, mtime) of the matrix
  /// file and of the sidecar actually used (0s when none).
  struct FileId {
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;
    std::uint64_t sidecar_size = 0;
    std::int64_t sidecar_mtime_ns = 0;
    bool operator==(const FileId&) const = default;
  };
  struct StatEntry {
    FileId id;
    std::uint64_t key = 0;
  };
  struct Flight;

  Shard& shard_for(std::uint64_t key);
  void put(std::uint64_t key, std::shared_ptr<const Csr<double>> matrix);
  /// Current on-disk identity of `path` (+ its sidecar). nullopt when the
  /// matrix file cannot be statted.
  static std::optional<FileId> file_identity(const std::string& path);
  /// The parse itself: sidecar-or-mmio with transparent fallback.
  View parse(const std::string& path, const FileId& id);

  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex stat_mu_;
  std::unordered_map<std::string, StatEntry> stat_cache_;

  std::mutex flight_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  std::atomic<std::uint64_t> parses_{0};
  std::atomic<std::uint64_t> sidecar_loads_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace spmvml::serve
