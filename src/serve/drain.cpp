#include "serve/drain.hpp"

#include <atomic>
#include <csignal>

namespace spmvml::serve {

namespace {

std::atomic<bool> g_drain{false};

// Async-signal-safe: one lock-free atomic store, nothing else.
void on_signal(int) { g_drain.store(true, std::memory_order_relaxed); }

}  // namespace

void install_drain_handler() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads
  sigaction(SIGTERM, &sa, nullptr);
}

bool drain_requested() { return g_drain.load(std::memory_order_relaxed); }

void request_drain() { g_drain.store(true, std::memory_order_relaxed); }

void reset_drain_for_test() { g_drain.store(false, std::memory_order_relaxed); }

}  // namespace spmvml::serve
