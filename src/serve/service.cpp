#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/timer.hpp"
#include "gpusim/fault.hpp"
#include "ml/dataset.hpp"
#include "sparse/arena.hpp"
#include "sparse/mmio.hpp"

namespace spmvml::serve {

namespace {

constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Clamp config knobs before any member (and the dispatcher thread, which
/// starts in the initializer list) can read them.
ServiceConfig sanitize(ServiceConfig cfg) {
  cfg.threads = cfg.threads < 1 ? 1 : cfg.threads;
  cfg.max_batch = std::max<std::size_t>(cfg.max_batch, 1);
  cfg.queue_capacity = std::max<std::size_t>(cfg.queue_capacity, 1);
  cfg.max_delay_ms = std::max(cfg.max_delay_ms, 0.0);
  return cfg;
}

}  // namespace

Service::Service(ServiceConfig config, ModelRegistry& registry)
    : cfg_(sanitize(config)),
      registry_(registry),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      pool_(cfg_.threads),
      dispatcher_([this] { dispatcher_loop(); }) {
  obs::log_info("serve.start")
      .kv("threads", pool_.size())
      .kv("max_batch", static_cast<std::uint64_t>(cfg_.max_batch))
      .kv("max_delay_ms", cfg_.max_delay_ms)
      .kv("queue_capacity", static_cast<std::uint64_t>(cfg_.queue_capacity));
}

Service::~Service() { shutdown(); }

void Service::submit(Request req, Callback done) {
  Response reject;
  reject.id = req.id;
  reject.mode = req.mode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < cfg_.queue_capacity) {
      queue_.push_back(Pending{std::move(req), std::move(done), Clock::now()});
      obs::MetricsRegistry::global().gauge("serve.queue_depth").set(
          static_cast<double>(queue_.size()));
      cv_.notify_all();
      return;
    }
    reject.error = stopping_ ? "rejected: service is shutting down"
                             : "rejected: queue full (overloaded)";
  }
  // Deliver the rejection outside the lock; the callback may do I/O.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().counter("serve.rejected").inc();
  done(reject);
}

std::future<Response> Service::submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submit(std::move(req),
         [promise](const Response& r) { promise->set_value(r); });
  return future;
}

Response Service::call(Request req) { return submit(std::move(req)).get(); }

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  std::call_once(shutdown_once_, [this] {
    dispatcher_.join();
    pool_.wait_idle();
    obs::log_info("serve.stop")
        .kv("served", served_.load())
        .kv("rejected", rejected_.load())
        .kv("degraded", degraded_.load());
  });
}

Service::Counters Service::counters() const {
  Counters c;
  c.served = served_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  return c;
}

void Service::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Micro-batch window: opened by the oldest pending request. Keep the
    // batch open until it is full or the window closes; shutdown closes
    // every window immediately so draining never waits out a delay.
    const auto close_at =
        queue_.front().enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(cfg_.max_delay_ms));
    while (!stopping_ && queue_.size() < cfg_.max_batch &&
           Clock::now() < close_at)
      cv_.wait_until(lock, close_at);

    const std::size_t n = std::min(queue_.size(), cfg_.max_batch);
    auto batch = std::make_shared<std::vector<Pending>>();
    batch->reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    obs::MetricsRegistry::global().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.size()));
    lock.unlock();
    pool_.submit([this, batch] { process_batch(*batch); });
    lock.lock();
  }
}

bool Service::resolve_features(Pending& item, Response& rsp,
                               FeatureVector& features, RowSummary& summary,
                               bool& has_summary, Csr<double>* keep_matrix) {
  has_summary = false;
  const bool inline_features = !item.req.features.empty();
  if (inline_features)
    std::copy(item.req.features.begin(), item.req.features.end(),
              features.values.begin());
  if (inline_features && keep_matrix == nullptr) return true;
  try {
    Csr<double> matrix = read_matrix_market(item.req.matrix_path);
    if (!inline_features) {
      const std::uint64_t key = matrix_content_hash(matrix);
      if (auto cached = cache_.get(key)) {
        features = cached->features;
        summary = cached->summary;
        rsp.cache_hit = true;
      } else {
        features = extract_features(matrix);
        summary = summarize(matrix);
        cache_.put(key, CachedFeatures{features, summary});
      }
      has_summary = true;
    }
    if (keep_matrix != nullptr) *keep_matrix = std::move(matrix);
    return true;
  } catch (const Error& e) {
    rsp.ok = false;
    rsp.error = std::string(error_category_name(e.category())) + ": " +
                e.what();
    return false;
  } catch (const std::exception& e) {
    rsp.ok = false;
    rsp.error = std::string("generic: ") + e.what();
    return false;
  }
}

void Service::process_batch(std::vector<Pending>& batch) {
  obs::TraceSpan span("serve.batch");
  span.arg("size", static_cast<std::uint64_t>(batch.size()));
  auto& registry_metrics = obs::MetricsRegistry::global();
  registry_metrics.histogram("serve.batch_size", kBatchBounds)
      .observe(static_cast<double>(batch.size()));

  const std::shared_ptr<const ModelBundle> bundle = registry_.current();
  const auto picked_up = Clock::now();

  struct Slot {
    Response rsp;
    FeatureVector features;
    RowSummary summary;
    Csr<double> matrix;      // kept only for materialize requests
    bool has_summary = false;
    bool live = false;       // resolved and awaiting predictions
    bool indirect = false;   // gets the regressor pass
  };
  std::vector<Slot> slots(batch.size());

  // --- Stage 1: features (file read + cache + Table II extraction). ---
  {
    obs::TraceSpan features_span("serve.features");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Slot& s = slots[i];
      s.rsp.id = batch[i].req.id;
      s.rsp.mode = batch[i].req.mode;
      s.rsp.batch = batch.size();
      s.rsp.queue_ms = ms_between(batch[i].enqueued, picked_up);
      registry_metrics.histogram("serve.queue_s", obs::default_latency_bounds_s())
          .observe(s.rsp.queue_ms / 1e3);
      if (bundle == nullptr) {
        s.rsp.error = "model-format: no model installed in the registry";
        continue;
      }
      s.rsp.model_version = bundle->version;
      s.live = resolve_features(batch[i], s.rsp, s.features, s.summary,
                                s.has_summary,
                                batch[i].req.materialize ? &s.matrix : nullptr);
    }
  }

  // --- Stage 2: one batched classifier pass over every live request. ---
  // The direct prediction is computed for all modes: select/predict use
  // it directly, indirect keeps it as the degradation target.
  if (bundle != nullptr) {
    obs::TraceSpan classify_span("serve.classify");
    ml::Matrix x;
    std::vector<std::size_t> rows;  // slot index per matrix row
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].live) continue;
      x.push_back(slots[i].features.select(bundle->selector->feature_set()));
      rows.push_back(i);
    }
    if (!x.empty()) {
      const std::vector<int> labels =
          bundle->selector->classifier().predict_batch(x);
      const auto candidates = bundle->selector->candidates();
      for (std::size_t k = 0; k < rows.size(); ++k) {
        Slot& s = slots[rows[k]];
        const int label = labels[k];
        if (label < 0 || label >= static_cast<int>(candidates.size())) {
          s.live = false;
          s.rsp.error = "model-format: classifier produced out-of-range label";
          continue;
        }
        s.rsp.predicted = candidates[static_cast<std::size_t>(label)];
        s.rsp.format = s.rsp.predicted;
      }
    }
  }

  // --- Stage 3: feasibility + indirect/predict regressor pass. ---
  if (bundle != nullptr) {
    // Deadline triage first: an indirect request whose remaining budget
    // cannot fit the (EWMA-estimated) regressor pass degrades to the
    // direct prediction computed above.
    const double est_ms = indirect_item_cost_ms_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      if (!s.live) continue;
      const RequestMode mode = batch[i].req.mode;
      if (mode == RequestMode::kSelect) continue;
      if (bundle->perf == nullptr) {
        if (mode == RequestMode::kPredict) {
          s.live = false;
          s.rsp.error = "model-format: no perf model installed (predict "
                        "needs --perf-model)";
          continue;
        }
        s.rsp.degraded = true;  // indirect without regressors: direct pick
        continue;
      }
      if (mode != RequestMode::kIndirect) {
        s.indirect = true;  // predict: always runs the regressors
        continue;
      }
      const double deadline = batch[i].req.deadline_ms;
      if (deadline > 0.0) {
        const double elapsed = ms_between(batch[i].enqueued, Clock::now());
        const double remaining = deadline - elapsed;
        if (remaining <= 0.0 || remaining < est_ms) {
          s.rsp.degraded = true;
          continue;
        }
      }
      s.indirect = true;
    }

    std::vector<std::size_t> regress_rows;
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (slots[i].live && slots[i].indirect) regress_rows.push_back(i);
    if (!regress_rows.empty()) {
      obs::TraceSpan regress_span("serve.regress");
      regress_span.arg("items", static_cast<std::uint64_t>(regress_rows.size()));
      WallTimer regress_timer;
      const auto formats = bundle->perf->formats();
      for (const std::size_t i : regress_rows) {
        Slot& s = slots[i];
        s.rsp.predicted_us.reserve(formats.size());
        for (const Format f : formats)
          s.rsp.predicted_us.emplace_back(
              f, bundle->perf->predict_seconds(s.features, f) * 1e6);
      }
      const double per_item_ms =
          regress_timer.millis() / static_cast<double>(regress_rows.size());
      double prev = indirect_item_cost_ms_.load(std::memory_order_relaxed);
      const double next = prev <= 0.0 ? per_item_ms
                                      : 0.8 * prev + 0.2 * per_item_ms;
      indirect_item_cost_ms_.store(next, std::memory_order_relaxed);
    }
  }

  // --- Stage 4: per-request finalization (feasibility, argmin, reply). ---
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& s = slots[i];
    Pending& item = batch[i];
    bool counted = false;  // select_feasible() bumps serve.select itself
    if (s.live) {
      s.rsp.ok = true;
      const double budget_gb = item.req.mem_budget_gb > 0.0
                                   ? item.req.mem_budget_gb
                                   : cfg_.mem_budget_gb;
      FeasibilityFn feasible;
      if (budget_gb > 0.0 && s.has_summary)
        feasible = make_memory_feasibility(
            s.summary, cfg_.precision,
            static_cast<std::int64_t>(budget_gb * 1e9));

      try {
        if (item.req.mode == RequestMode::kIndirect && s.indirect) {
          // Argmin of predicted times over feasible formats.
          const auto formats = bundle->perf->formats();
          double best = 0.0;
          bool found = false;
          Format best_unconstrained = s.rsp.predicted_us.front().first;
          double best_unconstrained_us =
              s.rsp.predicted_us.front().second;
          for (const auto& [f, us] : s.rsp.predicted_us) {
            if (us < best_unconstrained_us) {
              best_unconstrained = f;
              best_unconstrained_us = us;
            }
            if (feasible && !feasible(f)) continue;
            if (!found || us < best) {
              best = us;
              s.rsp.format = f;
              found = true;
            }
          }
          s.rsp.predicted = best_unconstrained;
          if (!found) {
            // Nothing feasible: CSR floor, mirroring select_feasible.
            SPMVML_ENSURE_CAT(
                std::find(formats.begin(), formats.end(), Format::kCsr) !=
                    formats.end(),
                ErrorCategory::kInfeasibleFormat,
                "no modeled format is feasible under the memory budget");
            s.rsp.format = Format::kCsr;
          }
          s.rsp.fallback = s.rsp.format != s.rsp.predicted;
        } else if (item.req.mode != RequestMode::kPredict) {
          // Direct classifier result (select, or degraded indirect).
          if (feasible) {
            const Selection sel =
                bundle->selector->select_feasible(s.features, feasible);
            s.rsp.predicted = sel.predicted;
            s.rsp.format = sel.format;
            s.rsp.fallback = sel.fallback;
            counted = true;
          }
        }
        if (item.req.materialize) {
          // One conversion arena per worker thread: a stream of requests
          // reuses its buffers, so the steady-state conversion performs
          // no heap allocation (test_arena.cpp proves this).
          thread_local ConversionArena<double> arena;
          WallTimer convert_timer;
          const AnyMatrix<double>& built =
              arena.convert(s.rsp.format, s.matrix);
          s.rsp.convert_ms = convert_timer.millis();
          s.rsp.format_bytes = built.bytes();
          s.rsp.materialized = true;
          registry_metrics
              .counter(std::string("serve.materialize.") +
                       format_name(s.rsp.format))
              .inc();
        }
      } catch (const Error& e) {
        s.rsp.ok = false;
        s.rsp.error = std::string(error_category_name(e.category())) + ": " +
                      e.what();
      }
    }

    if (s.rsp.ok && !counted && item.req.mode != RequestMode::kPredict)
      registry_metrics
          .counter(std::string("serve.select.") + format_name(s.rsp.format))
          .inc();
    if (s.rsp.ok && s.rsp.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      registry_metrics.counter("serve.deadline_degraded").inc();
    }
    if (!s.rsp.ok) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      registry_metrics.counter("serve.error").inc();
    }
    s.rsp.latency_ms = ms_between(item.enqueued, Clock::now());
    registry_metrics.histogram("serve.latency_s", obs::default_latency_bounds_s())
        .observe(s.rsp.latency_ms / 1e3);
    served_.fetch_add(1, std::memory_order_relaxed);
    registry_metrics.counter("serve.requests").inc();
    item.done(s.rsp);
  }
}

}  // namespace spmvml::serve
