#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common/chaos/chaos.hpp"
#include "common/error.hpp"
#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "features/features.hpp"
#include "gpusim/fault.hpp"
#include "ml/dataset.hpp"
#include "sparse/arena.hpp"

namespace spmvml::serve {

namespace {

constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Clamp config knobs before any member (and the dispatcher threads,
/// which start in the constructor body) can read them.
ServiceConfig sanitize(ServiceConfig cfg) {
  cfg.threads = cfg.threads < 1 ? 1 : cfg.threads;
  cfg.max_batch = std::max<std::size_t>(cfg.max_batch, 1);
  cfg.queue_capacity = std::max<std::size_t>(cfg.queue_capacity, 1);
  cfg.max_delay_ms = std::max(cfg.max_delay_ms, 0.0);
  cfg.ingest_cache_shards = std::max(cfg.ingest_cache_shards, 1);
  cfg.dispatch_shards = std::max(cfg.dispatch_shards, 1);
  cfg.admission_target_ms = std::max(cfg.admission_target_ms, 0.0);
  cfg.max_retries = std::max(cfg.max_retries, 0);
  cfg.retry_backoff_ms = std::max(cfg.retry_backoff_ms, 0.0);
  cfg.watchdog_ms = std::max(cfg.watchdog_ms, 0.0);
  return cfg;
}

/// Identity key for the chaos draws of one request: stable across
/// retries of the same request, distinct across requests.
std::uint64_t request_identity(const Request& r) {
  return chaos::identity_hash(!r.id.empty() ? r.id : r.matrix_path);
}

void backoff_sleep(int attempt, double backoff_ms) {
  if (backoff_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(backoff_ms * (attempt + 1)));
}

obs::Counter& retries_counter() {
  static obs::Counter c = obs::MetricsRegistry::global().counter("serve.retries");
  return c;
}

std::string format_ms(double ms) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << ms;
  return os.str();
}

}  // namespace

Service::Service(ServiceConfig config, ModelRegistry& registry)
    : cfg_(sanitize(config)),
      registry_(registry),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      ingest_(cfg_.ingest_cache_bytes, cfg_.ingest_cache_shards),
      pool_(cfg_.threads),
      feature_breaker_("features", cfg_.breaker),
      inference_breaker_("inference", cfg_.breaker),
      regress_breaker_("regress", cfg_.breaker),
      materialize_breaker_("materialize", cfg_.breaker) {
  const auto n_shards = static_cast<std::size_t>(cfg_.dispatch_shards);
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<DispatchShard>());
  // Dispatchers start only after every shard exists: a thief may scan
  // the whole shard vector on its first wakeup.
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_[i]->dispatcher = std::thread([this, i] { dispatcher_loop(i); });
  if (cfg_.watchdog_ms > 0.0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
  if (cfg_.learn.enabled)
    trainer_ = std::make_unique<learn::OnlineTrainer>(cfg_.learn, scorecard_,
                                                      registry_, pool_);
  obs::log_info("serve.start")
      .kv("threads", pool_.size())
      .kv("max_batch", static_cast<std::uint64_t>(cfg_.max_batch))
      .kv("max_delay_ms", cfg_.max_delay_ms)
      .kv("queue_capacity", static_cast<std::uint64_t>(cfg_.queue_capacity))
      .kv("dispatch_shards", static_cast<std::uint64_t>(n_shards))
      .kv("ingest_cache_mb",
          static_cast<std::uint64_t>(cfg_.ingest_cache_bytes >> 20))
      .kv("admission_target_ms", cfg_.admission_target_ms)
      .kv("watchdog_ms", cfg_.watchdog_ms);
}

Service::~Service() { shutdown(); }

void Service::submit(Request req, Callback done) {
  // Sampling was decided once at parse; it travels with the request (so
  // it survives shard hand-offs and work-stealing) and only turns into
  // events while a trace is actually recording.
  const bool sampled = req.trace_sampled && obs::trace_enabled();
  if (sampled) obs::trace_instant("req.admit", req.id);
  auto slot = std::make_shared<ResponseSlot>();
  slot->done = std::move(done);
  Response reject;
  reject.id = req.id;
  reject.mode = req.mode;
  const std::size_t shard_index =
      submit_seq_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  DispatchShard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load(std::memory_order_relaxed)) {
      reject.error = "rejected: service is shutting down";
    } else {
      // Deadline-feasibility shedding: admitting a request the queue
      // cannot clear in time only manufactures a deadline miss (or an
      // unbounded latency tail); reject it honestly instead. The wait
      // estimate is backlog x per-item batch cost over the worker
      // count; before the first batch the EWMA is 0 and everything is
      // admitted (the seed behavior).
      const double item_ms = batch_item_cost_ms_.load(std::memory_order_relaxed);
      const double est_wait_ms =
          item_ms > 0.0
              ? static_cast<double>(backlog_.load(std::memory_order_relaxed)) *
                    item_ms / static_cast<double>(pool_.size())
              : 0.0;
      reject.est_wait_ms = est_wait_ms;
      // Reserve a queue slot; the capacity gate is global across shards.
      const std::uint64_t depth =
          total_queued_.fetch_add(1, std::memory_order_relaxed);
      if (depth >= cfg_.queue_capacity) {
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
        reject.error = "rejected: queue full (overloaded)";
        reject.shed = "shed:queue_full";
      } else {
        const bool over_target = cfg_.admission_target_ms > 0.0 &&
                                 est_wait_ms > cfg_.admission_target_ms;
        const bool misses_deadline =
            req.deadline_ms > 0.0 && est_wait_ms > req.deadline_ms;
        if (!over_target && !misses_deadline) {
          backlog_.fetch_add(1, std::memory_order_relaxed);
          shard.queue.push_back(
              Pending{std::move(req), std::move(slot), Clock::now()});
          obs::MetricsRegistry::global().gauge("serve.queue_depth").set(
              static_cast<double>(depth + 1));
          if (shards_.size() > 1 && shard.queue.size() > cfg_.max_batch) {
            // More than a full batch pending here: hint an idle
            // neighbour to steal the overflow.
            steal_hint_.fetch_add(1, std::memory_order_relaxed);
            shards_[(shard_index + 1) % shards_.size()]->cv.notify_one();
          }
          shard.cv.notify_all();
          return;
        }
        total_queued_.fetch_sub(1, std::memory_order_relaxed);
        reject.shed = misses_deadline && !over_target ? "shed:deadline"
                                                      : "shed:overload";
        reject.error = "rejected: estimated queue wait " +
                       format_ms(est_wait_ms) + "ms exceeds " +
                       (misses_deadline && !over_target
                            ? "the request deadline"
                            : "the admission target");
      }
    }
  }
  // Deliver the rejection outside the lock; the callback may do I/O.
  if (sampled) obs::trace_instant("req.shed", reject.id);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::global().counter("serve.rejected").inc();
  if (!reject.shed.empty()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global()
        .counter("serve." + std::string(reject.shed).replace(4, 1, "."))
        .inc();
  }
  slot->deliver(reject);
}

std::future<Response> Service::submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  submit(std::move(req),
         [promise](const Response& r) { promise->set_value(r); });
  return future;
}

Response Service::call(Request req) { return submit(std::move(req)).get(); }

void Service::shutdown() {
  stopping_.store(true);
  // Lock-fence every shard: any submit that read stopping_ == false has
  // finished its push (and its notify) by the time we have held that
  // shard's mutex, so the wakeups below cannot miss a late enqueue.
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
  }
  for (auto& s : shards_) s->cv.notify_all();
  std::call_once(shutdown_once_, [this] {
    for (auto& s : shards_)
      if (s->dispatcher.joinable()) s->dispatcher.join();
    // The trainer stops before the pool drains: its poll thread must not
    // submit new training tasks once wait_idle() starts counting.
    if (trainer_) trainer_->stop();
    pool_.wait_idle();
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    obs::log_info("serve.stop")
        .kv("served", served_.load())
        .kv("rejected", rejected_.load())
        .kv("degraded", degraded_.load())
        .kv("shed", shed_.load())
        .kv("steals", steals_.load())
        .kv("watchdog_killed", watchdog_killed_.load());
  });
}

Service::Counters Service::counters() const {
  Counters c;
  c.served = served_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.retries = retried_.load(std::memory_order_relaxed);
  c.watchdog_killed = watchdog_killed_.load(std::memory_order_relaxed);
  c.breaker_trips = feature_breaker_.trips() + inference_breaker_.trips() +
                    regress_breaker_.trips() + materialize_breaker_.trips();
  c.steals = steals_.load(std::memory_order_relaxed);
  return c;
}

void Service::launch_batch(std::vector<Pending> batch) {
  total_queued_.fetch_sub(batch.size(), std::memory_order_relaxed);
  obs::MetricsRegistry::global().gauge("serve.queue_depth").set(
      static_cast<double>(total_queued_.load(std::memory_order_relaxed)));
  auto shared = std::make_shared<std::vector<Pending>>(std::move(batch));
  pool_.submit([this, shared] { process_batch(*shared); });
}

std::vector<Service::Pending> Service::steal_batch(std::size_t thief_index) {
  std::vector<Pending> stolen;
  const std::size_t n_shards = shards_.size();
  for (std::size_t off = 1; off < n_shards && stolen.empty(); ++off) {
    DispatchShard& victim = *shards_[(thief_index + off) % n_shards];
    std::lock_guard<std::mutex> lock(victim.mu);
    // Only a genuine backlog (more than one full batch) is worth
    // stealing; raiding a shard mid-window would just fragment its
    // batch. Take the OLDEST requests — they have waited longest and
    // need no further batching delay.
    if (victim.queue.size() <= cfg_.max_batch) continue;
    const std::size_t n = std::min(cfg_.max_batch, victim.queue.size() / 2);
    stolen.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      stolen.push_back(std::move(victim.queue.front()));
      victim.queue.pop_front();
    }
  }
  return stolen;
}

void Service::dispatcher_loop(std::size_t shard_index) {
  DispatchShard& self = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(self.mu);
  for (;;) {
    self.cv.wait(lock, [&] {
      return stopping_.load(std::memory_order_relaxed) ||
             !self.queue.empty() ||
             (shards_.size() > 1 &&
              steal_hint_.load(std::memory_order_relaxed) > 0);
    });
    if (self.queue.empty()) {
      if (shards_.size() > 1 &&
          steal_hint_.load(std::memory_order_relaxed) > 0) {
        // Consume one hint, then scan the other shards for overflow. A
        // stale hint (the owner drained first) costs one idle scan.
        int h = steal_hint_.load(std::memory_order_relaxed);
        while (h > 0 && !steal_hint_.compare_exchange_weak(
                            h, h - 1, std::memory_order_relaxed)) {
        }
        lock.unlock();
        std::vector<Pending> stolen = steal_batch(shard_index);
        if (!stolen.empty()) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          obs::MetricsRegistry::global().counter("serve.steal").inc();
          launch_batch(std::move(stolen));
        }
        lock.lock();
        continue;
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    // Micro-batch window: opened by the oldest pending request. Keep the
    // batch open until it is full or the window closes; shutdown closes
    // every window immediately so draining never waits out a delay.
    const auto close_at =
        self.queue.front().enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(cfg_.max_delay_ms));
    while (!stopping_.load(std::memory_order_relaxed) &&
           self.queue.size() < cfg_.max_batch && Clock::now() < close_at)
      self.cv.wait_until(lock, close_at);
    if (self.queue.empty()) continue;  // a thief drained us mid-window

    const std::size_t n = std::min(self.queue.size(), cfg_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(self.queue.front()));
      self.queue.pop_front();
    }
    lock.unlock();
    launch_batch(std::move(batch));
    lock.lock();
  }
}

void Service::watchdog_loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      std::max(1.0, cfg_.watchdog_ms / 4.0));
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, period);
    if (watchdog_stop_) return;
    lock.unlock();
    kill_overdue(Clock::now());
    lock.lock();
  }
}

void Service::kill_overdue(Clock::time_point now) {
  // Only act when a pool worker is demonstrably stuck inside one task —
  // an overdue batch whose worker is still making progress across tasks
  // is latency, not a hang, and the breakers own that.
  bool stuck = false;
  for (const auto& hb : pool_.heartbeats())
    if (hb.busy && hb.busy_s * 1e3 >= cfg_.watchdog_ms) {
      stuck = true;
      break;
    }
  if (!stuck) return;

  std::vector<Inflight> victims;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (ms_between(it->second.started, now) >= cfg_.watchdog_ms) {
        victims.push_back(std::move(it->second));
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto& registry_metrics = obs::MetricsRegistry::global();
  for (auto& v : victims) {
    for (std::size_t i = 0; i < v.slots.size(); ++i) {
      Response r = v.skeletons[i];
      r.ok = false;
      r.error = "watchdog: batch exceeded the " + format_ms(cfg_.watchdog_ms) +
                "ms budget (worker stuck); request failed cleanly";
      r.latency_ms = ms_between(v.started, now);
      if (v.slots[i]->claim()) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        watchdog_killed_.fetch_add(1, std::memory_order_relaxed);
        registry_metrics.counter("serve.watchdog.killed").inc();
        registry_metrics.counter("serve.error").inc();
        obs::log_warn("serve.watchdog.kill")
            .kv("id", r.id)
            .kv("batch_age_ms", r.latency_ms);
        v.slots[i]->finish(r);
      }
    }
  }
}

bool Service::resolve_features(Pending& item, Response& rsp,
                               FeatureVector& features, RowSummary& summary,
                               bool& has_summary, bool& csr_fallback,
                               std::shared_ptr<const Csr<double>>* keep_view) {
  has_summary = false;
  csr_fallback = false;
  const bool inline_features = !item.req.features.empty();
  if (inline_features)
    std::copy(item.req.features.begin(), item.req.features.end(),
              features.values.begin());
  if (inline_features && keep_view == nullptr) return true;

  if (inline_features) {
    // Inline features + materialize: only the CSR master copy is needed,
    // and it comes from the ingest cache — a repeat matrix costs zero
    // parses (this path used to re-read the text file every request).
    try {
      *keep_view = ingest_.load(item.req.matrix_path).matrix;
      return true;
    } catch (const Error& e) {
      rsp.ok = false;
      rsp.error = std::string(error_category_name(e.category())) + ": " +
                  e.what();
      return false;
    } catch (const std::exception& e) {
      rsp.ok = false;
      rsp.error = std::string("generic: ") + e.what();
      return false;
    }
  }

  if (!feature_breaker_.allow(Clock::now())) {
    // Feature stage is down: walk to the bottom rung of the ladder
    // instead of hammering it. CSR needs no features, so select and
    // indirect stay answerable; predict has no floor to stand on.
    if (item.req.mode == RequestMode::kPredict) {
      rsp.ok = false;
      rsp.error =
          "unavailable: feature stage breaker open (predict has no "
          "degradation floor)";
      return false;
    }
    csr_fallback = true;
    rsp.degraded = true;
    rsp.degrade_reason = "breaker:features";
    return false;
  }

  const std::uint64_t identity = request_identity(item.req);
  try {
    WallTimer stage_timer;
    // Chaos site cache_lookup: a failed cache shard fails open to a
    // miss — features are recomputed, never served stale or wrong.
    bool cache_usable = true;
    const chaos::Fault cache_fault =
        chaos::hit(chaos::Site::kCacheLookup, identity);
    if (cache_fault) {
      chaos::apply_latency(cache_fault);
      if (cache_fault.kind != chaos::FaultKind::kLatency)
        cache_usable = false;
    }

    // Zero-copy fast path: resolve the content key from the stat cache
    // (two stat() calls, no reads) and serve cached features without
    // ever touching the matrix bytes. Warm repeat traffic does no file
    // I/O at all on this route.
    if (cache_usable) {
      if (const auto key = ingest_.resolve_key(item.req.matrix_path)) {
        if (std::optional<CachedFeatures> cached = cache_.get(*key)) {
          features = cached->features;
          summary = cached->summary;
          rsp.cache_hit = true;
          has_summary = true;
          feature_breaker_.record(true, stage_timer.millis(), Clock::now());
          if (keep_view != nullptr)
            *keep_view = ingest_.load(item.req.matrix_path).matrix;
          return true;
        }
      }
    }

    // Feature miss (or the cache is chaos-disabled): materialize the
    // matrix through the ingest cache — LRU hit, sidecar bulk read, or
    // text parse, whichever is cheapest — then extract.
    std::shared_ptr<const Csr<double>> view;
    std::uint64_t content_key = 0;
    {
      MatrixCache::View loaded = ingest_.load(item.req.matrix_path);
      view = std::move(loaded.matrix);
      content_key = loaded.key;
    }
    std::optional<CachedFeatures> cached =
        cache_usable ? cache_.get(content_key) : std::nullopt;
    if (cached) {
      features = cached->features;
      summary = cached->summary;
      rsp.cache_hit = true;
    } else {
      // Chaos site feature_extract: transient errors retry with
      // backoff inside the per-request budget; corruption perturbs
      // the extracted vector (and is never cached).
      chaos::Fault fault{};
      bool exhausted = false;
      for (int attempt = 0;; ++attempt) {
        fault = chaos::hit(chaos::Site::kFeatureExtract,
                           chaos::with_attempt(identity, attempt));
        if (fault) chaos::apply_latency(fault);
        if (fault.kind != chaos::FaultKind::kError) break;
        if (rsp.retries >= cfg_.max_retries) {
          exhausted = true;
          break;
        }
        ++rsp.retries;
        retried_.fetch_add(1, std::memory_order_relaxed);
        retries_counter().inc();
        backoff_sleep(attempt, cfg_.retry_backoff_ms);
      }
      if (exhausted) {
        feature_breaker_.record(false, stage_timer.millis(), Clock::now());
        if (item.req.mode == RequestMode::kPredict) {
          rsp.ok = false;
          rsp.error =
              "io: injected feature-extract fault persisted past the "
              "retry budget";
          return false;
        }
        csr_fallback = true;
        rsp.degraded = true;
        rsp.degrade_reason = "chaos:feature_extract";
        if (keep_view != nullptr) *keep_view = std::move(view);
        return false;
      }
      // In-batch parallel extraction: the pool workers cooperate on the
      // blocked scan and the caller participates, so this is safe (and
      // degrades to the serial scan) even though we ARE a pool worker.
      features = extract_features(*view, &pool_);
      summary = summarize(*view);
      if (fault.kind == chaos::FaultKind::kCorrupt) {
        // Corrupted extraction: every value off by a sign flip. The
        // classifier still yields an in-range label (possibly a bad
        // pick — chaos tests assert validity, not optimality) and the
        // poisoned vector must never enter the cache.
        for (double& v : features.values) v = -v;
      } else {
        cache_.put(content_key, CachedFeatures{features, summary});
      }
    }
    has_summary = true;
    feature_breaker_.record(true, stage_timer.millis(), Clock::now());
    if (keep_view != nullptr) *keep_view = std::move(view);
    return true;
  } catch (const Error& e) {
    feature_breaker_.record(false, 0.0, Clock::now());
    rsp.ok = false;
    rsp.error = std::string(error_category_name(e.category())) + ": " +
                e.what();
    return false;
  } catch (const std::exception& e) {
    feature_breaker_.record(false, 0.0, Clock::now());
    rsp.ok = false;
    rsp.error = std::string("generic: ") + e.what();
    return false;
  }
}

void Service::process_batch(std::vector<Pending>& batch) {
  obs::TraceSpan span("serve.batch");
  span.arg("size", static_cast<std::uint64_t>(batch.size()));
  auto& registry_metrics = obs::MetricsRegistry::global();
  registry_metrics.histogram("serve.batch_size", kBatchBounds)
      .observe(static_cast<double>(batch.size()));

  const std::shared_ptr<const ModelBundle> bundle = registry_.current();
  const auto picked_up = Clock::now();

  // Register with the watchdog before doing any work: a hang anywhere
  // below must be recoverable from outside this thread.
  std::uint64_t inflight_id = 0;
  if (cfg_.watchdog_ms > 0.0) {
    Inflight rec;
    rec.started = picked_up;
    rec.slots.reserve(batch.size());
    rec.skeletons.reserve(batch.size());
    for (const Pending& p : batch) {
      rec.slots.push_back(p.slot);
      Response skeleton;
      skeleton.id = p.req.id;
      skeleton.mode = p.req.mode;
      rec.skeletons.push_back(std::move(skeleton));
    }
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_id = ++inflight_seq_;
    inflight_.emplace(inflight_id, std::move(rec));
  }

  struct Slot {
    Response rsp;
    FeatureVector features;
    RowSummary summary;
    /// Borrowed ingest view, kept only for materialize requests. Pins
    /// the CSR against cache eviction for the life of the batch.
    std::shared_ptr<const Csr<double>> view;
    bool has_summary = false;
    bool live = false;         // resolved and awaiting predictions
    bool indirect = false;     // gets the regressor pass
    bool csr_fallback = false; // bottom rung: static CSR, no model pass
  };
  std::vector<Slot> slots(batch.size());

  // Per-batch stage breakdown: every request in the batch shares these
  // (the stages run at batch granularity), reported as "stage_ms".
  const bool tracing = obs::trace_enabled();
  double stage_features_ms = 0.0;
  double stage_classify_ms = 0.0;
  double stage_regress_ms = 0.0;
  double stage_finalize_ms = 0.0;

  // --- Stage 1: features (ingest + caches + Table II extraction). ---
  {
    obs::TraceSpan features_span("serve.features");
    WallTimer stage_timer;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Slot& s = slots[i];
      const bool sampled = tracing && batch[i].req.trace_sampled;
      s.rsp.id = batch[i].req.id;
      s.rsp.mode = batch[i].req.mode;
      s.rsp.batch = batch.size();
      s.rsp.queue_ms = ms_between(batch[i].enqueued, picked_up);
      registry_metrics.histogram("serve.queue_s", obs::default_latency_bounds_s())
          .observe(s.rsp.queue_ms / 1e3);
      // Queue wait started on the submitting thread and ended here
      // (possibly after a steal), so it is recorded retroactively.
      if (sampled)
        obs::trace_complete("req.queue", s.rsp.queue_ms * 1e3, s.rsp.id);
      if (bundle == nullptr) {
        s.rsp.error = "model-format: no model installed in the registry";
        continue;
      }
      s.rsp.model_version = bundle->version;
      WallTimer request_timer;
      s.live = resolve_features(batch[i], s.rsp, s.features, s.summary,
                                s.has_summary, s.csr_fallback,
                                batch[i].req.materialize ? &s.view : nullptr);
      if (sampled)
        obs::trace_complete("req.features", request_timer.millis() * 1e3,
                            s.rsp.id);
    }
    stage_features_ms = stage_timer.millis();
  }

  // --- Stage 2: one batched classifier pass over every live request. ---
  // The direct prediction is computed for all modes: select/predict use
  // it directly, indirect keeps it as the degradation target. An open
  // inference breaker sends select/indirect to the CSR rung wholesale.
  if (bundle != nullptr) {
    obs::TraceSpan classify_span("serve.classify");
    WallTimer stage_timer;
    const bool inference_up = inference_breaker_.allow(Clock::now());
    ml::Matrix x;
    std::vector<std::size_t> rows;  // slot index per matrix row
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      if (!s.live || s.csr_fallback) continue;
      if (!inference_up) {
        if (batch[i].req.mode == RequestMode::kPredict) {
          s.live = false;
          s.rsp.error =
              "unavailable: inference breaker open (predict has no "
              "degradation floor)";
          continue;
        }
        s.csr_fallback = true;
        s.rsp.degraded = true;
        s.rsp.degrade_reason = "breaker:inference";
        continue;
      }
      x.push_back(s.features.select(bundle->selector->feature_set()));
      rows.push_back(i);
    }
    if (!x.empty()) {
      WallTimer classify_timer;
      const std::vector<int> labels =
          bundle->selector->classifier().predict_batch(x);
      const double per_item_ms =
          classify_timer.millis() / static_cast<double>(rows.size());
      const auto candidates = bundle->selector->candidates();
      for (std::size_t k = 0; k < rows.size(); ++k) {
        Slot& s = slots[rows[k]];
        const std::uint64_t identity = request_identity(batch[rows[k]].req);
        // Chaos site inference: per-request faults over the batched
        // result. Transient errors re-roll per attempt (the labels are
        // already computed, so a "retry" costs only the draw); a fault
        // that outlives the budget — or a corrupted label — degrades to
        // CSR rather than ever serving an invalid selection.
        chaos::Fault fault{};
        for (int attempt = 0;; ++attempt) {
          fault = chaos::hit(chaos::Site::kInference,
                             chaos::with_attempt(identity, attempt));
          if (fault.kind != chaos::FaultKind::kError ||
              s.rsp.retries >= cfg_.max_retries)
            break;
          ++s.rsp.retries;
          retried_.fetch_add(1, std::memory_order_relaxed);
          retries_counter().inc();
          backoff_sleep(attempt, cfg_.retry_backoff_ms);
        }
        if (fault) chaos::apply_latency(fault);
        const bool injected = fault.kind == chaos::FaultKind::kError ||
                              fault.kind == chaos::FaultKind::kCorrupt;
        const int label = injected ? -1 : labels[k];
        if (label < 0 || label >= static_cast<int>(candidates.size())) {
          inference_breaker_.record(false, per_item_ms, Clock::now());
          if (!injected) {
            s.live = false;
            s.rsp.error =
                "model-format: classifier produced out-of-range label";
            continue;
          }
          if (batch[rows[k]].req.mode == RequestMode::kPredict) {
            s.live = false;
            s.rsp.error =
                "model-format: injected inference fault persisted past "
                "the retry budget";
            continue;
          }
          s.csr_fallback = true;
          s.rsp.degraded = true;
          s.rsp.degrade_reason = "chaos:inference";
          continue;
        }
        inference_breaker_.record(true, per_item_ms, Clock::now());
        s.rsp.predicted = candidates[static_cast<std::size_t>(label)];
        s.rsp.format = s.rsp.predicted;
        if (tracing && batch[rows[k]].req.trace_sampled)
          obs::trace_instant("req.infer", s.rsp.id);
      }
    }
    stage_classify_ms = stage_timer.millis();
  }

  // --- Stage 3: feasibility + indirect/predict regressor pass. ---
  if (bundle != nullptr) {
    WallTimer stage_timer;
    // Deadline triage first: an indirect request whose remaining budget
    // cannot fit the (EWMA-estimated) regressor pass degrades to the
    // direct prediction computed above. An open regress breaker does
    // the same for the whole batch (first rung of the ladder).
    const bool regress_up = regress_breaker_.allow(Clock::now());
    const double est_ms = indirect_item_cost_ms_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      if (!s.live || s.csr_fallback) continue;
      const RequestMode mode = batch[i].req.mode;
      if (mode == RequestMode::kSelect) continue;
      if (bundle->perf == nullptr) {
        if (mode == RequestMode::kPredict) {
          s.live = false;
          s.rsp.error = "model-format: no perf model installed (predict "
                        "needs --perf-model)";
          continue;
        }
        s.rsp.degraded = true;  // indirect without regressors: direct pick
        s.rsp.degrade_reason = "no_perf_model";
        continue;
      }
      if (!regress_up) {
        if (mode == RequestMode::kPredict) {
          s.live = false;
          s.rsp.error =
              "unavailable: regress breaker open (predict has no "
              "degradation floor)";
          continue;
        }
        s.rsp.degraded = true;
        s.rsp.degrade_reason = "breaker:regress";
        continue;
      }
      if (mode != RequestMode::kIndirect) {
        s.indirect = true;  // predict: always runs the regressors
        continue;
      }
      const double deadline = batch[i].req.deadline_ms;
      if (deadline > 0.0) {
        const double elapsed = ms_between(batch[i].enqueued, Clock::now());
        const double remaining = deadline - elapsed;
        if (remaining <= 0.0 || remaining < est_ms) {
          s.rsp.degraded = true;
          s.rsp.degrade_reason = "deadline";
          continue;
        }
      }
      s.indirect = true;
    }

    std::vector<std::size_t> regress_rows;
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (slots[i].live && slots[i].indirect) regress_rows.push_back(i);
    if (!regress_rows.empty()) {
      obs::TraceSpan regress_span("serve.regress");
      regress_span.arg("items", static_cast<std::uint64_t>(regress_rows.size()));
      WallTimer regress_timer;
      const auto formats = bundle->perf->formats();
      for (const std::size_t i : regress_rows) {
        Slot& s = slots[i];
        s.rsp.predicted_us.reserve(formats.size());
        for (const Format f : formats)
          s.rsp.predicted_us.emplace_back(
              f, bundle->perf->predict_seconds(s.features, f) * 1e6);
      }
      const double per_item_ms =
          regress_timer.millis() / static_cast<double>(regress_rows.size());
      for (std::size_t k = 0; k < regress_rows.size(); ++k)
        regress_breaker_.record(true, per_item_ms, Clock::now());
      double prev = indirect_item_cost_ms_.load(std::memory_order_relaxed);
      const double next = prev <= 0.0 ? per_item_ms
                                      : 0.8 * prev + 0.2 * per_item_ms;
      indirect_item_cost_ms_.store(next, std::memory_order_relaxed);
    }
    stage_regress_ms = stage_timer.millis();
  }

  // --- Stage 4: per-request finalization (feasibility + argmin). ---
  // Replies are delivered in a separate pass below, after the admission
  // cost EWMA is updated: a caller woken by its response must observe a
  // backlog estimate that already accounts for this batch.
  std::vector<char> counted(batch.size(), 0);  // select_feasible() bumps
                                               // serve.select itself
  WallTimer finalize_timer;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& s = slots[i];
    Pending& item = batch[i];
    if (s.live || s.csr_fallback) {
      s.rsp.ok = true;
      if (s.csr_fallback) {
        // Bottom rung: CSR is the universal floor — valid for every
        // matrix, needs no model and no features.
        s.rsp.format = Format::kCsr;
        s.rsp.predicted = Format::kCsr;
        s.rsp.fallback = false;
      }
      const double budget_gb = item.req.mem_budget_gb > 0.0
                                   ? item.req.mem_budget_gb
                                   : cfg_.mem_budget_gb;
      FeasibilityFn feasible;
      if (budget_gb > 0.0 && s.has_summary)
        feasible = make_memory_feasibility(
            s.summary, cfg_.precision,
            static_cast<std::int64_t>(budget_gb * 1e9));

      try {
        if (s.live && item.req.mode == RequestMode::kIndirect && s.indirect) {
          // Argmin of predicted times over feasible formats.
          const auto formats = bundle->perf->formats();
          double best = 0.0;
          bool found = false;
          Format best_unconstrained = s.rsp.predicted_us.front().first;
          double best_unconstrained_us =
              s.rsp.predicted_us.front().second;
          for (const auto& [f, us] : s.rsp.predicted_us) {
            if (us < best_unconstrained_us) {
              best_unconstrained = f;
              best_unconstrained_us = us;
            }
            if (feasible && !feasible(f)) continue;
            if (!found || us < best) {
              best = us;
              s.rsp.format = f;
              found = true;
            }
          }
          s.rsp.predicted = best_unconstrained;
          if (!found) {
            // Nothing feasible: CSR floor, mirroring select_feasible.
            SPMVML_ENSURE_CAT(
                std::find(formats.begin(), formats.end(), Format::kCsr) !=
                    formats.end(),
                ErrorCategory::kInfeasibleFormat,
                "no modeled format is feasible under the memory budget");
            s.rsp.format = Format::kCsr;
          }
          s.rsp.fallback = s.rsp.format != s.rsp.predicted;
        } else if (s.live && item.req.mode != RequestMode::kPredict) {
          // Direct classifier result (select, or degraded indirect).
          if (feasible) {
            const Selection sel =
                bundle->selector->select_feasible(s.features, feasible);
            s.rsp.predicted = sel.predicted;
            s.rsp.format = sel.format;
            s.rsp.fallback = sel.fallback;
            counted[i] = 1;
          }
        }
        if (item.req.materialize && s.view != nullptr) {
          if (!materialize_breaker_.allow(Clock::now())) {
            // Conversion stage down: the selection is still served, the
            // caller just builds the format itself.
            s.rsp.degraded = true;
            if (s.rsp.degrade_reason.empty())
              s.rsp.degrade_reason = "breaker:materialize";
          } else {
            // Chaos site materialize: transient conversion faults retry
            // with backoff; exhaustion keeps the response valid with
            // materialized=false.
            const std::uint64_t identity = request_identity(item.req);
            chaos::Fault fault{};
            bool exhausted = false;
            for (int attempt = 0;; ++attempt) {
              fault = chaos::hit(chaos::Site::kMaterialize,
                                 chaos::with_attempt(identity, attempt));
              if (fault) chaos::apply_latency(fault);
              if (fault.kind != chaos::FaultKind::kError &&
                  fault.kind != chaos::FaultKind::kCorrupt)
                break;
              if (s.rsp.retries >= cfg_.max_retries) {
                exhausted = true;
                break;
              }
              ++s.rsp.retries;
              retried_.fetch_add(1, std::memory_order_relaxed);
              retries_counter().inc();
              backoff_sleep(attempt, cfg_.retry_backoff_ms);
            }
            if (exhausted) {
              materialize_breaker_.record(false, 0.0, Clock::now());
              s.rsp.degraded = true;
              if (s.rsp.degrade_reason.empty())
                s.rsp.degrade_reason = "chaos:materialize";
            } else {
              // One conversion arena per worker thread: a stream of
              // requests reuses its buffers, so the steady-state
              // conversion performs no heap allocation. The borrowed
              // view is read-only; the arena copies what it needs.
              thread_local ConversionArena<double> arena;
              WallTimer materialize_timer;
              WallTimer convert_timer;
              const AnyMatrix<double>& built =
                  arena.convert(s.rsp.format, *s.view);
              s.rsp.convert_ms = convert_timer.millis();
              s.rsp.format_bytes = built.bytes();
              s.rsp.materialized = true;
              materialize_breaker_.record(true, s.rsp.convert_ms,
                                          Clock::now());
              registry_metrics
                  .counter(std::string("serve.materialize.") +
                           format_name(s.rsp.format))
                  .inc();

              // Prediction scorecard: this is the one place the service
              // holds both the model's opinion and a real, just-built
              // format — run one SpMV on it and ledger predicted vs
              // measured. The x/y vectors are thread_local like the
              // arena, so steady state allocates nothing.
              thread_local std::vector<double> spmv_x, spmv_y;
              spmv_x.assign(static_cast<std::size_t>(s.view->cols()), 1.0);
              spmv_y.assign(static_cast<std::size_t>(s.view->rows()), 0.0);
              WallTimer spmv_timer;
              built.spmv(spmv_x, spmv_y);
              // Clamp: a sub-resolution measurement must not produce an
              // infinite GFLOPS figure.
              const double spmv_s = std::max(spmv_timer.seconds(), 1e-9);
              s.rsp.spmv_ms = spmv_s * 1e3;
              const double flops = 2.0 * static_cast<double>(s.view->nnz());
              s.rsp.measured_gflops = flops / spmv_s / 1e9;

              ScorecardEntry entry;
              entry.features_hash = features_fingerprint(s.features.values);
              entry.features = s.features.values;
              entry.chosen = s.rsp.format;
              entry.predicted_best = s.rsp.format;
              entry.measured_gflops = s.rsp.measured_gflops;
              entry.model_version = s.rsp.model_version;
              // Per-format predicted times: reuse the regressor pass when
              // stage 3 ran it, otherwise price the formats here (the
              // conversion+SpMV just done dwarfs this pass).
              std::vector<std::pair<Format, double>> predicted_us =
                  s.rsp.predicted_us;
              if (predicted_us.empty() && bundle->perf != nullptr)
                for (const Format f : bundle->perf->formats())
                  predicted_us.emplace_back(
                      f,
                      bundle->perf->predict_seconds(s.features, f) * 1e6);
              if (!predicted_us.empty()) {
                double chosen_us = 0.0;
                double best_us = 0.0;
                for (const auto& [f, us] : predicted_us) {
                  if (f == s.rsp.format) chosen_us = us;
                  if (best_us <= 0.0 || us < best_us) {
                    best_us = us;
                    entry.predicted_best = f;
                  }
                }
                if (chosen_us > 0.0) {
                  entry.predicted_gflops = flops / (chosen_us * 1e-6) / 1e9;
                  s.rsp.predicted_gflops = entry.predicted_gflops;
                  if (best_us > 0.0)
                    entry.regret = chosen_us / best_us - 1.0;
                }
              }
              scorecard_.record(entry);

              // Shadow probe (learning mode only): convert and time ONE
              // extra format so the replay buffer accumulates per-format
              // measured truth — the labels the retraining loop needs.
              // The probe entry rides the scorecard ring flagged
              // probe=true (excluded from the traffic aggregates) and
              // never touches the served response.
              if (trainer_ != nullptr) {
                const auto probe_formats =
                    bundle->perf != nullptr
                        ? bundle->perf->formats()
                        : bundle->selector->candidates();
                if (probe_formats.size() > 1) {
                  // Mix the matrix fingerprint into the rotation: a bare
                  // counter resonates with cyclic traffic (N matrices
                  // polled round-robin with N divisible by the format
                  // count probes the SAME format for a given matrix
                  // forever), leaving whole formats unmeasured on a
                  // regime. Hashing decorrelates the probe choice from
                  // the arrival pattern while staying deterministic for
                  // a fixed request order.
                  const std::uint64_t pseq = hash_combine(
                      entry.features_hash,
                      probe_seq_.fetch_add(1, std::memory_order_relaxed));
                  Format probe_fmt =
                      probe_formats[pseq % probe_formats.size()];
                  if (probe_fmt == s.rsp.format)
                    probe_fmt =
                        probe_formats[(pseq + 1) % probe_formats.size()];
                  if (probe_fmt != s.rsp.format &&
                      (!feasible || feasible(probe_fmt))) {
                    try {
                      WallTimer probe_total;
                      const AnyMatrix<double>& probe_built =
                          arena.convert(probe_fmt, *s.view);
                      spmv_x.assign(
                          static_cast<std::size_t>(s.view->cols()), 1.0);
                      spmv_y.assign(
                          static_cast<std::size_t>(s.view->rows()), 0.0);
                      WallTimer probe_timer;
                      probe_built.spmv(spmv_x, spmv_y);
                      const double probe_s =
                          std::max(probe_timer.seconds(), 1e-9);
                      ScorecardEntry probe = entry;
                      probe.probe = true;
                      probe.chosen = probe_fmt;
                      probe.measured_gflops = flops / probe_s / 1e9;
                      probe.predicted_gflops = 0.0;
                      probe.regret = 0.0;
                      for (const auto& [f, us] : predicted_us)
                        if (f == probe_fmt && us > 0.0)
                          probe.predicted_gflops =
                              flops / (us * 1e-6) / 1e9;
                      scorecard_.record(probe);
                      if (tracing && item.req.trace_sampled)
                        obs::trace_complete("req.probe",
                                            probe_total.millis() * 1e3,
                                            s.rsp.id);
                    } catch (const Error&) {
                      // A probe that cannot convert is just a missing
                      // measurement; the response is already complete.
                      obs::MetricsRegistry::global()
                          .counter("serve.probe.failed")
                          .inc();
                    }
                  }
                }
              }
              if (tracing && item.req.trace_sampled)
                obs::trace_complete("req.materialize",
                                    materialize_timer.millis() * 1e3,
                                    s.rsp.id);
            }
          }
        }
      } catch (const Error& e) {
        s.rsp.ok = false;
        s.rsp.error = std::string(error_category_name(e.category())) + ": " +
                      e.what();
      }
    }
  }
  stage_finalize_ms = finalize_timer.millis();

  // Admission shedding feeds on the measured per-item batch cost. Updated
  // before delivery: once a caller sees its response, the next submit()
  // must price the queue with this batch's cost already folded in. The
  // smoothing is asymmetric: cost drops (caches warming up after a cold
  // start) are tracked fast so the shed gate reopens quickly, cost rises
  // slowly so one anomalous batch does not trigger a shed storm.
  const double per_item_ms =
      ms_between(picked_up, Clock::now()) / static_cast<double>(batch.size());
  const double prev = batch_item_cost_ms_.load(std::memory_order_relaxed);
  double next = per_item_ms;
  if (prev > 0.0) {
    const double alpha = per_item_ms < prev ? 0.5 : 0.2;
    next = (1.0 - alpha) * prev + alpha * per_item_ms;
  }
  batch_item_cost_ms_.store(next, std::memory_order_relaxed);
  backlog_.fetch_sub(batch.size(), std::memory_order_relaxed);

  // --- Stage 5: reply + per-response accounting. ---
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& s = slots[i];
    Pending& item = batch[i];
    s.rsp.latency_ms = ms_between(item.enqueued, Clock::now());
    s.rsp.has_stage_ms = true;  // to_json only renders it on ok responses
    s.rsp.stage_features_ms = stage_features_ms;
    s.rsp.stage_classify_ms = stage_classify_ms;
    s.rsp.stage_regress_ms = stage_regress_ms;
    s.rsp.stage_finalize_ms = stage_finalize_ms;
    if (tracing && item.req.trace_sampled)
      obs::trace_complete("req.done", s.rsp.latency_ms * 1e3, s.rsp.id);
    if (!item.slot->claim()) continue;  // watchdog got there first
    // Account before invoking the callback: the moment finish() runs,
    // the caller may wake and read counters(), which must already
    // include this request.
    if (s.rsp.ok && !counted[i] && item.req.mode != RequestMode::kPredict)
      registry_metrics
          .counter(std::string("serve.select.") + format_name(s.rsp.format))
          .inc();
    if (s.rsp.ok && s.rsp.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      registry_metrics.counter("serve.degraded").inc();
      if (s.rsp.degrade_reason == "deadline")
        registry_metrics.counter("serve.deadline_degraded").inc();
    }
    if (!s.rsp.ok) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      registry_metrics.counter("serve.error").inc();
    }
    registry_metrics.histogram("serve.latency_s", obs::default_latency_bounds_s())
        .observe(s.rsp.latency_ms / 1e3);
    served_.fetch_add(1, std::memory_order_relaxed);
    registry_metrics.counter("serve.requests").inc();
    item.slot->finish(s.rsp);
  }

  if (inflight_id != 0) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(inflight_id);
  }
}

}  // namespace spmvml::serve
