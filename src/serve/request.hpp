// Request/response schema of the online serving subsystem.
//
// The service speaks JSONL: one flat JSON object per line in, one per
// line out. A request either names a Matrix Market file (the service
// extracts — and caches — the Table II features) or carries the 17 raw
// feature values inline (no file I/O, no cache, no feasibility check,
// since memory feasibility needs the structural digest of the matrix).
//
//   {"id":"r1","mode":"select","matrix":"web.mtx","mem_budget_gb":4}
//   {"id":"r2","mode":"indirect","matrix":"web.mtx","deadline_ms":5}
//   {"id":"r3","mode":"predict","features":[1000,1000,5000,...]}
//   {"cmd":"swap","model":"sel_v2.model","perf_model":"perf_v2.model"}
//
// Modes map to the paper's two selection routes: "select" is the direct
// classifier (§V), "indirect" picks the argmin of the per-format
// regressors (§VI-C) and degrades to the direct classifier under
// deadline pressure, "predict" returns the per-format predicted times.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sparse/format.hpp"

namespace spmvml::serve {

enum class RequestMode : int { kSelect = 0, kIndirect = 1, kPredict = 2 };

const char* request_mode_name(RequestMode m);

struct Request {
  /// Stable request id: the client's `id` when supplied, otherwise a
  /// generated `srv-<seq>` assigned at parse. Echoed on the response and
  /// tagged on every trace event the request produces, so one id follows
  /// the request through admission, shard queues, work-stealing, batch
  /// stages and materialization.
  std::string id;
  /// True when the per-request trace sampler (`--trace-sample=N` /
  /// SPMVML_TRACE_SAMPLE) picked this request: the service emits
  /// id-tagged spans for it. False = only batch-level spans.
  bool trace_sampled = false;
  RequestMode mode = RequestMode::kSelect;
  /// Matrix Market path; empty when `features` is supplied inline.
  std::string matrix_path;
  /// Optional pre-extracted features (exactly kNumFeatures values).
  std::vector<double> features;
  /// Soft deadline from enqueue to completion; 0 = none. Indirect
  /// requests that cannot meet it degrade to the direct classifier.
  double deadline_ms = 0.0;
  /// Per-request memory budget; 0 = use the service default.
  double mem_budget_gb = 0.0;
  /// Build the chosen format in the worker's conversion arena and report
  /// convert_ms/format_bytes in the response. Needs 'matrix' (the CSR
  /// master copy); meaningless for mode=predict, which picks no format.
  bool materialize = false;
};

/// Control-plane lines share the JSONL stream ("cmd" instead of "mode").
///
///   {"cmd":"swap","model":"sel_v2.model","perf_model":"perf_v2.model"}
///   {"cmd":"stats","id":"s1"}
///   {"cmd":"learn","id":"l1"}
///
/// "stats" returns one JSON line with the server's counters, scorecard
/// summary, ingest stats and a full metrics snapshot — the live stats
/// plane, no restart or --report needed. "learn" returns the online
/// learning loop's state (replay buffer, drift detector, trainer
/// outcomes; DESIGN.md §5k).
struct AdminCommand {
  std::string id;
  std::string cmd;  // "swap", "stats", or "learn"
  std::string model_path;
  std::string perf_model_path;
};

/// Per-request trace sampling rate: every Nth parsed request is marked
/// trace_sampled (1 = every request, 0 = none). The first call reads
/// SPMVML_TRACE_SAMPLE; `serve --trace-sample=N` overrides it.
int trace_sample();
void set_trace_sample(int n);

struct ParsedLine {
  bool is_admin = false;
  Request request;
  AdminCommand admin;
};

/// Parse one JSONL line into a request or admin command. Throws
/// Error(kParse) on malformed JSON, unknown mode, or a features array
/// whose length is not kNumFeatures.
ParsedLine parse_request_line(const std::string& line);

struct Response {
  std::string id;
  bool ok = false;
  std::string error;  // error-category-tagged message when !ok
  RequestMode mode = RequestMode::kSelect;
  Format format = Format::kCsr;     // served choice
  Format predicted = Format::kCsr;  // model pick before feasibility
  bool fallback = false;            // feasibility forced a different format
  bool degraded = false;            // served below the requested route
  /// Why the degradation ladder fired ("deadline", "breaker:features",
  /// "chaos:inference", ...). Empty when !degraded.
  std::string degrade_reason;
  /// Admission-shed reason code ("shed:overload", "shed:deadline",
  /// "shed:queue_full"); empty unless the request was shed before
  /// entering the queue.
  std::string shed;
  /// Estimated queue wait at admission time (backlog x per-item cost
  /// EWMA / workers). Reported on shed responses so callers see how far
  /// over budget the queue was when their request was turned away.
  double est_wait_ms = 0.0;
  /// Transient-fault retries spent serving this request (all stages).
  int retries = 0;
  bool cache_hit = false;
  std::uint64_t model_version = 0;
  /// Per-format predicted SpMV times in microseconds (predict/indirect).
  std::vector<std::pair<Format, double>> predicted_us;
  double queue_ms = 0.0;    // enqueue -> batch pickup
  double latency_ms = 0.0;  // enqueue -> response
  std::uint64_t batch = 0;  // size of the micro-batch this rode in
  /// End-to-end server time (parse -> response emitted), stamped at the
  /// transport boundary by the serve loop; 0 when served outside it.
  double server_ms = 0.0;
  /// Per-stage batch processing breakdown, reported as "stage_ms":{...}
  /// on ok responses. The values are per-batch (every request in a
  /// micro-batch shares them) — the granularity at which the stages run.
  bool has_stage_ms = false;
  double stage_features_ms = 0.0;
  double stage_classify_ms = 0.0;
  double stage_regress_ms = 0.0;
  double stage_finalize_ms = 0.0;
  /// Set when the request asked to materialize the chosen format.
  bool materialized = false;
  double convert_ms = 0.0;        // arena conversion time
  std::int64_t format_bytes = 0;  // device-footprint of the built format
  double spmv_ms = 0.0;           // timed SpMV on the built format
  double measured_gflops = 0.0;   // 2*nnz / measured SpMV time
  double predicted_gflops = 0.0;  // perf-model estimate; 0 = no perf model
};

/// Compact single-line JSON rendering (no trailing newline).
std::string to_json(const Response& r);

}  // namespace spmvml::serve
