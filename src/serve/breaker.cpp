#include "serve/breaker.hpp"

#include <algorithm>

#include "common/obs/log.hpp"
#include "common/obs/metrics.hpp"

namespace spmvml::serve {

namespace {

BreakerConfig sanitize(BreakerConfig cfg) {
  cfg.window = std::max(cfg.window, 1);
  cfg.error_threshold = std::clamp(cfg.error_threshold, 0.0, 1.0);
  cfg.ewma_alpha = std::clamp(cfg.ewma_alpha, 0.01, 1.0);
  cfg.open_cooldown_ms = std::max(cfg.open_cooldown_ms, 0.0);
  cfg.half_open_probes = std::max(cfg.half_open_probes, 1);
  return cfg;
}

}  // namespace

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name, BreakerConfig config)
    : name_(std::move(name)), cfg_(sanitize(config)) {
  publish_state(state_);
}

void CircuitBreaker::publish_state(BreakerState s) {
  obs::MetricsRegistry::global()
      .gauge("serve.breaker." + name_ + ".state")
      .set(static_cast<double>(static_cast<int>(s)));
}

void CircuitBreaker::trip(Clock::time_point now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  half_open_successes_ = 0;
  window_total_ = 0;
  window_errors_ = 0;
  ++trips_;
  publish_state(state_);
  obs::MetricsRegistry::global()
      .counter("serve.breaker." + name_ + ".trips")
      .inc();
  obs::log_warn("serve.breaker.open")
      .kv("stage", name_)
      .kv("latency_ewma_ms", latency_ewma_ms_);
}

bool CircuitBreaker::allow(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen: {
      const double since_ms =
          std::chrono::duration<double, std::milli>(now - opened_at_).count();
      if (since_ms < cfg_.open_cooldown_ms) return false;
      state_ = BreakerState::kHalfOpen;
      half_open_successes_ = 0;
      publish_state(state_);
      obs::log_info("serve.breaker.half_open").kv("stage", name_);
      return true;
    }
  }
  return true;
}

void CircuitBreaker::record(bool ok, double latency_ms,
                            Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_ms >= 0.0) {
    latency_ewma_ms_ = have_latency_
                           ? (1.0 - cfg_.ewma_alpha) * latency_ewma_ms_ +
                                 cfg_.ewma_alpha * latency_ms
                           : latency_ms;
    have_latency_ = true;
  }

  if (state_ == BreakerState::kHalfOpen) {
    if (!ok) {
      trip(now);  // a failed probe reopens; the cooldown restarts
      return;
    }
    if (++half_open_successes_ >= cfg_.half_open_probes) {
      state_ = BreakerState::kClosed;
      window_total_ = 0;
      window_errors_ = 0;
      publish_state(state_);
      obs::log_info("serve.breaker.closed").kv("stage", name_);
    }
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // open: stale outcome

  ++window_total_;
  ++samples_;
  if (!ok) ++window_errors_;
  if (cfg_.latency_threshold_ms > 0.0 && have_latency_ &&
      latency_ewma_ms_ > cfg_.latency_threshold_ms &&
      samples_ >= static_cast<std::uint64_t>(cfg_.window)) {
    trip(now);
    return;
  }
  if (window_total_ >= static_cast<std::uint64_t>(cfg_.window)) {
    const double frac = static_cast<double>(window_errors_) /
                        static_cast<double>(window_total_);
    if (frac >= cfg_.error_threshold && window_errors_ > 0) {
      trip(now);
    } else {
      // Tumble the window so old outcomes age out deterministically.
      window_total_ = 0;
      window_errors_ = 0;
    }
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

double CircuitBreaker::latency_ewma_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_ewma_ms_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace spmvml::serve
