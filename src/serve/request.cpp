#include "serve/request.hpp"

#include <atomic>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/chaos/chaos.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "features/features.hpp"

namespace spmvml::serve {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the flat request objects the service accepts.
// Values are strings, numbers, booleans, null, or arrays of numbers —
// exactly what the schema needs; nested objects are rejected as
// unsupported rather than silently mis-read.

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                      "bad request JSON at byte " + std::to_string(pos) +
                          ": " + why);
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of line");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Requests are paths/ids; map BMP escapes to '?' rather than
            // carrying a full UTF-8 encoder for a control-plane corner.
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            pos += 4;
            out += '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data() + start, text.data() + pos, v);
    if (ec != std::errc{} || end != text.data() + pos || start == pos)
      fail("bad number");
    return v;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string_view(lit).size();
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }
};

struct Field {
  enum class Type { kString, kNumber, kBool, kNull, kNumbers } type;
  std::string str;
  double num = 0.0;
  bool boolean = false;
  std::vector<double> numbers;
};

/// Parse one flat JSON object into (key, value) fields.
std::vector<std::pair<std::string, Field>> parse_flat_object(
    const std::string& line) {
  JsonParser p{line};
  std::vector<std::pair<std::string, Field>> fields;
  p.expect('{');
  if (!p.consume('}')) {
    while (true) {
      std::string key = p.parse_string();
      p.expect(':');
      Field f;
      const char c = p.peek();
      if (c == '"') {
        f.type = Field::Type::kString;
        f.str = p.parse_string();
      } else if (c == 't') {
        if (!p.parse_literal("true")) p.fail("bad literal");
        f.type = Field::Type::kBool;
        f.boolean = true;
      } else if (c == 'f') {
        if (!p.parse_literal("false")) p.fail("bad literal");
        f.type = Field::Type::kBool;
      } else if (c == 'n') {
        if (!p.parse_literal("null")) p.fail("bad literal");
        f.type = Field::Type::kNull;
      } else if (c == '[') {
        p.expect('[');
        f.type = Field::Type::kNumbers;
        if (!p.consume(']')) {
          while (true) {
            f.numbers.push_back(p.parse_number());
            if (p.consume(']')) break;
            p.expect(',');
          }
        }
      } else if (c == '{') {
        p.fail("nested objects are not part of the request schema");
      } else {
        f.type = Field::Type::kNumber;
        f.num = p.parse_number();
      }
      fields.emplace_back(std::move(key), std::move(f));
      if (p.consume('}')) break;
      p.expect(',');
    }
  }
  p.skip_ws();
  SPMVML_ENSURE_CAT(p.pos == line.size(), ErrorCategory::kParse,
                    "trailing bytes after request JSON object");
  return fields;
}

RequestMode parse_mode(const std::string& name) {
  if (name == "select") return RequestMode::kSelect;
  if (name == "indirect") return RequestMode::kIndirect;
  if (name == "predict") return RequestMode::kPredict;
  SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                    "unknown request mode '" + name + "'");
  return RequestMode::kSelect;
}

/// Render a field that may arrive as string or number ("id":7 or "id":"7").
std::string field_as_id(const Field& f) {
  if (f.type == Field::Type::kString) return f.str;
  if (f.type == Field::Type::kNumber) {
    std::ostringstream os;
    os << f.num;
    return os.str();
  }
  SPMVML_ENSURE_CAT(false, ErrorCategory::kParse, "id must be string or number");
  return {};
}

double field_as_number(const std::string& key, const Field& f) {
  SPMVML_ENSURE_CAT(f.type == Field::Type::kNumber && std::isfinite(f.num),
                    ErrorCategory::kParse,
                    "field '" + key + "' must be a finite number");
  return f.num;
}

std::string field_as_string(const std::string& key, const Field& f) {
  SPMVML_ENSURE_CAT(f.type == Field::Type::kString, ErrorCategory::kParse,
                    "field '" + key + "' must be a string");
  return f.str;
}

bool field_as_bool(const std::string& key, const Field& f) {
  SPMVML_ENSURE_CAT(f.type == Field::Type::kBool, ErrorCategory::kParse,
                    "field '" + key + "' must be true or false");
  return f.boolean;
}

// Per-request trace sampling: -1 = uninitialised (first trace_sample()
// call reads SPMVML_TRACE_SAMPLE), 0 = off, N = every Nth request.
std::atomic<int> g_trace_sample{-1};
// Monotonic parse sequence: drives both generated `srv-<seq>` ids and
// the 1-in-N sampling decision.
std::atomic<std::uint64_t> g_request_seq{0};

}  // namespace

int trace_sample() {
  int n = g_trace_sample.load(std::memory_order_relaxed);
  if (n < 0) {
    n = static_cast<int>(env_int("SPMVML_TRACE_SAMPLE", 0));
    if (n < 0) n = 0;
    g_trace_sample.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_trace_sample(int n) {
  g_trace_sample.store(n < 0 ? 0 : n, std::memory_order_relaxed);
}

const char* request_mode_name(RequestMode m) {
  switch (m) {
    case RequestMode::kSelect: return "select";
    case RequestMode::kIndirect: return "indirect";
    case RequestMode::kPredict: return "predict";
  }
  return "unknown";
}

ParsedLine parse_request_line(const std::string& line) {
  // Chaos site: a corrupted/failed transport read surfaces as a parse
  // error (the response is ok=false with the kParse taxonomy, exactly
  // like genuinely malformed input).
  const chaos::Fault fault =
      chaos::hit(chaos::Site::kRequestParse, chaos::identity_hash(line));
  if (fault) {
    chaos::apply_latency(fault);
    SPMVML_ENSURE_CAT(fault.kind == chaos::FaultKind::kLatency,
                      ErrorCategory::kParse,
                      "injected request-parse fault (chaos site request_parse)");
  }
  const auto fields = parse_flat_object(line);
  ParsedLine out;
  for (const auto& [key, f] : fields)
    if (key == "cmd") out.is_admin = true;

  if (out.is_admin) {
    for (const auto& [key, f] : fields) {
      if (key == "cmd") out.admin.cmd = field_as_string(key, f);
      else if (key == "id") out.admin.id = field_as_id(f);
      else if (key == "model") out.admin.model_path = field_as_string(key, f);
      else if (key == "perf_model")
        out.admin.perf_model_path = field_as_string(key, f);
      else
        SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                          "unknown admin field '" + key + "'");
    }
    SPMVML_ENSURE_CAT(out.admin.cmd == "swap" || out.admin.cmd == "stats" ||
                          out.admin.cmd == "learn",
                      ErrorCategory::kParse,
                      "unknown admin command '" + out.admin.cmd + "'");
    if (out.admin.cmd == "swap") {
      SPMVML_ENSURE_CAT(!out.admin.model_path.empty(), ErrorCategory::kParse,
                        "swap needs a 'model' path");
    } else {
      SPMVML_ENSURE_CAT(
          out.admin.model_path.empty() && out.admin.perf_model_path.empty(),
          ErrorCategory::kParse, out.admin.cmd + " takes no model paths");
    }
    return out;
  }

  Request& r = out.request;
  for (const auto& [key, f] : fields) {
    if (key == "id") r.id = field_as_id(f);
    else if (key == "mode") r.mode = parse_mode(field_as_string(key, f));
    else if (key == "matrix") r.matrix_path = field_as_string(key, f);
    else if (key == "features") {
      SPMVML_ENSURE_CAT(f.type == Field::Type::kNumbers, ErrorCategory::kParse,
                        "'features' must be an array of numbers");
      r.features = f.numbers;
    } else if (key == "deadline_ms") r.deadline_ms = field_as_number(key, f);
    else if (key == "mem_budget_gb") r.mem_budget_gb = field_as_number(key, f);
    else if (key == "materialize") r.materialize = field_as_bool(key, f);
    else
      SPMVML_ENSURE_CAT(false, ErrorCategory::kParse,
                        "unknown request field '" + key + "'");
  }
  SPMVML_ENSURE_CAT(!r.matrix_path.empty() || !r.features.empty(),
                    ErrorCategory::kParse,
                    "request needs 'matrix' or 'features'");
  SPMVML_ENSURE_CAT(
      r.features.empty() ||
          r.features.size() == static_cast<std::size_t>(kNumFeatures),
      ErrorCategory::kParse,
      "'features' must have exactly " + std::to_string(kNumFeatures) +
          " values");
  SPMVML_ENSURE_CAT(r.deadline_ms >= 0.0 && r.mem_budget_gb >= 0.0,
                    ErrorCategory::kParse,
                    "deadline_ms and mem_budget_gb must be >= 0");
  SPMVML_ENSURE_CAT(!r.materialize || !r.matrix_path.empty(),
                    ErrorCategory::kParse,
                    "'materialize' needs a 'matrix' path (inline features "
                    "carry no structure to convert)");
  SPMVML_ENSURE_CAT(!r.materialize || r.mode != RequestMode::kPredict,
                    ErrorCategory::kParse,
                    "'materialize' is meaningless for mode=predict (no "
                    "single format is chosen)");
  // Every request leaves the parser with a stable id and a sampling
  // decision; downstream stages tag trace events with the id and never
  // re-decide sampling (so the decision survives work-stealing).
  const std::uint64_t seq =
      g_request_seq.fetch_add(1, std::memory_order_relaxed);
  if (r.id.empty()) r.id = "srv-" + std::to_string(seq);
  const int sample = trace_sample();
  r.trace_sampled = sample > 0 && (seq % static_cast<std::uint64_t>(sample)) == 0;
  return out;
}

std::string to_json(const Response& r) {
  std::ostringstream os;
  JsonWriter json(os, /*indent=*/0);
  json.begin_object();
  // Requests always carry an id after parse (client-supplied or
  // generated); an empty id only happens on parse-error responses where
  // the line never yielded one.
  if (!r.id.empty()) json.kv("id", r.id);
  json.kv("ok", r.ok);
  if (!r.ok) {
    json.kv("error", r.error);
    if (!r.shed.empty()) {
      json.kv("shed", r.shed);
      json.kv("est_wait_ms", r.est_wait_ms);
    }
    if (r.retries > 0) json.kv("retries", static_cast<std::int64_t>(r.retries));
    if (r.server_ms > 0.0) json.kv("server_ms", r.server_ms);
    json.end_object();
    return os.str();
  }
  json.kv("mode", request_mode_name(r.mode));
  if (r.mode != RequestMode::kPredict) {
    json.kv("format", format_name(r.format));
    json.kv("predicted", format_name(r.predicted));
    json.kv("fallback", r.fallback);
    json.kv("degraded", r.degraded);
    if (!r.degrade_reason.empty()) json.kv("degrade_reason", r.degrade_reason);
  }
  if (r.retries > 0) json.kv("retries", static_cast<std::int64_t>(r.retries));
  if (!r.predicted_us.empty()) {
    json.key("predicted_us");
    json.begin_object();
    for (const auto& [f, us] : r.predicted_us) json.kv(format_name(f), us);
    json.end_object();
  }
  if (r.materialized) {
    json.kv("materialized", true);
    json.kv("convert_ms", r.convert_ms);
    json.kv("format_bytes", r.format_bytes);
    json.kv("spmv_ms", r.spmv_ms);
    json.kv("measured_gflops", r.measured_gflops);
    if (r.predicted_gflops > 0.0)
      json.kv("predicted_gflops", r.predicted_gflops);
  }
  json.kv("cache_hit", r.cache_hit);
  json.kv("model_version", r.model_version);
  json.kv("batch", r.batch);
  json.kv("queue_ms", r.queue_ms);
  json.kv("latency_ms", r.latency_ms);
  if (r.server_ms > 0.0) json.kv("server_ms", r.server_ms);
  if (r.has_stage_ms) {
    json.key("stage_ms");
    json.begin_object();
    json.kv("features", r.stage_features_ms);
    json.kv("classify", r.stage_classify_ms);
    json.kv("regress", r.stage_regress_ms);
    json.kv("finalize", r.stage_finalize_ms);
    json.end_object();
  }
  json.end_object();
  return os.str();
}

}  // namespace spmvml::serve
