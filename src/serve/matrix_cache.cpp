#include "serve/matrix_cache.hpp"

#include <filesystem>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/obs/metrics.hpp"
#include "common/obs/trace.hpp"
#include "sparse/csr_binary.hpp"
#include "sparse/mmio.hpp"

namespace spmvml::serve {

namespace {

// One cached handle per counter name: registry lookup happens once, the
// hot path only bumps the shared atomic (same pattern as feature_cache).
#define SPMVML_INGEST_COUNTER(fn, name)                                  \
  obs::Counter& fn() {                                                   \
    static obs::Counter c =                                              \
        obs::MetricsRegistry::global().counter("serve.ingest." name);    \
    return c;                                                            \
  }
SPMVML_INGEST_COUNTER(hit_counter, "hit")
SPMVML_INGEST_COUNTER(miss_counter, "miss")
SPMVML_INGEST_COUNTER(evict_counter, "evict")
SPMVML_INGEST_COUNTER(oversize_counter, "oversize")
SPMVML_INGEST_COUNTER(parse_counter, "parse")
SPMVML_INGEST_COUNTER(sidecar_counter, "sidecar")
SPMVML_INGEST_COUNTER(coalesced_counter, "coalesced")
#undef SPMVML_INGEST_COUNTER

/// Host memory the cached CSR pins: row_ptr + col_idx (index_t each) plus
/// the values. This is what the --ingest-cache-mb budget meters — the
/// resident footprint, not the 4-byte-index device estimate Csr::bytes()
/// models.
std::size_t host_bytes(const Csr<double>& m) {
  const auto rows = static_cast<std::size_t>(m.rows());
  const auto nnz = static_cast<std::size_t>(m.nnz());
  return (rows + 1 + nnz) * sizeof(index_t) + nnz * sizeof(double);
}

}  // namespace

/// One in-progress parse; every coalesced waiter blocks on the future.
struct MatrixCache::Flight {
  std::promise<View> promise;
  std::shared_future<View> future{promise.get_future().share()};
};

MatrixCache::MatrixCache(std::size_t budget_bytes, int shards) {
  if (budget_bytes == 0) return;  // disabled: no shards, every get misses
  const auto n = static_cast<std::size_t>(shards < 1 ? 1 : shards);
  shard_budget_ = (budget_bytes + n - 1) / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

MatrixCache::Shard& MatrixCache::shard_for(std::uint64_t key) {
  return *shards_[key % shards_.size()];
}

std::optional<MatrixCache::FileId> MatrixCache::file_identity(
    const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  FileId id;
  const auto size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  id.size = static_cast<std::uint64_t>(size);
  id.mtime_ns = static_cast<std::int64_t>(mtime.time_since_epoch().count());
  if (!is_csr_binary_path(path)) {
    const std::string side = csr_sidecar_path(path);
    const auto sside = fs::file_size(side, ec);
    if (!ec) {
      const auto smtime = fs::last_write_time(side, ec);
      if (!ec) {
        id.sidecar_size = static_cast<std::uint64_t>(sside);
        id.sidecar_mtime_ns =
            static_cast<std::int64_t>(smtime.time_since_epoch().count());
      }
    }
  }
  return id;
}

std::optional<std::uint64_t> MatrixCache::resolve_key(const std::string& path) {
  const auto id = file_identity(path);
  if (!id) return std::nullopt;
  std::lock_guard<std::mutex> lock(stat_mu_);
  const auto it = stat_cache_.find(path);
  if (it == stat_cache_.end() || !(it->second.id == *id)) return std::nullopt;
  return it->second.key;
}

std::optional<std::shared_ptr<const Csr<double>>> MatrixCache::get(
    std::uint64_t key) {
  if (shards_.empty()) {
    miss_counter().inc();
    return std::nullopt;
  }
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    miss_counter().inc();
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
  ++s.hits;
  hit_counter().inc();
  return it->second->second.matrix;
}

void MatrixCache::put(std::uint64_t key,
                      std::shared_ptr<const Csr<double>> matrix) {
  if (shards_.empty()) return;
  const std::size_t bytes = host_bytes(*matrix);
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  if (bytes > shard_budget_) {
    // Caching it would evict the whole shard for one entry; serve the
    // borrowed view uncached instead.
    ++s.oversize;
    oversize_counter().inc();
    return;
  }
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= it->second->second.bytes;
    it->second->second = Entry{std::move(matrix), bytes};
    s.bytes += bytes;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  while (!s.lru.empty() && s.bytes + bytes > shard_budget_) {
    // Eviction only drops the cache's reference: a batch holding a
    // borrowed view keeps the matrix alive until it finishes.
    s.bytes -= s.lru.back().second.bytes;
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
    evict_counter().inc();
  }
  s.lru.emplace_front(key, Entry{std::move(matrix), bytes});
  s.index[key] = s.lru.begin();
  s.bytes += bytes;
}

MatrixCache::View MatrixCache::parse(const std::string& path,
                                     const FileId& id) {
  obs::TraceSpan span("serve.ingest.parse");
  span.arg("path", std::string_view(path));
  View view;
  Csr<double> matrix;
  if (is_csr_binary_path(path)) {
    matrix = read_csr_binary(path);
    view.sidecar = true;
  } else if (id.sidecar_size != 0 && id.sidecar_mtime_ns >= id.mtime_ns) {
    // Sidecar exists and is no older than the text: bulk-read it, but a
    // corrupt or truncated sidecar degrades to the text parse instead of
    // failing a request the .mtx could still serve.
    try {
      matrix = read_csr_binary(csr_sidecar_path(path));
      view.sidecar = true;
    } catch (const Error&) {
      matrix = read_matrix_market(path);
    }
  } else {
    matrix = read_matrix_market(path);
  }
  parses_.fetch_add(1, std::memory_order_relaxed);
  parse_counter().inc();
  span.arg("sidecar", static_cast<int>(view.sidecar));
  if (view.sidecar) {
    sidecar_loads_.fetch_add(1, std::memory_order_relaxed);
    sidecar_counter().inc();
  }
  view.key = matrix_content_hash(matrix);
  view.matrix = std::make_shared<const Csr<double>>(std::move(matrix));
  return view;
}

MatrixCache::View MatrixCache::load(const std::string& path) {
  // Fast path: stat-cache key + LRU hit — no file opened at all.
  const auto id = file_identity(path);
  if (id) {
    std::optional<std::uint64_t> key;
    {
      std::lock_guard<std::mutex> lock(stat_mu_);
      const auto it = stat_cache_.find(path);
      if (it != stat_cache_.end() && it->second.id == *id)
        key = it->second.key;
    }
    if (key) {
      if (auto cached = get(*key)) {
        View view;
        view.matrix = std::move(*cached);
        view.key = *key;
        view.cache_hit = true;
        return view;
      }
    }
  }

  // Miss (or unknown file): single-flight on the path. The first comer
  // parses; everyone else waits on its future and shares the result —
  // including a thrown Error, which is never cached.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto& slot = flights_[path];
    if (slot == nullptr) {
      slot = std::make_shared<Flight>();
      leader = true;
    }
    flight = slot;
  }
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    coalesced_counter().inc();
    return flight->future.get();  // rethrows the leader's Error, if any
  }
  try {
    // Stat again inside the flight (the earlier stat may have failed —
    // that failure must surface as the reader's kIo, not silently).
    const auto fresh = file_identity(path);
    View view = parse(path, fresh.value_or(FileId{}));
    put(view.key, view.matrix);
    if (fresh) {
      std::lock_guard<std::mutex> lock(stat_mu_);
      stat_cache_[path] = StatEntry{*fresh, view.key};
    }
    flight->promise.set_value(view);
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      flights_.erase(path);
    }
    return view;
  } catch (...) {
    flight->promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      flights_.erase(path);
    }
    throw;
  }
}

MatrixCache::Stats MatrixCache::stats() const {
  Stats out;
  out.budget_bytes = shard_budget_ * shards_.size();
  out.parses = parses_.load(std::memory_order_relaxed);
  out.sidecar_loads = sidecar_loads_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    out.hits += s->hits;
    out.misses += s->misses;
    out.evictions += s->evictions;
    out.oversize += s->oversize;
    out.entries += s->lru.size();
    out.bytes += s->bytes;
  }
  obs::MetricsRegistry::global().gauge("serve.ingest.bytes").set(
      static_cast<double>(out.bytes));
  return out;
}

}  // namespace spmvml::serve
