// Chaos-hardened serving tests (DESIGN.md §5h): deterministic fault
// replay through the Service, the degradation ladder (chaos exhaustion
// and open breakers both land on the static CSR floor), bounded
// retries, deadline-feasibility shedding, the batch watchdog, crash-
// safe registry swaps with a journaled rollback, SIGTERM drain, and
// the non-perturbation proof (chaos compiled in but disabled changes
// no output byte).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/chaos/chaos.hpp"
#include "common/error.hpp"
#include "core/format_selector.hpp"
#include "core/label_collector.hpp"
#include "core/perf_model.hpp"
#include "serve/drain.hpp"
#include "serve/model_registry.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "sparse/mmio.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

using serve::ModelRegistry;
using serve::Request;
using serve::RequestMode;
using serve::Response;
using serve::Service;
using serve::ServiceConfig;

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(40, 654));
  return corpus;
}

std::shared_ptr<const FormatSelector> tree_selector() {
  static const auto selector = [] {
    auto s = std::make_shared<FormatSelector>(
        ModelKind::kDecisionTree, FeatureSet::kSet12, kAllFormats,
        /*fast=*/true);
    s->fit(shared_corpus(), 0, Precision::kDouble);
    return std::shared_ptr<const FormatSelector>(s);
  }();
  return selector;
}

std::shared_ptr<const PerfModel> tree_perf() {
  static const auto perf = [] {
    auto p = std::make_shared<PerfModel>(RegressorKind::kDecisionTree,
                                         FeatureSet::kSet12, kAllFormats,
                                         /*fast=*/true);
    p->fit(shared_corpus(), 0, Precision::kDouble);
    return std::shared_ptr<const PerfModel>(p);
  }();
  return perf;
}

/// A temp Matrix Market file that removes itself.
struct TempMatrixFile {
  std::string path;
  explicit TempMatrixFile(const std::string& name, int seed) : path(name) {
    write_matrix_market(path, generate(make_small_plan(1, seed).specs[0]));
  }
  ~TempMatrixFile() { std::remove(path.c_str()); }
};

Request file_request(const std::string& id, RequestMode mode,
                     const std::string& path) {
  Request req;
  req.id = id;
  req.mode = mode;
  req.matrix_path = path;
  return req;
}

std::shared_ptr<chaos::Engine> engine_from(const std::string& text) {
  return std::make_shared<chaos::Engine>(chaos::Scenario::parse_string(text));
}

ServiceConfig quick_config() {
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.1;
  cfg.cache_capacity = 0;  // every request walks the extract stage
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool valid_format(const Response& r) {
  const int f = static_cast<int>(r.format);
  return f >= 0 && f < kNumFormats;
}

// --- Deterministic replay ------------------------------------------------

TEST(ChaosServe, SameSeedSameResponses) {
  TempMatrixFile m("robustness_replay.tmp.mtx", 11);
  const std::string scenario =
      "seed 7\n"
      "rule site=feature_extract kind=error rate=0.4\n"
      "rule site=inference kind=corrupt rate=0.25\n";
  constexpr RequestMode kModes[] = {RequestMode::kSelect,
                                    RequestMode::kIndirect};

  const auto run = [&] {
    chaos::ScopedGlobalEngine scoped(engine_from(scenario));
    ModelRegistry registry;
    registry.install(tree_selector(), tree_perf());
    Service service(quick_config(), registry);
    std::vector<std::string> fingerprints;
    for (int k = 0; k < 12; ++k) {
      const Response r = service.call(file_request(
          "r" + std::to_string(k), kModes[k % 2], m.path));
      std::ostringstream fp;
      fp << r.ok << '|' << r.error << '|' << static_cast<int>(r.format) << '|'
         << r.degraded << '|' << r.degrade_reason << '|' << r.retries;
      fingerprints.push_back(fp.str());
    }
    return fingerprints;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

// --- Degradation ladder --------------------------------------------------

TEST(ChaosServe, FeatureExhaustionDegradesSelectToCsrFailsPredict) {
  TempMatrixFile m("robustness_feat.tmp.mtx", 12);
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 1\nrule site=feature_extract kind=error rate=1\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.breaker.window = 1000;  // keep the breaker out of this test
  Service service(cfg, registry);

  const Response sel =
      service.call(file_request("s1", RequestMode::kSelect, m.path));
  ASSERT_TRUE(sel.ok) << sel.error;
  EXPECT_TRUE(sel.degraded);
  EXPECT_EQ(sel.degrade_reason, "chaos:feature_extract");
  EXPECT_EQ(sel.format, Format::kCsr);  // ladder floor: always valid
  EXPECT_EQ(sel.retries, cfg.max_retries);

  // Predict has no degradation floor: no features means no answer.
  const Response prd =
      service.call(file_request("p1", RequestMode::kPredict, m.path));
  EXPECT_FALSE(prd.ok);
  EXPECT_FALSE(prd.error.empty());
}

TEST(ChaosServe, InferenceCorruptionDegradesToCsr) {
  TempMatrixFile m("robustness_inf.tmp.mtx", 13);
  chaos::ScopedGlobalEngine scoped(
      engine_from("seed 2\nrule site=inference kind=corrupt rate=1\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.breaker.window = 1000;
  Service service(cfg, registry);

  const Response r =
      service.call(file_request("c1", RequestMode::kSelect, m.path));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.degrade_reason, "chaos:inference");
  EXPECT_EQ(r.format, Format::kCsr);
  EXPECT_TRUE(valid_format(r));
}

TEST(ChaosServe, PersistentFaultsTripBreakerThenLadderShortCircuits) {
  TempMatrixFile m("robustness_brk.tmp.mtx", 14);
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 3\nrule site=feature_extract kind=error rate=1\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.threads = 1;  // sequential batches: deterministic breaker feed
  cfg.breaker.window = 4;
  cfg.breaker.open_cooldown_ms = 60000.0;  // stays open for the test
  Service service(cfg, registry);

  std::vector<Response> responses;
  for (int k = 0; k < 10; ++k)
    responses.push_back(
        service.call(file_request("b" + std::to_string(k),
                                  RequestMode::kSelect, m.path)));
  // Every answer stays servable and valid...
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.format, Format::kCsr);
  }
  // ...but once the breaker opens the stage is no longer *tried*: the
  // tail degrades via the breaker rung with zero retries burned.
  EXPECT_GE(service.counters().breaker_trips, 1u);
  const Response& last = responses.back();
  EXPECT_EQ(last.degrade_reason, "breaker:features");
  EXPECT_EQ(last.retries, 0);
}

TEST(ChaosServe, RetriesRecoverTransientFaults) {
  TempMatrixFile m("robustness_retry.tmp.mtx", 15);
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 4\nrule site=feature_extract kind=error rate=0.5\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.max_retries = 3;
  cfg.breaker.window = 1000;
  Service service(cfg, registry);

  bool saw_recovered_retry = false;
  for (int k = 0; k < 24; ++k) {
    const Response r = service.call(
        file_request("t" + std::to_string(k), RequestMode::kSelect, m.path));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(valid_format(r));
    if (r.retries > 0 && !r.degraded) saw_recovered_retry = true;
  }
  // At rate 0.5 with 3 retries, some request faulted and then recovered
  // un-degraded on a re-roll (chaos transients are retryable).
  EXPECT_TRUE(saw_recovered_retry);
  EXPECT_GT(service.counters().retries, 0u);
}

// --- Admission shedding --------------------------------------------------

TEST(ChaosServe, OverloadShedsAtAdmissionWithReasonCode) {
  TempMatrixFile m("robustness_shed.tmp.mtx", 16);
  // 20 ms injected per extraction makes the per-item cost EWMA honest
  // about an overload the moment the first batch lands.
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 5\n"
      "rule site=feature_extract kind=latency rate=1 latency_ms=20\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.threads = 1;
  cfg.max_batch = 1;
  cfg.admission_target_ms = 0.5;
  Service service(cfg, registry);

  // Warm the cost EWMA with one served request.
  const Response warm =
      service.call(file_request("w", RequestMode::kSelect, m.path));
  ASSERT_TRUE(warm.ok) << warm.error;

  std::vector<std::future<Response>> futures;
  for (int k = 0; k < 8; ++k)
    futures.push_back(service.submit(
        file_request("o" + std::to_string(k), RequestMode::kSelect, m.path)));
  int shed = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    if (!r.ok && r.shed == "shed:overload") {
      EXPECT_EQ(r.error.rfind("rejected", 0), 0u) << r.error;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.counters().shed, static_cast<std::uint64_t>(shed));
}

TEST(ChaosServe, InfeasibleDeadlineIsShedNotQueued) {
  TempMatrixFile m("robustness_dl.tmp.mtx", 17);
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 6\n"
      "rule site=feature_extract kind=latency rate=1 latency_ms=20\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.threads = 1;
  cfg.max_batch = 1;
  // No admission target: only the request's own deadline can shed it.
  cfg.admission_target_ms = 0.0;
  Service service(cfg, registry);

  const Response warm =
      service.call(file_request("w", RequestMode::kSelect, m.path));
  ASSERT_TRUE(warm.ok) << warm.error;

  // Park work on the single worker, then offer an impossible deadline.
  auto parked =
      service.submit(file_request("park", RequestMode::kSelect, m.path));
  Request doomed = file_request("dl", RequestMode::kSelect, m.path);
  doomed.deadline_ms = 0.001;
  const Response r = service.call(doomed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.shed, "shed:deadline");
  EXPECT_EQ(r.error.rfind("rejected", 0), 0u) << r.error;
  EXPECT_TRUE(parked.get().ok);
}

// --- Watchdog ------------------------------------------------------------

TEST(ChaosWatchdog, StuckBatchIsFailedCleanlyOnce) {
  TempMatrixFile m("robustness_wd.tmp.mtx", 18);
  // One injected 400 ms stall versus a 50 ms watchdog budget.
  chaos::ScopedGlobalEngine scoped(engine_from(
      "seed 8\n"
      "rule site=feature_extract kind=latency rate=1 latency_ms=400\n"));
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.threads = 1;
  cfg.watchdog_ms = 50.0;
  Service service(cfg, registry);

  const Response r =
      service.call(file_request("wd", RequestMode::kSelect, m.path));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  EXPECT_EQ(service.counters().watchdog_killed, 1u);
  // The stuck worker finishing later must not double-deliver: shutdown
  // (via the destructor) waits it out; counters must stay consistent.
  service.shutdown();
  EXPECT_EQ(service.counters().watchdog_killed, 1u);
}

TEST(ChaosWatchdog, HealthyBatchesAreNeverKilled) {
  TempMatrixFile m("robustness_wd_ok.tmp.mtx", 19);
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  cfg.watchdog_ms = 2000.0;
  Service service(cfg, registry);
  for (int k = 0; k < 8; ++k) {
    const Response r = service.call(
        file_request("h" + std::to_string(k), RequestMode::kSelect, m.path));
    EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_EQ(service.counters().watchdog_killed, 0u);
}

// --- Crash-safe model swaps ----------------------------------------------

TEST(ChaosRegistry, MidSwapFaultRollsBackAndJournals) {
  ModelRegistry registry;
  const std::uint64_t v1 = registry.install(tree_selector(), tree_perf());
  EXPECT_EQ(v1, 1u);

  {
    chaos::ScopedGlobalEngine scoped(engine_from(
        "seed 9\nrule site=registry_swap kind=error rate=1\n"));
    try {
      registry.install(tree_selector(), tree_perf());
      FAIL() << "mid-swap fault did not surface";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kIo);
    }
  }
  // Previous bundle stayed live; no version was burned on the failure.
  EXPECT_EQ(registry.version(), 1u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 1u);

  // Chaos lifted: the next swap publishes the next version with no gap.
  const std::uint64_t v2 = registry.install(tree_selector(), tree_perf());
  EXPECT_EQ(v2, 2u);

  const auto history = registry.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].action, "install");
  EXPECT_EQ(history[0].version, 1u);
  EXPECT_EQ(history[1].action, "rollback");
  EXPECT_EQ(history[1].version, 0u);
  EXPECT_NE(history[1].detail.find("injected"), std::string::npos);
  EXPECT_EQ(history[2].action, "install");
  EXPECT_EQ(history[2].version, 2u);
}

TEST(ChaosRegistry, ServiceKeepsServingAcrossRolledBackSwap) {
  TempMatrixFile m("robustness_swap.tmp.mtx", 20);
  ModelRegistry registry;
  registry.install(tree_selector(), tree_perf());
  ServiceConfig cfg = quick_config();
  Service service(cfg, registry);

  {
    chaos::ScopedGlobalEngine scoped(engine_from(
        "seed 10\nrule site=registry_swap kind=error rate=1\n"));
    EXPECT_THROW(registry.install(tree_selector(), tree_perf()), Error);
    // The registry is never without a valid bundle: requests racing the
    // failed swap are served by the surviving version.
    const Response r =
        service.call(file_request("sw", RequestMode::kSelect, m.path));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.model_version, 1u);
  }
}

// --- Graceful drain ------------------------------------------------------

TEST(DrainHandler, SigtermSetsTheFlagExactlyLikeRequestDrain) {
  serve::install_drain_handler();
  serve::reset_drain_for_test();
  EXPECT_FALSE(serve::drain_requested());

  std::raise(SIGTERM);  // handled: one relaxed flag store, no teardown
  EXPECT_TRUE(serve::drain_requested());

  serve::reset_drain_for_test();
  EXPECT_FALSE(serve::drain_requested());
  serve::request_drain();
  EXPECT_TRUE(serve::drain_requested());
  serve::reset_drain_for_test();
}

// --- Non-perturbation proof ----------------------------------------------

TEST(ChaosServe, InstalledButSilentChaosChangesNoOutputByte) {
  const auto plan = make_small_plan(6, 77);
  const std::string path = testing::TempDir() + "/robustness_csv.tmp.csv";

  const auto reference = collect_corpus(plan);
  save_corpus_csv(path, reference, plan.size());
  const std::string reference_csv = slurp(path);

  {
    // Chaos engine installed with every serving site armed at rate 0:
    // the instrumentation is live on the hot path yet must inject
    // nothing and perturb nothing.
    chaos::ScopedGlobalEngine scoped(engine_from(
        "seed 123\n"
        "rule site=request_parse kind=error rate=0\n"
        "rule site=cache_lookup kind=latency rate=0 latency_ms=1\n"
        "rule site=feature_extract kind=error rate=0\n"
        "rule site=materialize kind=corrupt rate=0\n"
        "rule site=inference kind=error rate=0\n"
        "rule site=registry_swap kind=error rate=0\n"
        "rule site=oracle_measure kind=error rate=0\n"));
    const auto observed = collect_corpus(plan);
    save_corpus_csv(path, observed, plan.size());
  }
  const std::string observed_csv = slurp(path);
  EXPECT_EQ(reference_csv, observed_csv);
  EXPECT_FALSE(reference_csv.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spmvml
