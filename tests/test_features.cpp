// Feature extraction tests: hand-computed 17-feature vectors, feature-set
// projection, and consistency with the RowSummary digest.
#include <gtest/gtest.h>
#include <cmath>
#include <algorithm>
#include <cstdint>

#include "common/error.hpp"

#include "features/features.hpp"
#include "gpusim/row_summary.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

Csr<double> small_matrix() {
  // row 0: cols 0,1 (one chunk of 2)
  // row 1: col 2   (one chunk of 1)
  // row 2: cols 0, 3,4,5 (chunks of 1 and 3)
  // row 3: empty
  return Csr<double>(4, 6, {0, 2, 3, 7, 7}, {0, 1, 2, 0, 3, 4, 5},
                     {1, 2, 3, 4, 5, 6, 7});
}

TEST(Features, HandComputedValues) {
  const auto f = extract_features(small_matrix());
  EXPECT_DOUBLE_EQ(f[kNRows], 4.0);
  EXPECT_DOUBLE_EQ(f[kNCols], 6.0);
  EXPECT_DOUBLE_EQ(f[kNnzTot], 7.0);
  EXPECT_DOUBLE_EQ(f[kNnzMu], 1.75);
  EXPECT_NEAR(f[kNnzFrac], 100.0 * 7.0 / 24.0, 1e-12);
  EXPECT_DOUBLE_EQ(f[kNnzMax], 4.0);
  EXPECT_DOUBLE_EQ(f[kNnzMin], 0.0);
  // Row lengths {2,1,4,0}: population stddev = sqrt(2.1875).
  EXPECT_NEAR(f[kNnzSigma], std::sqrt(2.1875), 1e-12);
  // Chunks: {2},{1},{1,3} -> 4 chunks total.
  EXPECT_DOUBLE_EQ(f[kNnzbTot], 4.0);
  // Chunks per row: {1,1,2,0} -> mean 1.0.
  EXPECT_DOUBLE_EQ(f[kNnzbMu], 1.0);
  EXPECT_DOUBLE_EQ(f[kNnzbMax], 2.0);
  EXPECT_DOUBLE_EQ(f[kNnzbMin], 0.0);
  // Chunk sizes: {2,1,1,3} -> mean 1.75, max 3, min 1.
  EXPECT_DOUBLE_EQ(f[kSnzbMu], 1.75);
  EXPECT_DOUBLE_EQ(f[kSnzbMax], 3.0);
  EXPECT_DOUBLE_EQ(f[kSnzbMin], 1.0);
}

TEST(Features, SetSizesMatchPaper) {
  EXPECT_EQ(feature_set_indices(FeatureSet::kSet1).size(), 5u);
  EXPECT_EQ(feature_set_indices(FeatureSet::kSet12).size(), 11u);
  EXPECT_EQ(feature_set_indices(FeatureSet::kSet123).size(), 17u);
  EXPECT_EQ(feature_set_indices(FeatureSet::kImportant).size(), 7u);
}

TEST(Features, SetsAreNested) {
  const auto s1 = feature_set_indices(FeatureSet::kSet1);
  const auto s12 = feature_set_indices(FeatureSet::kSet12);
  const auto s123 = feature_set_indices(FeatureSet::kSet123);
  for (int id : s1)
    EXPECT_NE(std::find(s12.begin(), s12.end(), id), s12.end());
  for (int id : s12)
    EXPECT_NE(std::find(s123.begin(), s123.end(), id), s123.end());
}

TEST(Features, ImportantSetIsSubsetOfAll) {
  for (int id : feature_set_indices(FeatureSet::kImportant)) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kNumFeatures);
  }
}

TEST(Features, SelectProjectsInOrder) {
  const auto f = extract_features(small_matrix());
  const auto s1 = f.select(FeatureSet::kSet1);
  ASSERT_EQ(s1.size(), 5u);
  EXPECT_DOUBLE_EQ(s1[0], 4.0);   // n_rows
  EXPECT_DOUBLE_EQ(s1[2], 7.0);   // nnz_tot
}

TEST(Features, SelectRejectsBadIndices) {
  const auto f = extract_features(small_matrix());
  const std::vector<int> bad = {0, 99};
  EXPECT_THROW(f.select(bad), Error);
}

TEST(Features, NamesAreUniqueAndStable) {
  EXPECT_STREQ(feature_name(kNRows), "n_rows");
  EXPECT_STREQ(feature_name(kNnzbTot), "nnzb_tot");
  EXPECT_STREQ(feature_name(kSnzbMin), "snzb_min");
  for (int i = 0; i < kNumFeatures; ++i)
    for (int j = i + 1; j < kNumFeatures; ++j)
      EXPECT_STRNE(feature_name(i), feature_name(j));
  EXPECT_THROW(feature_name(17), Error);
}

TEST(Features, AgreeWithRowSummaryOnSharedStats) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 3000;
  spec.cols = 3000;
  spec.row_mu = 8.0;
  spec.seed = 21;
  const auto m = generate(spec);
  const auto f = extract_features(m);
  const auto s = summarize(m);
  // Different summation orders (direct ratio vs Welford): compare with a
  // relative tolerance.
  EXPECT_NEAR(f[kNnzMu], s.row_mu, 1e-9 * s.row_mu);
  EXPECT_NEAR(f[kNnzSigma], s.row_sigma, 1e-6 * (1.0 + s.row_sigma));
  EXPECT_DOUBLE_EQ(f[kNnzMax], static_cast<double>(s.row_max));
  EXPECT_DOUBLE_EQ(f[kNnzbTot], static_cast<double>(s.total_chunks));
}

TEST(SampledFeatures, ExactWhenFractionIsOne) {
  const auto m = small_matrix();
  const auto exact = extract_features(m);
  const auto sampled = extract_features_sampled(m, 1.0);
  for (int i = 0; i < kNumFeatures; ++i)
    EXPECT_DOUBLE_EQ(sampled[i], exact[i]);
}

TEST(SampledFeatures, Set1AlwaysExact) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 20000;
  spec.cols = 21000;
  spec.row_mu = 9;
  spec.seed = 31;
  const auto m = generate(spec);
  const auto exact = extract_features(m);
  const auto sampled = extract_features_sampled(m, 0.05, 2);
  for (int id : feature_set_indices(FeatureSet::kSet1))
    EXPECT_DOUBLE_EQ(sampled[id], exact[id]) << feature_name(id);
}

TEST(SampledFeatures, MeansApproximateExactScan) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 50000;
  spec.cols = 50000;
  spec.row_mu = 12;
  spec.row_cv = 0.8;
  spec.seed = 33;
  const auto m = generate(spec);
  const auto exact = extract_features(m);
  const auto sampled = extract_features_sampled(m, 0.1, 3);
  for (int id : {kNnzSigma, kNnzbMu, kSnzbMu}) {
    EXPECT_NEAR(sampled[id], exact[id], 0.1 * (1.0 + exact[id]))
        << feature_name(id);
  }
  // Rescaled total chunk count within 10%.
  EXPECT_NEAR(sampled[kNnzbTot], exact[kNnzbTot], 0.1 * exact[kNnzbTot]);
}

TEST(SampledFeatures, DeterministicPerSeed) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 10000;
  spec.cols = 10000;
  spec.row_mu = 8;
  spec.seed = 34;
  const auto m = generate(spec);
  const auto a = extract_features_sampled(m, 0.2, 9);
  const auto b = extract_features_sampled(m, 0.2, 9);
  for (int i = 0; i < kNumFeatures; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(SampledFeatures, RejectsNonPositiveFraction) {
  EXPECT_THROW(extract_features_sampled(small_matrix(), 0.0), Error);
}

TEST(Features, BlockedExtractionIsDeterministicAndExactOnCounts) {
  // >4096 rows takes the blocked (parallelizable) scan. The fixed block
  // partition merged in row order must give the same bits on every call,
  // and the exactly-mergeable fields must match a serial hand count.
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 4096 * 3 + 777;  // spans several blocks plus a ragged tail
  spec.cols = 9000;
  spec.row_mu = 6.0;
  spec.seed = 77;
  const auto m = generate(spec);
  const auto a = extract_features(m);
  const auto b = extract_features(m);
  for (int i = 0; i < kNumFeatures; ++i)
    EXPECT_DOUBLE_EQ(a[i], b[i]) << feature_name(i);

  // Exact fields: counts, extrema, totals survive the merge bit-exactly.
  double nnz = 0.0, row_max = 0.0, row_min = 1e30;
  std::int64_t chunks = 0;
  for (index_t r = 0; r < m.rows(); ++r) {
    const double len = static_cast<double>(m.row_ptr()[r + 1] - m.row_ptr()[r]);
    nnz += len;
    row_max = std::max(row_max, len);
    row_min = std::min(row_min, len);
    for (index_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k)
      if (k == m.row_ptr()[r] || m.col_idx()[k] != m.col_idx()[k - 1] + 1)
        ++chunks;
  }
  EXPECT_DOUBLE_EQ(a[kNnzTot], nnz);
  EXPECT_DOUBLE_EQ(a[kNnzMax], row_max);
  EXPECT_DOUBLE_EQ(a[kNnzMin], row_min);
  EXPECT_DOUBLE_EQ(a[kNnzbTot], static_cast<double>(chunks));
  EXPECT_DOUBLE_EQ(a[kNRows], static_cast<double>(m.rows()));
}

TEST(Features, EmptyMatrixIsAllZeros) {
  Csr<double> m(0, 0, {0}, {}, {});
  const auto f = extract_features(m);
  for (int i = 0; i < kNumFeatures; ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
}

TEST(Features, DenseSingleRow) {
  Csr<double> m(1, 5, {0, 5}, {0, 1, 2, 3, 4}, {1, 1, 1, 1, 1});
  const auto f = extract_features(m);
  EXPECT_DOUBLE_EQ(f[kNnzbTot], 1.0);   // one big chunk
  EXPECT_DOUBLE_EQ(f[kSnzbMax], 5.0);
  EXPECT_DOUBLE_EQ(f[kNnzFrac], 100.0);
  EXPECT_DOUBLE_EQ(f[kNnzSigma], 0.0);
}

}  // namespace
}  // namespace spmvml
