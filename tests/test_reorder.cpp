// RCM reordering tests: permutation validity, SpMV consistency under
// symmetric permutation, bandwidth recovery on shuffled banded matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/reorder.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

Csr<double> banded_matrix(index_t n, std::uint64_t seed) {
  GenSpec spec;
  spec.family = MatrixFamily::kBanded;
  spec.rows = n;
  spec.cols = n;
  spec.row_mu = 7.0;
  spec.band_frac = 0.004;
  spec.seed = seed;
  return generate(spec);
}

TEST(Rcm, ProducesValidPermutation) {
  const auto m = banded_matrix(500, 1);
  const auto order = rcm_ordering(m);
  ASSERT_EQ(order.size(), 500u);
  std::vector<index_t> sorted(order);
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 500; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rcm, RecoversBandingAfterShuffle) {
  const auto banded = banded_matrix(800, 2);
  const auto shuffled = shuffle_labels(banded, 77);
  ASSERT_GT(bandwidth(shuffled), 5 * bandwidth(banded));

  const auto order = rcm_ordering(shuffled);
  const auto recovered = permute_symmetric(shuffled, order);
  // RCM cannot beat the native ordering, but must undo most of the
  // shuffle damage.
  EXPECT_LT(bandwidth(recovered), bandwidth(shuffled) / 4);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint 3-cliques.
  std::vector<Triplet<double>> t;
  for (index_t base : {0, 3})
    for (index_t i = 0; i < 3; ++i)
      for (index_t j = 0; j < 3; ++j)
        if (i != j) t.push_back({base + i, base + j, 1.0});
  const auto m = Csr<double>::from_triplets(6, 6, std::move(t));
  const auto order = rcm_ordering(m);
  ASSERT_EQ(order.size(), 6u);
  std::vector<index_t> sorted(order);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<index_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Rcm, EmptyRowsSurvive) {
  Csr<double> m(4, 4, {0, 1, 1, 2, 2}, {2, 0}, {1.0, 2.0});
  const auto order = rcm_ordering(m);
  EXPECT_EQ(order.size(), 4u);
  const auto p = permute_symmetric(m, order);
  EXPECT_EQ(p.nnz(), 2);
}

TEST(PermuteSymmetric, SpmvCommutesWithPermutation) {
  // (P A P^T)(P x) == P (A x)
  const auto m = banded_matrix(300, 3);
  const auto order = rcm_ordering(m);
  const auto pm = permute_symmetric(m, order);

  Rng rng(4);
  std::vector<double> x(300);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<index_t> new_id(300);
  for (index_t i = 0; i < 300; ++i)
    new_id[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  std::vector<double> px(300);
  for (index_t i = 0; i < 300; ++i)
    px[static_cast<std::size_t>(new_id[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];

  std::vector<double> y(300), py_expect(300), py(300);
  spmv_reference(m, x, y);
  spmv_reference(pm, px, py);
  for (index_t i = 0; i < 300; ++i)
    py_expect[static_cast<std::size_t>(new_id[static_cast<std::size_t>(i)])] =
        y[static_cast<std::size_t>(i)];
  for (index_t i = 0; i < 300; ++i)
    EXPECT_NEAR(py[static_cast<std::size_t>(i)],
                py_expect[static_cast<std::size_t>(i)], 1e-12);
}

TEST(PermuteSymmetric, RejectsBadOrder) {
  const auto m = banded_matrix(10, 5);
  std::vector<index_t> dup(10, 0);
  EXPECT_THROW(permute_symmetric(m, dup), Error);
  std::vector<index_t> short_order(5);
  EXPECT_THROW(permute_symmetric(m, short_order), Error);
}

TEST(Bandwidth, HandComputed) {
  Csr<double> m(3, 3, {0, 2, 3, 4}, {0, 2, 1, 0}, {1, 2, 3, 4});
  EXPECT_EQ(bandwidth(m), 2);  // entries (0,2) and (2,0)
  Csr<double> empty(2, 2, {0, 0, 0}, {}, {});
  EXPECT_EQ(bandwidth(empty), 0);
}

}  // namespace
}  // namespace spmvml
