// GPU simulator tests: RowSummary digest correctness on hand matrices,
// cost-model mechanism assertions (padding hurts ELL, skew hurts CSR,
// merge/CSR5 stay balanced), and oracle noise/determinism behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/oracle.hpp"
#include "gpusim/row_summary.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

Csr<double> small_matrix() {
  return Csr<double>(4, 6, {0, 2, 3, 7, 7}, {0, 1, 2, 0, 3, 4, 5},
                     {1, 2, 3, 4, 5, 6, 7});
}

TEST(RowSummary, HandComputedDigest) {
  const auto s = summarize(small_matrix());
  EXPECT_EQ(s.rows, 4);
  EXPECT_EQ(s.cols, 6);
  EXPECT_EQ(s.nnz, 7);
  EXPECT_DOUBLE_EQ(s.row_mu, 7.0 / 4.0);
  EXPECT_EQ(s.row_max, 4);
  EXPECT_EQ(s.row_min, 0);
  EXPECT_EQ(s.empty_rows, 1);
  // Chunks: row0 [0,1]; row1 [2]; row2 [0] and [3,4,5] -> 4 chunks.
  EXPECT_EQ(s.total_chunks, 4);
  EXPECT_DOUBLE_EQ(s.chunk_size_mu, 7.0 / 4.0);
  // HYB split at width ceil(1.75)=2: rows keep min(len,2): 2+1+2+0 = 5.
  EXPECT_EQ(s.hyb_width, 2);
  EXPECT_EQ(s.hyb_ell_entries, 5);
  EXPECT_EQ(s.hyb_spill, 2);
}

TEST(RowSummary, CsrLaneStepsHandComputed) {
  const auto s = summarize(small_matrix());
  // Vector kernel: ceil(len/32)*32 per non-empty row = 32*3 (empty row: 0).
  EXPECT_DOUBLE_EQ(s.csr_vector_lane_steps, 96.0);
  // Scalar kernel: one 4-row group, max len 4 -> 4*32.
  EXPECT_DOUBLE_EQ(s.csr_scalar_lane_steps, 128.0);
}

TEST(RowSummary, EmptyMatrix) {
  Csr<double> m(0, 0, {0}, {}, {});
  const auto s = summarize(m);
  EXPECT_EQ(s.nnz, 0);
  EXPECT_EQ(s.row_max, 0);
  EXPECT_DOUBLE_EQ(s.ell_padding_ratio(), 1.0);
}

TEST(Arch, TestbedsMatchTableThree) {
  const auto k = tesla_k40c();
  EXPECT_EQ(k.sms, 13);
  EXPECT_EQ(k.cores_per_sm, 192);
  EXPECT_NEAR(k.clock_ghz, 0.824, 1e-9);
  const auto p = tesla_p100();
  EXPECT_EQ(p.sms, 56);
  EXPECT_EQ(p.cores_per_sm, 64);
  EXPECT_NEAR(p.clock_ghz, 1.328, 1e-9);
  EXPECT_GT(p.mem_bw_gbps, k.mem_bw_gbps);
  EXPECT_GT(p.l2_bytes, k.l2_bytes);
}

TEST(Arch, DoublePrecisionThrottle) {
  const auto k = tesla_k40c();
  EXPECT_LT(k.peak_flops(Precision::kDouble), k.peak_flops(Precision::kSingle));
}

RowSummary summary_for(MatrixFamily family, double mu, double cv,
                       std::uint64_t seed, index_t rows = 40000) {
  GenSpec spec;
  spec.family = family;
  spec.rows = rows;
  spec.cols = rows;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  return summarize(generate(spec));
}

TEST(CostModel, MoreNnzCostsMore) {
  const auto small = summary_for(MatrixFamily::kUniformRandom, 5.0, 0.3, 1);
  const auto large = summary_for(MatrixFamily::kUniformRandom, 50.0, 0.3, 1);
  const auto arch = tesla_p100();
  for (Format f : kAllFormats) {
    EXPECT_GT(simulate_time(large, f, arch, Precision::kDouble),
              simulate_time(small, f, arch, Precision::kDouble))
        << format_name(f);
  }
}

TEST(CostModel, P100FasterThanKepler) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 20.0, 0.5, 2);
  for (Format f : kAllFormats) {
    EXPECT_LT(simulate_time(s, f, tesla_p100(), Precision::kDouble),
              simulate_time(s, f, tesla_k40c(), Precision::kDouble))
        << format_name(f);
  }
}

TEST(CostModel, DoubleSlowerThanSingle) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 20.0, 0.5, 3);
  for (Format f : kAllFormats) {
    EXPECT_LT(simulate_time(s, f, tesla_p100(), Precision::kSingle),
              simulate_time(s, f, tesla_p100(), Precision::kDouble))
        << format_name(f);
  }
}

TEST(CostModel, RowSkewPunishesEllButNotMerge) {
  const auto regular = summary_for(MatrixFamily::kUniformRandom, 10.0, 0.05, 4);
  const auto skewed = summary_for(MatrixFamily::kPowerLaw, 10.0, 0.0, 4);
  ASSERT_GT(skewed.ell_padding_ratio(), 3.0 * regular.ell_padding_ratio());
  const auto arch = tesla_p100();

  auto per_nnz = [&](const RowSummary& s, Format f) {
    return simulate_time(s, f, arch, Precision::kDouble) /
           static_cast<double>(s.nnz);
  };
  // ELL per-nonzero cost must blow up with padding...
  EXPECT_GT(per_nnz(skewed, Format::kEll), 3.0 * per_nnz(regular, Format::kEll));
  // ...while merge-CSR stays within a modest factor.
  EXPECT_LT(per_nnz(skewed, Format::kMergeCsr),
            2.0 * per_nnz(regular, Format::kMergeCsr));
}

TEST(CostModel, EllCompetitiveOnRegularRows) {
  const auto regular = summary_for(MatrixFamily::kBanded, 12.0, 0.0, 5);
  const auto arch = tesla_k40c();
  const double ell = simulate_time(regular, Format::kEll, arch, Precision::kSingle);
  const double coo = simulate_time(regular, Format::kCoo, arch, Precision::kSingle);
  EXPECT_LT(ell, coo);  // no padding -> ELL beats COO's 2-index traffic
}

TEST(CostModel, LaunchOverheadDominatesTinyMatrices) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 50;
  spec.cols = 50;
  spec.row_mu = 3.0;
  spec.seed = 6;
  const auto s = summarize(generate(spec));
  const auto arch = tesla_p100();
  const auto breakdown =
      simulate_cost(s, Format::kCsr, arch, Precision::kDouble);
  EXPECT_GT(breakdown.launch_time, 0.5 * breakdown.total_time);
}

TEST(CostModel, BreakdownComponentsAreConsistent) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 20.0, 0.5, 7);
  const auto b = simulate_cost(s, Format::kCsr5, tesla_p100(),
                               Precision::kDouble);
  EXPECT_GT(b.traffic_bytes, 0.0);
  EXPECT_GT(b.memory_time, 0.0);
  EXPECT_GE(b.total_time, b.launch_time);
  EXPECT_GE(b.total_time,
            std::max({b.memory_time, b.exec_time, b.flop_time}));
}

TEST(CostModel, GatherCheaperWhenXFitsInL2) {
  // Same structure, shrink columns below L2 capacity.
  const auto big = summary_for(MatrixFamily::kUniformRandom, 10.0, 0.3, 8,
                               2000000);
  const auto small = summary_for(MatrixFamily::kUniformRandom, 10.0, 0.3, 8,
                                 20000);
  const auto arch = tesla_k40c();
  const auto b_big = simulate_cost(big, Format::kCsr, arch, Precision::kDouble);
  const auto b_small =
      simulate_cost(small, Format::kCsr, arch, Precision::kDouble);
  EXPECT_GT(b_big.gather_bytes / static_cast<double>(big.nnz),
            b_small.gather_bytes / static_cast<double>(small.nnz));
}

TEST(CostModel, BandedGathersLessThanRandom) {
  const auto banded = summary_for(MatrixFamily::kBanded, 10.0, 0.0, 9, 300000);
  const auto random =
      summary_for(MatrixFamily::kUniformRandom, 10.0, 0.3, 9, 300000);
  const auto arch = tesla_k40c();
  EXPECT_LT(
      simulate_cost(banded, Format::kCsr, arch, Precision::kDouble).gather_bytes /
          static_cast<double>(banded.nnz),
      simulate_cost(random, Format::kCsr, arch, Precision::kDouble).gather_bytes /
          static_cast<double>(random.nnz));
}

TEST(CostModel, GflopsHelper) {
  RowSummary s;
  s.nnz = 1000000;
  EXPECT_DOUBLE_EQ(to_gflops(s, 1e-3), 2.0);
  EXPECT_THROW(to_gflops(s, 0.0), Error);
}

TEST(Oracle, DeterministicForSameIdentity) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 15.0, 0.5, 10);
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
  const auto a = oracle.measure(s, Format::kCsr, 1234);
  const auto b = oracle.measure(s, Format::kCsr, 1234);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Oracle, DifferentMatricesGetDifferentNoise) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 15.0, 0.5, 10);
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble);
  EXPECT_NE(oracle.measure(s, Format::kCsr, 1).seconds,
            oracle.measure(s, Format::kCsr, 2).seconds);
}

TEST(Oracle, MeanTracksModelWithinNoiseBand) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 15.0, 0.5, 11);
  MeasurementConfig cfg;
  cfg.systematic_sigma = 0.07;
  const MeasurementOracle oracle(tesla_p100(), Precision::kDouble, cfg);
  const double model = simulate_time(s, Format::kCsr, tesla_p100(),
                                     Precision::kDouble);
  const double measured = oracle.measure(s, Format::kCsr, 42).seconds;
  EXPECT_GT(measured, model * 0.6);
  EXPECT_LT(measured, model * 1.6);
}

TEST(Oracle, MoreRepsShrinkJitter) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 15.0, 0.5, 12);
  MeasurementConfig noisy;
  noisy.reps = 1;
  noisy.systematic_sigma = 0.0;
  MeasurementConfig averaged;
  averaged.reps = 200;
  averaged.systematic_sigma = 0.0;
  const double model =
      simulate_time(s, Format::kCsr, tesla_p100(), Precision::kDouble);

  auto spread = [&](const MeasurementConfig& cfg) {
    const MeasurementOracle oracle(tesla_p100(), Precision::kDouble, cfg);
    double worst = 0.0;
    for (std::uint64_t id = 0; id < 50; ++id) {
      const double m = oracle.measure(s, Format::kCsr, id).seconds;
      worst = std::max(worst, std::abs(m - model) / model);
    }
    return worst;
  };
  EXPECT_LT(spread(averaged), spread(noisy));
}

TEST(Oracle, MeasureAllCoversEveryFormat) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 15.0, 0.5, 13);
  const MeasurementOracle oracle(tesla_k40c(), Precision::kSingle);
  const auto all = oracle.measure_all(s, 7);
  for (int f = 0; f < kNumFormats; ++f) {
    EXPECT_GT(all[static_cast<std::size_t>(f)].seconds, 0.0);
    EXPECT_GT(all[static_cast<std::size_t>(f)].gflops, 0.0);
  }
}

TEST(CostModel, TextureFactorOnlyHelpsEllAndHyb) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 10.0, 0.5, 40,
                             400000);
  CostParams base;
  CostParams no_texture = base;
  no_texture.texture_gather_factor = 1.0;
  const auto arch = tesla_k40c();
  for (Format f : kAllFormats) {
    const double with = simulate_time(s, f, arch, Precision::kDouble, base);
    const double without =
        simulate_time(s, f, arch, Precision::kDouble, no_texture);
    if (f == Format::kEll || f == Format::kHyb || f == Format::kSell) {
      EXPECT_LE(with, without) << format_name(f);
    } else {
      EXPECT_DOUBLE_EQ(with, without) << format_name(f);
    }
  }
}

TEST(CostModel, LocalityKnobsChangeOnlyGather) {
  const auto s = summary_for(MatrixFamily::kUniformRandom, 10.0, 0.5, 41,
                             400000);
  CostParams flat;
  flat.min_miss = 1.0;  // constant full-miss gather
  const auto b_default =
      simulate_cost(s, Format::kCsr, tesla_p100(), Precision::kDouble);
  const auto b_flat =
      simulate_cost(s, Format::kCsr, tesla_p100(), Precision::kDouble, flat);
  EXPECT_GT(b_flat.gather_bytes, b_default.gather_bytes);
  EXPECT_DOUBLE_EQ(b_flat.launch_time, b_default.launch_time);
  EXPECT_DOUBLE_EQ(b_flat.exec_time, b_default.exec_time);
}

TEST(CostModel, TailZeroForBalancedFormats) {
  const auto s = summary_for(MatrixFamily::kPowerLaw, 12.0, 0.0, 42, 100000);
  for (Format f : {Format::kCoo, Format::kCsr5, Format::kMergeCsr}) {
    EXPECT_DOUBLE_EQ(
        simulate_cost(s, f, tesla_k40c(), Precision::kDouble).tail_time, 0.0)
        << format_name(f);
  }
  EXPECT_GT(
      simulate_cost(s, Format::kEll, tesla_k40c(), Precision::kDouble)
          .tail_time,
      0.0);
}

TEST(Oracle, RejectsBadConfig) {
  MeasurementConfig cfg;
  cfg.reps = 0;
  EXPECT_THROW(MeasurementOracle(tesla_p100(), Precision::kDouble, cfg),
               Error);
}

}  // namespace
}  // namespace spmvml
