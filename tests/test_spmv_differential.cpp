// Differential tests of the SIMD/parallel SpMV contract (DESIGN.md §5g):
// for every format and every synthetic matrix family, the serial scalar
// fallback, the runtime-dispatched SIMD tier, and the parallel kernels
// must produce *byte-identical* y — no tolerances. The same suite pins
// the simd primitive semantics (lane accumulation, the short-row
// sequential rule, the pairwise reduction tree) against hand-rolled
// replays, and proves every format round-trips back to its CSR master
// copy bit-for-bit.
//
// In an SPMVML_FORCE_SCALAR build (tools/check.sh --simd-off) the SIMD
// path *is* the scalar path, so the comparisons still run and still
// must hold — the suite degrades to checking parallel == serial.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/simd.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

/// Restores the process-wide SIMD toggle on scope exit so a failing
/// assertion cannot leak a disabled state into later tests.
struct SimdGuard {
  bool saved;
  SimdGuard() : saved(simd::enabled()) {}
  ~SimdGuard() { simd::set_enabled(saved); }
};

std::vector<double> random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

/// Parallel kernel for the formats that decompose; COO and CSR5 have no
/// parallel variant (their segmented carries are sequential) and use the
/// serial kernel.
void spmv_parallel_any(const AnyMatrix<double>& m,
                       const std::vector<double>& x, std::vector<double>& y) {
  switch (m.format()) {
    case Format::kCsr: return spmv_parallel(m.get<Csr<double>>(), x, y);
    case Format::kEll: return spmv_parallel(m.get<Ell<double>>(), x, y);
    case Format::kHyb: return spmv_parallel(m.get<Hyb<double>>(), x, y);
    case Format::kMergeCsr:
      return spmv_parallel(m.get<MergeCsr<double>>(), x, y);
    case Format::kSell: return spmv_parallel(m.get<Sell<double>>(), x, y);
    case Format::kCoo:
    case Format::kCsr5: return m.spmv(x, y);
  }
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

using Param = std::tuple<MatrixFamily, double /*mu*/, double /*cv*/,
                         std::uint64_t /*seed*/>;

class SpmvDifferential : public ::testing::TestWithParam<Param> {};

TEST_P(SpmvDifferential, SerialSimdParallelBitwiseIdentical) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 500;
  spec.cols = 470;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto csr = generate(spec);
  const auto x = random_x(csr.cols(), seed ^ 0x51D5ULL);

  SimdGuard guard;
  std::vector<double> y_scalar(static_cast<std::size_t>(csr.rows()));
  std::vector<double> y_simd(y_scalar.size());
  std::vector<double> y_par(y_scalar.size());
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, csr);
    simd::set_enabled(false);
    m.spmv(x, y_scalar);
    simd::set_enabled(true);  // no-op when the build is scalar-only
    m.spmv(x, y_simd);
    spmv_parallel_any(m, x, y_par);
    EXPECT_TRUE(bytes_equal(y_scalar, y_simd))
        << format_name(f) << ": SIMD y differs from scalar y, family "
        << family_name(family);
    EXPECT_TRUE(bytes_equal(y_scalar, y_par))
        << format_name(f) << ": parallel y differs from scalar y, family "
        << family_name(family);
  }
}

TEST_P(SpmvDifferential, FromCsrToCsrRoundTrips) {
  const auto [family, mu, cv, seed] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 300;
  spec.cols = 310;
  spec.row_mu = mu;
  spec.row_cv = cv;
  spec.seed = seed;
  const auto csr = generate(spec);
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, csr);
    EXPECT_EQ(m.to_csr(), csr)
        << format_name(f) << " round trip, family " << family_name(family);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpmvDifferential,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kBanded, MatrixFamily::kStencil,
                          MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBlockRandom,
                          MatrixFamily::kGeomGraph),
        ::testing::Values(4.0, 24.0),  // below and above the dot cutoff
        ::testing::Values(0.3, 1.2),
        ::testing::Values(7ULL, 1234ULL)));

// --- SELL-C-sigma across the (C, sigma) tuning surface ---------------------
// The generic suite above covers SELL at the default (32, 128); this one
// sweeps C in {4, 32} x sigma in {C, 4C, rows} over all six families,
// asserting the same three-way bitwise contract plus the CSR round trip
// for every tuning — including sigma = rows, which does not divide the
// row count and exercises slices straddling sort-window boundaries.
using SellParam = std::tuple<MatrixFamily, index_t /*C*/, int /*sigma kind*/>;

class SellDifferential : public ::testing::TestWithParam<SellParam> {};

TEST_P(SellDifferential, SerialSimdParallelBitwiseIdenticalAllTunings) {
  const auto [family, c, sigma_kind] = GetParam();
  GenSpec spec;
  spec.family = family;
  spec.rows = 500;
  spec.cols = 470;
  spec.row_mu = 10.0;
  spec.row_cv = 1.2;
  spec.seed = 42;
  const auto csr = generate(spec);
  const index_t sigma =
      sigma_kind == 0 ? c : (sigma_kind == 1 ? 4 * c : csr.rows());
  const auto sell = Sell<double>::from_csr(csr, c, sigma);
  sell.validate();
  EXPECT_EQ(sell.to_csr(), csr);

  const auto x = random_x(csr.cols(), 0x5E11ULL ^ static_cast<std::uint64_t>(c));
  SimdGuard guard;
  std::vector<double> y_scalar(static_cast<std::size_t>(csr.rows()));
  std::vector<double> y_simd(y_scalar.size());
  std::vector<double> y_par(y_scalar.size());
  simd::set_enabled(false);
  sell.spmv(x, y_scalar);
  simd::set_enabled(true);
  sell.spmv(x, y_simd);
  spmv_parallel(sell, std::span<const double>(x), std::span<double>(y_par));
  EXPECT_TRUE(bytes_equal(y_scalar, y_simd))
      << "C=" << c << " sigma=" << sigma << " family " << family_name(family);
  EXPECT_TRUE(bytes_equal(y_scalar, y_par))
      << "C=" << c << " sigma=" << sigma << " family " << family_name(family);
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, SellDifferential,
    ::testing::Combine(
        ::testing::Values(MatrixFamily::kBanded, MatrixFamily::kStencil,
                          MatrixFamily::kUniformRandom,
                          MatrixFamily::kPowerLaw, MatrixFamily::kBlockRandom,
                          MatrixFamily::kGeomGraph),
        ::testing::Values(index_t{4}, index_t{32}),
        ::testing::Values(0, 1, 2)));  // sigma = C, 4C, rows

// --- Primitive semantics ---------------------------------------------------
// The scalar reference *is* the contract; these pin its definition so a
// future "optimisation" cannot silently redefine the bits every tier
// must reproduce.

struct DotCase {
  std::vector<double> vals;
  std::vector<index_t> cols;
  std::vector<double> x;
};

DotCase make_dot_case(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  DotCase c;
  const index_t xn = std::max<index_t>(n * 2, 8);
  c.x.resize(static_cast<std::size_t>(xn));
  for (auto& v : c.x) v = rng.uniform(-2.0, 2.0);
  c.vals.resize(static_cast<std::size_t>(n));
  c.cols.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    c.vals[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
    c.cols[static_cast<std::size_t>(i)] =
        static_cast<index_t>(rng() % static_cast<std::uint64_t>(xn));
  }
  return c;
}

TEST(SimdContract, ShortRowsSumSequentially) {
  for (index_t n = 0; n < simd::kDotSequentialCutoff<double>; ++n) {
    const auto c = make_dot_case(n, 100 + static_cast<std::uint64_t>(n));
    double expect = 0.0;
    for (index_t i = 0; i < n; ++i)
      expect += c.vals[static_cast<std::size_t>(i)] *
                c.x[static_cast<std::size_t>(c.cols[static_cast<std::size_t>(i)])];
    const double got = simd::dot(c.vals.data(), c.cols.data(), c.x.data(), n);
    EXPECT_EQ(std::memcmp(&expect, &got, sizeof(double)), 0) << "n=" << n;
  }
}

TEST(SimdContract, LongRowsUseLaneAccumulators) {
  constexpr index_t W = simd::kLanes<double>;
  for (const index_t n : {simd::kDotSequentialCutoff<double>, index_t{37},
                          index_t{64}, index_t{129}}) {
    const auto c = make_dot_case(n, 900 + static_cast<std::uint64_t>(n));
    // Manual replay of the contract: element i -> lane i mod W over the
    // full blocks, tail element full+j -> lane j, pairwise halving tree.
    double acc[W] = {};
    const index_t full = n - n % W;
    for (index_t i = 0; i < full; ++i)
      acc[i % W] += c.vals[static_cast<std::size_t>(i)] *
                    c.x[static_cast<std::size_t>(c.cols[static_cast<std::size_t>(i)])];
    for (index_t j = 0; j < n - full; ++j)
      acc[j] += c.vals[static_cast<std::size_t>(full + j)] *
                c.x[static_cast<std::size_t>(
                    c.cols[static_cast<std::size_t>(full + j)])];
    for (index_t w = W / 2; w >= 1; w /= 2)
      for (index_t j = 0; j < w; ++j) acc[j] = acc[2 * j] + acc[2 * j + 1];
    const double expect = acc[0];
    const double got = simd::dot(c.vals.data(), c.cols.data(), c.x.data(), n);
    EXPECT_EQ(std::memcmp(&expect, &got, sizeof(double)), 0) << "n=" << n;
  }
}

TEST(SimdContract, DotCutoffBoundaryMatchesScalarBothSides) {
  // The exact boundary where dot() switches summation rules: both tiers
  // must switch at the same n or the bits diverge.
  SimdGuard guard;
  const index_t cutoff = simd::kDotSequentialCutoff<double>;
  for (const index_t n : {cutoff - 1, cutoff, cutoff + 1}) {
    const auto c = make_dot_case(n, 4000 + static_cast<std::uint64_t>(n));
    const double scalar =
        simd::detail::dot_scalar(c.vals.data(), c.cols.data(), c.x.data(), n);
    simd::set_enabled(true);
    const double active =
        simd::dot(c.vals.data(), c.cols.data(), c.x.data(), n);
    EXPECT_EQ(std::memcmp(&scalar, &active, sizeof(double)), 0) << "n=" << n;
  }
}

TEST(SimdContract, FloatDotMatchesScalar) {
  SimdGuard guard;
  Rng rng(77);
  for (const index_t n : {index_t{5}, index_t{31}, index_t{32}, index_t{100}}) {
    std::vector<float> vals(static_cast<std::size_t>(n));
    std::vector<index_t> cols(static_cast<std::size_t>(n));
    std::vector<float> x(256);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (index_t i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
      cols[static_cast<std::size_t>(i)] =
          static_cast<index_t>(rng() % 256);
    }
    const float scalar =
        simd::detail::dot_scalar(vals.data(), cols.data(), x.data(), n);
    simd::set_enabled(true);
    const float active = simd::dot(vals.data(), cols.data(), x.data(), n);
    EXPECT_EQ(std::memcmp(&scalar, &active, sizeof(float)), 0) << "n=" << n;
  }
}

TEST(SimdContract, MaskedGatherAxpyMatchesScalarWithPads) {
  SimdGuard guard;
  constexpr index_t kPad = -1;
  Rng rng(55);
  for (const index_t n : {index_t{1}, index_t{4}, index_t{7}, index_t{64},
                          index_t{101}}) {
    std::vector<double> vals(static_cast<std::size_t>(n));
    std::vector<index_t> cols(static_cast<std::size_t>(n));
    std::vector<double> x(128);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    for (index_t i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      // ~1/3 padded slots, including whole padded blocks when n is long.
      const bool pad = (i >= 8 && i < 16) || rng() % 3 == 0;
      cols[static_cast<std::size_t>(i)] =
          pad ? kPad : static_cast<index_t>(rng() % 128);
    }
    std::vector<double> y_scalar(static_cast<std::size_t>(n), 0.5);
    std::vector<double> y_active(y_scalar);
    simd::detail::masked_gather_axpy_scalar(vals.data(), cols.data(), x.data(),
                                            y_scalar.data(), n, kPad);
    simd::set_enabled(true);
    simd::masked_gather_axpy(vals.data(), cols.data(), x.data(),
                             y_active.data(), n, kPad);
    EXPECT_TRUE(bytes_equal(y_scalar, y_active)) << "n=" << n;
  }
}

TEST(SimdContract, MaskedScatterAxpyMatchesScalarWithPads) {
  // The SELL slot-column update: like the gather axpy but the += lands
  // through an output-row indirection (the sorted-row permutation).
  SimdGuard guard;
  constexpr index_t kPad = -1;
  Rng rng(58);
  for (const index_t n : {index_t{1}, index_t{4}, index_t{7}, index_t{64},
                          index_t{101}}) {
    std::vector<double> vals(static_cast<std::size_t>(n));
    std::vector<index_t> cols(static_cast<std::size_t>(n));
    std::vector<index_t> rows(static_cast<std::size_t>(n));
    std::vector<double> x(128);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    // rows = a genuine permutation of [0, n) (shuffled), as in SELL.
    for (index_t i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = i;
    for (index_t i = n - 1; i > 0; --i)
      std::swap(rows[static_cast<std::size_t>(i)],
                rows[static_cast<std::size_t>(
                    rng() % static_cast<std::uint64_t>(i + 1))]);
    for (index_t i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      // ~1/3 padded slots plus a whole padded block when n is long.
      const bool pad = (i >= 8 && i < 16) || rng() % 3 == 0;
      cols[static_cast<std::size_t>(i)] =
          pad ? kPad : static_cast<index_t>(rng() % 128);
    }
    std::vector<double> y_scalar(static_cast<std::size_t>(n), 0.5);
    std::vector<double> y_active(y_scalar);
    simd::detail::masked_scatter_axpy_scalar(vals.data(), cols.data(),
                                             x.data(), y_scalar.data(),
                                             rows.data(), n, kPad);
    simd::set_enabled(true);
    simd::masked_scatter_axpy(vals.data(), cols.data(), x.data(),
                              y_active.data(), rows.data(), n, kPad);
    EXPECT_TRUE(bytes_equal(y_scalar, y_active)) << "n=" << n;
  }
}

TEST(SimdContract, MulGatherMatchesScalar) {
  SimdGuard guard;
  Rng rng(66);
  for (const index_t n : {index_t{1}, index_t{6}, index_t{33}, index_t{128}}) {
    std::vector<double> vals(static_cast<std::size_t>(n));
    std::vector<index_t> cols(static_cast<std::size_t>(n));
    std::vector<double> x(64);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    for (index_t i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      cols[static_cast<std::size_t>(i)] = static_cast<index_t>(rng() % 64);
    }
    std::vector<double> out_scalar(static_cast<std::size_t>(n));
    std::vector<double> out_active(static_cast<std::size_t>(n));
    simd::detail::mul_gather_scalar(vals.data(), cols.data(), x.data(),
                                    out_scalar.data(), n);
    simd::set_enabled(true);
    simd::mul_gather(vals.data(), cols.data(), x.data(), out_active.data(), n);
    EXPECT_TRUE(bytes_equal(out_scalar, out_active)) << "n=" << n;
  }
}

TEST(SimdContract, DotKernelPointerMatchesDispatchedDot) {
  SimdGuard guard;
  for (const bool on : {false, true}) {
    simd::set_enabled(on);
    const auto kernel = simd::dot_kernel<double>();
    const auto c = make_dot_case(50, 31337);
    const double via_ptr = kernel(c.vals.data(), c.cols.data(), c.x.data(), 50);
    const double via_dot = simd::dot(c.vals.data(), c.cols.data(), c.x.data(), 50);
    EXPECT_EQ(std::memcmp(&via_ptr, &via_dot, sizeof(double)), 0)
        << "enabled=" << on;
  }
}

TEST(SimdContract, SelfCheckPassesAndIsaIsKnown) {
  EXPECT_TRUE(simd::self_check());
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "portable" || isa == "scalar") << isa;
  if (!simd::compiled_in()) EXPECT_EQ(isa, "scalar");
}

TEST(SimdContract, SetEnabledRoundTrips) {
  SimdGuard guard;
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
  simd::set_enabled(true);
  // In a scalar-only build set_enabled(true) must stay false.
  EXPECT_EQ(simd::enabled(), simd::compiled_in());
}

// --- Regression cases ------------------------------------------------------

TEST(SpmvDifferentialRegression, EmptyRowsAndEmptyMatrix) {
  SimdGuard guard;
  // Rows 1 and 3 empty; row 2 exactly at the sequential cutoff.
  std::vector<Triplet<double>> t;
  for (index_t j = 0; j < simd::kDotSequentialCutoff<double>; ++j)
    t.push_back({2, j, 0.25 * static_cast<double>(j + 1)});
  t.push_back({0, 0, 1.5});
  const auto csr = Csr<double>::from_triplets(5, 40, t);
  const auto x = random_x(csr.cols(), 9);
  std::vector<double> y_scalar(5), y_simd(5), y_par(5);
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, csr);
    simd::set_enabled(false);
    m.spmv(x, y_scalar);
    simd::set_enabled(true);
    m.spmv(x, y_simd);
    spmv_parallel_any(m, x, y_par);
    EXPECT_TRUE(bytes_equal(y_scalar, y_simd)) << format_name(f);
    EXPECT_TRUE(bytes_equal(y_scalar, y_par)) << format_name(f);
    EXPECT_EQ(y_scalar[1], 0.0) << format_name(f);
    EXPECT_EQ(y_scalar[3], 0.0) << format_name(f);
  }

  const auto empty = Csr<double>::from_triplets(3, 3, {});
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, empty);
    std::vector<double> y(3, 7.0), x3(3, 1.0);
    m.spmv(x3, y);
    EXPECT_EQ(y, std::vector<double>(3, 0.0)) << format_name(f);
    EXPECT_EQ(m.to_csr(), empty) << format_name(f);
  }
}

TEST(SpmvDifferentialRegression, SingleLongRowCrossesLaneBlocks) {
  // One dense row of 1000: stresses the lane tail handling and the
  // merge-CSR carry chain (every partition lands inside the same row).
  SimdGuard guard;
  std::vector<Triplet<double>> t;
  for (index_t j = 0; j < 1000; ++j)
    t.push_back({0, j, std::ldexp(1.0, static_cast<int>(j % 31) - 15)});
  const auto csr = Csr<double>::from_triplets(1, 1000, t);
  const auto x = random_x(1000, 17);
  std::vector<double> y_scalar(1), y_simd(1), y_par(1);
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, csr);
    simd::set_enabled(false);
    m.spmv(x, y_scalar);
    simd::set_enabled(true);
    m.spmv(x, y_simd);
    spmv_parallel_any(m, x, y_par);
    EXPECT_TRUE(bytes_equal(y_scalar, y_simd)) << format_name(f);
    EXPECT_TRUE(bytes_equal(y_scalar, y_par)) << format_name(f);
  }
}

TEST(SpmvDifferentialRegression, CatastrophicCancellationStaysBitwise) {
  // Values engineered so different summation orders give *different*
  // floats — exactly the case where an "approximately equal" check
  // would hide a reassociating kernel. 1e16 + 1 - 1e16 style rows.
  SimdGuard guard;
  std::vector<Triplet<double>> t;
  const index_t n = 48;
  for (index_t j = 0; j < n; ++j) {
    const double v = (j % 2 == 0) ? 1e16 : -1e16;
    t.push_back({0, j, v + static_cast<double>(j)});
    t.push_back({1, j, 1.0 / 3.0});
  }
  const auto csr = Csr<double>::from_triplets(2, n, t);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y_scalar(2), y_simd(2), y_par(2);
  for (const Format f : kAllFormats) {
    const auto m = AnyMatrix<double>::build(f, csr);
    simd::set_enabled(false);
    m.spmv(x, y_scalar);
    simd::set_enabled(true);
    m.spmv(x, y_simd);
    spmv_parallel_any(m, x, y_par);
    EXPECT_TRUE(bytes_equal(y_scalar, y_simd)) << format_name(f);
    EXPECT_TRUE(bytes_equal(y_scalar, y_par)) << format_name(f);
  }
}

TEST(SpmvDifferentialRegression, SellCutoffStraddlingSliceWidths) {
  // Row lengths straddle the dot sequential cutoff (16 for double) so
  // consecutive slices get widths on both sides of every lane-block
  // boundary; C=4 keeps the scatter primitive on its vector+tail path.
  SimdGuard guard;
  std::vector<Triplet<double>> t;
  const index_t cutoff = simd::kDotSequentialCutoff<double>;
  const index_t rows = 37;  // not a multiple of C: short last slice
  for (index_t r = 0; r < rows; ++r) {
    const index_t len = cutoff - 3 + r % 7;  // 13..19 around the cutoff
    for (index_t j = 0; j < len; ++j)
      t.push_back({r, (r * 11 + j * 3) % 64,
                   0.5 + 0.01 * static_cast<double>(r * 64 + j)});
  }
  const auto csr = Csr<double>::from_triplets(rows, 64, t);
  const auto x = random_x(64, 23);
  for (const index_t c : {index_t{4}, index_t{5}, index_t{32}}) {
    const auto sell = Sell<double>::from_csr(csr, c, csr.rows());
    sell.validate();
    std::vector<double> y_scalar(static_cast<std::size_t>(rows));
    std::vector<double> y_simd(y_scalar.size()), y_par(y_scalar.size());
    simd::set_enabled(false);
    sell.spmv(x, y_scalar);
    simd::set_enabled(true);
    sell.spmv(x, y_simd);
    spmv_parallel(sell, std::span<const double>(x), std::span<double>(y_par));
    EXPECT_TRUE(bytes_equal(y_scalar, y_simd)) << "C=" << c;
    EXPECT_TRUE(bytes_equal(y_scalar, y_par)) << "C=" << c;
  }
}

TEST(SpmvDifferentialRegression, SellAllPadSliceAndEmptySlices) {
  // One long row atop 63 empty ones, C=32 sigma=32: slice 0 is width-20
  // with 31 all-pad lanes per slot column (whole 4-lane blocks fully
  // padded — the AVX2 skip path), and slice 1 is width 0 (no slots at
  // all). Empty rows must still come back exactly 0.0.
  SimdGuard guard;
  std::vector<Triplet<double>> t;
  for (index_t j = 0; j < 20; ++j)
    t.push_back({0, j * 2, 1.0 + static_cast<double>(j)});
  const auto csr = Csr<double>::from_triplets(64, 40, t);
  const auto x = random_x(40, 31);
  const auto sell = Sell<double>::from_csr(csr, 32, 32);
  sell.validate();
  EXPECT_EQ(sell.slice_width(0), 20);
  EXPECT_EQ(sell.slice_width(1), 0);
  EXPECT_EQ(sell.to_csr(), csr);
  std::vector<double> y_scalar(64), y_simd(64), y_par(64);
  simd::set_enabled(false);
  sell.spmv(x, y_scalar);
  simd::set_enabled(true);
  sell.spmv(x, y_simd);
  spmv_parallel(sell, std::span<const double>(x), std::span<double>(y_par));
  EXPECT_TRUE(bytes_equal(y_scalar, y_simd));
  EXPECT_TRUE(bytes_equal(y_scalar, y_par));
  for (index_t r = 1; r < 64; ++r) EXPECT_EQ(y_scalar[r], 0.0) << r;
}

TEST(SpmvDifferentialRegression, SellCancellationReplayUnderPermutation) {
  // Catastrophic-cancellation values under a *non-trivial* sorted-row
  // permutation, hand-replayed against the contract: each original row
  // accumulates its slots in ascending slot-column order k, one IEEE
  // mul and one add per slot, regardless of where the sort moved the
  // row. A kernel that reassociates — or reads the permutation on the
  // wrong side — produces different bits, not just different errors.
  SimdGuard guard;
  const index_t rows = 8, n = 48;
  std::vector<Triplet<double>> t;
  for (index_t r = 0; r < rows; ++r) {
    // Descending-then-ascending lengths force the window sort to permute.
    const index_t len = r % 2 == 0 ? n - r : 4 + r;
    for (index_t j = 0; j < len; ++j) {
      const double v = (j % 2 == 0 ? 1e16 : -1e16) +
                       static_cast<double>(r * 100 + j);
      t.push_back({r, j, v});
    }
  }
  const auto csr = Csr<double>::from_triplets(rows, n, t);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    x[static_cast<std::size_t>(j)] = 1.0 + 1e-13 * static_cast<double>(j);

  const auto sell = Sell<double>::from_csr(csr, 4, 8);
  sell.validate();
  // The permutation must actually reorder rows for this to pin anything.
  bool permuted = false;
  for (index_t s = 0; s < rows; ++s)
    if (sell.perm()[static_cast<std::size_t>(s)] != s) permuted = true;
  EXPECT_TRUE(permuted);

  // Hand replay from CSR: ascending k is ascending position within the
  // row (SELL preserves each row's column order).
  std::vector<double> expect(static_cast<std::size_t>(rows));
  for (index_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (index_t p = csr.row_ptr()[r]; p < csr.row_ptr()[r + 1]; ++p)
      acc += csr.values()[p] * x[static_cast<std::size_t>(csr.col_idx()[p])];
    expect[static_cast<std::size_t>(r)] = acc;
  }

  for (const bool on : {false, true}) {
    simd::set_enabled(on);
    std::vector<double> y(static_cast<std::size_t>(rows));
    sell.spmv(x, y);
    EXPECT_TRUE(bytes_equal(expect, y)) << "simd=" << on;
    std::vector<double> y_par(static_cast<std::size_t>(rows));
    spmv_parallel(sell, std::span<const double>(x), std::span<double>(y_par));
    EXPECT_TRUE(bytes_equal(expect, y_par)) << "simd=" << on;
  }
}

}  // namespace
}  // namespace spmvml
