// Unit tests for each storage format: construction, conversion, SpMV on
// hand-checked matrices, invariants, and edge cases (empty rows, empty
// matrices, single entries, dense rows).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "sparse/spmv.hpp"

namespace spmvml {
namespace {

/// The 4x6 example of the paper's Fig. 1 style: mixed row lengths,
/// a contiguous run, and an empty-ish pattern.
Csr<double> small_matrix() {
  // row 0: (0,0)=1 (0,1)=2
  // row 1: (1,2)=3
  // row 2: (2,0)=4 (2,3)=5 (2,4)=6 (2,5)=7
  // row 3: empty
  return Csr<double>(4, 6, {0, 2, 3, 7, 7}, {0, 1, 2, 0, 3, 4, 5},
                     {1, 2, 3, 4, 5, 6, 7});
}

std::vector<double> unit_x(index_t n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  std::iota(x.begin(), x.end(), 1.0);  // 1, 2, 3, ...
  return x;
}

TEST(Csr, SpmvMatchesHandResult) {
  const auto m = small_matrix();
  const auto x = unit_x(6);
  std::vector<double> y(4);
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1 * 1 + 2 * 2);
  EXPECT_DOUBLE_EQ(y[1], 3 * 3);
  EXPECT_DOUBLE_EQ(y[2], 4 * 1 + 5 * 4 + 6 * 5 + 7 * 6);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  std::vector<Triplet<double>> t = {
      {1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}, {0, 0, 4.0}};
  const auto m = Csr<double>::from_triplets(2, 3, t);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.col_idx()[0], 0);
  EXPECT_EQ(m.col_idx()[1], 1);
  EXPECT_DOUBLE_EQ(m.values()[2], 4.0);  // 1+3 summed at (1,2)
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  std::vector<Triplet<double>> t = {{0, 5, 1.0}};
  EXPECT_THROW(Csr<double>::from_triplets(2, 3, t), Error);
}

TEST(Csr, ValidateCatchesBadRowPtr) {
  EXPECT_THROW(Csr<double>(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}), Error);
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  EXPECT_THROW(Csr<double>(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}), Error);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const auto m = small_matrix();
  const auto tt = m.transpose().transpose();
  EXPECT_EQ(m, tt);
}

TEST(Csr, TransposeSpmvConsistent) {
  // (A^T x)_j == sum_i A_ij x_i
  const auto m = small_matrix();
  const auto t = m.transpose();
  const auto x = unit_x(4);
  std::vector<double> y(6);
  t.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1 * 1 + 4 * 3);  // col 0 entries: (0,0)=1,(2,0)=4
  EXPECT_DOUBLE_EQ(y[5], 7 * 3);
}

TEST(Csr, EmptyMatrix) {
  Csr<double> m(0, 0, {0}, {}, {});
  std::vector<double> x, y;
  m.spmv(x, y);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Coo, RoundTripThroughCsr) {
  const auto m = small_matrix();
  const auto coo = Coo<double>::from_csr(m);
  const auto back = Csr<double>::from_coo(coo);
  EXPECT_EQ(m, back);
}

TEST(Coo, SpmvMatchesReference) {
  const auto m = small_matrix();
  const auto coo = Coo<double>::from_csr(m);
  const auto x = unit_x(6);
  std::vector<double> expect(4), y(4);
  spmv_reference(m, x, expect);
  coo.spmv(x, y);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(Coo, ValidateRejectsUnsorted) {
  EXPECT_THROW(Coo<double>(2, 2, {1, 0}, {0, 0}, {1.0, 1.0}), Error);
}

TEST(Coo, ValidateRejectsDuplicates) {
  EXPECT_THROW(Coo<double>(2, 2, {0, 0}, {1, 1}, {1.0, 1.0}), Error);
}

TEST(Ell, WidthIsMaxRowLength) {
  const auto ell = Ell<double>::from_csr(small_matrix());
  EXPECT_EQ(ell.width(), 4);
  EXPECT_EQ(ell.nnz(), 7);
}

TEST(Ell, PaddingRatio) {
  const auto ell = Ell<double>::from_csr(small_matrix());
  // 4 rows x width 4 = 16 slots over 7 entries.
  EXPECT_DOUBLE_EQ(ell.padding_ratio(), 16.0 / 7.0);
}

TEST(Ell, ColumnMajorLayoutSlots) {
  const auto ell = Ell<double>::from_csr(small_matrix());
  EXPECT_EQ(ell.col_at(0, 0), 0);
  EXPECT_EQ(ell.col_at(0, 1), 1);
  EXPECT_EQ(ell.col_at(0, 2), Ell<double>::kPad);
  EXPECT_EQ(ell.col_at(3, 0), Ell<double>::kPad);  // empty row fully padded
}

TEST(Ell, SpmvMatchesReference) {
  const auto m = small_matrix();
  const auto ell = Ell<double>::from_csr(m);
  const auto x = unit_x(6);
  std::vector<double> expect(4), y(4);
  spmv_reference(m, x, expect);
  ell.spmv(x, y);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(Ell, RejectsWidthSmallerThanLongestRow) {
  EXPECT_THROW(Ell<double>::from_csr(small_matrix(), 2), Error);
}

TEST(Hyb, SplitsAtMeanRowLength) {
  const auto m = small_matrix();  // mu = 7/4 -> width ceil = 2
  const auto hyb = Hyb<double>::from_csr(m, HybThreshold::kNnzMu);
  EXPECT_EQ(hyb.ell_width(), 2);
  EXPECT_EQ(hyb.ell_part().nnz() + hyb.coo_part().nnz(), 7);
  EXPECT_EQ(hyb.coo_part().nnz(), 2);  // row 2 spills entries 3 and 4
}

TEST(Hyb, CooFraction) {
  const auto hyb = Hyb<double>::from_csr(small_matrix());
  EXPECT_NEAR(hyb.coo_fraction(), 2.0 / 7.0, 1e-12);
}

TEST(Hyb, SpmvMatchesReference) {
  const auto m = small_matrix();
  for (auto rule : {HybThreshold::kNnzMu, HybThreshold::kBellGarland}) {
    const auto hyb = Hyb<double>::from_csr(m, rule);
    const auto x = unit_x(6);
    std::vector<double> expect(4), y(4);
    spmv_reference(m, x, expect);
    hyb.spmv(x, y);
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
  }
}

TEST(Hyb, ZeroWidthPutsEverythingInCoo) {
  const auto hyb = Hyb<double>::from_csr_with_width(small_matrix(), 0);
  EXPECT_EQ(hyb.ell_part().nnz(), 0);
  EXPECT_EQ(hyb.coo_part().nnz(), 7);
  const auto x = unit_x(6);
  std::vector<double> y(4);
  hyb.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Csr5, TileCountAndPermutation) {
  const auto m = small_matrix();
  const auto c5 = Csr5<double>::from_csr(m, 2, 2);  // tile = 4 entries
  EXPECT_EQ(c5.num_full_tiles(), 1);  // 7 nnz -> 1 full tile + tail of 3
  EXPECT_EQ(c5.nnz(), 7);
}

TEST(Csr5, SpmvMatchesReferenceAcrossTileShapes) {
  const auto m = small_matrix();
  const auto x = unit_x(6);
  std::vector<double> expect(4);
  spmv_reference(m, x, expect);
  for (index_t omega : {1, 2, 3, 32}) {
    for (index_t sigma : {1, 2, 5, 16}) {
      const auto c5 = Csr5<double>::from_csr(m, omega, sigma);
      std::vector<double> y(4);
      c5.spmv(x, y);
      for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(y[i], expect[i])
            << "omega=" << omega << " sigma=" << sigma;
    }
  }
}

TEST(Csr5, RejectsBadTileShape) {
  EXPECT_THROW(Csr5<double>::from_csr(small_matrix(), 0, 4), Error);
}

TEST(MergeCsr, PartitionEndpoints) {
  const auto m = small_matrix();
  const auto mc = MergeCsr<double>::from_csr(m, 3);
  mc.validate();
  EXPECT_EQ(mc.partition_start(0).row, 0);
  EXPECT_EQ(mc.partition_start(0).nz, 0);
  const auto last = mc.partition_start(mc.num_partitions());
  EXPECT_EQ(last.row, 4);
  EXPECT_EQ(last.nz, 7);
}

TEST(MergeCsr, MergePathSearchSplitsEvenly) {
  // Merge path of small_matrix: rows+nnz = 11 decisions.
  const auto m = small_matrix();
  const auto mid = MergeCsr<double>::merge_path_search(
      5, m.row_ptr(), m.rows(), m.nnz());
  EXPECT_EQ(mid.row + mid.nz, 5);
  // Coordinate must be a valid path point: nz within the row's span.
  EXPECT_GE(mid.nz, m.row_ptr()[mid.row]);
}

TEST(MergeCsr, SpmvMatchesReferenceForAnyPartitionCount) {
  const auto m = small_matrix();
  const auto x = unit_x(6);
  std::vector<double> expect(4);
  spmv_reference(m, x, expect);
  for (index_t parts : {1, 2, 3, 5, 11, 64}) {
    const auto mc = MergeCsr<double>::from_csr(m, parts);
    std::vector<double> y(4);
    mc.spmv(x, y);
    for (int i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(y[i], expect[i]) << "parts=" << parts;
  }
}

TEST(AnyMatrix, DispatchesAllFormats) {
  const auto m = small_matrix();
  const auto x = unit_x(6);
  std::vector<double> expect(4);
  spmv_reference(m, x, expect);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<double>::build(f, m);
    EXPECT_EQ(any.format(), f);
    EXPECT_EQ(any.rows(), 4);
    EXPECT_EQ(any.cols(), 6);
    EXPECT_EQ(any.nnz(), 7);
    EXPECT_GT(any.bytes(), 0);
    std::vector<double> y(4);
    any.spmv(x, y);
    for (int i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(y[i], expect[i]) << format_name(f);
  }
}

TEST(Format, NamesRoundTrip) {
  for (Format f : kAllFormats) EXPECT_EQ(parse_format(format_name(f)), f);
  EXPECT_THROW(parse_format("DIA"), Error);
}

TEST(FormatBytes, EllCostsMoreThanCsrOnSkewedMatrix) {
  const auto m = small_matrix();
  EXPECT_GT(Ell<double>::from_csr(m).bytes(), m.bytes());
}

TEST(FloatFormats, SpmvWorksInSinglePrecision) {
  Csr<float> m(2, 2, {0, 1, 2}, {0, 1}, {2.0f, 3.0f});
  std::vector<float> x = {1.0f, 2.0f}, y(2);
  for (Format f : kAllFormats) {
    const auto any = AnyMatrix<float>::build(f, m);
    any.spmv(x, y);
    EXPECT_FLOAT_EQ(y[0], 2.0f) << format_name(f);
    EXPECT_FLOAT_EQ(y[1], 6.0f) << format_name(f);
  }
}

}  // namespace
}  // namespace spmvml
