// Tests for the extended formats of §VII's related work: DIA, BSR and
// SELL-C-sigma — construction invariants, SpMV equality with the CSR
// reference across structure families, and their signature trade-offs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/bsr.hpp"
#include "sparse/dia.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

Csr<double> small_matrix() {
  return Csr<double>(4, 6, {0, 2, 3, 7, 7}, {0, 1, 2, 0, 3, 4, 5},
                     {1, 2, 3, 4, 5, 6, 7});
}

std::vector<double> random_x(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(Dia, TridiagonalUsesThreeDiagonals) {
  std::vector<Triplet<double>> t;
  for (index_t i = 0; i < 10; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i < 9) t.push_back({i, i + 1, -1.0});
  }
  const auto dia = Dia<double>::from_csr(Csr<double>::from_triplets(10, 10, t));
  dia.validate();
  EXPECT_EQ(dia.num_diagonals(), 3);
  EXPECT_EQ(dia.offsets()[0], -1);
  EXPECT_EQ(dia.offsets()[1], 0);
  EXPECT_EQ(dia.offsets()[2], 1);
  EXPECT_NEAR(dia.fill_ratio(), 30.0 / 28.0, 1e-12);
}

TEST(Dia, SpmvMatchesReference) {
  const auto m = small_matrix();
  const auto dia = Dia<double>::from_csr(m);
  dia.validate();
  const auto x = random_x(m.cols(), 1);
  std::vector<double> expect(4), y(4);
  spmv_reference(m, x, expect);
  dia.spmv(x, y);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(Dia, CapRejectsUnstructuredMatrices) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 500;
  spec.cols = 500;
  spec.row_mu = 8;
  spec.seed = 2;
  const auto m = generate(spec);
  EXPECT_THROW(Dia<double>::from_csr(m, 32), Error);
}

TEST(Bsr, BlocksCoverEntriesExactly) {
  const auto m = small_matrix();
  const auto bsr = Bsr<double>::from_csr(m, 2);
  bsr.validate();
  EXPECT_EQ(bsr.nnz(), 7);
  EXPECT_EQ(bsr.block_size(), 2);
  // Blocks: rows {0,1} touch block-cols {0,1}; rows {2,3} touch {0,1,2}.
  EXPECT_EQ(bsr.num_blocks(), 5);
  EXPECT_NEAR(bsr.fill_ratio(), 5.0 * 4.0 / 7.0, 1e-12);
}

TEST(Bsr, SpmvMatchesReferenceForManyBlockSizes) {
  GenSpec spec;
  spec.family = MatrixFamily::kBlockRandom;
  spec.rows = 300;
  spec.cols = 300;
  spec.row_mu = 12;
  spec.block_size = 4;
  spec.seed = 3;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 4);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);
  for (index_t b : {1, 2, 3, 4, 7, 16}) {
    const auto bsr = Bsr<double>::from_csr(m, b);
    bsr.validate();
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    bsr.spmv(x, y);
    for (index_t r = 0; r < m.rows(); ++r)
      ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                  expect[static_cast<std::size_t>(r)], 1e-10)
          << "b=" << b;
  }
}

TEST(Bsr, BlockStructuredMatricesFillWell) {
  GenSpec blocky;
  blocky.family = MatrixFamily::kBlockRandom;
  blocky.rows = 1000;
  blocky.cols = 1000;
  blocky.row_mu = 12;
  blocky.block_size = 8;
  blocky.seed = 5;
  GenSpec scattered = blocky;
  scattered.family = MatrixFamily::kUniformRandom;
  const auto fill_blocky =
      Bsr<double>::from_csr(generate(blocky), 4).fill_ratio();
  const auto fill_scattered =
      Bsr<double>::from_csr(generate(scattered), 4).fill_ratio();
  EXPECT_LT(fill_blocky, 0.5 * fill_scattered);
}

TEST(Sell, PaddingBetweenOneAndEll) {
  GenSpec spec;
  spec.family = MatrixFamily::kUniformRandom;
  spec.rows = 2000;
  spec.cols = 2000;
  spec.row_mu = 10;
  spec.row_cv = 1.5;
  spec.seed = 6;
  const auto m = generate(spec);
  const auto sell = Sell<double>::from_csr(m, 32, 256);
  sell.validate();
  const auto ell = Ell<double>::from_csr(m);
  EXPECT_GE(sell.padding_ratio(), 1.0);
  EXPECT_LT(sell.padding_ratio(), 0.5 * ell.padding_ratio());
}

TEST(Sell, SortingWindowReducesPadding) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 3000;
  spec.cols = 3000;
  spec.row_mu = 8;
  spec.seed = 7;
  const auto m = generate(spec);
  const auto unsorted = Sell<double>::from_csr(m, 32, 32);
  const auto sorted = Sell<double>::from_csr(m, 32, 1024);
  EXPECT_LT(sorted.padding_ratio(), unsorted.padding_ratio());
}

TEST(Sell, SpmvMatchesReferenceAcrossShapes) {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 500;
  spec.cols = 520;
  spec.row_mu = 7;
  spec.seed = 8;
  const auto m = generate(spec);
  const auto x = random_x(m.cols(), 9);
  std::vector<double> expect(static_cast<std::size_t>(m.rows()));
  spmv_reference(m, x, expect);
  for (auto [c, sigma] : {std::pair<index_t, index_t>{1, 1},
                          {4, 16},
                          {32, 32},
                          {32, 512},
                          {64, 128}}) {
    const auto sell = Sell<double>::from_csr(m, c, sigma);
    sell.validate();
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    sell.spmv(x, y);
    for (index_t r = 0; r < m.rows(); ++r)
      ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                  expect[static_cast<std::size_t>(r)], 1e-10)
          << "C=" << c << " sigma=" << sigma;
  }
}

TEST(Sell, RejectsBadParameters) {
  const auto m = small_matrix();
  EXPECT_THROW(Sell<double>::from_csr(m, 32, 16), Error);  // sigma below C
  EXPECT_THROW(Sell<double>::from_csr(m, 0, 128), Error);  // non-positive C
  EXPECT_THROW(Sell<double>::from_csr(m, -4, 128), Error);
  // Hostile slice height: capped so padding cannot explode toward C
  // slots per stored row (mirrors the mmio reserve-cap hardening).
  EXPECT_THROW(
      Sell<double>::from_csr(m, (index_t{1} << 20) + 1, index_t{1} << 40),
      Error);
  // sigma need not be a multiple of C (slices may straddle windows) —
  // the result must still be a valid, equivalent matrix.
  const auto sell = Sell<double>::from_csr(m, 32, 48);
  sell.validate();
  EXPECT_EQ(sell.to_csr(), m);
}

TEST(ExtendedFormats, EmptyRowsHandledEverywhere) {
  Csr<double> m(5, 5, {0, 0, 2, 2, 2, 3}, {1, 3, 0}, {1.0, 2.0, 3.0});
  const std::vector<double> x = {1, 1, 1, 1, 1};
  std::vector<double> expect(5);
  spmv_reference(m, x, expect);
  {
    std::vector<double> y(5, -1);
    Dia<double>::from_csr(m).spmv(x, y);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
  }
  {
    std::vector<double> y(5, -1);
    Bsr<double>::from_csr(m, 2).spmv(x, y);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
  }
  {
    std::vector<double> y(5, -1);
    Sell<double>::from_csr(m, 2, 4).spmv(x, y);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
  }
}

}  // namespace
}  // namespace spmvml
