// Serialization round-trip tests: every model family must predict
// identically after save -> load, and corrupt streams must be rejected.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/format_selector.hpp"
#include "core/perf_model.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace spmvml {
namespace {

void make_data(ml::Matrix& x, std::vector<int>& labels,
               std::vector<double>& targets, int n = 200) {
  Rng rng(42);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.push_back({a, b});
    labels.push_back(a + b > 1.0 ? 1 : (a > 0.7 ? 2 : 0));
    targets.push_back(3.0 * a - b);
  }
}

template <typename Model>
void expect_same_classifier(const Model& original, Model& restored,
                            const ml::Matrix& x) {
  for (const auto& row : x) {
    EXPECT_EQ(original.predict(row), restored.predict(row));
    const auto pa = original.predict_proba(row);
    const auto pb = restored.predict_proba(row);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k)
      EXPECT_DOUBLE_EQ(pa[k], pb[k]);
  }
}

TEST(Serialize, DecisionTreeClassifierRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::DecisionTreeClassifier model;
  model.fit(x, labels);
  std::stringstream s;
  model.save(s);
  ml::DecisionTreeClassifier restored;
  restored.load(s);
  expect_same_classifier(model, restored, x);
}

TEST(Serialize, DecisionTreeRegressorRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::DecisionTreeRegressor model;
  model.fit(x, targets);
  std::stringstream s;
  model.save(s);
  ml::DecisionTreeRegressor restored;
  restored.load(s);
  for (const auto& row : x)
    EXPECT_DOUBLE_EQ(model.predict(row), restored.predict(row));
}

TEST(Serialize, GbtClassifierRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::GbtParams p;
  p.n_estimators = 15;
  ml::GbtClassifier model(p);
  model.fit(x, labels);
  std::stringstream s;
  model.save(s);
  ml::GbtClassifier restored;
  restored.load(s);
  expect_same_classifier(model, restored, x);
  // Importance survives the round trip.
  EXPECT_EQ(model.feature_importance_weight(),
            restored.feature_importance_weight());
}

TEST(Serialize, GbtRegressorRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::GbtParams p;
  p.n_estimators = 20;
  ml::GbtRegressor model(p);
  model.fit(x, targets);
  std::stringstream s;
  model.save(s);
  ml::GbtRegressor restored;
  restored.load(s);
  for (const auto& row : x)
    EXPECT_DOUBLE_EQ(model.predict(row), restored.predict(row));
}

TEST(Serialize, SvmRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::SvmClassifier model;
  model.fit(x, labels);
  std::stringstream s;
  model.save(s);
  ml::SvmClassifier restored;
  restored.load(s);
  expect_same_classifier(model, restored, x);
}

TEST(Serialize, MlpClassifierRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::MlpParams p;
  p.hidden = {8, 4};
  p.epochs = 5;
  ml::MlpClassifier model(p);
  model.fit(x, labels);
  std::stringstream s;
  model.save(s);
  ml::MlpClassifier restored(p);
  restored.load(s);
  expect_same_classifier(model, restored, x);
}

TEST(Serialize, MlpEnsembleRegressorRoundTrip) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets);
  ml::MlpParams p;
  p.hidden = {8};
  p.epochs = 5;
  ml::MlpEnsembleRegressor model(p, 3);
  model.fit(x, targets);
  std::stringstream s;
  model.save(s);
  ml::MlpEnsembleRegressor restored(p, 3);
  restored.load(s);
  for (const auto& row : x)
    EXPECT_DOUBLE_EQ(model.predict(row), restored.predict(row));
}

TEST(Serialize, FormatSelectorRoundTrip) {
  const auto corpus = collect_corpus(make_small_plan(40, 99));
  FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                          kAllFormats, /*fast=*/true);
  selector.fit(corpus, 0, Precision::kDouble);

  std::stringstream s;
  selector.save(s);
  const FormatSelector restored = FormatSelector::load_selector(s);
  EXPECT_EQ(restored.feature_set(), FeatureSet::kSet12);
  ASSERT_EQ(restored.candidates().size(), kAllFormats.size());
  for (const auto& rec : corpus.records)
    EXPECT_EQ(selector.select(rec.features), restored.select(rec.features));
}

TEST(Serialize, PerfModelRoundTrip) {
  const auto corpus = collect_corpus(make_small_plan(30, 77));
  PerfModel model(RegressorKind::kXgboost, FeatureSet::kSet12, kAllFormats,
                  /*fast=*/true);
  model.fit(corpus, 1, Precision::kDouble);
  std::stringstream s;
  model.save(s);
  const PerfModel restored = PerfModel::load_model(s);
  for (const auto& rec : corpus.records)
    for (Format f : kAllFormats)
      EXPECT_DOUBLE_EQ(model.predict_seconds(rec.features, f),
                       restored.predict_seconds(rec.features, f));
}

TEST(Serialize, UnfittedPerfModelSaveThrows) {
  PerfModel model(RegressorKind::kXgboost, FeatureSet::kSet1, kAllFormats);
  std::stringstream s;
  EXPECT_THROW(model.save(s), Error);
}

TEST(Serialize, RejectsWrongTag) {
  std::stringstream s;
  s << "not_a_model 5\n";
  ml::DecisionTreeClassifier model;
  EXPECT_THROW(model.load(s), Error);
}

TEST(Serialize, RejectsTruncatedStream) {
  ml::Matrix x;
  std::vector<int> labels;
  std::vector<double> targets;
  make_data(x, labels, targets, 50);
  ml::GbtParams p;
  p.n_estimators = 5;
  ml::GbtClassifier model(p);
  model.fit(x, labels);
  std::stringstream s;
  model.save(s);
  const std::string full = s.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  ml::GbtClassifier restored;
  EXPECT_THROW(restored.load(cut), Error);
}

TEST(Serialize, RejectsAbsurdSizes) {
  std::stringstream s;
  s << "scaler\n99999999999 1.0\n";
  ml::StandardScaler scaler;
  EXPECT_THROW(scaler.load(s), Error);
}

// --- Model-file envelope -------------------------------------------------

/// A fitted selector whose save() output the envelope tests mangle.
std::string saved_selector() {
  static const std::string bytes = [] {
    const auto corpus = collect_corpus(make_small_plan(20, 44));
    FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                            kAllFormats, /*fast=*/true);
    selector.fit(corpus, 0, Precision::kDouble);
    std::stringstream s;
    selector.save(s);
    return s.str();
  }();
  return bytes;
}

void expect_model_format_error(const std::string& bytes) {
  std::stringstream s(bytes);
  try {
    FormatSelector::load_selector(s);
    FAIL() << "expected Error(kModelFormat)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kModelFormat);
  }
}

TEST(Envelope, HeaderLeadsTheFile) {
  const std::string bytes = saved_selector();
  EXPECT_EQ(bytes.rfind("spmvml-model 1 format_selector ", 0), 0u);
  std::stringstream s(bytes);
  const FormatSelector restored = FormatSelector::load_selector(s);
  EXPECT_EQ(restored.candidates().size(), kAllFormats.size());
}

TEST(Envelope, ChecksumCatchesPayloadBitflip) {
  std::string bytes = saved_selector();
  // Flip one payload character well past the header line.
  const auto pos = bytes.find('\n') + 10;
  bytes[pos] = bytes[pos] == '0' ? '1' : '0';
  expect_model_format_error(bytes);
}

TEST(Envelope, RejectsTruncatedPayload) {
  const std::string bytes = saved_selector();
  expect_model_format_error(bytes.substr(0, bytes.size() - 7));
}

TEST(Envelope, RejectsForeignMagicAndVersion) {
  expect_model_format_error("random junk that is not a model\n");
  std::string bytes = saved_selector();
  // "spmvml-model 1 ..." -> claim format version 9.
  bytes[std::string("spmvml-model ").size()] = '9';
  expect_model_format_error(bytes);
}

TEST(Envelope, RejectsKindMismatch) {
  // A selector file is not a perf model: the kind field catches the
  // cross-load before any payload parsing.
  std::stringstream s(saved_selector());
  try {
    PerfModel::load_model(s);
    FAIL() << "expected Error(kModelFormat)";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kModelFormat);
    EXPECT_NE(std::string(e.what()).find("kind mismatch"), std::string::npos);
  }
}

}  // namespace
}  // namespace spmvml
