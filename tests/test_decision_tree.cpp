// Decision tree tests: axis-aligned concepts are learned exactly, depth
// limits bound the tree, regression splits reduce variance.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"

namespace spmvml::ml {
namespace {

TEST(DecisionTree, LearnsSingleThreshold) {
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 50 ? 0 : 1);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.predict({10.0}), 0);
  EXPECT_EQ(tree.predict({90.0}), 1);
  EXPECT_EQ(tree.predict({49.4}), 0);
  EXPECT_EQ(tree.predict({49.6}), 1);
}

TEST(DecisionTree, LearnsXorWithDepthTwo) {
  Matrix x;
  std::vector<int> y;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    x.push_back({a, b});
    y.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  EXPECT_GT(accuracy(y, tree.predict_batch(x)), 0.95);
}

TEST(DecisionTree, MulticlassBands) {
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i / 100);
  }
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.predict({50.0}), 0);
  EXPECT_EQ(tree.predict({150.0}), 1);
  EXPECT_EQ(tree.predict({250.0}), 2);
}

TEST(DecisionTree, PredictProbaIsDistribution) {
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> y = {0, 0, 1, 1};
  DecisionTreeClassifier tree;
  tree.fit(x, y);
  const auto p = tree.predict_proba({0.5});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(DecisionTree, DepthZeroIsMajorityVote) {
  Matrix x = {{0.0}, {1.0}, {2.0}};
  std::vector<int> y = {1, 1, 0};
  TreeParams params;
  params.max_depth = 0;
  DecisionTreeClassifier tree(params);
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict({5.0}), 1);
}

TEST(DecisionTree, MinSamplesLeafLimitsSplits) {
  Matrix x;
  std::vector<int> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i % 2);
  }
  TreeParams params;
  params.min_samples_leaf = 6;  // no split can satisfy both sides
  DecisionTreeClassifier tree(params);
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1);
}

TEST(DecisionTree, RejectsEmptyData) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.fit({}, {}), Error);
}

TEST(DecisionTreeRegressor, FitsPiecewiseConstant) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 100 ? 2.0 : 8.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict({25.0}), 2.0, 1e-9);
  EXPECT_NEAR(tree.predict({175.0}), 8.0, 1e-9);
}

TEST(DecisionTreeRegressor, ApproximatesSmoothFunction) {
  Matrix x;
  std::vector<double> y;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.0, 10.0);
    x.push_back({v});
    y.push_back(v * v);
  }
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  double max_err = 0.0;
  for (double v = 0.5; v < 9.5; v += 0.5)
    max_err = std::max(max_err, std::abs(tree.predict({v}) - v * v));
  EXPECT_LT(max_err, 5.0);  // ~100-leaf resolution on [0,100] range
}

TEST(DecisionTreeRegressor, ConstantTargetSingleNode) {
  Matrix x = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {4.0, 4.0, 4.0};
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_DOUBLE_EQ(tree.predict({9.0}), 4.0);
}

}  // namespace
}  // namespace spmvml::ml
