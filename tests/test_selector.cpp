// FormatSelector tests: every model kind trains and predicts, selection
// beats a majority-class baseline on a learnable corpus, API contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "core/format_selector.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

const LabeledCorpus& shared_corpus() {
  static const LabeledCorpus corpus = collect_corpus(make_small_plan(60, 555));
  return corpus;
}

TEST(ModelKind, NamesAreDistinct) {
  std::map<std::string, int> seen;
  for (int k = 0; k < kNumModelKinds; ++k)
    ++seen[model_name(static_cast<ModelKind>(k))];
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumModelKinds));
}

TEST(MakeClassifier, AllKindsInstantiable) {
  for (int k = 0; k < kNumModelKinds; ++k) {
    const auto model = make_classifier(static_cast<ModelKind>(k), true);
    EXPECT_NE(model, nullptr);
  }
}

TEST(FormatSelector, TrainsAndPredictsValidFormats) {
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet12,
                          kAllFormats, /*fast=*/true);
  selector.fit(shared_corpus(), 0, Precision::kDouble);
  const auto m = generate(make_small_plan(1, 999).specs[0]);
  const Format f = selector.select(m);
  EXPECT_NE(std::find(kAllFormats.begin(), kAllFormats.end(), f),
            kAllFormats.end());
}

TEST(FormatSelector, BeatsMajorityBaselineInSample) {
  const auto study = make_classification_study(
      shared_corpus(), 0, Precision::kDouble, kAllFormats,
      FeatureSet::kSet123);
  FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet123,
                          kAllFormats, /*fast=*/true);
  selector.fit(study.data.x, study.data.labels);

  std::vector<int> pred;
  for (const auto& row : study.data.x)
    pred.push_back(selector.predict_label(row));
  const double acc = ml::accuracy(study.data.labels, pred);

  std::map<int, int> counts;
  for (int label : study.data.labels) ++counts[label];
  int majority = 0;
  for (const auto& [label, count] : counts) majority = std::max(majority, count);
  const double baseline =
      static_cast<double>(majority) /
      static_cast<double>(study.data.labels.size());
  EXPECT_GT(acc, baseline);
}

TEST(FormatSelector, SelectorsForBasicFormatsStayInCandidateSet) {
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          kBasicFormats, true);
  selector.fit(shared_corpus(), 1, Precision::kSingle);
  for (int i = 0; i < 5; ++i) {
    const auto m = generate(make_small_plan(5, 111).specs[static_cast<std::size_t>(i)]);
    const Format f = selector.select(m);
    EXPECT_NE(std::find(kBasicFormats.begin(), kBasicFormats.end(), f),
              kBasicFormats.end());
  }
}

TEST(FormatSelector, RejectsEmptyCandidates) {
  EXPECT_THROW(
      FormatSelector(ModelKind::kDecisionTree, FeatureSet::kSet1, {}),
      Error);
}

}  // namespace
}  // namespace spmvml
