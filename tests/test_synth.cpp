// Synthetic generator + corpus plan tests: determinism, statistical
// targets, family-specific structure signatures, Table-I bucket layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "synth/corpus.hpp"
#include "synth/generators.hpp"

namespace spmvml {
namespace {

GenSpec base_spec(MatrixFamily family, std::uint64_t seed = 5) {
  GenSpec s;
  s.family = family;
  s.rows = 2000;
  s.cols = 2000;
  s.row_mu = 10.0;
  s.row_cv = 0.5;
  s.seed = seed;
  return s;
}

StreamingStats row_lengths(const Csr<double>& m) {
  StreamingStats s;
  for (index_t r = 0; r < m.rows(); ++r)
    s.add(static_cast<double>(m.row_nnz(r)));
  return s;
}

TEST(Generators, DeterministicForSameSpec) {
  for (int fi = 0; fi < kNumFamilies; ++fi) {
    const auto spec = base_spec(static_cast<MatrixFamily>(fi));
    const auto a = generate(spec);
    const auto b = generate(spec);
    EXPECT_EQ(a, b) << family_name(spec.family);
  }
}

TEST(Generators, DifferentSeedsGiveDifferentMatrices) {
  const auto a = generate(base_spec(MatrixFamily::kUniformRandom, 1));
  const auto b = generate(base_spec(MatrixFamily::kUniformRandom, 2));
  EXPECT_NE(a, b);
}

TEST(Generators, AllFamiliesProduceValidMatrices) {
  for (int fi = 0; fi < kNumFamilies; ++fi) {
    const auto m = generate(base_spec(static_cast<MatrixFamily>(fi)));
    m.validate();  // throws on broken invariants
    EXPECT_GT(m.nnz(), 0) << family_name(static_cast<MatrixFamily>(fi));
  }
}

TEST(Generators, UniformHitsTargetMean) {
  auto spec = base_spec(MatrixFamily::kUniformRandom);
  spec.row_mu = 15.0;
  const auto stats = row_lengths(generate(spec));
  EXPECT_NEAR(stats.mean(), 15.0, 2.0);
}

TEST(Generators, UniformRowCvControlsVariance) {
  auto low = base_spec(MatrixFamily::kUniformRandom, 9);
  low.row_cv = 0.1;
  auto high = low;
  high.row_cv = 2.0;
  const auto s_low = row_lengths(generate(low));
  const auto s_high = row_lengths(generate(high));
  EXPECT_LT(s_low.stddev() / s_low.mean(), 0.3);
  EXPECT_GT(s_high.stddev() / s_high.mean(),
            2.0 * s_low.stddev() / s_low.mean());
}

TEST(Generators, BandedStaysNearDiagonal) {
  auto spec = base_spec(MatrixFamily::kBanded);
  spec.band_frac = 0.01;
  const auto m = generate(spec);
  index_t near = 0;
  const auto window = static_cast<index_t>(0.1 * static_cast<double>(m.cols()));
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p)
      if (std::llabs(m.col_idx()[p] - r) <= window) ++near;
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(m.nnz()), 0.95);
}

TEST(Generators, BandedHasLowRowVariance) {
  const auto stats = row_lengths(generate(base_spec(MatrixFamily::kBanded)));
  EXPECT_LT(stats.stddev() / stats.mean(), 0.25);
}

TEST(Generators, StencilIsSquareAndRegular) {
  auto spec = base_spec(MatrixFamily::kStencil);
  spec.row_mu = 5.0;
  const auto m = generate(spec);
  EXPECT_EQ(m.rows(), m.cols());
  const auto stats = row_lengths(m);
  // Interior rows have exactly 5 entries, boundary rows fewer.
  EXPECT_LE(stats.max(), 5.0);
  EXPECT_GE(stats.mean(), 4.0);
}

TEST(Generators, PowerLawHasHeavyTail) {
  auto spec = base_spec(MatrixFamily::kPowerLaw);
  spec.alpha = 1.5;
  const auto stats = row_lengths(generate(spec));
  // Max degree far above the mean is the power-law signature.
  EXPECT_GT(stats.max(), 8.0 * stats.mean());
}

TEST(Generators, BlockFamilyHasLongChunks) {
  auto spec = base_spec(MatrixFamily::kBlockRandom);
  spec.block_size = 8;
  spec.row_mu = 16.0;
  const auto m = generate(spec);
  // Average contiguous-run length should exceed loose uniform baseline.
  StreamingStats runs;
  for (index_t r = 0; r < m.rows(); ++r) {
    index_t run = 0;
    for (index_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      if (p > m.row_ptr()[r] && m.col_idx()[p] == m.col_idx()[p - 1] + 1) {
        ++run;
      } else {
        if (run > 0) runs.add(static_cast<double>(run + 1));
        run = 0;
      }
    }
    if (run > 0) runs.add(static_cast<double>(run + 1));
  }
  EXPECT_GT(runs.mean(), 2.0);
}

TEST(Generators, GeomGraphIsSquare) {
  const auto m = generate(base_spec(MatrixFamily::kGeomGraph));
  EXPECT_EQ(m.rows(), m.cols());
}

TEST(Generators, RejectsNonPositiveDims) {
  GenSpec s;
  s.rows = 0;
  EXPECT_THROW(generate(s), Error);
}

TEST(Corpus, PaperBucketsMatchTableOne) {
  const auto buckets = paper_buckets();
  ASSERT_EQ(buckets.size(), 8u);
  EXPECT_EQ(buckets[0].paper_count, 747);
  EXPECT_EQ(buckets[3].paper_count, 362);
  EXPECT_EQ(buckets[7].paper_count, 9);
  int total = 0;
  for (const auto& b : buckets) total += b.paper_count;
  EXPECT_EQ(total, 2299);  // the paper's ~2300 matrices
}

TEST(Corpus, PlanCountsScaleWithFactor) {
  const auto full = make_corpus_plan(1.0, 2018);
  EXPECT_EQ(full.size(), 2299u);
  const auto tenth = make_corpus_plan(0.1, 2018);
  EXPECT_NEAR(static_cast<double>(tenth.size()), 230.0, 10.0);
}

TEST(Corpus, PlanIsDeterministic) {
  const auto a = make_corpus_plan(0.05, 7);
  const auto b = make_corpus_plan(0.05, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs[i].seed, b.specs[i].seed);
    EXPECT_EQ(a.specs[i].rows, b.specs[i].rows);
    EXPECT_EQ(a.bucket_of[i], b.bucket_of[i]);
  }
}

TEST(Corpus, SampledNnzLandsInBucketRange) {
  const auto plan = make_corpus_plan(0.02, 3);
  const auto buckets = paper_buckets();
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& bucket = buckets[static_cast<std::size_t>(plan.bucket_of[i])];
    const auto m = generate(plan.specs[i]);
    // Generated nnz tracks the sampled target loosely (dedup shrinks it);
    // allow a generous factor but require the right order of magnitude.
    EXPECT_GT(m.nnz(), bucket.nnz_lo / 5) << "matrix " << i;
    EXPECT_LT(m.nnz(), bucket.nnz_hi * 3) << "matrix " << i;
  }
}

TEST(ShuffleLabels, PreservesGraphDestroysLocality) {
  auto spec = base_spec(MatrixFamily::kBanded);
  spec.cols = spec.rows;  // square required
  const auto m = generate(spec);
  const auto shuffled = shuffle_labels(m, 99);
  EXPECT_EQ(shuffled.nnz(), m.nnz());
  EXPECT_EQ(shuffled.rows(), m.rows());
  shuffled.validate();

  // Row-degree multiset is preserved (it is a relabeling).
  std::vector<index_t> deg_a, deg_b;
  for (index_t r = 0; r < m.rows(); ++r) {
    deg_a.push_back(m.row_nnz(r));
    deg_b.push_back(shuffled.row_nnz(r));
  }
  std::sort(deg_a.begin(), deg_a.end());
  std::sort(deg_b.begin(), deg_b.end());
  EXPECT_EQ(deg_a, deg_b);

  // Banding is destroyed: mean |col - row| explodes.
  auto mean_offset = [](const Csr<double>& mat) {
    double sum = 0.0;
    for (index_t r = 0; r < mat.rows(); ++r)
      for (index_t p = mat.row_ptr()[r]; p < mat.row_ptr()[r + 1]; ++p)
        sum += std::abs(static_cast<double>(mat.col_idx()[p] - r));
    return sum / static_cast<double>(mat.nnz());
  };
  EXPECT_GT(mean_offset(shuffled), 10.0 * mean_offset(m));
}

TEST(ShuffleLabels, DeterministicPerSeed) {
  auto spec = base_spec(MatrixFamily::kGeomGraph, 3);
  const auto m = generate(spec);
  EXPECT_EQ(shuffle_labels(m, 5), shuffle_labels(m, 5));
  EXPECT_NE(shuffle_labels(m, 5), shuffle_labels(m, 6));
}

TEST(ShuffleLabels, RejectsRectangular) {
  Csr<double> m(2, 3, {0, 1, 2}, {0, 2}, {1.0, 1.0});
  EXPECT_THROW(shuffle_labels(m, 1), Error);
}

TEST(Corpus, SmallPlanHasRequestedSize) {
  const auto plan = make_small_plan(12, 5);
  EXPECT_EQ(plan.size(), 12u);
  for (const auto& spec : plan.specs) {
    const auto m = generate(spec);
    EXPECT_GT(m.nnz(), 0);
  }
}

}  // namespace
}  // namespace spmvml
