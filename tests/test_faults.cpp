// Fault-injection and fault-tolerance tests: deterministic fault model,
// per-cell failure recording with retries, checkpoint/resume, partial-label
// training, feasibility-aware serving, and corrupt model streams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "core/format_selector.hpp"
#include "core/indirect.hpp"
#include "core/label_collector.hpp"
#include "core/perf_model.hpp"
#include "gpusim/fault.hpp"
#include "ml/metrics.hpp"

namespace spmvml {
namespace {

/// Power-law spec with a hub row: the ELL image explodes (rows * row_max)
/// while CSR stays proportional to nnz.
GenSpec ell_hostile_spec() {
  GenSpec spec;
  spec.family = MatrixFamily::kPowerLaw;
  spec.rows = 40000;
  spec.cols = 40000;
  spec.row_mu = 8;
  spec.alpha = 1.2;
  spec.seed = 2024;
  return spec;
}

TEST(FaultModel, DisabledIsInfallible) {
  const auto m = generate(ell_hostile_spec());
  const auto s = summarize(m);
  MeasurementOracle oracle(tesla_k40c(), Precision::kDouble);
  for (Format f : kAllFormats)
    EXPECT_TRUE(oracle.measure(s, f, 1).ok());
}

TEST(FaultModel, StructuralOomOnEllBlowUp) {
  const auto m = generate(ell_hostile_spec());
  const auto s = summarize(m);
  MeasurementConfig config;
  config.faults.enabled = true;
  config.faults.device_memory_override = 50'000'000;  // 50 MB device
  MeasurementOracle oracle(tesla_k40c(), Precision::kDouble, config);

  const auto ell = oracle.measure(s, Format::kEll, 1);
  EXPECT_EQ(ell.status, MeasurementStatus::kOom);
  EXPECT_TRUE(std::isnan(ell.seconds));
  const auto csr = oracle.measure(s, Format::kCsr, 1);
  EXPECT_TRUE(csr.ok());
  EXPECT_GT(csr.seconds, 0.0);
}

TEST(FaultModel, OomIsNotRetryable) {
  EXPECT_FALSE(is_retryable(MeasurementStatus::kOom));
  EXPECT_FALSE(is_retryable(MeasurementStatus::kTimeout));
  EXPECT_TRUE(is_retryable(MeasurementStatus::kTransient));
}

TEST(FaultModel, WatchdogTimeout) {
  const auto m = generate(make_small_plan(1, 5).specs[0]);
  const auto s = summarize(m);
  MeasurementConfig config;
  config.faults.enabled = true;
  config.faults.timeout_seconds = 1e-12;  // everything exceeds this
  MeasurementOracle oracle(tesla_p100(), Precision::kSingle, config);
  const auto r = oracle.measure(s, Format::kCsr, 1);
  EXPECT_EQ(r.status, MeasurementStatus::kTimeout);
}

TEST(FaultModel, TransientIsDeterministicPerAttemptAndRetryable) {
  const auto m = generate(make_small_plan(1, 5).specs[0]);
  const auto s = summarize(m);
  MeasurementConfig config;
  config.faults.enabled = true;
  config.faults.transient_rate = 0.5;
  MeasurementOracle a(tesla_k40c(), Precision::kDouble, config);
  MeasurementOracle b(tesla_k40c(), Precision::kDouble, config);

  bool saw_ok = false, saw_transient = false;
  double ok_seconds = 0.0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto ra = a.measure(s, Format::kCsr, 7, attempt);
    const auto rb = b.measure(s, Format::kCsr, 7, attempt);
    EXPECT_EQ(ra.status, rb.status);  // pure function of identity+attempt
    if (ra.ok()) {
      // Timing is attempt-invariant: a retried success must report the
      // same mean as a first-try success.
      if (saw_ok) EXPECT_DOUBLE_EQ(ra.seconds, ok_seconds);
      ok_seconds = ra.seconds;
      saw_ok = true;
    } else {
      EXPECT_EQ(ra.status, MeasurementStatus::kTransient);
      saw_transient = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_transient);
}

TEST(FaultModel, DeviceBytesRankFormatsSanely) {
  const auto m = generate(ell_hostile_spec());
  const auto s = summarize(m);
  const double ell = format_device_bytes(s, Format::kEll, Precision::kDouble);
  const double csr = format_device_bytes(s, Format::kCsr, Precision::kDouble);
  const double coo = format_device_bytes(s, Format::kCoo, Precision::kDouble);
  EXPECT_GT(ell, 10.0 * csr);  // padding blow-up dominates
  EXPECT_GT(coo, 0.0);
  // Double precision images are strictly larger than single.
  EXPECT_GT(csr, format_device_bytes(s, Format::kCsr, Precision::kSingle));
}

// ---------------------------------------------------------------------------
// Collection: per-cell failures, retries, no wholesale drops.

TEST(FaultyCollection, RecordsPerCellFailuresWithoutDroppingMatrices) {
  const auto plan = make_small_plan(24, 4242);
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.3;  // ~15% of matrices keep >=1 failed cell
  const auto corpus = collect_corpus(plan, opts);

  // Zero wholesale drops: every matrix had at least one surviving cell.
  EXPECT_EQ(corpus.size(), plan.size());
  EXPECT_EQ(corpus.stats.dropped_all_failed, 0u);
  EXPECT_EQ(corpus.stats.dropped_prefilter, 0u);
  EXPECT_GT(corpus.stats.failed_cells, 0u);
  EXPECT_GT(corpus.stats.transient_retries, corpus.stats.failed_cells);

  std::size_t matrices_with_failures = 0;
  for (const auto& rec : corpus.records)
    if (!rec.fully_valid()) ++matrices_with_failures;
  EXPECT_GT(matrices_with_failures, 0u);
  EXPECT_LT(matrices_with_failures, corpus.size());  // not everything failed
}

TEST(FaultyCollection, MonsterEllMatrixKeptWithInvalidEllCells) {
  CorpusPlan plan = make_small_plan(3, 77);
  plan.specs.push_back(ell_hostile_spec());
  plan.bucket_of.push_back(3);

  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.device_memory_override = 50'000'000;  // 50 MB device
  const auto corpus = collect_corpus(plan, opts);

  // §IV-C as a policy: the monster is kept, only its ELL cells fail.
  ASSERT_EQ(corpus.size(), plan.size());
  EXPECT_GT(corpus.stats.oom_cells, 0u);
  const auto& monster = corpus.records.back();
  for (int a = 0; a < kNumArchs; ++a)
    for (int p = 0; p < kNumPrecisions; ++p) {
      EXPECT_FALSE(monster.valid(a, static_cast<Precision>(p), Format::kEll));
      EXPECT_TRUE(monster.valid(a, static_cast<Precision>(p), Format::kCsr));
    }
  // best_among never points at the invalid format.
  const int best = monster.best_among(0, Precision::kDouble, kAllFormats);
  ASSERT_GE(best, 0);
  EXPECT_NE(kAllFormats[static_cast<std::size_t>(best)], Format::kEll);
}

TEST(FaultyCollection, RetriesRecoverMostTransients) {
  const auto plan = make_small_plan(12, 99);
  CollectOptions no_retry;
  no_retry.faults.enabled = true;
  no_retry.faults.transient_rate = 0.3;
  no_retry.max_retries = 0;
  const auto without = collect_corpus(plan, no_retry);

  CollectOptions with_retry = no_retry;
  with_retry.max_retries = 4;
  const auto with = collect_corpus(plan, with_retry);

  EXPECT_GT(without.stats.failed_cells, 0u);
  EXPECT_LT(with.stats.failed_cells, without.stats.failed_cells);
}

TEST(FaultyCollection, NanCellsRoundTripThroughCsv) {
  const auto plan = make_small_plan(8, 4242);
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.35;
  opts.max_retries = 0;  // keep plenty of failed cells
  const auto corpus = collect_corpus(plan, opts);
  EXPECT_GT(corpus.stats.failed_cells, 0u);

  const auto path = testing::TempDir() + "/spmvml_nan_roundtrip.csv";
  save_corpus_csv(path, corpus, plan.size());
  const auto loaded = load_corpus_csv(path);
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    for (int a = 0; a < kNumArchs; ++a)
      for (int p = 0; p < kNumPrecisions; ++p)
        for (Format f : kAllFormats) {
          const auto prec = static_cast<Precision>(p);
          ASSERT_EQ(loaded.records[i].valid(a, prec, f),
                    corpus.records[i].valid(a, prec, f));
          if (corpus.records[i].valid(a, prec, f))
            EXPECT_DOUBLE_EQ(loaded.records[i].time(a, prec, f),
                             corpus.records[i].time(a, prec, f));
        }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Training on partial labels.

TEST(PartialLabels, StudyLabelsNeverPointAtInvalidCells) {
  const auto plan = make_small_plan(20, 31);
  CollectOptions opts;
  opts.faults.enabled = true;
  opts.faults.transient_rate = 0.35;
  opts.max_retries = 0;
  const auto corpus = collect_corpus(plan, opts);

  const auto study = make_classification_study(
      corpus, 0, Precision::kDouble, kAllFormats, FeatureSet::kSet12);
  ASSERT_FALSE(study.data.labels.empty());
  for (std::size_t i = 0; i < study.data.labels.size(); ++i) {
    const auto label = static_cast<std::size_t>(study.data.labels[i]);
    EXPECT_TRUE(std::isfinite(study.times[i][label]));
  }
}

TEST(PartialLabels, RegressionStudySkipsInvalidCells) {
  const auto plan = make_small_plan(16, 31);
  CollectOptions clean;
  const auto full = collect_corpus(plan, clean);
  CollectOptions faulty;
  faulty.faults.enabled = true;
  faulty.faults.transient_rate = 0.35;
  faulty.max_retries = 0;
  const auto partial = collect_corpus(plan, faulty);
  EXPECT_GT(partial.stats.failed_cells, 0u);

  const auto study_full = make_format_regression_study(
      full, 1, Precision::kDouble, Format::kCsr, FeatureSet::kSet1);
  const auto study_partial = make_format_regression_study(
      partial, 1, Precision::kDouble, Format::kCsr, FeatureSet::kSet1);
  EXPECT_LE(study_partial.data.x.size(), study_full.data.x.size());
  for (double t : study_partial.seconds) EXPECT_TRUE(std::isfinite(t));
}

TEST(PartialLabels, SelectorAccuracyStaysCloseToFaultFree) {
  // §IV-C-like regime: ~15% of matrices carry at least one failing format.
  const auto plan = make_small_plan(150, 2018);
  CollectOptions clean;
  const auto corpus_clean = collect_corpus(plan, clean);
  CollectOptions faulty;
  faulty.faults.enabled = true;
  faulty.faults.transient_rate = 0.3;
  const auto corpus_faulty = collect_corpus(plan, faulty);

  ASSERT_EQ(corpus_faulty.size(), plan.size());  // zero wholesale drops
  std::size_t with_failures = 0;
  for (const auto& rec : corpus_faulty.records)
    if (!rec.fully_valid()) ++with_failures;
  // The injected rate should land in the §IV-C ballpark (15% of 2700).
  EXPECT_GT(with_failures, plan.size() / 20);
  EXPECT_LT(with_failures, plan.size() / 2);

  // Train one selector per corpus, evaluate both against the fault-free
  // ground truth.
  const auto truth = make_classification_study(
      corpus_clean, 0, Precision::kDouble, kAllFormats, FeatureSet::kSet12);
  auto accuracy_of = [&](const LabeledCorpus& corpus) {
    FormatSelector selector(ModelKind::kXgboost, FeatureSet::kSet12,
                            kAllFormats, /*fast=*/true);
    selector.fit(corpus, 0, Precision::kDouble);
    std::vector<int> pred;
    for (const auto& row : truth.data.x)
      pred.push_back(selector.predict_label(row));
    return ml::accuracy(truth.data.labels, pred);
  };
  const double acc_clean = accuracy_of(corpus_clean);
  const double acc_faulty = accuracy_of(corpus_faulty);
  EXPECT_NEAR(acc_faulty, acc_clean, 0.02);  // within 2 accuracy points
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.

struct AbortCollection {};

TEST(Checkpoint, KilledRunResumesWithoutRemeasuring) {
  const auto plan = make_small_plan(16, 1234);
  const auto path = testing::TempDir() + "/spmvml_checkpoint_test.csv";
  std::remove(path.c_str());

  CollectOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 4;
  opts.progress = [](std::size_t done, std::size_t) {
    if (done == 10) throw AbortCollection{};  // simulate a kill mid-run
  };
  EXPECT_THROW(collect_corpus(plan, opts), AbortCollection);
  ASSERT_TRUE(std::filesystem::exists(path));

  CollectOptions resume;
  resume.checkpoint_path = path;
  const auto resumed = collect_corpus(plan, resume);
  // The checkpoint covered the first 8 matrices; only the rest re-ran.
  EXPECT_EQ(resumed.stats.resumed_records, 8u);
  EXPECT_EQ(resumed.stats.attempted, plan.size() - 8);
  EXPECT_EQ(resumed.size(), plan.size());

  // Identical to an uninterrupted collection.
  const auto full = collect_corpus(plan);
  ASSERT_EQ(resumed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(resumed.records[i].seed, full.records[i].seed);
    EXPECT_DOUBLE_EQ(
        resumed.records[i].time(0, Precision::kDouble, Format::kHyb),
        full.records[i].time(0, Precision::kDouble, Format::kHyb));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedPlanIgnoresCheckpoint) {
  const auto plan_a = make_small_plan(8, 1);
  const auto plan_b = make_small_plan(8, 2);  // same size, different content
  const auto path = testing::TempDir() + "/spmvml_checkpoint_mismatch.csv";
  std::remove(path.c_str());

  CollectOptions opts;
  opts.checkpoint_path = path;
  collect_corpus(plan_a, opts);

  const auto corpus_b = collect_corpus(plan_b, opts);
  EXPECT_EQ(corpus_b.stats.resumed_records, 0u);
  EXPECT_EQ(corpus_b.stats.attempted, plan_b.size());
  EXPECT_EQ(corpus_b.records[0].seed, plan_b.specs[0].seed);
  std::remove(path.c_str());
}

TEST(Checkpoint, PlanFingerprintSeparatesSameSizePlans) {
  EXPECT_NE(plan_fingerprint(make_small_plan(6, 77)),
            plan_fingerprint(make_small_plan(6, 78)));
  EXPECT_EQ(plan_fingerprint(make_small_plan(6, 77)),
            plan_fingerprint(make_small_plan(6, 77)));
}

// ---------------------------------------------------------------------------
// Feasibility-aware serving.

TEST(Feasibility, MemoryPredicateRejectsEllOnSkewedMatrix) {
  const auto m = generate(ell_hostile_spec());
  const auto s = summarize(m);
  const auto feasible =
      make_memory_feasibility(s, Precision::kDouble, 50'000'000);
  EXPECT_FALSE(feasible(Format::kEll));
  EXPECT_TRUE(feasible(Format::kCsr));
}

TEST(Feasibility, SelectorFallsBackToFeasibleFormat) {
  // A classifier that always predicts ELL (trained on single-class data).
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          kAllFormats, /*fast=*/true);
  ml::Matrix x;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), 1.0, 2.0, 3.0, 4.0});
    labels.push_back(static_cast<int>(Format::kEll));
  }
  selector.fit(x, labels);

  const auto matrix = generate(ell_hostile_spec());
  const auto s = summarize(matrix);
  ASSERT_EQ(selector.select(matrix), Format::kEll);

  const std::int64_t budget = 50'000'000;
  const auto feasible = make_memory_feasibility(s, Precision::kDouble, budget);
  const Selection sel = selector.select_feasible(matrix, feasible);
  EXPECT_EQ(sel.predicted, Format::kEll);
  EXPECT_TRUE(sel.fallback);
  EXPECT_NE(sel.format, Format::kEll);
  // The contract --mem-budget relies on: the served format always fits.
  EXPECT_LE(format_device_bytes(s, sel.format, Precision::kDouble),
            static_cast<double>(budget));
}

TEST(Feasibility, NoFallbackWhenPredictionFits) {
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          kAllFormats, /*fast=*/true);
  ml::Matrix x;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), 1.0, 2.0, 3.0, 4.0});
    labels.push_back(static_cast<int>(Format::kCsr));
  }
  selector.fit(x, labels);
  const auto matrix = generate(make_small_plan(1, 3).specs[0]);
  const auto s = summarize(matrix);
  const Selection sel = selector.select_feasible(
      matrix, make_memory_feasibility(s, Precision::kDouble,
                                      tesla_k40c().mem_bytes));
  EXPECT_FALSE(sel.fallback);
  EXPECT_EQ(sel.format, sel.predicted);
}

TEST(Feasibility, CsrIsTheFloorWhenNothingFits) {
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          kAllFormats, /*fast=*/true);
  ml::Matrix x;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    x.push_back({static_cast<double>(i), 1.0, 2.0, 3.0, 4.0});
    labels.push_back(static_cast<int>(Format::kEll));
  }
  selector.fit(x, labels);
  const auto matrix = generate(make_small_plan(1, 3).specs[0]);
  const Selection sel =
      selector.select_feasible(matrix, [](Format) { return false; });
  EXPECT_TRUE(sel.fallback);
  EXPECT_EQ(sel.format, Format::kCsr);
}

TEST(Feasibility, ThrowsInfeasibleWhenCsrNotACandidate) {
  const std::array<Format, 2> candidates = {Format::kEll, Format::kHyb};
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          candidates, /*fast=*/true);
  ml::Matrix x;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    x.push_back({static_cast<double>(i), 1.0, 2.0, 3.0, 4.0});
    labels.push_back(0);
  }
  selector.fit(x, labels);
  const auto matrix = generate(make_small_plan(1, 3).specs[0]);
  try {
    selector.select_feasible(matrix, [](Format) { return false; });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInfeasibleFormat);
  }
}

TEST(Feasibility, IndirectSelectorPicksBestFeasibleByPredictedTime) {
  const auto corpus = collect_corpus(make_small_plan(40, 808));
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet12,
                  kAllFormats, /*fast=*/true);
  model.fit(corpus, 0, Precision::kDouble);
  IndirectSelector selector(std::move(model));

  const auto matrix = generate(ell_hostile_spec());
  const auto features = extract_features(matrix);
  const auto s = summarize(matrix);
  const std::int64_t budget = 50'000'000;
  const auto sel = selector.select_feasible(
      features, make_memory_feasibility(s, Precision::kDouble, budget));
  EXPECT_LE(format_device_bytes(s, sel.format, Precision::kDouble),
            static_cast<double>(budget));
  // Among feasible formats, nothing has a smaller predicted time.
  const auto predicted = selector.model().predict_all(features);
  const auto formats = selector.model().formats();
  for (std::size_t i = 0; i < formats.size(); ++i) {
    if (format_device_bytes(s, formats[i], Precision::kDouble) >
        static_cast<double>(budget))
      continue;
    EXPECT_GE(predicted[i] + 1e-15,
              selector.model().predict_seconds(features, sel.format));
  }
}

// ---------------------------------------------------------------------------
// Corrupt model streams: no crash, no hang, a clean spmvml::Error.

FormatSelector trained_selector() {
  FormatSelector selector(ModelKind::kDecisionTree, FeatureSet::kSet1,
                          kAllFormats, /*fast=*/true);
  ml::Matrix x;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    x.push_back({static_cast<double>(i % 7), static_cast<double>(i % 3), 1.0,
                 2.0, 3.0});
    labels.push_back(i % 3);
  }
  selector.fit(x, labels);
  return selector;
}

PerfModel trained_perf_model() {
  const auto corpus = collect_corpus(make_small_plan(12, 66));
  PerfModel model(RegressorKind::kDecisionTree, FeatureSet::kSet1,
                  kAllFormats, /*fast=*/true);
  model.fit(corpus, 0, Precision::kDouble);
  return model;
}

void expect_model_format_error(const std::string& payload, bool selector) {
  std::istringstream in(payload);
  try {
    if (selector)
      FormatSelector::load_selector(in);
    else
      PerfModel::load_model(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kModelFormat) << e.what();
  }
}

TEST(CorruptModels, TruncatedSelectorStreamsThrowCleanly) {
  std::ostringstream out;
  trained_selector().save(out);
  const std::string full = out.str();
  for (const double frac : {0.0, 0.1, 0.5, 0.9})
    expect_model_format_error(
        full.substr(0, static_cast<std::size_t>(frac *
                                                static_cast<double>(full.size()))),
        /*selector=*/true);
}

TEST(CorruptModels, MangledTagRejected) {
  std::ostringstream out;
  trained_selector().save(out);
  std::string payload = out.str();
  payload.replace(payload.find("format_selector"), 15, "format_sZlector");
  expect_model_format_error(payload, /*selector=*/true);
}

TEST(CorruptModels, AbsurdVectorSizeRejected) {
  // Kind + feature set are plausible; the candidate vector claims 10^12
  // entries. The absurd-size guard must fire instead of allocating.
  expect_model_format_error("format_selector\n0\n0\n1000000000000 1 2\n",
                            /*selector=*/true);
}

TEST(CorruptModels, TruncatedPerfModelStreamsThrowCleanly) {
  std::ostringstream out;
  trained_perf_model().save(out);
  const std::string full = out.str();
  for (const double frac : {0.0, 0.2, 0.6, 0.95})
    expect_model_format_error(
        full.substr(0, static_cast<std::size_t>(frac *
                                                static_cast<double>(full.size()))),
        /*selector=*/false);
}

TEST(CorruptModels, PerfModelMangledTagRejected) {
  std::ostringstream out;
  trained_perf_model().save(out);
  std::string payload = out.str();
  payload.replace(payload.find("perf_model"), 10, "pref_model");
  expect_model_format_error(payload, /*selector=*/false);
}

TEST(CorruptModels, WrongKindValueRejected) {
  std::istringstream in("format_selector\n99\n0\n6 0 1 2 3 4 5\n");
  EXPECT_THROW(FormatSelector::load_selector(in), Error);
}

}  // namespace
}  // namespace spmvml
