// Unit tests for src/common: RNG determinism, streaming stats, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace spmvml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  StreamingStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, LognormalMedianApproximately) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) v.push_back(rng.lognormal(2.0, 0.3));
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 2.0, 0.1);
}

TEST(Rng, ParetoIntRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.pareto_int(1.5, 100);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(5, 6), hash_combine(5, 6));
}

TEST(StreamingStats, MatchesHandComputation) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, EmptyIsSafe) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, MergeEqualsSinglePass) {
  StreamingStats a, b, whole;
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i < 200 ? a : b).add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeExactFieldsAndDeterministicOrder) {
  // count/sum/min/max merge exactly; a fixed block partition merged in
  // order gives bit-identical results on every run — the contract the
  // parallel feature extraction relies on.
  std::vector<double> values;
  Rng rng(91);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.normal(0.0, 50.0));

  auto blocked = [&](std::size_t block) {
    StreamingStats total;
    for (std::size_t start = 0; start < values.size(); start += block) {
      StreamingStats s;
      for (std::size_t i = start; i < std::min(values.size(), start + block);
           ++i)
        s.add(values[i]);
      total.merge(s);
    }
    return total;
  };
  const StreamingStats a = blocked(64);
  const StreamingStats b = blocked(64);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());        // bitwise: same merge order
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());

  StreamingStats whole;
  double sum = 0.0;
  for (double v : values) {
    whole.add(v);
    sum += v;
  }
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.sum(), sum, 1e-9 * std::abs(sum) + 1e-9);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12 * (1.0 + std::abs(whole.mean())));
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9 * whole.variance());
}

TEST(StreamingStats, SelfMergeDoublesTheStream) {
  StreamingStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(6.0);
  s.merge(s);
  EXPECT_EQ(s.count(), 6);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 18.0);
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  StreamingStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_EQ(b.count(), 2);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name   | v"), std::string::npos);
  EXPECT_NE(s.find("longer | 22"), std::string::npos);
}

TEST(TablePrinter, RejectsRaggedRows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(0.875, 1), "87.5%");
}

TEST(Env, DoubleParsingWithFallback) {
  setenv("SPMVML_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("SPMVML_TEST_D", 1.0), 2.5);
  setenv("SPMVML_TEST_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_double("SPMVML_TEST_D", 1.0), 1.0);
  unsetenv("SPMVML_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("SPMVML_TEST_D", 3.0), 3.0);
}

TEST(Env, IntParsingWithFallback) {
  setenv("SPMVML_TEST_I", "42", 1);
  EXPECT_EQ(env_int("SPMVML_TEST_I", 7), 42);
  unsetenv("SPMVML_TEST_I");
  EXPECT_EQ(env_int("SPMVML_TEST_I", 7), 7);
}

TEST(Env, CorpusScaleClamped) {
  setenv("SPMVML_CORPUS_SCALE", "1000", 1);
  EXPECT_DOUBLE_EQ(corpus_scale(), 10.0);
  setenv("SPMVML_CORPUS_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(corpus_scale(), 0.01);
  unsetenv("SPMVML_CORPUS_SCALE");
  EXPECT_DOUBLE_EQ(corpus_scale(), 1.0);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<int> hits(5000, 0);
  parallel_for(5000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_GE(parallel_threads(), 1);
}

TEST(Ensure, ThrowsWithMessage) {
  try {
    SPMVML_ENSURE(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

}  // namespace
}  // namespace spmvml
